//! E25: query behaviour across the structures — disjoint quadtree
//! decompositions versus the R-tree's overlapping nodes versus a brute
//! force scan (window queries, point location, nearest neighbour, and
//! the quadtree spatial join).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bench::{query_windows, roads_approx, uniform_at, WORLD};
use dp_geom::Point;
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::join::{brute_force_join, spatial_join};
use dp_spatial::pm1::build_pm1;
use dp_spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial::rtree::build_rtree;
use dp_workloads::square_world;
use scan_model::Machine;
use std::hint::black_box;

fn bench_window_queries(c: &mut Criterion) {
    let machine = Machine::parallel();
    let world = square_world(WORLD);
    let data = roads_approx(4_000);
    let queries = query_windows(100, 0.02, 13);

    let bpmr = build_bucket_pmr(&machine, world, &data.segs, 8, 12);
    let pm1 = build_pm1(&machine, world, &data.segs, 12);
    let rt = build_rtree(&machine, &data.segs, 2, 8, RtreeSplitAlgorithm::Sweep);

    let mut group = c.benchmark_group("query_compare/window");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    group.bench_function("bucket_pmr", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                hits += bpmr.window_query(q, &data.segs).len();
            }
            black_box(hits)
        })
    });
    group.bench_function("pm1", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                hits += pm1.window_query(q, &data.segs).len();
            }
            black_box(hits)
        })
    });
    group.bench_function("rtree", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                hits += rt.window_query(q, &data.segs).len();
            }
            black_box(hits)
        })
    });
    group.bench_function("brute_force", |b| {
        b.iter(|| {
            let mut hits = 0;
            for q in &queries {
                hits += data
                    .segs
                    .iter()
                    .filter(|s| dp_geom::clip_segment_closed(s, q).is_some())
                    .count();
            }
            black_box(hits)
        })
    });
    group.finish();

    let mut group = c.benchmark_group("query_compare/nearest");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    let probes: Vec<Point> = (0..100)
        .map(|k| {
            Point::new(
                ((k * 97) % WORLD as usize) as f64,
                ((k * 389) % WORLD as usize) as f64,
            )
        })
        .collect();
    group.bench_function("bucket_pmr", |b| {
        b.iter(|| {
            for &p in &probes {
                black_box(bpmr.nearest(p, &data.segs));
            }
        })
    });
    group.bench_function("rtree", |b| {
        b.iter(|| {
            for &p in &probes {
                black_box(rt.nearest(p, &data.segs));
            }
        })
    });
    group.finish();
}

fn bench_spatial_join(c: &mut Criterion) {
    let machine = Machine::parallel();
    let world = square_world(WORLD);
    let roads = roads_approx(2_000);
    let rivers = uniform_at(500);
    let ta = build_bucket_pmr(&machine, world, &roads.segs, 8, 12);
    let tb = build_bucket_pmr(&machine, world, &rivers.segs, 8, 12);

    let mut group = c.benchmark_group("query_compare/join");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("quadtree_join", roads.len()),
        &0,
        |b, _| b.iter(|| black_box(spatial_join(&ta, &roads.segs, &tb, &rivers.segs))),
    );
    group.bench_with_input(
        BenchmarkId::new("brute_force_join", roads.len()),
        &0,
        |b, _| b.iter(|| black_box(brute_force_join(&roads.segs, &rivers.segs))),
    );
    group.finish();
}

criterion_group!(benches, bench_window_queries, bench_spatial_join);
criterion_main!(benches);
