//! E29: sharded service throughput — a 10k-request mixed batch against
//! services with 1, 4 and 16 shards. More shards mean more concurrent
//! lockstep batches over smaller trees; the bench demonstrates the
//! scaling of batch throughput with the shard count, and reports the
//! driver-side request rate via `Throughput::Elements`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_service::{QueryService, QueryServiceConfig};
use dp_workloads::{request_stream, uniform_segments, RequestMix};
use scan_model::Backend;
use std::hint::black_box;

const REQUESTS: usize = 10_000;

fn bench_service(c: &mut Criterion) {
    let data = uniform_segments(20_000, 1024, 16, 77);
    let stream = request_stream(data.world, REQUESTS, RequestMix::DEFAULT, 78);

    let mut group = c.benchmark_group("service_throughput");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS as u64));
    for &grid in &[1u32, 2, 4] {
        let service = QueryService::build(
            QueryServiceConfig {
                shard_grid: grid,
                backend: Backend::Parallel,
                ..QueryServiceConfig::default()
            },
            data.world,
            data.segs.clone(),
        );
        let shards = service.num_shards();
        group.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| black_box(service.execute_batch(&stream)).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
