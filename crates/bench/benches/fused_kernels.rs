//! Fused-kernel ablation: the PM₁ build with the fused seven-lane
//! decision scan and arena-backed `_into` primitives versus the unfused
//! baseline that composes seven independent segmented scans and
//! allocates every intermediate. Same trees bit-for-bit (asserted by
//! `tests/fused_complexity.rs`); this measures the wall-clock payoff on
//! the parallel backend at large n, where the saved passes and avoided
//! allocations dominate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_bench::{planar_at, uniform_at, WORLD};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::pm1::{build_pm1, build_pm1_unfused};
use dp_workloads::square_world;
use scan_model::Machine;
use std::hint::black_box;

const SIZES: [usize; 2] = [100_000, 200_000];

fn bench_pm1_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_kernels/pm1");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let machine = Machine::parallel();
    for &n in &SIZES {
        // Strictly planar input at constant density: the ideal PM₁ map.
        let data = planar_at(n);
        let depth = (data.world.width() as u64).ilog2() as usize;
        group.throughput(Throughput::Elements(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("fused_arena", n), &n, |b, _| {
            b.iter(|| black_box(build_pm1(&machine, data.world, &data.segs, depth)))
        });
        group.bench_with_input(BenchmarkId::new("unfused", n), &n, |b, _| {
            b.iter(|| black_box(build_pm1_unfused(&machine, data.world, &data.segs, depth)))
        });
    }
    group.finish();
}

fn bench_bucket_pmr_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("fused_kernels/bucket_pmr");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let world = square_world(WORLD);
    for &n in &SIZES {
        let data = uniform_at(n);
        group.throughput(Throughput::Elements(n as u64));
        // Arena reuse across rounds (round 2+ leases round-1 buffers);
        // sequential vs parallel shows the pool-backed backend's edge.
        let par = Machine::parallel();
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| black_box(build_bucket_pmr(&par, world, &data.segs, 8, 12)))
        });
        let seq = Machine::sequential();
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
            b.iter(|| black_box(build_bucket_pmr(&seq, world, &data.segs, 8, 12)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pm1_fusion, bench_bucket_pmr_arena);
criterion_main!(benches);
