//! E19–E21: bulk-construction scaling of the three data-parallel builds
//! versus their sequential one-at-a-time baselines (paper Sec. 5). The
//! shape to observe: the data-parallel builds track their baselines in
//! total work while running a round count that grows logarithmically
//! (printed by `exp_tables rounds`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_bench::{roads_approx, uniform_at, WORLD};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::pm1::build_pm1;
use dp_spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial::rtree::build_rtree;
use dp_workloads::square_world;
use scan_model::Machine;
use seq_spatial as seq;
use std::hint::black_box;

const SIZES: [usize; 3] = [500, 2_000, 8_000];

fn bench_bucket_pmr(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_scaling/bucket_pmr");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let world = square_world(WORLD);
    let machine = Machine::parallel();
    for &n in &SIZES {
        let data = uniform_at(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, _| {
            b.iter(|| black_box(build_bucket_pmr(&machine, world, &data.segs, 8, 12)))
        });
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| {
                black_box(seq::bucket_pmr::BucketPmrTree::build(
                    world, &data.segs, 8, 12,
                ))
            })
        });
    }
    group.finish();
}

fn bench_pm1(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_scaling/pm1");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let world = square_world(WORLD);
    let machine = Machine::parallel();
    for &n in &SIZES {
        // Near-planar input: PM1 is meant for polygonal maps.
        let data = roads_approx(n);
        group.throughput(Throughput::Elements(data.len() as u64));
        group.bench_with_input(BenchmarkId::new("dp", n), &n, |b, _| {
            b.iter(|| black_box(build_pm1(&machine, world, &data.segs, 12)))
        });
        group.bench_with_input(BenchmarkId::new("seq", n), &n, |b, _| {
            b.iter(|| black_box(seq::pm1::Pm1Tree::build(world, &data.segs, 12)))
        });
    }
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_scaling/rtree");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    let machine = Machine::parallel();
    for &n in &SIZES {
        let data = uniform_at(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("dp_sweep", n), &n, |b, _| {
            b.iter(|| {
                black_box(build_rtree(
                    &machine,
                    &data.segs,
                    2,
                    8,
                    RtreeSplitAlgorithm::Sweep,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("dp_mean", n), &n, |b, _| {
            b.iter(|| {
                black_box(build_rtree(
                    &machine,
                    &data.segs,
                    2,
                    8,
                    RtreeSplitAlgorithm::Mean,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("seq_quadratic", n), &n, |b, _| {
            b.iter(|| {
                black_box(seq::rtree::RTree::build(
                    &data.segs,
                    2,
                    8,
                    seq::rtree::SplitAlgorithm::Quadratic,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bucket_pmr, bench_pm1, bench_rtree);
criterion_main!(benches);
