//! E22: the splitting-threshold trade-off of paper Sec. 2.2 — as the
//! bucket capacity rises, construction gets cheaper and storage shrinks,
//! while query work grows. Build and query timings per threshold.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bench::{query_windows, roads_approx, WORLD};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_workloads::square_world;
use scan_model::Machine;
use std::hint::black_box;

fn bench_threshold(c: &mut Criterion) {
    let machine = Machine::parallel();
    let world = square_world(WORLD);
    let data = roads_approx(4_000);
    let queries = query_windows(100, 0.02, 5);

    let mut group = c.benchmark_group("threshold_sweep/build");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &cap in &[2usize, 4, 8, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| black_box(build_bucket_pmr(&machine, world, &data.segs, cap, 12)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("threshold_sweep/query");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for &cap in &[2usize, 4, 8, 16, 32] {
        let tree = build_bucket_pmr(&machine, world, &data.segs, cap, 12);
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += tree.window_query(q, &data.segs).len();
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
