//! E26: the PM quadtree family ablation — PM1, PM2 and PM3 builds over
//! the same planar polygonal map. Strictness costs nodes and build time;
//! the family ordering (PM1 >= PM2 >= PM3 in nodes) is asserted by the
//! test suite and timed here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bench::planar_at;
use dp_spatial::pm1::build_pm1;
use dp_spatial::pm_family::{build_pm2, build_pm3};
use scan_model::Machine;
use std::hint::black_box;

fn bench_family(c: &mut Criterion) {
    let machine = Machine::parallel();
    let mut group = c.benchmark_group("pm_family");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let data = planar_at(n);
        let depth = (data.world.width() as u64).ilog2() as usize;
        group.bench_with_input(BenchmarkId::new("pm1", n), &n, |b, _| {
            b.iter(|| black_box(build_pm1(&machine, data.world, &data.segs, depth)))
        });
        group.bench_with_input(BenchmarkId::new("pm2", n), &n, |b, _| {
            b.iter(|| black_box(build_pm2(&machine, data.world, &data.segs, depth)))
        });
        group.bench_with_input(BenchmarkId::new("pm3", n), &n, |b, _| {
            b.iter(|| black_box(build_pm3(&machine, data.world, &data.segs, depth)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_family);
criterion_main!(benches);
