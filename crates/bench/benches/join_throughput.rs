//! E34: spatial-join throughput — the data-parallel frontier join
//! against the recursive co-traversal and the all-pairs brute force,
//! over two independently generated layers of the same world. The
//! frontier join runs on both machine backends; `Throughput::Elements`
//! reports base-layer segments per second so sizes are comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::join::{brute_force_join, frontier_join, spatial_join};
use dp_workloads::uniform_segments;
use scan_model::{Backend, Machine};
use std::hint::black_box;

fn bench_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_throughput");
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);

    for &n in &[2_000usize, 8_000] {
        let base = uniform_segments(n, 1024, 16, 501);
        let overlay = uniform_segments(n, 1024, 16, 502);
        let build_machine = Machine::sequential();
        let ta = build_bucket_pmr(&build_machine, base.world, &base.segs, 8, 16);
        let tb = build_bucket_pmr(&build_machine, overlay.world, &overlay.segs, 8, 16);

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("frontier_seq", n), &n, |b, _| {
            let m = Machine::sequential();
            b.iter(|| {
                black_box(
                    frontier_join(&m, &ta, &base.segs, &tb, &overlay.segs)
                        .unwrap()
                        .pairs
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("frontier_par", n), &n, |b, _| {
            let m = Machine::new(Backend::Parallel);
            b.iter(|| {
                black_box(
                    frontier_join(&m, &ta, &base.segs, &tb, &overlay.segs)
                        .unwrap()
                        .pairs
                        .len(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("recursive", n), &n, |b, _| {
            b.iter(|| black_box(spatial_join(&ta, &base.segs, &tb, &overlay.segs).len()))
        });
        // The all-pairs baseline is quadratic; keep it to the small size.
        if n <= 2_000 {
            group.bench_with_input(BenchmarkId::new("brute_force", n), &n, |b, _| {
                b.iter(|| black_box(brute_force_join(&base.segs, &overlay.segs).len()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_join);
criterion_main!(benches);
