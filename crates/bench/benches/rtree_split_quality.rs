//! E23: the two R-tree node split selectors of paper Sec. 4.7 — the O(1)
//! mean-of-midpoints split versus the O(log n) sorted-sweep
//! minimal-overlap split — on build cost and query cost, against the
//! sequential Guttman splits as reference points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bench::{query_windows, roads_approx};
use dp_spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial::rtree::{build_rtree, pack_rtree_hilbert};
use scan_model::Machine;
use seq_spatial as seq;
use std::hint::black_box;

fn bench_split_quality(c: &mut Criterion) {
    let machine = Machine::parallel();
    let data = roads_approx(4_000);
    let queries = query_windows(100, 0.02, 9);

    let mut group = c.benchmark_group("rtree_split/build");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    group.bench_function("dp_mean", |b| {
        b.iter(|| {
            black_box(build_rtree(
                &machine,
                &data.segs,
                2,
                8,
                RtreeSplitAlgorithm::Mean,
            ))
        })
    });
    group.bench_function("dp_sweep", |b| {
        b.iter(|| {
            black_box(build_rtree(
                &machine,
                &data.segs,
                2,
                8,
                RtreeSplitAlgorithm::Sweep,
            ))
        })
    });
    group.bench_function("hilbert_pack", |b| {
        let world = dp_workloads::square_world(dp_bench::WORLD);
        b.iter(|| black_box(pack_rtree_hilbert(&machine, &data.segs, world, 8)))
    });
    group.bench_function("seq_linear", |b| {
        b.iter(|| {
            black_box(seq::rtree::RTree::build(
                &data.segs,
                2,
                8,
                seq::rtree::SplitAlgorithm::Linear,
            ))
        })
    });
    group.bench_function("seq_rstar", |b| {
        b.iter(|| {
            black_box(seq::rtree::RTree::build(
                &data.segs,
                2,
                8,
                seq::rtree::SplitAlgorithm::RStarAxis,
            ))
        })
    });
    group.finish();

    let mut group = c.benchmark_group("rtree_split/query");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for (label, algo) in [
        ("mean", RtreeSplitAlgorithm::Mean),
        ("sweep", RtreeSplitAlgorithm::Sweep),
    ] {
        let tree = build_rtree(&machine, &data.segs, 2, 8, algo);
        group.bench_with_input(BenchmarkId::from_parameter(label), &label, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &queries {
                    hits += tree.window_query(q, &data.segs).len();
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_split_quality);
criterion_main!(benches);
