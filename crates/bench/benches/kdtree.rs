//! E29: the scan-model k-D tree build (Blelloch's point-structure
//! algorithm, the paper's cited starting point) — build scaling plus
//! range/nearest query costs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dp_geom::{Point, Rect};
use dp_spatial::kdtree::build_kdtree;
use scan_model::Machine;
use std::hint::black_box;

fn points(n: usize) -> Vec<Point> {
    (0..n)
        .map(|k| {
            Point::new(
                ((k as u64).wrapping_mul(2654435761) % 4096) as f64,
                ((k as u64).wrapping_mul(40503) % 4096) as f64,
            )
        })
        .collect()
}

fn bench_kdtree(c: &mut Criterion) {
    let machine = Machine::parallel();
    let mut group = c.benchmark_group("kdtree");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(10);
    for &n in &[1_000usize, 10_000, 100_000] {
        let pts = points(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| black_box(build_kdtree(&machine, &pts, 8)))
        });
    }
    let pts = points(10_000);
    let kd = build_kdtree(&machine, &pts, 8);
    group.bench_function("range_query", |b| {
        let q = Rect::from_coords(1000.0, 1000.0, 1400.0, 1400.0);
        b.iter(|| black_box(kd.range_query(&q, &pts)))
    });
    group.bench_function("nearest", |b| {
        b.iter(|| black_box(kd.nearest(Point::new(2048.5, 1023.5), &pts)))
    });
    group.finish();
}

criterion_group!(benches, bench_kdtree);
criterion_main!(benches);
