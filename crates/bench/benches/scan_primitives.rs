//! E01: the raw scan-model primitives (paper Fig. 8 semantics) across
//! vector sizes and backends — the cost floor under every spatial
//! algorithm in the workspace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scan_model::ops::{Max, Sum};
use scan_model::{Backend, Direction, Machine, ScanKind, Segments};
use std::hint::black_box;

fn make_input(n: usize) -> (Vec<i64>, Segments) {
    let data: Vec<i64> = (0..n)
        .map(|i| ((i * 2654435761) % 1000) as i64 - 500)
        .collect();
    // Segments of pseudo-random lengths 1..64.
    let mut lengths = Vec::new();
    let mut covered = 0usize;
    let mut state = 0x9E3779B97F4A7C15u64;
    while covered < n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let l = ((state >> 33) % 63 + 1) as usize;
        let l = l.min(n - covered);
        lengths.push(l);
        covered += l;
    }
    (data, Segments::from_lengths(&lengths).unwrap())
}

fn bench_scans(c: &mut Criterion) {
    let mut group = c.benchmark_group("scan_primitives");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for &n in &[10_000usize, 100_000, 1_000_000] {
        let (data, seg) = make_input(n);
        group.throughput(Throughput::Elements(n as u64));
        for (label, backend) in [("seq", Backend::Sequential), ("par", Backend::Parallel)] {
            let m = Machine::new(backend);
            group.bench_with_input(
                BenchmarkId::new(format!("up_sum_inclusive/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(m.scan(
                            black_box(&data),
                            &seg,
                            Sum,
                            Direction::Up,
                            ScanKind::Inclusive,
                        ))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("down_max_exclusive/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(m.scan(
                            black_box(&data),
                            &seg,
                            Max,
                            Direction::Down,
                            ScanKind::Exclusive,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_elementwise_and_permute(c: &mut Criterion) {
    let mut group = c.benchmark_group("ew_permute");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for &n in &[100_000usize, 1_000_000] {
        let (data, _) = make_input(n);
        let index: Vec<usize> = (0..n).map(|i| (i * 7919 + 13) % n).collect();
        // Fall back to a rotation when the affine map is not a bijection
        // for this n.
        let index = if scan_model::permute::validate_permutation(&index, n).is_ok() {
            index
        } else {
            (0..n).map(|i| (i + 1) % n).collect()
        };
        group.throughput(Throughput::Elements(n as u64));
        for (label, backend) in [("seq", Backend::Sequential), ("par", Backend::Parallel)] {
            let m = Machine::new(backend);
            group.bench_with_input(
                BenchmarkId::new(format!("ew_add/{label}"), n),
                &n,
                |b, _| b.iter(|| black_box(m.zip_map(black_box(&data), &data, |x, y| x + y))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("permute/{label}"), n),
                &n,
                |b, _| b.iter(|| black_box(m.permute(black_box(&data), &index))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_scans, bench_elementwise_and_permute);
criterion_main!(benches);
