//! E12: the PM₁ close-vertices pathology of paper Fig. 2 — the cost of
//! inserting a second segment whose vertex is close to an existing one,
//! as a function of world resolution (the vertex separation shrinks
//! relative to the world, deepening the forced cascade), versus the
//! bucket PMR quadtree which is immune by design.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::pm1::build_pm1;
use dp_workloads::pathological_close_vertices;
use scan_model::Machine;
use std::hint::black_box;

fn bench_pathology(c: &mut Criterion) {
    let machine = Machine::parallel();
    let mut group = c.benchmark_group("pm1_pathology");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for &size in &[64u32, 256, 1024, 4096] {
        let data = pathological_close_vertices(size);
        let depth = (size as f64).log2() as usize + 1;
        group.bench_with_input(BenchmarkId::new("pm1", size), &size, |b, _| {
            b.iter(|| black_box(build_pm1(&machine, data.world, &data.segs, depth)))
        });
        group.bench_with_input(BenchmarkId::new("bucket_pmr_b2", size), &size, |b, _| {
            b.iter(|| black_box(build_bucket_pmr(&machine, data.world, &data.segs, 2, depth)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pathology);
criterion_main!(benches);
