//! E04–E07: the spatial primitives of the paper's Section 4 — cloning,
//! unshuffling, duplicate deletion and the node capacity check — across
//! sizes and backends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use scan_model::{Backend, Machine, Segments};
use std::hint::black_box;

fn make_segmented(n: usize) -> Segments {
    let mut lengths = Vec::new();
    let mut covered = 0usize;
    let mut state = 0xA5A5_A5A5_DEAD_BEEFu64;
    while covered < n {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let l = ((state >> 40) % 31 + 1) as usize;
        let l = l.min(n - covered);
        lengths.push(l);
        covered += l;
    }
    Segments::from_lengths(&lengths).unwrap()
}

fn flags(n: usize, modulo: u64) -> Vec<bool> {
    (0..n as u64)
        .map(|i| i.wrapping_mul(0x9E3779B9) % modulo == 0)
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("spatial_primitives");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for &n in &[10_000usize, 100_000, 500_000] {
        let seg = make_segmented(n);
        let data: Vec<u64> = (0..n as u64).collect();
        let clone_flags = flags(n, 5);
        let class = flags(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        for (label, backend) in [("seq", Backend::Sequential), ("par", Backend::Parallel)] {
            let m = Machine::new(backend);
            group.bench_with_input(BenchmarkId::new(format!("clone/{label}"), n), &n, |b, _| {
                b.iter(|| {
                    let layout = m.clone_layout(&seg, black_box(&clone_flags));
                    black_box(m.apply_clone(&data, &layout))
                })
            });
            group.bench_with_input(
                BenchmarkId::new(format!("unshuffle/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let layout = m.unshuffle_layout(&seg, black_box(&class));
                        black_box(m.apply_unshuffle(&data, &layout))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("dup_delete/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        let layout = m.delete_layout(&seg, black_box(&clone_flags));
                        black_box(m.apply_delete(&data, &layout))
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("capacity_check/{label}"), n),
                &n,
                |b, _| b.iter(|| black_box(m.segment_counts(black_box(&seg)))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("segmented_sort/{label}"), n),
                &n,
                |b, _| {
                    b.iter(|| {
                        black_box(m.segmented_sort_perm(&seg, black_box(&data), |a, b| {
                            (a.wrapping_mul(0x9E3779B9)).cmp(&b.wrapping_mul(0x9E3779B9))
                        }))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
