//! E28: the batch (data-parallel, lockstep) window-query engine against
//! the one-query-at-a-time traversal — the object-space parallelization
//! of query processing built on the paper's cloning/deletion primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dp_bench::{query_windows, roads_approx, WORLD};
use dp_spatial::batch::batch_window_query;
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_workloads::square_world;
use scan_model::Machine;
use std::hint::black_box;

fn bench_batch(c: &mut Criterion) {
    let machine = Machine::parallel();
    let world = square_world(WORLD);
    let data = roads_approx(4_000);
    let tree = build_bucket_pmr(&machine, world, &data.segs, 8, 12);

    let mut group = c.benchmark_group("batch_queries");
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.sample_size(20);
    for &q in &[16usize, 64, 256] {
        let queries = query_windows(q, 0.02, 23);
        group.bench_with_input(BenchmarkId::new("batch", q), &q, |b, _| {
            b.iter(|| black_box(batch_window_query(&machine, &tree, &queries, &data.segs)))
        });
        group.bench_with_input(BenchmarkId::new("one_at_a_time", q), &q, |b, _| {
            b.iter(|| {
                let out: Vec<Vec<u32>> = queries
                    .iter()
                    .map(|w| tree.window_query(w, &data.segs))
                    .collect();
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
