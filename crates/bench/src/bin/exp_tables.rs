//! Prints the experiment tables of `EXPERIMENTS.md`: for each scaling /
//! ablation experiment (E19–E25 in `DESIGN.md`), the measured rows the
//! paper's complexity claims predict.
//!
//! Run with: `cargo run --release -p dp-bench --bin exp_tables [all|rounds|threshold|rtree|query|backend]`

use dp_bench::{
    planar_at, query_windows, render_table, roads_approx, uniform_at, SIZE_LADDER, WORLD,
};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::pm1::build_pm1;
use dp_spatial::rsplit::RtreeSplitAlgorithm;
use dp_spatial::rtree::{build_rtree, pack_rtree_hilbert};
use dp_spatial::stats::measure_build;
use dp_workloads::square_world;
use scan_model::Machine;
use std::time::Instant;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match which.as_str() {
        "rounds" => rounds_tables(),
        "threshold" => threshold_table(),
        "rtree" => rtree_quality_table(),
        "query" => query_table(),
        "backend" => backend_table(),
        _ => {
            rounds_tables();
            threshold_table();
            rtree_quality_table();
            query_table();
            backend_table();
        }
    }
}

/// E19–E21: subdivision rounds and primitive ops per round versus n.
/// Paper claims: PM1 and bucket PMR builds run O(log n) rounds of O(1)
/// primitive ops; the R-tree build runs O(log n) rounds of O(log n) work
/// (two sorts per round).
fn rounds_tables() {
    let machine = Machine::parallel();
    let world = square_world(WORLD);
    let depth = 12usize;

    let mut rows_pm1 = Vec::new();
    let mut rows_bpmr = Vec::new();
    let mut rows_rt = Vec::new();
    for &n in &SIZE_LADDER {
        // PM1 needs a strictly planar polygonal map (edges meeting only
        // at shared vertices); the polygon-rings generator guarantees it
        // and keeps density constant by growing the world with n, so the
        // subdivision depth tracks log n.
        let planar = planar_at(n);
        let pm1_depth = (planar.world.width() as u64).ilog2() as usize;
        let (t, rep) = measure_build(&machine, || {
            build_pm1(&machine, planar.world, &planar.segs, pm1_depth)
        });
        rows_pm1.push(vec![
            planar.len().to_string(),
            t.rounds().to_string(),
            format!("{:.1}", rep.ops_per_round().unwrap_or(0.0)),
            t.stats().nodes.to_string(),
            t.truncated().to_string(),
            format!("{:.2?}", rep.elapsed),
        ]);
        let data = uniform_at(n);

        let (t, rep) = measure_build(&machine, || {
            build_bucket_pmr(&machine, world, &data.segs, 8, depth)
        });
        rows_bpmr.push(vec![
            n.to_string(),
            t.rounds().to_string(),
            format!("{:.1}", rep.ops_per_round().unwrap_or(0.0)),
            t.stats().nodes.to_string(),
            format!("{:.2?}", rep.elapsed),
        ]);

        let (t, rep) = measure_build(&machine, || {
            build_rtree(&machine, &data.segs, 2, 8, RtreeSplitAlgorithm::Sweep)
        });
        let sorts_per_round = if t.rounds() > 0 {
            rep.ops.sorts as f64 / t.rounds() as f64
        } else {
            0.0
        };
        rows_rt.push(vec![
            n.to_string(),
            t.rounds().to_string(),
            format!("{:.1}", sorts_per_round),
            t.stats().nodes.to_string(),
            format!("{:.2?}", rep.elapsed),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E19: PM1 build over planar polygon map — O(log n) rounds, O(1) ops/round (paper Sec. 5.1)",
            &["n", "rounds", "ops/round", "nodes", "trunc", "wall"],
            &rows_pm1
        )
    );
    print!(
        "{}",
        render_table(
            "E20: bucket PMR build (b=8) — O(log n) rounds (paper Sec. 5.2)",
            &["n", "rounds", "ops/round", "nodes", "wall"],
            &rows_bpmr
        )
    );
    print!(
        "{}",
        render_table(
            "E21: R-tree build (2,8) sweep — O(log n) rounds x O(log n) sort work (paper Sec. 5.3)",
            &["n", "rounds", "sorts/round", "nodes", "wall"],
            &rows_rt
        )
    );
}

/// E22: the splitting-threshold sweep. Paper Sec. 2.2: "as the splitting
/// threshold is increased, the construction times and storage
/// requirements decrease while the time necessary to perform operations
/// increases"; plus the occupancy bound `<= threshold + depth`.
fn threshold_table() {
    let machine = Machine::parallel();
    let world = square_world(WORLD);
    let data = roads_approx(4_000);
    let queries = query_windows(400, 0.02, 5);
    let mut rows = Vec::new();
    for &cap in &[2usize, 4, 8, 16, 32, 64, 128, 256] {
        let (t, rep) = measure_build(&machine, || {
            build_bucket_pmr(&machine, world, &data.segs, cap, 12)
        });
        let s = t.stats();
        let start = Instant::now();
        let mut hits = 0usize;
        for q in &queries {
            hits += t.window_query(q, &data.segs).len();
        }
        let per_query = start.elapsed().as_micros() as f64 / queries.len() as f64;
        // Occupancy bound: threshold + depth (paper Sec. 2.2), checking
        // leaves above max resolution.
        let mut bound_ok = true;
        t.for_each_leaf(|_, depth, ids| {
            if depth < 12 && ids.len() > cap + depth {
                bound_ok = false;
            }
        });
        rows.push(vec![
            cap.to_string(),
            format!("{:.2?}", rep.elapsed),
            s.nodes.to_string(),
            s.entries.to_string(),
            s.max_leaf_occupancy.to_string(),
            format!("{per_query:.1}"),
            hits.to_string(),
            bound_ok.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E22: splitting-threshold sweep, bucket PMR over road map n=4000 (paper Sec. 2.2)",
            &[
                "threshold",
                "build",
                "nodes",
                "q-edges",
                "max occ",
                "query(us)",
                "hits",
                "occ<=t+d"
            ],
            &rows
        )
    );
}

/// E23: the two R-tree split selectors of Sec. 4.7 — the O(1) mean split
/// builds faster; the O(log n) sweep split yields less sibling overlap
/// and fewer nodes visited per query.
fn rtree_quality_table() {
    let machine = Machine::parallel();
    let data = roads_approx(4_000);
    let queries = query_windows(400, 0.02, 9);
    let mut rows = Vec::new();
    for (label, algo) in [
        ("mean  O(1)", RtreeSplitAlgorithm::Mean),
        ("sweep O(log n)", RtreeSplitAlgorithm::Sweep),
    ] {
        let (t, rep) = measure_build(&machine, || build_rtree(&machine, &data.segs, 2, 8, algo));
        let (cov, ov) = t.quality_metrics();
        let visited: usize = queries.iter().map(|q| t.window_nodes_visited(q)).sum();
        rows.push(vec![
            label.to_string(),
            format!("{:.2?}", rep.elapsed),
            rep.ops.sorts.to_string(),
            t.stats().nodes.to_string(),
            format!("{cov:.3e}"),
            format!("{ov:.3e}"),
            format!("{:.1}", visited as f64 / queries.len() as f64),
        ]);
    }
    // Hilbert-packed bulk load as the one-round comparator ([Kame92]).
    {
        let world = square_world(WORLD);
        let (t, rep) = measure_build(&machine, || {
            pack_rtree_hilbert(&machine, &data.segs, world, 8)
        });
        let (cov, ov) = t.quality_metrics();
        let visited: usize = queries.iter().map(|q| t.window_nodes_visited(q)).sum();
        rows.push(vec![
            "hilbert pack".to_string(),
            format!("{:.2?}", rep.elapsed),
            rep.ops.sorts.to_string(),
            t.stats().nodes.to_string(),
            format!("{cov:.3e}"),
            format!("{ov:.3e}"),
            format!("{:.1}", visited as f64 / queries.len() as f64),
        ]);
    }
    print!(
        "{}",
        render_table(
            "E23: R-tree split selector ablation, order (2,8), road map n=4000 (paper Sec. 4.7)",
            &[
                "selector",
                "build",
                "sorts",
                "nodes",
                "coverage",
                "overlap",
                "visited/query"
            ],
            &rows
        )
    );
}

/// E25: disjoint (quadtree) versus non-disjoint (R-tree) decompositions
/// under window queries — candidates fetched and exactness.
fn query_table() {
    let machine = Machine::parallel();
    let world = square_world(WORLD);
    let data = roads_approx(4_000);
    let queries = query_windows(400, 0.02, 13);
    let brute: usize = queries
        .iter()
        .map(|q| {
            data.segs
                .iter()
                .filter(|s| dp_geom::clip_segment_closed(s, q).is_some())
                .count()
        })
        .sum();

    let bpmr = build_bucket_pmr(&machine, world, &data.segs, 8, 12);
    let rt = build_rtree(&machine, &data.segs, 2, 8, RtreeSplitAlgorithm::Sweep);

    let mut rows = Vec::new();
    {
        let mut cands = 0usize;
        let mut exact = 0usize;
        let start = Instant::now();
        for q in &queries {
            cands += bpmr.window_candidates(q).len();
            exact += bpmr.window_query(q, &data.segs).len();
        }
        let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
        rows.push(vec![
            "bucket PMR (disjoint)".into(),
            cands.to_string(),
            exact.to_string(),
            format!("{:.3}", exact as f64 / cands.max(1) as f64),
            format!("{us:.1}"),
        ]);
    }
    {
        let mut cands = 0usize;
        let mut exact = 0usize;
        let start = Instant::now();
        for q in &queries {
            cands += rt.window_candidates(q).len();
            exact += rt.window_query(q, &data.segs).len();
        }
        let us = start.elapsed().as_micros() as f64 / queries.len() as f64;
        rows.push(vec![
            "R-tree (overlapping)".into(),
            cands.to_string(),
            exact.to_string(),
            format!("{:.3}", exact as f64 / cands.max(1) as f64),
            format!("{us:.1}"),
        ]);
    }
    assert_eq!(
        brute,
        rows[0][2].parse::<usize>().unwrap(),
        "quadtree must be exact"
    );
    print!(
        "{}",
        render_table(
            "E25: disjoint vs non-disjoint decomposition under 400 window queries (paper Sec. 1)",
            &[
                "structure",
                "candidates",
                "exact hits",
                "precision",
                "query(us)"
            ],
            &rows
        )
    );
}

/// Backend comparison: the same builds on the sequential reference
/// backend and the rayon backend (identical results; wall time depends on
/// the host's core count).
fn backend_table() {
    let world = square_world(WORLD);
    let data = uniform_at(8_000);
    let mut rows = Vec::new();
    for (label, machine) in [
        ("sequential", Machine::sequential()),
        ("rayon", Machine::parallel()),
    ] {
        let (t, rep) = measure_build(&machine, || {
            build_bucket_pmr(&machine, world, &data.segs, 8, 12)
        });
        let (r, rep_rt) = measure_build(&machine, || {
            build_rtree(&machine, &data.segs, 2, 8, RtreeSplitAlgorithm::Sweep)
        });
        rows.push(vec![
            label.to_string(),
            format!("{:.2?}", rep.elapsed),
            t.stats().nodes.to_string(),
            format!("{:.2?}", rep_rt.elapsed),
            r.stats().nodes.to_string(),
        ]);
    }
    print!(
        "{}",
        render_table(
            &format!(
                "E24: backend equivalence at n=8000 ({} rayon threads)",
                rayon::current_num_threads()
            ),
            &[
                "backend",
                "bpmr build",
                "bpmr nodes",
                "rtree build",
                "rtree nodes"
            ],
            &rows
        )
    );
}
