//! Machine-readable benchmark of the fused-kernel scan-model engine.
//!
//! Writes `BENCH_scanmodel.json` in the current directory: build
//! throughput for the fused + arena PM₁ path versus the unfused
//! allocating baseline, bucket-PMR build throughput with arena reuse,
//! sharded-service request throughput, and the machine's operation
//! counters (scan passes, fused lanes saved, allocations avoided) for
//! each build. CI runs `--quick` as a smoke check; the full run uses
//! the n ≥ 100k sizes the acceptance criterion names.
//!
//! Run with: `cargo run --release -p dp-bench --bin bench_scanmodel [-- --quick]`

use dp_bench::{planar_at, uniform_at, WORLD};
use dp_service::{QueryService, QueryServiceConfig};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::pm1::{build_pm1, build_pm1_unfused};
use dp_workloads::{request_stream, square_world, RequestMix};
use scan_model::{Backend, Machine, StatsSnapshot};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn ops_json(ops: &StatsSnapshot) -> String {
    format!(
        "{{\"scans\": {}, \"scan_passes\": {}, \"fused_lanes_saved\": {}, \"allocs_avoided\": {}, \"rounds\": {}}}",
        ops.scans, ops.scan_passes, ops.fused_lanes_saved, ops.allocs_avoided, ops.rounds
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, reps): (&[usize], usize) = if quick {
        (&[20_000], 1)
    } else {
        (&[100_000, 200_000], 5)
    };

    let machine = Machine::parallel();
    let mut entries: Vec<String> = Vec::new();

    // PM₁: fused seven-lane decision + arena vs unfused composed scans.
    for &n in sizes {
        let data = planar_at(n);
        let depth = (data.world.width() as u64).ilog2() as usize;
        let n_real = data.len();

        // Op counters from exactly one build (timing reps would multiply
        // them).
        machine.reset_stats();
        std::hint::black_box(build_pm1(&machine, data.world, &data.segs, depth));
        let fused_ops = machine.stats();
        machine.reset_stats();
        std::hint::black_box(build_pm1_unfused(&machine, data.world, &data.segs, depth));
        let unfused_ops = machine.stats();

        // Interleave the timing reps so machine-load drift hits both
        // variants alike; keep each variant's best.
        let (mut fused_s, mut unfused_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            fused_s =
                fused_s.min(time_best(1, || build_pm1(&machine, data.world, &data.segs, depth)));
            unfused_s = unfused_s.min(time_best(1, || {
                build_pm1_unfused(&machine, data.world, &data.segs, depth)
            }));
        }

        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"pm1_build\", \"backend\": \"parallel\", \"n\": {n_real}, \
             \"fused_secs\": {fused_s:.6}, \"unfused_secs\": {unfused_s:.6}, \
             \"speedup\": {:.4}, \"fused_elems_per_sec\": {:.1}, \
             \"fused_ops\": {}, \"unfused_ops\": {}}}",
            unfused_s / fused_s,
            n_real as f64 / fused_s,
            ops_json(&fused_ops),
            ops_json(&unfused_ops),
        );
        entries.push(e);
        println!(
            "pm1 n={n_real}: fused {fused_s:.4}s vs unfused {unfused_s:.4}s (speedup {:.2}x, \
             passes {} vs {})",
            unfused_s / fused_s,
            fused_ops.scan_passes,
            unfused_ops.scan_passes
        );
    }

    // Bucket PMR: arena-backed build throughput per backend.
    for &n in sizes {
        let data = uniform_at(n);
        let world = square_world(WORLD);
        for (name, m) in [
            ("parallel", Machine::parallel()),
            ("sequential", Machine::sequential()),
        ] {
            m.reset_stats();
            std::hint::black_box(build_bucket_pmr(&m, world, &data.segs, 8, 12));
            let ops = m.stats();
            let secs = time_best(reps, || build_bucket_pmr(&m, world, &data.segs, 8, 12));
            let (takes, hits) = m.arena_stats();
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"bucket_pmr_build\", \"backend\": \"{name}\", \"n\": {n}, \
                 \"secs\": {secs:.6}, \"elems_per_sec\": {:.1}, \
                 \"arena_takes\": {takes}, \"arena_hits\": {hits}, \"ops\": {}}}",
                n as f64 / secs,
                ops_json(&ops),
            );
            entries.push(e);
            println!("bucket_pmr n={n} {name}: {secs:.4}s (arena hits {hits}/{takes})");
        }
    }

    // Sharded service: end-to-end request throughput on the pool-backed
    // parallel backend.
    {
        let (n, requests) = if quick { (10_000, 2_000) } else { (20_000, 10_000) };
        let data = dp_workloads::uniform_segments(n, 1024, 16, 77);
        let stream = request_stream(data.world, requests, RequestMix::DEFAULT, 78);
        let service = QueryService::build(
            QueryServiceConfig {
                shard_grid: 2,
                backend: Backend::Parallel,
                ..QueryServiceConfig::default()
            },
            data.world,
            data.segs.clone(),
        );
        let secs = time_best(reps, || service.execute_batch(&stream).len());
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"service_batch\", \"backend\": \"parallel\", \"shards\": {}, \
             \"n\": {n}, \"requests\": {requests}, \"secs\": {secs:.6}, \
             \"requests_per_sec\": {:.1}}}",
            service.num_shards(),
            requests as f64 / secs,
        );
        entries.push(e);
        println!(
            "service: {requests} requests in {secs:.4}s ({:.0} req/s)",
            requests as f64 / secs
        );
    }

    let json = format!(
        "{{\n  \"suite\": \"scanmodel_fused_kernels\",\n  \"mode\": \"{}\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        entries.join(",\n    ")
    );
    std::fs::write("BENCH_scanmodel.json", &json).expect("write BENCH_scanmodel.json");
    println!("wrote BENCH_scanmodel.json ({} entries)", entries.len());
}
