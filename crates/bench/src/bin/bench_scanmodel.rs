//! Machine-readable benchmark of the fused-kernel scan-model engine.
//!
//! Writes `BENCH_scanmodel.json` in the current directory: build
//! throughput for the fused + arena PM₁ path versus the unfused
//! allocating baseline, bucket-PMR build throughput with arena reuse,
//! sharded-service request throughput, and the machine's operation
//! counters (scan passes, fused lanes saved, allocations avoided) for
//! each build. CI runs `--quick` as a smoke check; the full run uses
//! the n ≥ 100k sizes the acceptance criterion names.
//!
//! Flags:
//!
//! * `--quick` — small sizes, one rep (the CI smoke configuration);
//! * `--trace` — attach the round driver's per-round table
//!   (`RoundTrace`) to each build entry in the JSON;
//! * `--join` — add the data-parallel frontier spatial join over two
//!   layers, per backend, with its per-round table always attached;
//! * `--updates` — add the batch update engine: a 1% insert/delete batch
//!   applied to a prebuilt bucket PMR tree versus a full rebuild of the
//!   final collection, per backend, plus one end-to-end service epoch
//!   compaction;
//! * `--check-baseline <path>` — read the committed benchmark JSON
//!   *before* writing anything and exit non-zero if the fused PM₁
//!   per-round physical scan-pass cost regressed against it.
//!
//! Run with: `cargo run --release -p dp-bench --bin bench_scanmodel
//! [-- --quick --trace --join --updates --check-baseline BENCH_scanmodel.json]`

use dp_bench::{planar_at, uniform_at, WORLD};
use dp_service::{QueryService, QueryServiceConfig};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::join::{frontier_join, spatial_join};
use dp_spatial::pm1::{build_pm1, build_pm1_unfused};
use dp_spatial::update::{batch_update_bucket_pmr, UpdateBatch};
use dp_workloads::{request_stream, square_world, Request, RequestMix};
use scan_model::{Backend, Machine, RoundTrace, StatsSnapshot};
use std::fmt::Write as _;
use std::time::Instant;

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn ops_json(ops: &StatsSnapshot) -> String {
    format!(
        "{{\"scans\": {}, \"scan_passes\": {}, \"fused_lanes_saved\": {}, \"allocs_avoided\": {}, \"rounds\": {}}}",
        ops.scans, ops.scan_passes, ops.fused_lanes_saved, ops.allocs_avoided, ops.rounds
    )
}

/// The round table as a JSON array (attached under `"round_trace"` when
/// `--trace` is given).
fn trace_json(trace: &[RoundTrace]) -> String {
    let rows: Vec<String> = trace
        .iter()
        .map(|t| {
            format!(
                "{{\"round\": {}, \"active_elements\": {}, \"active_nodes\": {}, \
                 \"nodes_split\": {}, \"scans\": {}, \"scan_passes\": {}, \
                 \"elementwise\": {}, \"permutes\": {}, \"arena_high_water_bytes\": {}, \
                 \"wall_nanos\": {}}}",
                t.round,
                t.active_elements,
                t.active_nodes,
                t.nodes_split,
                t.scans,
                t.scan_passes,
                t.elementwise,
                t.permutes,
                t.arena_high_water_bytes,
                t.wall_nanos
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// Extracts `(scan_passes, rounds)` of the first PM₁ `fused_ops` object in
/// a committed `BENCH_scanmodel.json` (hand-rolled like the writer — the
/// workspace deliberately carries no JSON dependency).
fn baseline_pm1_profile(path: &str) -> (u64, u64) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let at = text
        .find("\"fused_ops\"")
        .expect("baseline has no pm1 fused_ops entry");
    let start = text[at..].find('{').expect("fused_ops object opens") + at;
    let end = text[start..].find('}').expect("fused_ops object closes") + start;
    let obj = &text[start..end];
    let grab = |key: &str| -> u64 {
        let marker = format!("\"{key}\": ");
        let p = obj
            .find(&marker)
            .unwrap_or_else(|| panic!("baseline fused_ops lacks {key}"))
            + marker.len();
        obj[p..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .expect("numeric baseline field")
    };
    (grab("scan_passes"), grab("rounds"))
}

/// Fails (exit 1) if the fused PM₁ build's physical scan passes *per
/// split round* regressed versus the committed baseline. The total pass
/// count is `passes = per_round * rounds + 1` (one trailing decision-only
/// pass), and `rounds` depends on n, so the comparison normalizes:
/// regress iff `(cur_passes - 1) / cur_rounds > (base_passes - 1) /
/// base_rounds`, evaluated by integer cross-multiplication.
fn check_baseline(path: &str, cur: &StatsSnapshot) {
    let (base_passes, base_rounds) = baseline_pm1_profile(path);
    if cur.rounds == 0 || base_rounds == 0 {
        println!("baseline check skipped (zero rounds)");
        return;
    }
    let lhs = (cur.scan_passes - 1) * base_rounds;
    let rhs = (base_passes - 1) * cur.rounds;
    if lhs > rhs {
        eprintln!(
            "scan-pass regression vs {path}: {} passes / {} rounds now, \
             {base_passes} passes / {base_rounds} rounds at baseline",
            cur.scan_passes, cur.rounds
        );
        std::process::exit(1);
    }
    println!(
        "baseline check OK: {} passes / {} rounds (baseline {base_passes} / {base_rounds})",
        cur.scan_passes, cur.rounds
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = args.iter().any(|a| a == "--trace");
    let join = args.iter().any(|a| a == "--join");
    let updates = args.iter().any(|a| a == "--updates");
    let baseline: Option<String> = args.iter().position(|a| a == "--check-baseline").map(|i| {
        args.get(i + 1)
            .expect("--check-baseline needs a path")
            .clone()
    });
    let (sizes, reps): (&[usize], usize) = if quick {
        (&[20_000], 1)
    } else {
        (&[100_000, 200_000], 5)
    };

    let machine = Machine::parallel();
    let mut entries: Vec<String> = Vec::new();

    // PM₁: fused seven-lane decision + arena vs unfused composed scans.
    for &n in sizes {
        let data = planar_at(n);
        let depth = (data.world.width() as u64).ilog2() as usize;
        let n_real = data.len();

        // Op counters from exactly one build (timing reps would multiply
        // them).
        machine.reset_stats();
        std::hint::black_box(build_pm1(&machine, data.world, &data.segs, depth));
        let fused_ops = machine.stats();
        let fused_trace = machine.take_round_traces();
        machine.reset_stats();
        std::hint::black_box(build_pm1_unfused(&machine, data.world, &data.segs, depth));
        let unfused_ops = machine.stats();

        if let Some(path) = &baseline {
            check_baseline(path, &fused_ops);
        }

        // Interleave the timing reps so machine-load drift hits both
        // variants alike; keep each variant's best.
        let (mut fused_s, mut unfused_s) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            fused_s = fused_s.min(time_best(1, || {
                build_pm1(&machine, data.world, &data.segs, depth)
            }));
            unfused_s = unfused_s.min(time_best(1, || {
                build_pm1_unfused(&machine, data.world, &data.segs, depth)
            }));
        }

        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"pm1_build\", \"backend\": \"parallel\", \"n\": {n_real}, \
             \"fused_secs\": {fused_s:.6}, \"unfused_secs\": {unfused_s:.6}, \
             \"speedup\": {:.4}, \"fused_elems_per_sec\": {:.1}, \
             \"fused_ops\": {}, \"unfused_ops\": {}",
            unfused_s / fused_s,
            n_real as f64 / fused_s,
            ops_json(&fused_ops),
            ops_json(&unfused_ops),
        );
        if trace {
            let _ = write!(e, ", \"round_trace\": {}", trace_json(&fused_trace));
        }
        e.push('}');
        entries.push(e);
        println!(
            "pm1 n={n_real}: fused {fused_s:.4}s vs unfused {unfused_s:.4}s (speedup {:.2}x, \
             passes {} vs {})",
            unfused_s / fused_s,
            fused_ops.scan_passes,
            unfused_ops.scan_passes
        );
    }

    // Bucket PMR: arena-backed build throughput per backend.
    for &n in sizes {
        let data = uniform_at(n);
        let world = square_world(WORLD);
        for (name, m) in [
            ("parallel", Machine::parallel()),
            ("sequential", Machine::sequential()),
        ] {
            m.reset_stats();
            std::hint::black_box(build_bucket_pmr(&m, world, &data.segs, 8, 12));
            let ops = m.stats();
            let build_trace = m.take_round_traces();
            let secs = time_best(reps, || build_bucket_pmr(&m, world, &data.segs, 8, 12));
            let (takes, hits) = m.arena_stats();
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"bucket_pmr_build\", \"backend\": \"{name}\", \"n\": {n}, \
                 \"secs\": {secs:.6}, \"elems_per_sec\": {:.1}, \
                 \"arena_takes\": {takes}, \"arena_hits\": {hits}, \"ops\": {}",
                n as f64 / secs,
                ops_json(&ops),
            );
            if trace {
                let _ = write!(e, ", \"round_trace\": {}", trace_json(&build_trace));
            }
            e.push('}');
            entries.push(e);
            println!("bucket_pmr n={n} {name}: {secs:.4}s (arena hits {hits}/{takes})");
        }
    }

    // Sharded service: end-to-end request throughput on the pool-backed
    // parallel backend.
    {
        let (n, requests) = if quick {
            (10_000, 2_000)
        } else {
            (20_000, 10_000)
        };
        let data = dp_workloads::uniform_segments(n, 1024, 16, 77);
        let stream = request_stream(data.world, requests, RequestMix::DEFAULT, 78);
        let service = QueryService::build(
            QueryServiceConfig {
                shard_grid: 2,
                backend: Backend::Parallel,
                ..QueryServiceConfig::default()
            },
            data.world,
            data.segs.clone(),
        );
        let secs = time_best(reps, || service.execute_batch(&stream).len());
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"service_batch\", \"backend\": \"parallel\", \"shards\": {}, \
             \"n\": {n}, \"requests\": {requests}, \"secs\": {secs:.6}, \
             \"requests_per_sec\": {:.1}}}",
            service.num_shards(),
            requests as f64 / secs,
        );
        entries.push(e);
        println!(
            "service: {requests} requests in {secs:.4}s ({:.0} req/s)",
            requests as f64 / secs
        );
    }

    // Batch updates: a 1% insert/delete batch through the data-parallel
    // update engine versus a full rebuild of the final collection — the
    // economic case for epoch compaction (`--updates`).
    if updates {
        let n = if quick { 20_000 } else { 200_000 };
        let data = uniform_at(n);
        let world = square_world(WORLD);
        let k = (n / 100).max(2);
        let fresh = uniform_at(k / 2 + 7).segs;
        let batch = UpdateBatch {
            inserts: fresh[..k / 2].to_vec(),
            // Deletes spread across the id space, clear of the inserts.
            deletes: (0..k / 2).map(|i| (i * (n / (k / 2))) as u32).collect(),
        };
        for (name, m) in [
            ("parallel", Machine::parallel()),
            ("sequential", Machine::sequential()),
        ] {
            let base_tree = build_bucket_pmr(&m, world, &data.segs, 8, 12);
            // Final collection, for the rebuild leg: same remap the
            // update applies (sorted deletes out, inserts appended).
            let mut final_segs = data.segs.clone();
            for &d in batch.deletes.iter().rev() {
                final_segs.remove(d as usize);
            }
            final_segs.extend(batch.inserts.iter().copied());

            m.reset_stats();
            m.take_round_traces();
            {
                let mut tree = base_tree.clone();
                let mut segs = data.segs.clone();
                std::hint::black_box(batch_update_bucket_pmr(
                    &m, &mut tree, &mut segs, &batch, 8, 12,
                ));
            }
            let ops = m.stats();
            m.take_round_traces();
            // Clone outside the timed region: the contender is the
            // update pass itself, applied to a live tree.
            let mut update_s = f64::INFINITY;
            for _ in 0..reps {
                let mut tree = base_tree.clone();
                let mut segs = data.segs.clone();
                let t = Instant::now();
                std::hint::black_box(batch_update_bucket_pmr(
                    &m, &mut tree, &mut segs, &batch, 8, 12,
                ));
                update_s = update_s.min(t.elapsed().as_secs_f64());
            }
            let rebuild_s = time_best(reps, || build_bucket_pmr(&m, world, &final_segs, 8, 12));
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"batch_update\", \"backend\": \"{name}\", \"n\": {n}, \"batch\": {k}, \"update_secs\": {update_s:.6}, \"rebuild_secs\": {rebuild_s:.6}, \"speedup\": {:.4}, \"ops\": {}}}",
                rebuild_s / update_s,
                ops_json(&ops),
            );
            entries.push(e);
            println!(
                "batch_update n={n} batch={k} {name}: update {update_s:.4}s vs rebuild {rebuild_s:.4}s (speedup {:.2}x)",
                rebuild_s / update_s
            );
        }

        // One end-to-end epoch compaction: the service absorbs the same
        // write pressure through its overlay ladder, then merges it into
        // a fresh epoch across every shard.
        {
            let service = QueryService::build(
                QueryServiceConfig {
                    shard_grid: 2,
                    backend: Backend::Parallel,
                    compact_threshold: usize::MAX >> 1,
                    ..QueryServiceConfig::default()
                },
                world,
                data.segs.clone(),
            );
            let writes: Vec<Request> = batch
                .inserts
                .iter()
                .map(|&s| Request::Insert(s))
                .chain(batch.deletes.iter().rev().map(|&d| Request::Delete(d)))
                .collect();
            let t = Instant::now();
            service.execute_batch(&writes);
            let write_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let epoch = service.compact_now().expect("bench compaction");
            let compact_s = t.elapsed().as_secs_f64();
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"service_compaction\", \"backend\": \"parallel\", \"n\": {n}, \"writes\": {}, \"write_secs\": {write_s:.6}, \"compact_secs\": {compact_s:.6}, \"epoch\": {epoch}}}",
                writes.len(),
            );
            entries.push(e);
            println!(
                "service_compaction n={n}: {} writes in {write_s:.4}s, compaction {compact_s:.4}s",
                writes.len()
            );
        }
    }

    // Frontier spatial join: parallel frontier vs recursive oracle over
    // two independently generated layers of the same world, with the
    // join's own round table (`--join`).
    if join {
        let n = if quick { 5_000 } else { 50_000 };
        let base = dp_workloads::uniform_segments(n, 1024, 16, 501);
        let overlay = dp_workloads::uniform_segments(n, 1024, 16, 502);
        let builder = Machine::sequential();
        let ta = build_bucket_pmr(&builder, base.world, &base.segs, 8, 12);
        let tb = build_bucket_pmr(&builder, overlay.world, &overlay.segs, 8, 12);
        let recursive_secs = time_best(reps, || {
            spatial_join(&ta, &base.segs, &tb, &overlay.segs).len()
        });
        for (name, m) in [
            ("parallel", Machine::parallel()),
            ("sequential", Machine::sequential()),
        ] {
            m.reset_stats();
            m.take_round_traces();
            let outcome = frontier_join(&m, &ta, &base.segs, &tb, &overlay.segs)
                .expect("bench layers share one world");
            let ops = m.stats();
            let join_trace = m.take_round_traces();
            let secs = time_best(reps, || {
                frontier_join(&m, &ta, &base.segs, &tb, &overlay.segs)
                    .unwrap()
                    .pairs
                    .len()
            });
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"frontier_join\", \"backend\": \"{name}\", \"n\": {n}, \
                 \"secs\": {secs:.6}, \"recursive_secs\": {recursive_secs:.6}, \
                 \"speedup_vs_recursive\": {:.4}, \"pairs\": {}, \"rounds\": {}, \
                 \"frontier_peak\": {}, \"pairs_tested\": {}, \"ops\": {}, \
                 \"round_trace\": {}}}",
                recursive_secs / secs,
                outcome.pairs.len(),
                outcome.rounds,
                outcome.frontier_peak,
                outcome.pairs_tested,
                ops_json(&ops),
                trace_json(&join_trace),
            );
            entries.push(e);
            println!(
                "join n={n} {name}: {secs:.4}s vs recursive {recursive_secs:.4}s \
                 ({} pairs, {} rounds, peak frontier {})",
                outcome.pairs.len(),
                outcome.rounds,
                outcome.frontier_peak
            );
        }
    }

    let json = format!(
        "{{\n  \"suite\": \"scanmodel_fused_kernels\",\n  \"mode\": \"{}\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        entries.join(",\n    ")
    );
    std::fs::write("BENCH_scanmodel.json", &json).expect("write BENCH_scanmodel.json");
    println!("wrote BENCH_scanmodel.json ({} entries)", entries.len());
}
