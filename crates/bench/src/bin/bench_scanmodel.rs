//! Machine-readable benchmark of the fused-kernel scan-model engine.
//!
//! Writes `BENCH_scanmodel.json` in the current directory: build
//! throughput for the fused + arena PM₁ path versus the unfused
//! allocating baseline, bucket-PMR build throughput with arena reuse,
//! sharded-service request throughput, and the machine's operation
//! counters (scan passes, fused lanes saved, blocked passes, bytes
//! moved, in-place reuses) for each build. CI runs `--quick` as a smoke
//! check; the full run uses the n ≥ 100k sizes the acceptance criterion
//! names.
//!
//! Every benchmark with a sequential counterpart runs both backends and
//! stamps the parallel row with `par_over_seq` — the parallel backend's
//! throughput advantage. The blocked kernels exist to keep that ratio
//! at or above 1.0 on every row.
//!
//! Flags:
//!
//! * `--quick` — small sizes, one rep (the CI smoke configuration);
//! * `--trace` — attach the round driver's per-round table
//!   (`RoundTrace`) to each build entry in the JSON;
//! * `--join` — add the data-parallel frontier spatial join over two
//!   layers, per backend, with its per-round table always attached;
//! * `--updates` — add the batch update engine: a 1% insert/delete batch
//!   applied to a prebuilt bucket PMR tree versus a full rebuild of the
//!   final collection, per backend, plus one end-to-end service epoch
//!   compaction;
//! * `--dominance` — add the skyline + dominance-aggregation pipelines
//!   (sort + segmented max-scan on the generalized flat-map kernel)
//!   over the segments' midpoints, per backend;
//! * `--check-baseline <path>` — read the committed benchmark JSON
//!   *before* writing anything and exit non-zero if (a) the fused PM₁
//!   per-round physical scan-pass cost regressed, (b) any committed row
//!   shows the parallel backend losing to the sequential one, (c) the
//!   committed parallel frontier join at n ≥ 50k does not beat the
//!   recursive oracle, (d) the committed blocked bucket-PMR arena
//!   peak at n = 200k exceeds half the pre-blocking footprint, or (e)
//!   the committed pipelined-serving row falls below 5× the
//!   pre-admission closed-loop baseline or below the same-run
//!   pipelined/closed floor, or (f) the committed snapshot warm-restart
//!   row at n = 200k restores less than 10× faster than the cold build
//!   it replaces. After the run, the freshly measured
//!   parallel/sequential ratios must also clear a 0.90 noise floor.
//!
//! Run with: `cargo run --release -p dp-bench --bin bench_scanmodel
//! [-- --quick --trace --join --updates --dominance
//! --check-baseline BENCH_scanmodel.json]`

use dp_bench::{planar_at, uniform_at, WORLD};
use dp_service::{AdmissionPolicy, QueryService, QueryServiceConfig, ServicePipeline};
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::dominance::{dominance_agg, dominance_weight, skyline, DomPoint};
use dp_spatial::join::{frontier_join, spatial_join};
use dp_spatial::pm1::{build_pm1, build_pm1_unfused};
use dp_spatial::update::{batch_update_bucket_pmr, UpdateBatch};
use dp_workloads::{request_stream, skew_hot_windows, square_world, Request, RequestMix};
use scan_model::{Backend, FaultPlan, Machine, RoundTrace, StatsSnapshot};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

/// The arena high-water mark of the blocked bucket-PMR build at
/// n = 200k before the in-place primitives landed (PR 6). The committed
/// baseline must stay at or below half of it.
const PRE_BLOCKING_ARENA_PEAK: u64 = 305_725_952;

/// Freshly measured parallel/sequential ratios may wobble with machine
/// load; they only fail the baseline check below this floor. The
/// committed rows are held to the strict 1.0.
const FRESH_RATIO_FLOOR: f64 = 0.90;

/// The closed-loop service throughput measured before the pipelined
/// admission layer existed (~5.6k req/s on 4 shards with client threads
/// blocking on `execute_batch`). The acceptance bar for the decoupled
/// admission front-end is sustaining at least 5× this figure.
const CLOSED_LOOP_BASELINE_RPS: f64 = 5_600.0;

/// Committed `service_serving` rows must show pipelined serving at
/// least this many times faster than the same run's closed loop on the
/// identical hot stream (the same-run sanity companion of the absolute
/// [`CLOSED_LOOP_BASELINE_RPS`] gate).
const SERVING_MIN_RATIO: f64 = 3.0;

/// Committed `snapshot_restart` rows at n = 200k must show the warm
/// restore path (decode + validate + reattach) at least this many times
/// faster than the cold shard-tree build it replaces — the economic
/// case for carrying the snapshot format at all.
const WARM_RESTART_MIN_RATIO: f64 = 10.0;

/// Best-of-`reps` wall-clock seconds for `f`.
fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn ops_json(ops: &StatsSnapshot) -> String {
    format!(
        "{{\"scans\": {}, \"scan_passes\": {}, \"fused_lanes_saved\": {}, \"allocs_avoided\": {}, \"rounds\": {}, \"blocked_passes\": {}, \"bytes_moved\": {}, \"inplace_reuses\": {}}}",
        ops.scans,
        ops.scan_passes,
        ops.fused_lanes_saved,
        ops.allocs_avoided,
        ops.rounds,
        ops.blocked_passes,
        ops.bytes_moved,
        ops.inplace_reuses
    )
}

/// The round table as a JSON array (attached under `"round_trace"` when
/// `--trace` is given).
fn trace_json(trace: &[RoundTrace]) -> String {
    let rows: Vec<String> = trace
        .iter()
        .map(|t| {
            format!(
                "{{\"round\": {}, \"active_elements\": {}, \"active_nodes\": {}, \
                 \"nodes_split\": {}, \"scans\": {}, \"scan_passes\": {}, \
                 \"elementwise\": {}, \"permutes\": {}, \"arena_high_water_bytes\": {}, \
                 \"wall_nanos\": {}, \"blocked_passes\": {}, \"bytes_moved\": {}, \
                 \"inplace_reuses\": {}, \"block_bytes\": {}}}",
                t.round,
                t.active_elements,
                t.active_nodes,
                t.nodes_split,
                t.scans,
                t.scan_passes,
                t.elementwise,
                t.permutes,
                t.arena_high_water_bytes,
                t.wall_nanos,
                t.blocked_passes,
                t.bytes_moved,
                t.inplace_reuses,
                t.block_bytes
            )
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

/// Reads a numeric field out of one result row of the hand-rolled JSON
/// (the workspace deliberately carries no JSON dependency; the writer
/// puts one result object per line).
fn row_field(row: &str, key: &str) -> Option<f64> {
    let marker = format!("\"{key}\": ");
    let p = row.find(&marker)? + marker.len();
    let rest = &row[p..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn row_str(row: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\": \"");
    let p = row.find(&marker)? + marker.len();
    let rest = &row[p..];
    Some(rest[..rest.find('"')?].to_string())
}

/// Extracts `(scan_passes, rounds)` of the first PM₁ `fused_ops` object in
/// a committed `BENCH_scanmodel.json`.
fn baseline_pm1_profile(text: &str, path: &str) -> (u64, u64) {
    let at = text
        .find("\"fused_ops\"")
        .unwrap_or_else(|| panic!("baseline {path} has no pm1 fused_ops entry"));
    let start = text[at..].find('{').expect("fused_ops object opens") + at;
    let end = text[start..].find('}').expect("fused_ops object closes") + start;
    let obj = &text[start..end];
    let grab = |key: &str| -> u64 {
        row_field(obj, key).unwrap_or_else(|| panic!("baseline fused_ops lacks {key}")) as u64
    };
    (grab("scan_passes"), grab("rounds"))
}

/// Fails (exit 1) if the fused PM₁ build's physical scan passes *per
/// split round* regressed versus the committed baseline. The total pass
/// count is `passes = per_round * rounds + 1` (one trailing decision-only
/// pass), and `rounds` depends on n, so the comparison normalizes:
/// regress iff `(cur_passes - 1) / cur_rounds > (base_passes - 1) /
/// base_rounds`, evaluated by integer cross-multiplication.
fn check_pm1_passes(path: &str, text: &str, cur: &StatsSnapshot) {
    let (base_passes, base_rounds) = baseline_pm1_profile(text, path);
    if cur.rounds == 0 || base_rounds == 0 {
        println!("baseline check skipped (zero rounds)");
        return;
    }
    let lhs = (cur.scan_passes - 1) * base_rounds;
    let rhs = (base_passes - 1) * cur.rounds;
    if lhs > rhs {
        eprintln!(
            "scan-pass regression vs {path}: {} passes / {} rounds now, \
             {base_passes} passes / {base_rounds} rounds at baseline",
            cur.scan_passes, cur.rounds
        );
        std::process::exit(1);
    }
    println!(
        "baseline check OK: {} passes / {} rounds (baseline {base_passes} / {base_rounds})",
        cur.scan_passes, cur.rounds
    );
}

/// One committed result row, keyed for backend pairing.
struct CommittedRow {
    bench: String,
    backend: String,
    n: u64,
    line: String,
}

fn committed_rows(text: &str) -> Vec<CommittedRow> {
    text.lines()
        .filter_map(|l| {
            let bench = row_str(l, "bench")?;
            Some(CommittedRow {
                bench,
                backend: row_str(l, "backend").unwrap_or_default(),
                n: row_field(l, "n").unwrap_or(0.0) as u64,
                line: l.to_string(),
            })
        })
        .collect()
}

/// Hard gates over the *committed* benchmark JSON: the parallel backend
/// must win (ratio ≥ 1.0) on every row that has a sequential
/// counterpart, the parallel frontier join must beat the recursive
/// oracle at n ≥ 50k, and the blocked bucket-PMR arena peak at n = 200k
/// must sit at or below half the pre-blocking footprint. Any violation
/// exits 1.
fn check_committed(path: &str, text: &str) {
    let rows = committed_rows(text);
    let find = |bench: &str, backend: &str, n: u64| -> Option<&CommittedRow> {
        rows.iter()
            .find(|r| r.bench == bench && r.backend == backend && r.n == n)
    };
    let mut failures: Vec<String> = Vec::new();
    let mut checks = 0usize;

    for r in rows.iter().filter(|r| r.backend == "parallel") {
        match r.bench.as_str() {
            "bucket_pmr_build" => {
                if let Some(seq) = find(&r.bench, "sequential", r.n) {
                    checks += 1;
                    let par_eps = row_field(&r.line, "elems_per_sec").unwrap_or(0.0);
                    let seq_eps = row_field(&seq.line, "elems_per_sec").unwrap_or(f64::INFINITY);
                    if par_eps < seq_eps {
                        failures.push(format!(
                            "bucket_pmr_build n={}: parallel {par_eps:.1} elems/s < sequential {seq_eps:.1}",
                            r.n
                        ));
                    }
                }
                if let Some(peak) = row_field(&r.line, "arena_peak_bytes") {
                    if r.n == 200_000 {
                        checks += 1;
                        if peak as u64 > PRE_BLOCKING_ARENA_PEAK / 2 {
                            failures.push(format!(
                                "bucket_pmr_build n=200000: arena peak {} bytes exceeds {} (half the pre-blocking {})",
                                peak as u64,
                                PRE_BLOCKING_ARENA_PEAK / 2,
                                PRE_BLOCKING_ARENA_PEAK
                            ));
                        }
                    }
                }
            }
            "batch_update" => {
                if let Some(seq) = find(&r.bench, "sequential", r.n) {
                    checks += 1;
                    let par_s = row_field(&r.line, "update_secs").unwrap_or(f64::INFINITY);
                    let seq_s = row_field(&seq.line, "update_secs").unwrap_or(0.0);
                    if par_s > seq_s {
                        failures.push(format!(
                            "batch_update n={}: parallel update {par_s:.6}s > sequential {seq_s:.6}s",
                            r.n
                        ));
                    }
                }
            }
            "frontier_join" => {
                if let Some(seq) = find(&r.bench, "sequential", r.n) {
                    checks += 1;
                    let par_s = row_field(&r.line, "secs").unwrap_or(f64::INFINITY);
                    let seq_s = row_field(&seq.line, "secs").unwrap_or(0.0);
                    if par_s > seq_s {
                        failures.push(format!(
                            "frontier_join n={}: parallel {par_s:.6}s > sequential {seq_s:.6}s",
                            r.n
                        ));
                    }
                }
                if r.n >= 50_000 {
                    checks += 1;
                    let speedup = row_field(&r.line, "speedup_vs_recursive").unwrap_or(0.0);
                    if speedup < 1.0 {
                        failures.push(format!(
                            "frontier_join n={}: parallel speedup vs recursive {speedup:.4} < 1.0",
                            r.n
                        ));
                    }
                }
            }
            "dominance" => {
                if let Some(seq) = find(&r.bench, "sequential", r.n) {
                    checks += 1;
                    let par_s = row_field(&r.line, "total_secs").unwrap_or(f64::INFINITY);
                    let seq_s = row_field(&seq.line, "total_secs").unwrap_or(0.0);
                    if par_s > seq_s {
                        failures.push(format!(
                            "dominance n={}: parallel {par_s:.6}s > sequential {seq_s:.6}s",
                            r.n
                        ));
                    }
                }
            }
            "service_serving" => {
                checks += 1;
                let served = row_field(&r.line, "served_per_sec").unwrap_or(0.0);
                if served < 5.0 * CLOSED_LOOP_BASELINE_RPS {
                    failures.push(format!(
                        "service_serving: pipelined {served:.1} req/s below 5x the \
                         {CLOSED_LOOP_BASELINE_RPS:.0} req/s closed-loop baseline"
                    ));
                }
                checks += 1;
                let ratio = row_field(&r.line, "open_over_closed").unwrap_or(0.0);
                if ratio < SERVING_MIN_RATIO {
                    failures.push(format!(
                        "service_serving: pipelined/closed {ratio:.4} below the \
                         {SERVING_MIN_RATIO} same-run floor"
                    ));
                }
            }
            "pm1_build" => {
                checks += 1;
                let speedup = row_field(&r.line, "speedup").unwrap_or(0.0);
                if speedup < 1.0 {
                    failures.push(format!(
                        "pm1_build n={}: fused speedup {speedup:.4} < 1.0",
                        r.n
                    ));
                }
                if let Some(ratio) = row_field(&r.line, "par_over_seq") {
                    checks += 1;
                    if ratio < 1.0 {
                        failures.push(format!(
                            "pm1_build n={}: parallel/sequential {ratio:.4} < 1.0",
                            r.n
                        ));
                    }
                }
            }
            "snapshot_restart" if r.n == 200_000 => {
                checks += 1;
                let ratio = row_field(&r.line, "warm_over_cold").unwrap_or(0.0);
                if ratio < WARM_RESTART_MIN_RATIO {
                    failures.push(format!(
                        "snapshot_restart n={}: warm restore only {ratio:.2}x faster \
                         than cold build (< {WARM_RESTART_MIN_RATIO})",
                        r.n
                    ));
                }
            }
            _ => {}
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("committed baseline violation: {f}");
        }
        std::process::exit(1);
    }
    println!("committed baseline OK: {checks} parallel-vs-sequential gates hold in {path}");
}

/// Enforces the 0.90 noise floor on this run's freshly measured
/// parallel/sequential ratios.
fn check_fresh(fresh: &[(String, f64)]) {
    let bad: Vec<&(String, f64)> = fresh
        .iter()
        .filter(|(_, r)| *r < FRESH_RATIO_FLOOR)
        .collect();
    for (label, ratio) in &bad {
        eprintln!(
            "fresh parallel/sequential ratio {ratio:.4} below {FRESH_RATIO_FLOOR} floor: {label}"
        );
    }
    if !bad.is_empty() {
        std::process::exit(1);
    }
    println!(
        "fresh parallel-vs-sequential OK: {} ratios above the {FRESH_RATIO_FLOOR} floor",
        fresh.len()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trace = args.iter().any(|a| a == "--trace");
    let join = args.iter().any(|a| a == "--join");
    let updates = args.iter().any(|a| a == "--updates");
    let dominance = args.iter().any(|a| a == "--dominance");
    let baseline: Option<String> = args.iter().position(|a| a == "--check-baseline").map(|i| {
        args.get(i + 1)
            .expect("--check-baseline needs a path")
            .clone()
    });
    let (sizes, reps): (&[usize], usize) = if quick {
        (&[20_000], 1)
    } else {
        (&[100_000, 200_000], 5)
    };

    // The committed-row gates run before any measurement: they hold the
    // repository's own numbers to the acceptance bar.
    let baseline_text: Option<String> = baseline.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        check_committed(path, &text);
        text
    });
    // Freshly measured (label, parallel-over-sequential ratio) pairs,
    // enforced against the noise floor at exit.
    let mut fresh: Vec<(String, f64)> = Vec::new();

    let machine = Machine::parallel();
    let mut entries: Vec<String> = Vec::new();

    // PM₁: fused seven-lane decision + arena vs unfused composed scans,
    // plus the same fused build on the sequential backend for the
    // parallel-over-sequential ratio.
    for &n in sizes {
        let data = planar_at(n);
        let depth = (data.world.width() as u64).ilog2() as usize;
        let n_real = data.len();

        // Op counters from exactly one build (timing reps would multiply
        // them).
        machine.reset_stats();
        std::hint::black_box(build_pm1(&machine, data.world, &data.segs, depth));
        let fused_ops = machine.stats();
        let fused_trace = machine.take_round_traces();
        machine.reset_stats();
        std::hint::black_box(build_pm1_unfused(&machine, data.world, &data.segs, depth));
        let unfused_ops = machine.stats();

        if let (Some(path), Some(text)) = (&baseline, &baseline_text) {
            check_pm1_passes(path, text, &fused_ops);
        }

        // Interleave the timing reps so machine-load drift hits both
        // variants alike; keep each variant's best.
        let seq_machine = Machine::sequential();
        let (mut fused_s, mut unfused_s, mut seq_fused_s) =
            (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        for _ in 0..reps {
            fused_s = fused_s.min(time_best(1, || {
                build_pm1(&machine, data.world, &data.segs, depth)
            }));
            unfused_s = unfused_s.min(time_best(1, || {
                build_pm1_unfused(&machine, data.world, &data.segs, depth)
            }));
            seq_fused_s = seq_fused_s.min(time_best(1, || {
                build_pm1(&seq_machine, data.world, &data.segs, depth)
            }));
        }
        let par_over_seq = seq_fused_s / fused_s;
        fresh.push((format!("pm1_build n={n_real}"), par_over_seq));

        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"pm1_build\", \"backend\": \"parallel\", \"n\": {n_real}, \
             \"fused_secs\": {fused_s:.6}, \"unfused_secs\": {unfused_s:.6}, \
             \"seq_fused_secs\": {seq_fused_s:.6}, \
             \"speedup\": {:.4}, \"par_over_seq\": {par_over_seq:.4}, \
             \"fused_elems_per_sec\": {:.1}, \
             \"fused_ops\": {}, \"unfused_ops\": {}",
            unfused_s / fused_s,
            n_real as f64 / fused_s,
            ops_json(&fused_ops),
            ops_json(&unfused_ops),
        );
        if trace {
            let _ = write!(e, ", \"round_trace\": {}", trace_json(&fused_trace));
        }
        e.push('}');
        entries.push(e);
        println!(
            "pm1 n={n_real}: fused {fused_s:.4}s vs unfused {unfused_s:.4}s (speedup {:.2}x, \
             par/seq {par_over_seq:.2}x, passes {} vs {})",
            unfused_s / fused_s,
            fused_ops.scan_passes,
            unfused_ops.scan_passes
        );
    }

    // Bucket PMR: arena-backed build throughput per backend. Both
    // backends are measured before either row is written so the parallel
    // row can carry its ratio.
    for &n in sizes {
        let data = uniform_at(n);
        let world = square_world(WORLD);
        let machines = [
            ("parallel", Machine::parallel()),
            ("sequential", Machine::sequential()),
        ];
        // name, best secs, ops, trace, arena peak, (takes, hits)
        type BucketRow<'a> = (
            &'a str,
            f64,
            StatsSnapshot,
            Vec<RoundTrace>,
            usize,
            (u64, u64),
        );
        let mut measured: Vec<BucketRow> = Vec::new();
        for (name, m) in &machines {
            m.reset_stats();
            std::hint::black_box(build_bucket_pmr(m, world, &data.segs, 8, 12));
            let ops = m.stats();
            let build_trace = m.take_round_traces();
            let arena_peak = m.arena_high_water_bytes();
            measured.push((name, f64::INFINITY, ops, build_trace, arena_peak, (0, 0)));
        }
        // Interleave the backends' timing reps so machine-load drift hits
        // both alike (same trick as the PM1 leg above).
        for _ in 0..reps {
            for (k, (_, m)) in machines.iter().enumerate() {
                let t = time_best(1, || build_bucket_pmr(m, world, &data.segs, 8, 12));
                measured[k].1 = measured[k].1.min(t);
            }
        }
        for (k, (_, m)) in machines.iter().enumerate() {
            measured[k].5 = m.arena_stats();
        }
        let seq_secs = measured[1].1;
        for (name, secs, ops, build_trace, arena_peak, (takes, hits)) in measured {
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"bucket_pmr_build\", \"backend\": \"{name}\", \"n\": {n}, \
                 \"secs\": {secs:.6}, \"elems_per_sec\": {:.1}, \
                 \"arena_takes\": {takes}, \"arena_hits\": {hits}, \
                 \"arena_peak_bytes\": {arena_peak}, \"ops\": {}",
                n as f64 / secs,
                ops_json(&ops),
            );
            if name == "parallel" {
                let ratio = seq_secs / secs;
                let _ = write!(e, ", \"par_over_seq\": {ratio:.4}");
                fresh.push((format!("bucket_pmr_build n={n}"), ratio));
            }
            if trace {
                let _ = write!(e, ", \"round_trace\": {}", trace_json(&build_trace));
            }
            e.push('}');
            entries.push(e);
            println!(
                "bucket_pmr n={n} {name}: {secs:.4}s (arena hits {hits}/{takes}, peak {arena_peak} bytes)"
            );
        }
    }

    // Sharded service: end-to-end request throughput on the pool-backed
    // parallel backend.
    {
        let (n, requests) = if quick {
            (10_000, 2_000)
        } else {
            (20_000, 10_000)
        };
        let data = dp_workloads::uniform_segments(n, 1024, 16, 77);
        let stream = request_stream(data.world, requests, RequestMix::DEFAULT, 78);
        let service = QueryService::build(
            QueryServiceConfig {
                shard_grid: 2,
                backend: Backend::Parallel,
                ..QueryServiceConfig::default()
            },
            data.world,
            data.segs.clone(),
        );
        let secs = time_best(reps, || service.execute_batch(&stream).len());
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"service_batch\", \"backend\": \"parallel\", \"shards\": {}, \
             \"n\": {n}, \"requests\": {requests}, \"secs\": {secs:.6}, \
             \"requests_per_sec\": {:.1}}}",
            service.num_shards(),
            requests as f64 / secs,
        );
        entries.push(e);
        println!(
            "service: {requests} requests in {secs:.4}s ({:.0} req/s)",
            requests as f64 / secs
        );
    }

    // Pipelined serving: the same engine behind the admission layer
    // (bulk submission, micro-batch coalescing, hot-window cache)
    // versus the closed loop on an identical hot-skewed stream. This is
    // the economic case for decoupling arrival from round execution:
    // the committed row must clear 5× the pre-admission closed-loop
    // baseline and beat its own same-run closed leg by SERVING_MIN_RATIO.
    {
        let (n, requests) = if quick {
            (10_000, 6_000)
        } else {
            (20_000, 30_000)
        };
        let hot = 0.95;
        let data = dp_workloads::uniform_segments(n, 1024, 16, 77);
        let mut stream = request_stream(data.world, requests, RequestMix::DEFAULT, 79);
        skew_hot_windows(&mut stream, &data.world, hot, 64, 80);
        let config = QueryServiceConfig {
            shard_grid: 2,
            backend: Backend::Parallel,
            flush_batch: 2048,
            queue_bound: 2048,
            ..QueryServiceConfig::default()
        };
        let closed_service = QueryService::build(config, data.world, data.segs.clone());
        let closed_secs = time_best(reps, || closed_service.execute_batch(&stream).len());
        let serving_service = Arc::new(QueryService::build(config, data.world, data.segs.clone()));
        let pipeline = ServicePipeline::new(serving_service.clone(), 1, AdmissionPolicy::Block)
            .expect("one admission lane is a valid pipeline");
        // Steady-state serving: the cache stays warm across reps, which
        // is exactly the regime the admission layer is built for.
        let served_secs = time_best(reps.max(2), || pipeline.submit_all(&stream).len());
        drop(pipeline);
        let closed_rps = requests as f64 / closed_secs;
        let served_rps = requests as f64 / served_secs;
        let ratio = served_rps / closed_rps;
        let cache = serving_service.cache_stats();
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"service_serving\", \"backend\": \"parallel\", \"shards\": {}, \
             \"n\": {n}, \"requests\": {requests}, \"hot\": {hot}, \
             \"closed_req_per_sec\": {closed_rps:.1}, \"served_per_sec\": {served_rps:.1}, \
             \"open_over_closed\": {ratio:.4}, \"cache_hits\": {}, \"cache_misses\": {}}}",
            serving_service.num_shards(),
            cache.hits,
            cache.misses,
        );
        entries.push(e);
        fresh.push((
            format!("service_serving vs 5x closed baseline ({served_rps:.0} req/s)"),
            served_rps / (5.0 * CLOSED_LOOP_BASELINE_RPS),
        ));
        fresh.push((
            format!("service_serving open/closed ({ratio:.2}x)"),
            ratio / SERVING_MIN_RATIO,
        ));
        println!(
            "serving: {requests} hot requests pipelined at {served_rps:.0} req/s \
             vs {closed_rps:.0} closed ({ratio:.2}x, {} cache hits)",
            cache.hits
        );
    }

    // Snapshot persistence: cold shard-tree build versus warm restore
    // from an on-disk snapshot (`dp_service::snapshot`). The committed
    // row at n = 200k must show the warm path clearing
    // [`WARM_RESTART_MIN_RATIO`].
    for &n in sizes {
        let data = uniform_at(n);
        let world = square_world(WORLD);
        let config = QueryServiceConfig {
            shard_grid: 2,
            backend: Backend::Parallel,
            ..QueryServiceConfig::default()
        };
        let cold_s = time_best(reps, || {
            QueryService::build(config, world, data.segs.clone())
        });
        let service = QueryService::build(config, world, data.segs.clone());
        let snap_path =
            std::env::temp_dir().join(format!("bench_snapshot_{n}_{}.snap", std::process::id()));
        service
            .save_snapshot(&snap_path)
            .expect("bench snapshot save");
        let snapshot_bytes = std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
        let warm_s = time_best(reps, || {
            let (restored, warm) = QueryService::try_restore_or_build(
                config,
                world,
                data.segs.clone(),
                Vec::new(),
                Arc::new(FaultPlan::disabled()),
                &snap_path,
            )
            .expect("bench snapshot restore");
            assert!(warm, "bench snapshot restore fell through to a cold build");
            restored
        });
        let _ = std::fs::remove_file(&snap_path);
        let ratio = cold_s / warm_s;
        let mut e = String::new();
        let _ = write!(
            e,
            "{{\"bench\": \"snapshot_restart\", \"backend\": \"parallel\", \"n\": {n}, \
             \"cold_build_secs\": {cold_s:.6}, \"warm_restore_secs\": {warm_s:.6}, \
             \"warm_over_cold\": {ratio:.4}, \"snapshot_bytes\": {snapshot_bytes}}}"
        );
        entries.push(e);
        println!(
            "snapshot_restart n={n}: warm restore {warm_s:.4}s vs cold build {cold_s:.4}s \
             ({ratio:.2}x, {snapshot_bytes} bytes)"
        );
    }

    // Batch updates: a 1% insert/delete batch through the data-parallel
    // update engine versus a full rebuild of the final collection — the
    // economic case for epoch compaction (`--updates`).
    if updates {
        let n = if quick { 20_000 } else { 200_000 };
        let data = uniform_at(n);
        let world = square_world(WORLD);
        let k = (n / 100).max(2);
        let fresh_segs = uniform_at(k / 2 + 7).segs;
        let batch = UpdateBatch {
            inserts: fresh_segs[..k / 2].to_vec(),
            // Deletes spread across the id space, clear of the inserts.
            deletes: (0..k / 2).map(|i| (i * (n / (k / 2))) as u32).collect(),
        };
        // Final collection, for the rebuild leg: same remap the update
        // applies (sorted deletes out, inserts appended).
        let mut final_segs = data.segs.clone();
        for &d in batch.deletes.iter().rev() {
            final_segs.remove(d as usize);
        }
        final_segs.extend(batch.inserts.iter().copied());

        let machines = [
            ("parallel", Machine::parallel()),
            ("sequential", Machine::sequential()),
        ];
        let mut measured: Vec<(&str, f64, f64, StatsSnapshot)> = Vec::new();
        let mut trees = Vec::new();
        for (name, m) in &machines {
            let base_tree = build_bucket_pmr(m, world, &data.segs, 8, 12);
            m.reset_stats();
            m.take_round_traces();
            {
                let mut tree = base_tree.clone();
                let mut segs = data.segs.clone();
                std::hint::black_box(batch_update_bucket_pmr(
                    m, &mut tree, &mut segs, &batch, 8, 12,
                ));
            }
            let ops = m.stats();
            m.take_round_traces();
            measured.push((name, f64::INFINITY, f64::INFINITY, ops));
            trees.push(base_tree);
        }
        // Interleave the backends' timing reps so machine-load drift hits
        // both alike. Clones stay outside the timed region: the contender
        // is the update pass itself, applied to a live tree.
        for _ in 0..reps {
            for (k, (_, m)) in machines.iter().enumerate() {
                let mut tree = trees[k].clone();
                let mut segs = data.segs.clone();
                let t = Instant::now();
                std::hint::black_box(batch_update_bucket_pmr(
                    m, &mut tree, &mut segs, &batch, 8, 12,
                ));
                measured[k].1 = measured[k].1.min(t.elapsed().as_secs_f64());
            }
            for (k, (_, m)) in machines.iter().enumerate() {
                let t = time_best(1, || build_bucket_pmr(m, world, &final_segs, 8, 12));
                measured[k].2 = measured[k].2.min(t);
            }
        }
        let seq_update_s = measured[1].1;
        for (name, update_s, rebuild_s, ops) in measured {
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"batch_update\", \"backend\": \"{name}\", \"n\": {n}, \"batch\": {k}, \"update_secs\": {update_s:.6}, \"rebuild_secs\": {rebuild_s:.6}, \"speedup\": {:.4}, \"ops\": {}",
                rebuild_s / update_s,
                ops_json(&ops),
            );
            if name == "parallel" {
                let ratio = seq_update_s / update_s;
                let _ = write!(e, ", \"par_over_seq\": {ratio:.4}");
                fresh.push((format!("batch_update n={n}"), ratio));
            }
            e.push('}');
            entries.push(e);
            println!(
                "batch_update n={n} batch={k} {name}: update {update_s:.4}s vs rebuild {rebuild_s:.4}s (speedup {:.2}x)",
                rebuild_s / update_s
            );
        }

        // One end-to-end epoch compaction: the service absorbs the same
        // write pressure through its overlay ladder, then merges it into
        // a fresh epoch across every shard.
        {
            let service = QueryService::build(
                QueryServiceConfig {
                    shard_grid: 2,
                    backend: Backend::Parallel,
                    compact_threshold: usize::MAX >> 1,
                    ..QueryServiceConfig::default()
                },
                world,
                data.segs.clone(),
            );
            let writes: Vec<Request> = batch
                .inserts
                .iter()
                .map(|&s| Request::Insert(s))
                .chain(batch.deletes.iter().rev().map(|&d| Request::Delete(d)))
                .collect();
            let t = Instant::now();
            service.execute_batch(&writes);
            let write_s = t.elapsed().as_secs_f64();
            let t = Instant::now();
            let epoch = service.compact_now().expect("bench compaction");
            let compact_s = t.elapsed().as_secs_f64();
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"service_compaction\", \"backend\": \"parallel\", \"n\": {n}, \"writes\": {}, \"write_secs\": {write_s:.6}, \"compact_secs\": {compact_s:.6}, \"epoch\": {epoch}}}",
                writes.len(),
            );
            entries.push(e);
            println!(
                "service_compaction n={n}: {} writes in {write_s:.4}s, compaction {compact_s:.4}s",
                writes.len()
            );
        }
    }

    // Skyline + dominance aggregation over the segments' midpoints: the
    // sort + segmented-scan pipelines riding the generalized flat-map
    // kernel, per backend (`--dominance`). One run per backend for op
    // counters, interleaved timing reps, and a combined
    // parallel-over-sequential ratio on the committed parallel row.
    if dominance {
        for &n in sizes {
            let data = uniform_at(n);
            let points: Vec<DomPoint> = data
                .segs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let m = s.midpoint();
                    DomPoint {
                        id: i as u32,
                        x: m.x,
                        y: m.y,
                        w: dominance_weight(s),
                    }
                })
                .collect();
            // A deterministic spread of aggregation queries across the
            // world (LCG; no RNG dependency in the bench binary).
            let world = square_world(WORLD);
            let n_queries = 256usize;
            let mut lcg = 0x9e37_79b9_7f4a_7c15u64 ^ n as u64;
            let mut queries = Vec::with_capacity(n_queries);
            for _ in 0..n_queries {
                let mut next = || {
                    lcg = lcg
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (lcg >> 11) as f64 / (1u64 << 53) as f64
                };
                let qx = world.min.x + next() * (world.max.x - world.min.x);
                let qy = world.min.y + next() * (world.max.y - world.min.y);
                queries.push((qx, qy));
            }
            let machines = [
                ("parallel", Machine::parallel()),
                ("sequential", Machine::sequential()),
            ];
            // name, skyline secs, agg secs, ops, skyline size
            let mut measured: Vec<(&str, f64, f64, StatsSnapshot, usize)> = Vec::new();
            for (name, m) in &machines {
                m.reset_stats();
                let sky = std::hint::black_box(skyline(m, &points));
                std::hint::black_box(dominance_agg(m, &points, &queries));
                let ops = m.stats();
                m.take_round_traces();
                measured.push((name, f64::INFINITY, f64::INFINITY, ops, sky.len()));
            }
            // Interleave the backends' timing reps so machine-load drift
            // hits both alike.
            for _ in 0..reps {
                for (k, (_, m)) in machines.iter().enumerate() {
                    let t = time_best(1, || skyline(m, &points).len());
                    measured[k].1 = measured[k].1.min(t);
                    let t = time_best(1, || dominance_agg(m, &points, &queries).len());
                    measured[k].2 = measured[k].2.min(t);
                }
            }
            let seq_total = measured[1].1 + measured[1].2;
            for (name, sky_s, agg_s, ops, sky_len) in measured {
                let total = sky_s + agg_s;
                let mut e = String::new();
                let _ = write!(
                    e,
                    "{{\"bench\": \"dominance\", \"backend\": \"{name}\", \"n\": {n}, \
                     \"queries\": {n_queries}, \"skyline_secs\": {sky_s:.6}, \
                     \"agg_secs\": {agg_s:.6}, \"total_secs\": {total:.6}, \
                     \"skyline_size\": {sky_len}, \"ops\": {}",
                    ops_json(&ops),
                );
                if name == "parallel" {
                    let ratio = seq_total / total;
                    let _ = write!(e, ", \"par_over_seq\": {ratio:.4}");
                    fresh.push((format!("dominance n={n}"), ratio));
                }
                e.push('}');
                entries.push(e);
                println!(
                    "dominance n={n} {name}: skyline {sky_s:.4}s ({sky_len} maxima) + \
                     {n_queries} aggs {agg_s:.4}s"
                );
            }
        }
    }

    // Frontier spatial join: parallel frontier vs recursive oracle over
    // two independently generated layers of the same world, with the
    // join's own round table (`--join`).
    if join {
        let n = if quick { 5_000 } else { 50_000 };
        let base = dp_workloads::uniform_segments(n, 1024, 16, 501);
        let overlay = dp_workloads::uniform_segments(n, 1024, 16, 502);
        let builder = Machine::sequential();
        let ta = build_bucket_pmr(&builder, base.world, &base.segs, 8, 12);
        let tb = build_bucket_pmr(&builder, overlay.world, &overlay.segs, 8, 12);
        let machines = [
            ("parallel", Machine::parallel()),
            ("sequential", Machine::sequential()),
        ];
        let mut measured: Vec<(&str, f64, StatsSnapshot, Vec<RoundTrace>, String)> = Vec::new();
        let mut outcomes = Vec::new();
        for (name, m) in &machines {
            m.reset_stats();
            m.take_round_traces();
            let outcome = frontier_join(m, &ta, &base.segs, &tb, &overlay.segs)
                .expect("bench layers share one world");
            let ops = m.stats();
            let join_trace = m.take_round_traces();
            measured.push((name, f64::INFINITY, ops, join_trace, String::new()));
            outcomes.push(outcome);
        }
        // Interleave all three contenders' timing reps so machine-load
        // drift hits them alike.
        let mut recursive_secs = f64::INFINITY;
        for _ in 0..reps {
            for (k, (_, m)) in machines.iter().enumerate() {
                let t = time_best(1, || {
                    frontier_join(m, &ta, &base.segs, &tb, &overlay.segs)
                        .unwrap()
                        .pairs
                        .len()
                });
                measured[k].1 = measured[k].1.min(t);
            }
            let t = time_best(1, || {
                spatial_join(&ta, &base.segs, &tb, &overlay.segs).len()
            });
            recursive_secs = recursive_secs.min(t);
        }
        for (k, outcome) in outcomes.iter().enumerate() {
            let (name, secs) = (measured[k].0, measured[k].1);
            let detail = format!(
                "\"pairs\": {}, \"rounds\": {}, \"frontier_peak\": {}, \"pairs_tested\": {}",
                outcome.pairs.len(),
                outcome.rounds,
                outcome.frontier_peak,
                outcome.pairs_tested
            );
            println!(
                "join n={n} {name}: {secs:.4}s vs recursive {recursive_secs:.4}s \
                 ({} pairs, {} rounds, peak frontier {})",
                outcome.pairs.len(),
                outcome.rounds,
                outcome.frontier_peak
            );
            measured[k].4 = detail;
        }
        let seq_secs = measured[1].1;
        for (name, secs, ops, join_trace, detail) in measured {
            let mut e = String::new();
            let _ = write!(
                e,
                "{{\"bench\": \"frontier_join\", \"backend\": \"{name}\", \"n\": {n}, \
                 \"secs\": {secs:.6}, \"recursive_secs\": {recursive_secs:.6}, \
                 \"speedup_vs_recursive\": {:.4}, ",
                recursive_secs / secs,
            );
            if name == "parallel" {
                let ratio = seq_secs / secs;
                let _ = write!(e, "\"par_over_seq\": {ratio:.4}, ");
                fresh.push((format!("frontier_join n={n}"), ratio));
            }
            let _ = write!(
                e,
                "{detail}, \"ops\": {}, \"round_trace\": {}}}",
                ops_json(&ops),
                trace_json(&join_trace),
            );
            entries.push(e);
        }
    }

    let json = format!(
        "{{\n  \"suite\": \"scanmodel_fused_kernels\",\n  \"mode\": \"{}\",\n  \"results\": [\n    {}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        entries.join(",\n    ")
    );
    std::fs::write("BENCH_scanmodel.json", &json).expect("write BENCH_scanmodel.json");
    println!("wrote BENCH_scanmodel.json ({} entries)", entries.len());

    if baseline.is_some() {
        check_fresh(&fresh);
    }
}
