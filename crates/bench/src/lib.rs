//! Shared helpers for the dp-bench harness: standard workload ladders,
//! query generators, and plain-text table rendering used by both the
//! criterion benches and the `exp_tables` binary.

use dp_geom::Rect;
use dp_workloads::{road_network, uniform_segments, Dataset};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The dataset-size ladder used by all scaling experiments.
pub const SIZE_LADDER: [usize; 5] = [500, 1_000, 2_000, 4_000, 8_000];

/// World side used by the scaling experiments (power of two).
pub const WORLD: u32 = 4096;

/// The standard uniform workload at size `n`.
pub fn uniform_at(n: usize) -> Dataset {
    uniform_segments(n, WORLD, 64, 42 + n as u64)
}

/// The standard road-network workload with roughly `n` edges.
pub fn roads_approx(n: usize) -> Dataset {
    // ~1.8 edges per junction cell.
    let cells = ((n as f64 / 1.8).sqrt().ceil() as u32).max(2);
    road_network(cells, WORLD, 7 + n as u64)
}

/// A strictly planar polygonal-map workload with roughly `n` edges at
/// constant density: the world grows with n (cell width 32, power-of-two
/// side), so quadtree depth tracks log n instead of saturating at the
/// resolution bound. The ideal PM₁ input.
pub fn planar_at(n: usize) -> Dataset {
    let cells = (((n as f64) / 4.0).sqrt().ceil() as u32).max(1);
    let size = (cells * 32).next_power_of_two();
    dp_workloads::polygon_rings(cells, size, 17 + n as u64)
}

/// Deterministic query windows covering `frac` of the world per side.
pub fn query_windows(count: usize, frac: f64, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    let side = WORLD as f64 * frac;
    (0..count)
        .map(|_| {
            let x = rng.gen_range(0.0..(WORLD as f64 - side));
            let y = rng.gen_range(0.0..(WORLD as f64 - side));
            Rect::from_coords(x, y, x + side, y + side)
        })
        .collect()
}

/// Renders a plain-text table: header plus rows, columns padded to the
/// widest cell. Used by `exp_tables` to print the experiment results in
/// the same rows-and-series layout the paper's figures use.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n## {title}\n\n"));
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladders_are_usable() {
        let d = uniform_at(500);
        assert_eq!(d.len(), 500);
        let r = roads_approx(500);
        assert!(r.len() > 250 && r.len() < 1_000, "got {}", r.len());
    }

    #[test]
    fn query_windows_inside_world() {
        for q in query_windows(50, 0.05, 1) {
            assert!(q.min.x >= 0.0 && q.max.x <= WORLD as f64);
            assert!(q.min.y >= 0.0 && q.max.y <= WORLD as f64);
        }
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            "demo",
            &["n", "value"],
            &[
                vec!["10".into(), "1.5".into()],
                vec!["1000".into(), "12.25".into()],
            ],
        );
        assert!(t.contains("## demo"));
        assert!(t.contains("1000"));
    }
}
