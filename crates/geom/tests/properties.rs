//! Property tests for the geometry kernel: algebraic laws of rectangle
//! arithmetic, clipping/membership coherence on the integer grid, and
//! symmetry of the intersection predicates.

use dp_geom::{clip_segment_closed, seg_in_block, segments_intersect, LineSeg, Point, Rect};
use proptest::prelude::*;

const W: i32 = 64;

fn points() -> impl Strategy<Value = Point> {
    (0..W, 0..W).prop_map(|(x, y)| Point::new(x as f64, y as f64))
}

fn segs() -> impl Strategy<Value = LineSeg> {
    (points(), points())
        .prop_filter("non-degenerate", |(a, b)| a != b)
        .prop_map(|(a, b)| LineSeg::new(a, b))
}

fn rects() -> impl Strategy<Value = Rect> {
    (0..W - 1, 0..W - 1, 1..W, 1..W).prop_map(|(x, y, w, h)| {
        Rect::from_coords(
            x as f64,
            y as f64,
            (x + w).min(W) as f64,
            (y + h).min(W) as f64,
        )
    })
}

proptest! {
    /// Rectangle algebra: union is commutative and contains both
    /// operands; intersection is contained in both; areas are consistent.
    #[test]
    fn rect_algebra(a in rects(), b in rects()) {
        let u = a.union(&b);
        prop_assert_eq!(u, b.union(&a));
        prop_assert!(u.contains_rect(&a) && u.contains_rect(&b));
        let i = a.intersection(&b);
        prop_assert_eq!(i.area(), b.intersection(&a).area());
        prop_assert!(a.contains_rect(&i) && b.contains_rect(&i));
        prop_assert!(i.area() <= a.area().min(b.area()));
        prop_assert!(u.area() >= a.area().max(b.area()));
        // Inclusion-exclusion lower bound.
        prop_assert!(u.area() + i.area() >= a.area() + b.area() - 1e-9);
    }

    /// Enlargement is non-negative and zero exactly for containment.
    #[test]
    fn enlargement_law(a in rects(), b in rects()) {
        let e = a.enlargement(&b);
        prop_assert!(e >= 0.0);
        if a.contains_rect(&b) {
            prop_assert_eq!(e, 0.0);
        }
        if e == 0.0 {
            prop_assert!(a.contains_rect(&b));
        }
    }

    /// Every grid point belongs to exactly one half-open quadrant of any
    /// power-of-two block containing it.
    #[test]
    fn quadrants_partition_points(p in points()) {
        let world = Rect::from_coords(0.0, 0.0, W as f64, W as f64);
        prop_assert!(world.contains_half_open(p));
        let n = world
            .quadrants()
            .iter()
            .filter(|q| q.contains_half_open(p))
            .count();
        prop_assert_eq!(n, 1);
    }

    /// Clipping: the result lies in the closed rectangle, on the original
    /// segment's line, and clipping is monotone with containment.
    #[test]
    fn clip_properties(s in segs(), r in rects()) {
        if let Some(c) = clip_segment_closed(&s, &r) {
            prop_assert!(r.contains(c.a), "clip start {} outside {r}", c.a);
            prop_assert!(r.contains(c.b), "clip end {} outside {r}", c.b);
            // Collinearity with the original (within f64 rounding of the
            // parametric evaluation).
            let scale = (s.length() * s.length()).max(1.0);
            prop_assert!(s.a.cross(s.b, c.a).abs() <= 1e-7 * scale);
            prop_assert!(s.a.cross(s.b, c.b).abs() <= 1e-7 * scale);
            // Clip against a containing rectangle keeps the segment whole.
            let bigger = r.union(&s.bbox());
            let full = clip_segment_closed(&s, &bigger).unwrap();
            prop_assert_eq!(full, s);
        } else {
            // No clip => the segment's bbox misses the rectangle or the
            // segment passes by: at minimum, neither endpoint is inside.
            prop_assert!(!r.contains(s.a) && !r.contains(s.b));
        }
    }

    /// Block membership is monotone: a member of a child block is a
    /// member of the parent.
    #[test]
    fn membership_monotone(s in segs()) {
        let world = Rect::from_coords(0.0, 0.0, W as f64, W as f64);
        for q in world.quadrants() {
            if seg_in_block(&s, &q) {
                prop_assert!(seg_in_block(&s, &world));
            }
            for qq in q.quadrants() {
                if seg_in_block(&s, &qq) {
                    prop_assert!(seg_in_block(&s, &q));
                }
            }
        }
    }

    /// Every non-degenerate segment inside the world belongs to at least
    /// one quadrant, and to a quadrant only if it truly reaches it.
    #[test]
    fn membership_covers(s in segs()) {
        let world = Rect::from_coords(0.0, 0.0, W as f64, W as f64);
        let members: Vec<Rect> = world
            .quadrants()
            .into_iter()
            .filter(|q| seg_in_block(&s, q))
            .collect();
        prop_assert!(!members.is_empty());
        for q in members {
            prop_assert!(clip_segment_closed(&s, &q).is_some());
        }
    }

    /// Segment intersection is symmetric and reversal-invariant, and a
    /// segment always intersects itself.
    #[test]
    fn seg_intersection_symmetry(s1 in segs(), s2 in segs()) {
        let a = segments_intersect(&s1, &s2);
        prop_assert_eq!(a, segments_intersect(&s2, &s1));
        prop_assert_eq!(a, segments_intersect(&s1.reversed(), &s2));
        prop_assert_eq!(a, segments_intersect(&s1, &s2.reversed()));
        prop_assert!(segments_intersect(&s1, &s1));
    }

    /// If two segments intersect, their bounding boxes intersect.
    #[test]
    fn intersection_implies_bbox_overlap(s1 in segs(), s2 in segs()) {
        if segments_intersect(&s1, &s2) {
            prop_assert!(s1.bbox().intersects(&s2.bbox()));
        }
    }

    /// Distance coherence: the closest point lies on the segment's
    /// bounding box and realizes the reported distance.
    #[test]
    fn closest_point_coherence(s in segs(), p in points()) {
        let c = s.closest_point_to(p);
        prop_assert!(s.bbox().contains(c));
        let d2 = s.dist2_to_point(p);
        prop_assert!((c.dist2(p) - d2).abs() <= 1e-9 * d2.max(1.0));
        // No endpoint is closer than the reported distance.
        prop_assert!(d2 <= s.a.dist2(p) + 1e-9);
        prop_assert!(d2 <= s.b.dist2(p) + 1e-9);
    }
}
