//! Quadtree path codes and Z-order (Morton / Peano-style) linearization.
//!
//! The paper's Section 3.3 notes that the bucket PMR quadtree's regular
//! decomposition admits a *unique linear ordering* of its blocks via a
//! space-filling curve (it cites the Peano curve), which is what makes the
//! structure a good fit for linearly ordered processor models. [`NodePath`]
//! encodes the root-to-node quadrant path of a block, and its `Ord`
//! implementation is exactly that linearization; [`z_order`] provides the
//! classic bit-interleaved point code.

/// Quadrant of a block, in the child order used by
/// [`crate::rect::Rect::quadrants`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Quadrant {
    /// North-west (upper-left).
    NW = 0,
    /// North-east (upper-right).
    NE = 1,
    /// South-west (lower-left).
    SW = 2,
    /// South-east (lower-right).
    SE = 3,
}

impl Quadrant {
    /// All quadrants in child order.
    pub const ALL: [Quadrant; 4] = [Quadrant::NW, Quadrant::NE, Quadrant::SW, Quadrant::SE];

    /// Quadrant from its index (0..4).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 4`.
    pub fn from_index(i: usize) -> Quadrant {
        Quadrant::ALL[i]
    }

    /// The index of this quadrant (0..4).
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Maximum supported quadtree depth (path bits must fit in a `u64`).
pub const MAX_DEPTH: u8 = 31;

/// The root-to-node quadrant path of a quadtree block.
///
/// `bits` stores two bits per level, most significant pair first, so that
/// the derived `Ord` (after left-aligning) is a depth-first pre-order /
/// Z-order traversal of the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodePath {
    depth: u8,
    bits: u64,
}

impl NodePath {
    /// The root path (depth 0).
    pub const ROOT: NodePath = NodePath { depth: 0, bits: 0 };

    /// Depth of the node (root = 0).
    pub fn depth(&self) -> u8 {
        self.depth
    }

    /// Raw path bits (two per level, root-first in the high positions of
    /// the low `2*depth` bits).
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// The path of this node's `q` child.
    ///
    /// # Panics
    ///
    /// Panics when descending past [`MAX_DEPTH`].
    pub fn child(&self, q: Quadrant) -> NodePath {
        assert!(
            self.depth < MAX_DEPTH,
            "quadtree path deeper than MAX_DEPTH ({MAX_DEPTH})"
        );
        NodePath {
            depth: self.depth + 1,
            bits: (self.bits << 2) | q.index() as u64,
        }
    }

    /// The parent path, or `None` at the root.
    pub fn parent(&self) -> Option<NodePath> {
        if self.depth == 0 {
            None
        } else {
            Some(NodePath {
                depth: self.depth - 1,
                bits: self.bits >> 2,
            })
        }
    }

    /// The quadrant this node occupies within its parent, or `None` at the
    /// root.
    pub fn quadrant_in_parent(&self) -> Option<Quadrant> {
        if self.depth == 0 {
            None
        } else {
            Some(Quadrant::from_index((self.bits & 3) as usize))
        }
    }

    /// The sequence of quadrants from the root to this node.
    pub fn quadrants(&self) -> Vec<Quadrant> {
        (0..self.depth)
            .map(|level| {
                let shift = 2 * (self.depth - 1 - level);
                Quadrant::from_index(((self.bits >> shift) & 3) as usize)
            })
            .collect()
    }

    /// `true` when `self` is an ancestor of `other` (or equal to it).
    pub fn is_ancestor_of(&self, other: &NodePath) -> bool {
        other.depth >= self.depth && (other.bits >> (2 * (other.depth - self.depth))) == self.bits
    }

    /// Left-aligned key whose natural order is the depth-first pre-order
    /// of the quadtree (ancestors sort before descendants, and siblings
    /// sort NW < NE < SW < SE): path bits shifted to the top, depth as the
    /// low-order tiebreak.
    pub fn preorder_key(&self) -> u128 {
        let aligned = (self.bits as u128) << (2 * (MAX_DEPTH - self.depth) as u32);
        (aligned << 8) | self.depth as u128
    }
}

impl PartialOrd for NodePath {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for NodePath {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.preorder_key().cmp(&other.preorder_key())
    }
}

/// Bit-interleaved Z-order code of a grid point: `y` bits take the even
/// positions and `x` bits the odd, so the code orders points along the
/// classic N-shaped curve consistent with [`NodePath`] linearization.
pub fn z_order(x: u32, y: u32) -> u64 {
    fn spread(v: u32) -> u64 {
        let mut v = v as u64;
        v = (v | (v << 16)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v << 8)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v << 2)) & 0x3333_3333_3333_3333;
        v = (v | (v << 1)) & 0x5555_5555_5555_5555;
        v
    }
    (spread(x) << 1) | spread(y)
}

/// Hilbert curve index of a grid point within a `2^order × 2^order`
/// grid. Unlike [`z_order`], consecutive indices are always adjacent
/// cells, which makes Hilbert sorting the classic key for packed R-tree
/// bulk loading (Kamel & Faloutsos — the parallel R-tree work the paper
/// cites as \[Kame92\]).
///
/// # Panics
///
/// Panics if `order > 31` or a coordinate does not fit in the grid.
pub fn hilbert_d(order: u32, x: u32, y: u32) -> u64 {
    assert!(order <= 31, "hilbert order {order} too large");
    let n = 1u32 << order;
    assert!(x < n && y < n, "point ({x}, {y}) outside 2^{order} grid");
    let (mut x, mut y) = (x, y);
    let mut d: u64 = 0;
    let mut s = n >> 1;
    while s > 0 {
        let rx = u32::from((x & s) > 0);
        let ry = u32::from((y & s) > 0);
        d += (s as u64) * (s as u64) * ((3 * rx) ^ ry) as u64;
        // Rotate the quadrant (the classic xy2d rotation).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s >>= 1;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn child_parent_roundtrip() {
        let p = NodePath::ROOT
            .child(Quadrant::NE)
            .child(Quadrant::SW)
            .child(Quadrant::SE);
        assert_eq!(p.depth(), 3);
        assert_eq!(
            p.quadrants(),
            vec![Quadrant::NE, Quadrant::SW, Quadrant::SE]
        );
        assert_eq!(p.quadrant_in_parent(), Some(Quadrant::SE));
        let gp = p.parent().unwrap().parent().unwrap();
        assert_eq!(gp.quadrants(), vec![Quadrant::NE]);
        assert_eq!(NodePath::ROOT.parent(), None);
    }

    #[test]
    fn ancestor_test() {
        let a = NodePath::ROOT.child(Quadrant::NW);
        let b = a.child(Quadrant::SE).child(Quadrant::SE);
        assert!(NodePath::ROOT.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&a));
        assert!(!b.is_ancestor_of(&a));
        let c = NodePath::ROOT.child(Quadrant::NE);
        assert!(!c.is_ancestor_of(&b));
    }

    #[test]
    fn preorder_sorts_parents_before_children_and_siblings_in_order() {
        let root = NodePath::ROOT;
        let nw = root.child(Quadrant::NW);
        let nw_se = nw.child(Quadrant::SE);
        let ne = root.child(Quadrant::NE);
        let se = root.child(Quadrant::SE);
        let mut v = vec![se, nw_se, ne, root, nw];
        v.sort();
        assert_eq!(v, vec![root, nw, nw_se, ne, se]);
    }

    #[test]
    fn z_order_small_grid() {
        // In a 2x2 grid the curve visits (0,0), (0,1), (1,0), (1,1)
        // with x in the high interleave position.
        assert_eq!(z_order(0, 0), 0);
        assert_eq!(z_order(0, 1), 1);
        assert_eq!(z_order(1, 0), 2);
        assert_eq!(z_order(1, 1), 3);
    }

    #[test]
    fn z_order_locality() {
        // Codes of a 4x4 block are contiguous when the block is aligned.
        let mut codes: Vec<u64> = (0..4)
            .flat_map(|x| (0..4).map(move |y| z_order(x, y)))
            .collect();
        codes.sort_unstable();
        assert_eq!(codes, (0..16).collect::<Vec<u64>>());
    }

    #[test]
    fn z_order_high_bits() {
        assert_eq!(z_order(u32::MAX, 0), 0xAAAA_AAAA_AAAA_AAAA);
        assert_eq!(z_order(0, u32::MAX), 0x5555_5555_5555_5555);
    }

    #[test]
    fn hilbert_order_one() {
        // The unit Hilbert curve: (0,0) -> (0,1) -> (1,1) -> (1,0).
        assert_eq!(hilbert_d(1, 0, 0), 0);
        assert_eq!(hilbert_d(1, 0, 1), 1);
        assert_eq!(hilbert_d(1, 1, 1), 2);
        assert_eq!(hilbert_d(1, 1, 0), 3);
    }

    #[test]
    fn hilbert_is_a_bijection() {
        let order = 4u32;
        let n = 1u32 << order;
        let mut seen = vec![false; (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                let d = hilbert_d(order, x, y) as usize;
                assert!(!seen[d], "duplicate index {d}");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn hilbert_consecutive_cells_are_adjacent() {
        // The defining locality property (and what Z-order lacks): each
        // step of the curve moves to a 4-neighbour.
        let order = 4u32;
        let n = 1u32 << order;
        let mut by_d = vec![(0u32, 0u32); (n * n) as usize];
        for x in 0..n {
            for y in 0..n {
                by_d[hilbert_d(order, x, y) as usize] = (x, y);
            }
        }
        for w in by_d.windows(2) {
            let (x0, y0) = w[0];
            let (x1, y1) = w[1];
            let manhattan = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(manhattan, 1, "jump between {:?} and {:?}", w[0], w[1]);
        }
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn hilbert_rejects_out_of_grid() {
        hilbert_d(2, 4, 0);
    }

    #[test]
    #[should_panic(expected = "MAX_DEPTH")]
    fn overdeep_child_panics() {
        let mut p = NodePath::ROOT;
        for _ in 0..=MAX_DEPTH {
            p = p.child(Quadrant::NW);
        }
    }
}
