//! # dp-geom — 2-D geometry kernel for the dp-spatial workspace
//!
//! Points, axis-aligned rectangles, line segments, clipping, intersection
//! predicates, and quadtree path codes. This crate is the geometric
//! substrate beneath the data-parallel spatial index builds of
//! Hoel & Samet (ICPP 1995): the quadtree algorithms need segment-vs-block
//! membership and split-axis crossing tests (paper Sec. 4.6), the PM₁
//! split decision needs endpoint-in-block counts and endpoint bounding
//! boxes (Sec. 4.5), and the R-tree needs rectangle arithmetic — areas,
//! unions, intersections, perimeters (Secs. 4.7, 5.3).
//!
//! ## Block membership convention
//!
//! Quadtree blocks decompose space into *disjoint* cells, but a line
//! segment crossing a block boundary belongs to every block it passes
//! through (it is cut into *q-edges*, paper Sec. 1). The predicates here
//! implement the convention:
//!
//! * a **point** belongs to exactly one block: membership is half-open,
//!   `x ∈ [x0, x1) ∧ y ∈ [y0, y1)`;
//! * a **segment** belongs to a block if its clip against the *closed*
//!   block has positive length, or degenerates to a single point that is
//!   half-open inside the block.
//!
//! With integer endpoint coordinates inside a power-of-two world, every
//! split line produced by recursive halving has a dyadic coordinate, so
//! all the `f64` comparisons involved are exact — the quadtree builds are
//! fully deterministic with no epsilon tuning.

pub mod intersect;
pub mod morton;
pub mod point;
pub mod rect;
pub mod segment;

pub use intersect::{clip_segment_closed, seg_in_block, segments_intersect};
pub use morton::{hilbert_d, z_order, NodePath, Quadrant};
pub use point::Point;
pub use rect::Rect;
pub use segment::LineSeg;
