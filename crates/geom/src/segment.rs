//! Line segments — the spatial objects indexed by every structure in the
//! paper.

use crate::point::Point;
use crate::rect::Rect;
use std::fmt;

/// A line segment between two endpoints.
///
/// Degenerate (zero-length) segments are permitted by the constructor but
/// rejected by the dataset generators; the index builds treat them as a
/// point with two coincident endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineSeg {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl LineSeg {
    /// Constructs a segment.
    pub const fn new(a: Point, b: Point) -> Self {
        LineSeg { a, b }
    }

    /// Segment from raw coordinates `(ax, ay)`–`(bx, by)`.
    pub fn from_coords(ax: f64, ay: f64, bx: f64, by: f64) -> Self {
        LineSeg::new(Point::new(ax, ay), Point::new(bx, by))
    }

    /// The segment's minimum bounding box (an R-tree leaf entry,
    /// paper Sec. 2.3).
    pub fn bbox(&self) -> Rect {
        Rect::from_corners(self.a, self.b)
    }

    /// Midpoint, the key of the O(1) R-tree mean split (paper Sec. 4.7).
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Euclidean length.
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// `true` when both endpoints coincide.
    pub fn is_degenerate(&self) -> bool {
        self.a == self.b
    }

    /// Number of this segment's endpoints for which `pred` holds
    /// (0, 1 or 2) — the `EPs` field of the PM₁ split decision
    /// (paper Fig. 20).
    pub fn count_endpoints_where<F: Fn(Point) -> bool>(&self, pred: F) -> u8 {
        pred(self.a) as u8 + pred(self.b) as u8
    }

    /// The point on the segment closest to `p`.
    pub fn closest_point_to(&self, p: Point) -> Point {
        let d = self.b - self.a;
        let len2 = d.x * d.x + d.y * d.y;
        if len2 == 0.0 {
            return self.a;
        }
        let t = ((p.x - self.a.x) * d.x + (p.y - self.a.y) * d.y) / len2;
        let t = t.clamp(0.0, 1.0);
        self.a + d * t
    }

    /// Squared distance from `p` to the segment.
    pub fn dist2_to_point(&self, p: Point) -> f64 {
        self.closest_point_to(p).dist2(p)
    }

    /// The same segment with endpoints swapped.
    pub fn reversed(&self) -> LineSeg {
        LineSeg::new(self.b, self.a)
    }

    /// A canonical form with endpoints in lexicographic order, so that a
    /// segment and its reversal compare equal after canonicalization.
    pub fn canonical(&self) -> LineSeg {
        if self.a.lex_cmp(&self.b).is_le() {
            *self
        } else {
            self.reversed()
        }
    }
}

impl fmt::Display for LineSeg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}—{}", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bbox_and_midpoint() {
        let s = LineSeg::from_coords(3.0, 1.0, 1.0, 5.0);
        assert_eq!(s.bbox(), Rect::from_coords(1.0, 1.0, 3.0, 5.0));
        assert_eq!(s.midpoint(), Point::new(2.0, 3.0));
    }

    #[test]
    fn endpoint_counting() {
        let s = LineSeg::from_coords(0.0, 0.0, 4.0, 0.0);
        let r = Rect::from_coords(0.0, 0.0, 2.0, 2.0);
        assert_eq!(s.count_endpoints_where(|p| r.contains_half_open(p)), 1);
        assert_eq!(s.count_endpoints_where(|p| r.contains(p)), 1);
        let r2 = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        assert_eq!(s.count_endpoints_where(|p| r2.contains_half_open(p)), 2);
    }

    #[test]
    fn closest_point_and_distance() {
        let s = LineSeg::from_coords(0.0, 0.0, 4.0, 0.0);
        assert_eq!(
            s.closest_point_to(Point::new(2.0, 3.0)),
            Point::new(2.0, 0.0)
        );
        assert_eq!(s.dist2_to_point(Point::new(2.0, 3.0)), 9.0);
        // Beyond the endpoint, the endpoint is closest.
        assert_eq!(
            s.closest_point_to(Point::new(9.0, 0.0)),
            Point::new(4.0, 0.0)
        );
        assert_eq!(s.dist2_to_point(Point::new(9.0, 0.0)), 25.0);
    }

    #[test]
    fn degenerate_segment() {
        let s = LineSeg::from_coords(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert_eq!(s.length(), 0.0);
        assert_eq!(
            s.closest_point_to(Point::new(5.0, 5.0)),
            Point::new(1.0, 1.0)
        );
    }

    #[test]
    fn canonical_ordering() {
        let s = LineSeg::from_coords(5.0, 0.0, 1.0, 2.0);
        let c = s.canonical();
        assert_eq!(c.a, Point::new(1.0, 2.0));
        assert_eq!(c, s.reversed().canonical());
    }
}
