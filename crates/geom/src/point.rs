//! 2-D points.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point in the plane. Coordinates are `f64`, but the spatial index
/// builds keep them on an integer grid inside a power-of-two world so that
/// recursive halving stays exact (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Squared Euclidean distance to `other`.
    pub fn dist2(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    pub fn dist(&self, other: Point) -> f64 {
        self.dist2(other).sqrt()
    }

    /// The midpoint of `self` and `other`.
    pub fn midpoint(&self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// 2-D cross product of `(b - self)` and `(c - self)`; positive when
    /// the triple turns counter-clockwise. The fundamental orientation
    /// predicate behind segment intersection tests.
    pub fn cross(&self, b: Point, c: Point) -> f64 {
        (b.x - self.x) * (c.y - self.y) - (b.y - self.y) * (c.x - self.x)
    }

    /// Lexicographic ordering by `(x, y)` via `total_cmp` (usable as a sort
    /// key even though `f64` is not `Ord`).
    pub fn lex_cmp(&self, other: &Point) -> std::cmp::Ordering {
        self.x
            .total_cmp(&other.x)
            .then_with(|| self.y.total_cmp(&other.y))
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, s: f64) -> Point {
        Point::new(self.x * s, self.y * s)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist2(b), 25.0);
        assert_eq!(a.dist(b), 5.0);
        assert_eq!(a.midpoint(b), Point::new(1.5, 2.0));
    }

    #[test]
    fn orientation_sign() {
        let o = Point::new(0.0, 0.0);
        let e = Point::new(1.0, 0.0);
        assert!(o.cross(e, Point::new(0.0, 1.0)) > 0.0); // CCW
        assert!(o.cross(e, Point::new(0.0, -1.0)) < 0.0); // CW
        assert_eq!(o.cross(e, Point::new(2.0, 0.0)), 0.0); // collinear
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(3.0, -1.0);
        assert_eq!(a + b, Point::new(4.0, 1.0));
        assert_eq!(b - a, Point::new(2.0, -3.0));
        assert_eq!(a * 2.0, Point::new(2.0, 4.0));
    }

    #[test]
    fn lexicographic_order() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(1.0, 6.0);
        let c = Point::new(2.0, 0.0);
        assert!(a.lex_cmp(&b).is_lt());
        assert!(b.lex_cmp(&c).is_lt());
        assert!(a.lex_cmp(&a).is_eq());
    }
}
