//! Axis-aligned rectangles: quadtree blocks and R-tree bounding boxes.

use crate::point::Point;
use std::fmt;

/// An axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
///
/// Used both as a quadtree *block* (where point membership is half-open,
/// see [`Rect::contains_half_open`]) and as an R-tree *bounding box*
/// (where containment/overlap are closed, as in Guttman's formulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Constructs a rectangle from two corners.
    ///
    /// # Panics
    ///
    /// Panics if `min.x > max.x` or `min.y > max.y` (degenerate
    /// zero-extent rectangles — points and horizontal/vertical slabs —
    /// are allowed; inverted ones are not).
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "inverted rectangle: min {min}, max {max}"
        );
        Rect { min, max }
    }

    /// Rectangle from the coordinates `(x0, y0)`–`(x1, y1)`.
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// The smallest rectangle containing both endpoints of a pair.
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect::new(
            Point::new(a.x.min(b.x), a.y.min(b.y)),
            Point::new(a.x.max(b.x), a.y.max(b.y)),
        )
    }

    /// A degenerate rectangle covering a single point. The MBB seed used
    /// by the PM₁ endpoint-bounding-box computation (paper Sec. 4.5).
    pub fn point(p: Point) -> Self {
        Rect::new(p, p)
    }

    /// An "empty" rectangle that is the identity of [`Rect::union`]: any
    /// union with it returns the other operand. Its extents are inverted
    /// infinities, so it contains nothing.
    pub fn empty() -> Self {
        Rect {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// `true` for the [`Rect::empty`] identity value.
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// Width of the rectangle.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area (zero for degenerate rectangles, zero for empty).
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter margin, the tie-break metric of R\*-style splits.
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Closed containment: boundary points count as inside.
    pub fn contains(&self, p: Point) -> bool {
        !self.is_empty()
            && p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
    }

    /// Half-open containment `[min, max)`: the quadtree *point membership*
    /// convention. Every point of a subdivided block belongs to exactly
    /// one child.
    pub fn contains_half_open(&self, p: Point) -> bool {
        !self.is_empty()
            && p.x >= self.min.x
            && p.x < self.max.x
            && p.y >= self.min.y
            && p.y < self.max.y
    }

    /// Closed containment of another rectangle.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        other.is_empty()
            || (!self.is_empty()
                && self.min.x <= other.min.x
                && self.min.y <= other.min.y
                && self.max.x >= other.max.x
                && self.max.y >= other.max.y)
    }

    /// Closed overlap test (shared boundary counts as intersecting).
    pub fn intersects(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Intersection rectangle, or [`Rect::empty`] when disjoint.
    pub fn intersection(&self, other: &Rect) -> Rect {
        if !self.intersects(other) {
            return Rect::empty();
        }
        Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        }
    }

    /// Area of overlap with `other` (the split-quality metric of paper
    /// Sec. 4.7).
    pub fn overlap_area(&self, other: &Rect) -> f64 {
        self.intersection(other).area()
    }

    /// Smallest rectangle covering both operands. `empty()` is the
    /// identity.
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// Grows the rectangle to cover a point.
    pub fn expand_to(&self, p: Point) -> Rect {
        self.union(&Rect::point(p))
    }

    /// The increase in area required to cover `other` — Guttman's
    /// least-enlargement insertion heuristic.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The four equal quadrants of this block, in the order
    /// **NW, NE, SW, SE** (the child order used throughout the quadtree
    /// builds and by [`crate::morton::Quadrant`]).
    pub fn quadrants(&self) -> [Rect; 4] {
        let c = self.center();
        [
            Rect::from_coords(self.min.x, c.y, c.x, self.max.y), // NW
            Rect::from_coords(c.x, c.y, self.max.x, self.max.y), // NE
            Rect::from_coords(self.min.x, self.min.y, c.x, c.y), // SW
            Rect::from_coords(c.x, self.min.y, self.max.x, c.y), // SE
        ]
    }

    /// Minimum squared distance from `p` to this rectangle (zero when
    /// inside); the pruning bound for nearest-neighbour searches.
    pub fn dist2_to_point(&self, p: Point) -> f64 {
        if self.is_empty() {
            return f64::INFINITY;
        }
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} – {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    #[test]
    fn basic_metrics() {
        let a = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.width(), 4.0);
        assert_eq!(a.height(), 2.0);
        assert_eq!(a.area(), 8.0);
        assert_eq!(a.margin(), 6.0);
        assert_eq!(a.center(), Point::new(2.0, 1.0));
    }

    #[test]
    fn containment_closed_vs_half_open() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let boundary = Point::new(2.0, 1.0);
        assert!(a.contains(boundary));
        assert!(!a.contains_half_open(boundary));
        let inside = Point::new(0.0, 0.0);
        assert!(a.contains_half_open(inside));
    }

    #[test]
    fn half_open_quadrants_partition_points() {
        let a = r(0.0, 0.0, 8.0, 8.0);
        let quads = a.quadrants();
        // Sample points on a grid; each must be in exactly one quadrant.
        for xi in 0..8 {
            for yi in 0..8 {
                let p = Point::new(xi as f64, yi as f64);
                let n = quads.iter().filter(|q| q.contains_half_open(p)).count();
                assert_eq!(n, 1, "point {p} in {n} quadrants");
            }
        }
    }

    #[test]
    fn quadrant_order_is_nw_ne_sw_se() {
        let a = r(0.0, 0.0, 8.0, 8.0);
        let q = a.quadrants();
        assert_eq!(q[0], r(0.0, 4.0, 4.0, 8.0), "NW");
        assert_eq!(q[1], r(4.0, 4.0, 8.0, 8.0), "NE");
        assert_eq!(q[2], r(0.0, 0.0, 4.0, 4.0), "SW");
        assert_eq!(q[3], r(4.0, 0.0, 8.0, 4.0), "SE");
    }

    #[test]
    fn union_and_intersection() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let b = r(1.0, 1.0, 3.0, 3.0);
        assert_eq!(a.union(&b), r(0.0, 0.0, 3.0, 3.0));
        assert_eq!(a.intersection(&b), r(1.0, 1.0, 2.0, 2.0));
        assert_eq!(a.overlap_area(&b), 1.0);
        let c = r(5.0, 5.0, 6.0, 6.0);
        assert!(!a.intersects(&c));
        assert!(a.intersection(&c).is_empty());
        assert_eq!(a.overlap_area(&c), 0.0);
    }

    #[test]
    fn empty_is_union_identity() {
        let a = r(1.0, 2.0, 3.0, 4.0);
        let e = Rect::empty();
        assert_eq!(e.union(&a), a);
        assert_eq!(a.union(&e), a);
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        assert!(!e.contains(Point::new(0.0, 0.0)));
        assert!(a.contains_rect(&e));
    }

    #[test]
    fn shared_boundary_counts_as_intersecting() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0);
        assert!(a.intersects(&b));
        assert_eq!(a.overlap_area(&b), 0.0);
    }

    #[test]
    fn enlargement_metric() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        let inside = r(0.5, 0.5, 1.0, 1.0);
        assert_eq!(a.enlargement(&inside), 0.0);
        let outside = r(0.0, 0.0, 4.0, 2.0);
        assert_eq!(a.enlargement(&outside), 4.0);
    }

    #[test]
    fn distance_to_point() {
        let a = r(0.0, 0.0, 2.0, 2.0);
        assert_eq!(a.dist2_to_point(Point::new(1.0, 1.0)), 0.0);
        assert_eq!(a.dist2_to_point(Point::new(5.0, 1.0)), 9.0);
        assert_eq!(a.dist2_to_point(Point::new(5.0, 6.0)), 25.0);
    }

    #[test]
    #[should_panic(expected = "inverted rectangle")]
    fn inverted_rect_panics() {
        let _ = r(2.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn point_rect_is_degenerate_not_empty() {
        let p = Rect::point(Point::new(1.0, 1.0));
        assert!(!p.is_empty());
        assert_eq!(p.area(), 0.0);
        assert!(p.contains(Point::new(1.0, 1.0)));
    }
}
