//! Intersection predicates and clipping.
//!
//! The quadtree node split (paper Sec. 4.6) asks, for every line in a
//! splitting node, *does the line intersect the split axis within the
//! node?* — answered here by clipping the segment to each candidate child
//! block and applying the membership convention described in the crate
//! docs. The spatial join and the query surface additionally need the
//! segment–segment intersection test.

use crate::point::Point;
use crate::rect::Rect;
use crate::segment::LineSeg;

/// Clips `seg` against the **closed** rectangle `rect` (Liang–Barsky).
///
/// Returns the clipped sub-segment, or `None` when the segment misses the
/// rectangle entirely. A degenerate result (both endpoints equal) means
/// the segment touches the rectangle in exactly one point.
pub fn clip_segment_closed(seg: &LineSeg, rect: &Rect) -> Option<LineSeg> {
    if rect.is_empty() {
        return None;
    }
    let d = seg.b - seg.a;
    // Degenerate segment: a point.
    if d.x == 0.0 && d.y == 0.0 {
        return rect.contains(seg.a).then_some(*seg);
    }
    let mut t0 = 0.0f64;
    let mut t1 = 1.0f64;
    // Each boundary contributes p·t <= q.
    let checks = [
        (-d.x, seg.a.x - rect.min.x), // x >= min.x
        (d.x, rect.max.x - seg.a.x),  // x <= max.x
        (-d.y, seg.a.y - rect.min.y), // y >= min.y
        (d.y, rect.max.y - seg.a.y),  // y <= max.y
    ];
    for (p, q) in checks {
        if p == 0.0 {
            if q < 0.0 {
                return None; // parallel and outside
            }
        } else {
            let t = q / p;
            if p < 0.0 {
                if t > t1 {
                    return None;
                }
                if t > t0 {
                    t0 = t;
                }
            } else {
                if t < t0 {
                    return None;
                }
                if t < t1 {
                    t1 = t;
                }
            }
        }
    }
    if t0 > t1 {
        return None;
    }
    let p0 = seg.a + d * t0;
    let p1 = seg.a + d * t1;
    Some(LineSeg::new(p0, p1))
}

/// Block membership: does `seg` belong to the quadtree block `rect`?
///
/// `true` when the clip of `seg` against the closed block has positive
/// length, or degenerates to a single touch point that lies half-open
/// inside the block (so a vertex sitting exactly on a shared block
/// boundary belongs to exactly one block, while a segment crossing the
/// boundary belongs to both blocks it passes through — the q-edge
/// convention of paper Sec. 1).
pub fn seg_in_block(seg: &LineSeg, rect: &Rect) -> bool {
    match clip_segment_closed(seg, rect) {
        None => false,
        Some(c) => {
            if c.a == c.b {
                rect.contains_half_open(c.a)
            } else {
                true
            }
        }
    }
}

/// Closed segment–segment intersection test, including endpoint touches
/// and collinear overlap.
pub fn segments_intersect(s1: &LineSeg, s2: &LineSeg) -> bool {
    let d1 = s2.a.cross(s2.b, s1.a);
    let d2 = s2.a.cross(s2.b, s1.b);
    let d3 = s1.a.cross(s1.b, s2.a);
    let d4 = s1.a.cross(s1.b, s2.b);

    if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
        && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    {
        return true;
    }
    (d1 == 0.0 && on_segment(s2, s1.a))
        || (d2 == 0.0 && on_segment(s2, s1.b))
        || (d3 == 0.0 && on_segment(s1, s2.a))
        || (d4 == 0.0 && on_segment(s1, s2.b))
}

/// Is `p` (already known collinear with `s`) within `s`'s extent?
fn on_segment(s: &LineSeg, p: Point) -> bool {
    p.x >= s.a.x.min(s.b.x)
        && p.x <= s.a.x.max(s.b.x)
        && p.y >= s.a.y.min(s.b.y)
        && p.y <= s.a.y.max(s.b.y)
}

/// Squared distance between two segments (zero if they intersect) — used
/// by distance-based queries.
pub fn seg_seg_dist2(s1: &LineSeg, s2: &LineSeg) -> f64 {
    if segments_intersect(s1, s2) {
        return 0.0;
    }

    s1.dist2_to_point(s2.a)
        .min(s1.dist2_to_point(s2.b))
        .min(s2.dist2_to_point(s1.a))
        .min(s2.dist2_to_point(s1.b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    fn s(ax: f64, ay: f64, bx: f64, by: f64) -> LineSeg {
        LineSeg::from_coords(ax, ay, bx, by)
    }

    #[test]
    fn clip_fully_inside() {
        let seg = s(1.0, 1.0, 2.0, 2.0);
        let rect = r(0.0, 0.0, 4.0, 4.0);
        assert_eq!(clip_segment_closed(&seg, &rect), Some(seg));
    }

    #[test]
    fn clip_crossing() {
        let seg = s(-2.0, 1.0, 6.0, 1.0);
        let rect = r(0.0, 0.0, 4.0, 4.0);
        let c = clip_segment_closed(&seg, &rect).unwrap();
        assert_eq!(c, s(0.0, 1.0, 4.0, 1.0));
    }

    #[test]
    fn clip_miss() {
        let seg = s(-2.0, -1.0, -1.0, -2.0);
        let rect = r(0.0, 0.0, 4.0, 4.0);
        assert!(clip_segment_closed(&seg, &rect).is_none());
    }

    #[test]
    fn clip_corner_touch_is_degenerate() {
        // Passes exactly through the corner (4, 4).
        let seg = s(3.0, 5.0, 5.0, 3.0);
        let rect = r(0.0, 0.0, 4.0, 4.0);
        let c = clip_segment_closed(&seg, &rect).unwrap();
        assert!(c.is_degenerate());
        assert_eq!(c.a, Point::new(4.0, 4.0));
    }

    #[test]
    fn clip_degenerate_point_segment() {
        let inside = s(1.0, 1.0, 1.0, 1.0);
        let rect = r(0.0, 0.0, 4.0, 4.0);
        assert!(clip_segment_closed(&inside, &rect).is_some());
        let outside = s(9.0, 9.0, 9.0, 9.0);
        assert!(clip_segment_closed(&outside, &rect).is_none());
    }

    #[test]
    fn block_membership_positive_length() {
        let rect = r(0.0, 0.0, 4.0, 4.0);
        assert!(seg_in_block(&s(1.0, 1.0, 2.0, 2.0), &rect));
        assert!(seg_in_block(&s(-2.0, 2.0, 9.0, 2.0), &rect));
        assert!(!seg_in_block(&s(5.0, 5.0, 6.0, 6.0), &rect));
    }

    #[test]
    fn block_membership_boundary_conventions() {
        // Two sibling blocks sharing the edge x = 4.
        let left = r(0.0, 0.0, 4.0, 8.0);
        let right = r(4.0, 0.0, 8.0, 8.0);
        // A segment crossing the shared edge belongs to both blocks.
        let crossing = s(2.0, 2.0, 6.0, 2.0);
        assert!(seg_in_block(&crossing, &left));
        assert!(seg_in_block(&crossing, &right));
        // A segment whose endpoint merely touches the shared edge from the
        // right has positive length only in the right block; its touch
        // point (4, 2) is half-open-inside the right block only.
        let touching = s(4.0, 2.0, 6.0, 2.0);
        let c = clip_segment_closed(&touching, &left).unwrap();
        assert!(c.is_degenerate());
        assert!(!seg_in_block(&touching, &left));
        assert!(seg_in_block(&touching, &right));
        // A segment lying along the shared edge has positive length in
        // both closed blocks and belongs to both.
        let along = s(4.0, 1.0, 4.0, 3.0);
        assert!(seg_in_block(&along, &left));
        assert!(seg_in_block(&along, &right));
    }

    #[test]
    fn membership_vertex_on_corner_belongs_to_one_quadrant() {
        let root = r(0.0, 0.0, 8.0, 8.0);
        let quads = root.quadrants();
        // Segment ending exactly at the center point (4,4).
        let seg = s(4.0, 4.0, 4.5, 4.5);
        let members: Vec<usize> = (0..4).filter(|&q| seg_in_block(&seg, &quads[q])).collect();
        // Positive length only in NE; the touch point at (4,4) is half-open
        // in NE as well, so membership is exactly {NE}.
        assert_eq!(members, vec![1]);
    }

    #[test]
    fn seg_seg_basic_cross() {
        assert!(segments_intersect(
            &s(0.0, 0.0, 4.0, 4.0),
            &s(0.0, 4.0, 4.0, 0.0)
        ));
        assert!(!segments_intersect(
            &s(0.0, 0.0, 1.0, 1.0),
            &s(2.0, 2.0, 3.0, 1.0)
        ));
    }

    #[test]
    fn seg_seg_endpoint_touch() {
        assert!(segments_intersect(
            &s(0.0, 0.0, 2.0, 2.0),
            &s(2.0, 2.0, 4.0, 0.0)
        ));
        // T-junction.
        assert!(segments_intersect(
            &s(0.0, 0.0, 4.0, 0.0),
            &s(2.0, 0.0, 2.0, 3.0)
        ));
    }

    #[test]
    fn seg_seg_collinear() {
        // Overlapping collinear segments intersect.
        assert!(segments_intersect(
            &s(0.0, 0.0, 3.0, 0.0),
            &s(2.0, 0.0, 5.0, 0.0)
        ));
        // Disjoint collinear segments do not.
        assert!(!segments_intersect(
            &s(0.0, 0.0, 1.0, 0.0),
            &s(2.0, 0.0, 3.0, 0.0)
        ));
    }

    #[test]
    fn seg_seg_distance() {
        assert_eq!(
            seg_seg_dist2(&s(0.0, 0.0, 4.0, 4.0), &s(0.0, 4.0, 4.0, 0.0)),
            0.0
        );
        assert_eq!(
            seg_seg_dist2(&s(0.0, 0.0, 2.0, 0.0), &s(0.0, 3.0, 2.0, 3.0)),
            9.0
        );
    }
}
