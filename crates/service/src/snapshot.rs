//! Service snapshot persistence and warm restart.
//!
//! A serving [`QueryService`] is, durably speaking, three things: the
//! epoch-base segment collection, the per-shard bucket PMR trees built
//! over it, and the write overlay (tombstones + pending inserts + the
//! overlay ladder tree). This module persists all of them in one
//! [`dp_spatial::snapshot`] file (family
//! [`SnapshotFamily::Service`]) and restores a service from it without
//! rebuilding a single tree — the *warm restart* path.
//!
//! ## Layout (service section tags, ≥ 16)
//!
//! ```text
//! header  family=Service, elements = base segment count
//! [0] META        u64 lane: shard_grid, capacity, max_depth,
//!                 num_shards, epoch, has_ladder
//! [1] WORLD       f64 lane: min.x min.y max.x max.y
//! [2] BASE_SEGS   epoch-base segments (SoA lanes)
//! [3] TOMBSTONES  sorted base ids deleted since the epoch
//! [4] PENDING     overlay segments inserted since the epoch
//! [5] LADDER      overlay quadtree   (only when has_ladder = 1)
//! then per shard i (row-major):
//!     SHARD_IDS   the shard's local→global id table
//!     SHARD_TREE  the shard's bucket PMR quadtree
//! ```
//!
//! Shard tiles and local segment copies are *derived* state — the tile
//! from the grid, the local segments by gathering `BASE_SEGS` through
//! `SHARD_IDS` — so they are reconstructed, not stored, and cannot
//! disagree with the base collection.
//!
//! ## The restart ladder
//!
//! [`QueryService::try_restore_or_build`] is the recovery ladder's new
//! first rung: parse and cross-validate the snapshot (CRCs, version,
//! config echo, world, recomputed shard assignment) and serve straight
//! from it; on *any* failure — missing file, torn write, version bump,
//! config drift — fall through to the existing cold build from
//! segments, recording one [`RecoveryAction::ColdRestart`] event with
//! the typed cause. Nothing on this path panics: a hostile snapshot is
//! rejected by checksums and bounds checks before any tree is trusted.
//!
//! Writes are atomic (unique temp file + rename via
//! [`write_snapshot_atomic`]), so a crash mid-save leaves the previous
//! snapshot intact. Torn-write behaviour is exercised by
//! [`FaultSite::SnapshotTorn`](scan_model::FaultSite): a seeded fault
//! plan passed to [`QueryService::save_snapshot_with_faults`] flips a
//! bit or truncates the encoded stream at a deterministic offset, and
//! the differential suite asserts the reader refuses every such file.

use crate::{
    make_machine, QueryService, QueryServiceConfig, RecoveryAction, RecoveryEvent, ServingState,
    Shard, ShardCore, ShardCounters, WindowCache,
};
use dp_geom::{LineSeg, Rect};
use dp_spatial::quadtree::DpQuadtree;
use dp_spatial::shard::{ShardGrid, ShardIndex};
use dp_spatial::snapshot::{
    ids_from_payload, ids_payload, quadtree_from_payload, quadtree_payload, segs_from_payload,
    segs_payload, u64s_from_payload, u64s_payload, write_snapshot_atomic, SnapshotFamily,
    SnapshotReader, SnapshotWriter,
};
use dp_spatial::{SegId, SpatialError};
use scan_model::{soa, FaultPlan};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{Arc, Mutex, RwLock};

/// Service snapshot section tags. Disjoint from the single-tree tags in
/// [`dp_spatial::snapshot::tags`] (all < 16) so a mixed-up payload can
/// never parse as the wrong layout.
pub mod tags {
    /// Scalar metadata lane (config echo + epoch + ladder flag).
    pub const META: u32 = 16;
    /// The service world rectangle.
    pub const WORLD: u32 = 17;
    /// Epoch-base segment collection.
    pub const BASE_SEGS: u32 = 18;
    /// Sorted tombstoned base ids.
    pub const TOMBSTONES: u32 = 19;
    /// Pending overlay segments.
    pub const PENDING: u32 = 20;
    /// The overlay ladder quadtree (present iff pending is non-empty).
    pub const LADDER: u32 = 21;
    /// One shard's local→global id table.
    pub const SHARD_IDS: u32 = 24;
    /// One shard's bucket PMR quadtree.
    pub const SHARD_TREE: u32 = 25;
}

/// Number of `u64` scalars in the META section.
const META_LEN: usize = 6;

fn rect_payload(r: &Rect) -> Vec<u8> {
    soa::f64_lane_bytes(&[r.min.x, r.min.y, r.max.x, r.max.y]).into_owned()
}

fn rect_from_payload(payload: &[u8]) -> Result<Rect, SpatialError> {
    let vals = soa::f64_lane_from_bytes(payload)
        .filter(|v| v.len() == 4)
        .ok_or(SpatialError::SnapshotMalformed {
            reason: "world rect must be exactly four coordinates",
        })?;
    Ok(Rect::from_coords(vals[0], vals[1], vals[2], vals[3]))
}

/// Everything [`QueryService::try_restore_or_build`] needs to stand a
/// service back up, decoded and cross-validated but not yet wired to
/// machines.
struct DecodedService {
    epoch: u64,
    segs: Vec<LineSeg>,
    tombstones: Vec<SegId>,
    pending: Vec<LineSeg>,
    ladder: Option<DpQuadtree>,
    shards: Vec<(Vec<SegId>, DpQuadtree)>,
}

fn malformed(reason: &'static str) -> SpatialError {
    SpatialError::SnapshotMalformed { reason }
}

/// Decodes and cross-validates a service snapshot against the build
/// request it must satisfy: the config echo (everything that shapes the
/// trees), the world, and the recomputed shard assignment all have to
/// agree, or the caller falls back to a cold build.
fn decode_service(
    bytes: &[u8],
    config: &QueryServiceConfig,
    world: Rect,
    grid: ShardGrid,
) -> Result<DecodedService, SpatialError> {
    let reader = SnapshotReader::parse(bytes)?;
    if reader.family() != SnapshotFamily::Service {
        return Err(malformed("not a service snapshot"));
    }
    let meta = u64s_from_payload(reader.expect(0, tags::META)?)?;
    if meta.len() != META_LEN {
        return Err(malformed("meta lane has the wrong number of scalars"));
    }
    let [shard_grid, capacity, max_depth, num_shards, epoch, has_ladder] =
        [meta[0], meta[1], meta[2], meta[3], meta[4], meta[5]];
    if shard_grid != u64::from(config.shard_grid)
        || capacity != config.capacity as u64
        || max_depth != config.max_depth as u64
    {
        return Err(malformed("snapshot was taken under a different config"));
    }
    if num_shards != grid.num_shards() as u64 {
        return Err(malformed("shard count does not match the grid"));
    }
    if has_ladder > 1 {
        return Err(malformed("ladder flag must be 0 or 1"));
    }
    if rect_from_payload(reader.expect(1, tags::WORLD)?)? != world {
        return Err(malformed("snapshot covers a different world"));
    }
    let segs = segs_from_payload(reader.expect(2, tags::BASE_SEGS)?)?;
    if segs.len() as u64 != reader.elements() {
        return Err(malformed("element count disagrees with the base lane"));
    }
    let tombstones = ids_from_payload(reader.expect(3, tags::TOMBSTONES)?)?;
    if !tombstones.windows(2).all(|w| w[0] < w[1])
        || tombstones.last().is_some_and(|&t| t as usize >= segs.len())
    {
        return Err(malformed("tombstones must be sorted, unique base ids"));
    }
    let pending = segs_from_payload(reader.expect(4, tags::PENDING)?)?;
    if (has_ladder == 1) == pending.is_empty() {
        return Err(malformed("ladder presence disagrees with pending inserts"));
    }
    let shard_base = 5 + has_ladder as usize;
    let ladder = if has_ladder == 1 {
        Some(quadtree_from_payload(reader.expect(5, tags::LADDER)?)?)
    } else {
        None
    };
    if reader.num_sections() != shard_base + 2 * grid.num_shards() {
        return Err(malformed("section count disagrees with the shard count"));
    }
    // The id tables must equal the assignment a cold build would compute
    // over the same collection — the strongest cheap consistency check we
    // have, and it guarantees routing stays exact after a warm restart.
    let assignment = grid.assign_segments(&segs);
    let mut shards = Vec::with_capacity(grid.num_shards());
    for (i, expected) in assignment.iter().enumerate() {
        let ids = ids_from_payload(reader.expect(shard_base + 2 * i, tags::SHARD_IDS)?)?;
        if &ids != expected {
            return Err(malformed("shard id table disagrees with the assignment"));
        }
        let tree = quadtree_from_payload(reader.expect(shard_base + 2 * i + 1, tags::SHARD_TREE)?)?;
        shards.push((ids, tree));
    }
    Ok(DecodedService {
        epoch,
        segs,
        tombstones,
        pending,
        ladder,
        shards,
    })
}

impl QueryService {
    /// Encodes the current serving state as a snapshot byte stream.
    ///
    /// Refuses (typed, no panic) when the state is not faithfully
    /// persistable: a degraded shard has no tree to save, and an overlay
    /// layer (spatial-join services) is not part of the format.
    pub fn encode_snapshot(&self) -> Result<Vec<u8>, SpatialError> {
        self.encode_snapshot_with(None)
    }

    fn encode_snapshot_with(&self, plan: Option<Arc<FaultPlan>>) -> Result<Vec<u8>, SpatialError> {
        if !self.overlay_segs.is_empty() {
            return Err(malformed("cannot snapshot a service with an overlay layer"));
        }
        let st = self.state_snapshot();
        let mut shard_parts = Vec::with_capacity(st.shards.len());
        for shard in st.shards.iter() {
            if shard.degraded.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(malformed("cannot snapshot a degraded service"));
            }
            let core = shard.snapshot();
            let Some(index) = core.index else {
                return Err(malformed("cannot snapshot a degraded service"));
            };
            shard_parts.push(index);
        }
        let mut w = SnapshotWriter::new(SnapshotFamily::Service, st.segs.len() as u64);
        if let Some(plan) = plan {
            w = w.with_fault_plan(plan);
        }
        let has_ladder = st.ladder.is_some();
        w.section(
            tags::META,
            &u64s_payload(&[
                u64::from(self.config.shard_grid),
                self.config.capacity as u64,
                self.config.max_depth as u64,
                st.shards.len() as u64,
                st.epoch,
                u64::from(has_ladder),
            ]),
        );
        w.section(tags::WORLD, &rect_payload(&self.world));
        w.section(tags::BASE_SEGS, &segs_payload(&st.segs));
        w.section(tags::TOMBSTONES, &ids_payload(&st.tombstones));
        w.section(tags::PENDING, &segs_payload(&st.pending));
        if let Some(ladder) = &st.ladder {
            w.section(tags::LADDER, &quadtree_payload(ladder));
        }
        for index in &shard_parts {
            w.section(tags::SHARD_IDS, &ids_payload(&index.global_ids));
            w.section(tags::SHARD_TREE, &quadtree_payload(&index.tree));
        }
        Ok(w.finish())
    }

    /// Persists the serving state to `path` atomically (temp + rename).
    ///
    /// Unpersistable states (degraded shard, overlay layer) surface as
    /// [`std::io::ErrorKind::Unsupported`]; everything else is plain IO.
    pub fn save_snapshot(&self, path: &Path) -> std::io::Result<()> {
        self.save_snapshot_with_faults(path, None)
    }

    /// [`QueryService::save_snapshot`] under a fault plan: an armed
    /// [`FaultSite::SnapshotTorn`](scan_model::FaultSite) site damages
    /// the encoded bytes (bit flip or truncation at a seeded offset)
    /// *silently* — the file writes "successfully" and the damage must
    /// be caught by the reader's checksums, exactly like real bit rot.
    pub fn save_snapshot_with_faults(
        &self,
        path: &Path,
        plan: Option<Arc<FaultPlan>>,
    ) -> std::io::Result<()> {
        let bytes = self
            .encode_snapshot_with(plan)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::Unsupported, e.to_string()))?;
        write_snapshot_atomic(path, &bytes)
    }

    /// Stands a service up from a decoded snapshot: fresh machines and
    /// counters (forked from `plan` exactly as a cold build forks it, so
    /// fault determinism is restart-invariant), every tree taken from
    /// the snapshot verbatim.
    fn from_decoded(
        config: QueryServiceConfig,
        world: Rect,
        grid: ShardGrid,
        plan: &Arc<FaultPlan>,
        decoded: DecodedService,
    ) -> QueryService {
        let segs = Arc::new(decoded.segs);
        let mut shards = Vec::with_capacity(decoded.shards.len());
        for (i, (global_ids, tree)) in decoded.shards.into_iter().enumerate() {
            let shard_plan = Arc::new(plan.fork(i as u64));
            let machine = make_machine(&config, &shard_plan);
            let local_segs: Vec<LineSeg> = global_ids.iter().map(|&g| segs[g as usize]).collect();
            let index = ShardIndex {
                tile: grid.tile_of(i),
                tree,
                segs: local_segs,
                global_ids: global_ids.clone(),
            };
            shards.push(Shard {
                tile: grid.tile_of(i),
                assigned: global_ids,
                overlay_assigned: Vec::new(),
                plan: shard_plan,
                counters: ShardCounters::new(),
                retries: AtomicU64::new(0),
                rebuilds: AtomicU64::new(0),
                degraded: AtomicBool::new(false),
                build_trace: Vec::new(),
                core: Mutex::new(ShardCore {
                    machine: Arc::new(machine),
                    index: Some(Arc::new(index)),
                    overlay: None,
                    join: None,
                }),
            });
        }
        let ladder_plan = Arc::new(plan.fork(grid.num_shards() as u64));
        let ladder_machine = make_machine(&config, &ladder_plan);
        QueryService {
            config,
            grid,
            world,
            state: RwLock::new(Arc::new(ServingState {
                epoch: decoded.epoch,
                segs,
                shards: Arc::new(shards),
                tombstones: decoded.tombstones,
                pending: decoded.pending,
                ladder: decoded.ladder.map(Arc::new),
            })),
            overlay_segs: Vec::new(),
            ladder_plan,
            ladder_machine,
            requests: AtomicU64::new(0),
            knn_rounds: AtomicU64::new(0),
            join_requests: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            failed_compactions: AtomicU64::new(0),
            events: Mutex::new(Vec::new()),
            cache: WindowCache::new(config.cache_capacity),
            defer_compaction: AtomicBool::new(false),
        }
    }

    /// The warm-restart rung of the recovery ladder: restore the service
    /// from the snapshot at `path` if it exists, parses, and agrees with
    /// this build request; otherwise cold-build from `segs` exactly as
    /// [`QueryService::try_build_with_faults`] would, recording one
    /// [`RecoveryAction::ColdRestart`] event carrying the typed reason
    /// the snapshot was refused.
    ///
    /// Returns `(service, warm)` — `warm` is `true` when the snapshot
    /// was served from. `Err` is reserved for the cold path's own
    /// validation failures (invalid config, out-of-world segments); a
    /// bad *snapshot* never fails the call.
    pub fn try_restore_or_build(
        config: QueryServiceConfig,
        world: Rect,
        segs: Vec<LineSeg>,
        overlay: Vec<LineSeg>,
        plan: Arc<FaultPlan>,
        path: &Path,
    ) -> Result<(QueryService, bool), SpatialError> {
        config.validate()?;
        let grid = ShardGrid::new(world, config.shard_grid);
        let attempt = if overlay.is_empty() {
            match std::fs::read(path) {
                Ok(bytes) => decode_service(&bytes, &config, world, grid),
                Err(_) => Err(malformed("snapshot file is missing or unreadable")),
            }
        } else {
            Err(malformed(
                "cannot warm-restart a service with an overlay layer",
            ))
        };
        match attempt {
            Ok(decoded) => Ok((
                QueryService::from_decoded(config, world, grid, &plan, decoded),
                true,
            )),
            Err(cause) => {
                let svc = QueryService::try_build_with_faults(config, world, segs, overlay, plan)?;
                svc.push_event(RecoveryEvent {
                    shard: svc.grid.num_shards(),
                    action: RecoveryAction::ColdRestart,
                    error: cause,
                });
                Ok((svc, false))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Response;
    use dp_workloads::{request_stream, uniform_segments, Request, RequestMix};
    use scan_model::FaultSite;

    fn snapshot_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dp-service-snap-{name}-{}", std::process::id()));
        p
    }

    fn probe_requests(world: Rect, seed: u64) -> Vec<Request> {
        request_stream(world, 40, RequestMix::default(), seed)
    }

    #[test]
    fn round_trip_restores_identical_answers() {
        let data = uniform_segments(400, 64, 8, 21);
        let config = QueryServiceConfig::sequential(2);
        let svc = QueryService::build(config, data.world, data.segs.clone());
        let path = snapshot_path("roundtrip");
        svc.save_snapshot(&path).unwrap();

        let (warm, was_warm) = QueryService::try_restore_or_build(
            config,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            &path,
        )
        .unwrap();
        assert!(was_warm, "snapshot should have been served from");
        assert!(warm.recovery_events().is_empty());

        let requests = probe_requests(data.world, 7);
        assert_eq!(svc.execute_batch(&requests), warm.execute_batch(&requests));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overlay_state_survives_the_round_trip() {
        let data = uniform_segments(200, 64, 8, 22);
        let config = QueryServiceConfig {
            compact_threshold: 10_000, // keep writes in the overlay
            ..QueryServiceConfig::sequential(2)
        };
        let svc = QueryService::build(config, data.world, data.segs.clone());
        // Some writes: pending inserts, a tombstone, a pending delete.
        let writes = [
            Request::Insert(LineSeg::from_coords(1.0, 1.0, 5.0, 3.0)),
            Request::Insert(LineSeg::from_coords(9.0, 9.0, 13.0, 11.0)),
            Request::Delete(3),
            Request::Insert(LineSeg::from_coords(20.0, 20.0, 22.0, 29.0)),
            Request::Delete(data.segs.len() as SegId), // a pending segment
        ];
        for r in &writes {
            assert!(
                !matches!(
                    &svc.execute_batch(std::slice::from_ref(r))[0],
                    Response::Rejected(_)
                ),
                "setup write rejected: {r:?}"
            );
        }
        let path = snapshot_path("overlay");
        svc.save_snapshot(&path).unwrap();

        let (warm, was_warm) = QueryService::try_restore_or_build(
            config,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            &path,
        )
        .unwrap();
        assert!(was_warm);
        assert_eq!(svc.segments(), warm.segments());
        let requests = probe_requests(data.world, 8);
        assert_eq!(svc.execute_batch(&requests), warm.execute_batch(&requests));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_and_mismatched_snapshots_fall_through_cold() {
        let data = uniform_segments(120, 64, 8, 23);
        let config = QueryServiceConfig::sequential(2);
        let path = snapshot_path("missing");
        std::fs::remove_file(&path).ok();
        let (svc, warm) = QueryService::try_restore_or_build(
            config,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            &path,
        )
        .unwrap();
        assert!(!warm);
        let events = svc.recovery_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].action, RecoveryAction::ColdRestart);

        // A config that shapes the trees differently must refuse the
        // snapshot even though the file itself is pristine.
        svc.save_snapshot(&path).unwrap();
        let other = QueryServiceConfig {
            capacity: config.capacity + 1,
            ..config
        };
        let (cold, warm) = QueryService::try_restore_or_build(
            other,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            &path,
        )
        .unwrap();
        assert!(!warm);
        assert!(cold
            .recovery_events()
            .iter()
            .any(|e| e.action == RecoveryAction::ColdRestart
                && matches!(e.error, SpatialError::SnapshotMalformed { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn degraded_and_overlay_services_refuse_to_save() {
        let data = uniform_segments(80, 64, 8, 24);
        let svc = QueryService::build_with_overlay(
            QueryServiceConfig::sequential(1),
            data.world,
            data.segs.clone(),
            vec![LineSeg::from_coords(1.0, 1.0, 2.0, 2.0)],
        );
        assert_eq!(
            svc.encode_snapshot().err(),
            Some(malformed("cannot snapshot a service with an overlay layer"))
        );
    }

    #[test]
    fn torn_save_is_refused_by_the_reader_and_falls_through_cold() {
        let data = uniform_segments(150, 64, 8, 25);
        let config = QueryServiceConfig::sequential(2);
        let svc = QueryService::build(config, data.world, data.segs.clone());
        let path = snapshot_path("torn");
        let plan = Arc::new(FaultPlan::once_at(FaultSite::SnapshotTorn, 2));
        svc.save_snapshot_with_faults(&path, Some(plan.clone()))
            .unwrap();
        assert_eq!(plan.fired(FaultSite::SnapshotTorn), 1, "tear must fire");

        let (cold, warm) = QueryService::try_restore_or_build(
            config,
            data.world,
            data.segs.clone(),
            Vec::new(),
            Arc::new(FaultPlan::disabled()),
            &path,
        )
        .unwrap();
        assert!(!warm, "a torn snapshot must not serve");
        let requests = probe_requests(data.world, 9);
        assert_eq!(svc.execute_batch(&requests), cold.execute_batch(&requests));
        std::fs::remove_file(&path).ok();
    }
}
