//! Hot-window result cache with write-versioned invalidation.
//!
//! Read-heavy serving traffic repeats windows: dashboards poll the same
//! viewport, retries re-ask the question, popular regions stay popular.
//! The cache stores the *merged, logical-id* answer of a window (or
//! point) probe keyed on the canonical bit pattern of its rectangle, so
//! a hit skips routing, every shard descent and the merge entirely.
//!
//! ## Invalidation (why this is correct)
//!
//! Responses are phrased in *logical* ids — positions in the eager
//! collection (`Vec::push` per insert, `Vec::remove` per delete; see
//! `ServingState` in the crate root). Three events can change a cached
//! answer, and each is handled at its own precision:
//!
//! * **Insert.** An insert appends at the end: no existing logical id
//!   moves. The only answers it can change are windows the new segment
//!   intersects, and a segment intersecting a window implies its
//!   bounding box intersects the window rectangle — so evicting every
//!   entry whose rect intersects the new segment's bbox (a conservative
//!   overlap test) covers all of them. Non-overlapping entries remain
//!   exactly correct.
//! * **Delete.** Removing logical id `j` shifts every id `> j` down by
//!   one, so even answers whose geometry is untouched become stale.
//!   There is no cheap precise test — a delete flushes the whole cache.
//! * **Epoch swap (compaction).** The logical collection is unchanged
//!   by construction, but the swap is the natural coarse barrier the
//!   issue's epoch-based scheme rides: the cache is cleared so no entry
//!   ever outlives the state generation it was computed against.
//!
//! ## The insertion race
//!
//! A reader may snapshot the serving state, compute an answer, and try
//! to cache it *after* a write has already invalidated — caching then
//! would resurrect a stale answer. Every mutation therefore bumps a
//! *write version* under the cache lock, a miss hands the reader the
//! version it missed at, and [`WindowCache::admit`] drops the insertion
//! unless the version is still current. Since writers bump the version
//! only **after** publishing the new serving state (both while holding
//! the service's state write lock), a reader whose admit succeeds at
//! version `v` provably computed its answer from the newest state of
//! version `v` — see DESIGN §13 for the full argument.

use dp_geom::Rect;
use dp_spatial::SegId;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, PoisonError};

/// Which probe family a cached answer belongs to. `Window` and
/// `PointInWindow` answers differ in response kind, so they never share
/// an entry even when a window degenerates to a point's rect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// A `Request::Window` answer.
    Window,
    /// A `Request::PointInWindow` answer.
    PointInWindow,
    /// A `Request::Skyline` answer, keyed by its window; the payload is
    /// the final skyline id set, not the window candidates. Inserts
    /// invalidate by the same bbox-overlap test: a segment can only
    /// change a window's skyline if it intersects the window.
    Skyline,
    /// A `Request::DominanceAgg` answer, keyed by the query's dominated
    /// rectangle (world min corner to the query point); the payload is
    /// the aggregate triple encoded as six `u32` words. A write can
    /// only change the aggregate if the segment intersects that
    /// rectangle, so bbox-overlap invalidation stays conservative.
    DominanceAgg,
}

/// Canonical cache key: the probe kind plus the exact bit pattern of
/// the window rectangle (`f64::to_bits` per corner — bit-identical
/// windows hit, anything else misses; no tolerance, no hashing of
/// floats by value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    kind: CacheKind,
    bits: [u64; 4],
}

impl CacheKey {
    fn new(kind: CacheKind, rect: &Rect) -> Self {
        CacheKey {
            kind,
            bits: [
                rect.min.x.to_bits(),
                rect.min.y.to_bits(),
                rect.max.x.to_bits(),
                rect.max.y.to_bits(),
            ],
        }
    }
}

struct CacheEntry {
    /// The window rectangle, kept for the insert-time overlap test.
    rect: Rect,
    ids: Arc<Vec<SegId>>,
    /// Hit since admission (or since its last reprieve) — the
    /// second-chance bit that keeps hot entries resident while one-shot
    /// probes churn through capacity.
    referenced: bool,
}

struct CacheInner {
    /// Bumped under the lock by every invalidation; [`WindowCache::admit`]
    /// refuses insertions carrying an older version.
    version: u64,
    map: HashMap<CacheKey, CacheEntry>,
    /// Admission order for second-chance (CLOCK) eviction: the victim is
    /// the oldest entry *not* hit since it was admitted or last spared.
    order: VecDeque<CacheKey>,
    hits: u64,
    misses: u64,
    admitted: u64,
    invalidations: u64,
}

/// Outcome of a cache probe: the answer, or a miss token carrying the
/// version to present back to [`WindowCache::admit`].
pub enum CacheLookup {
    /// The cached, still-valid answer.
    Hit(Arc<Vec<SegId>>),
    /// No valid entry; the payload is the current write version.
    Miss(u64),
}

/// Point-in-time cache counters (see [`WindowCache::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no valid entry.
    pub misses: u64,
    /// Answers accepted by [`WindowCache::admit`] (stale-version
    /// insertions are dropped and not counted).
    pub admitted: u64,
    /// Write-version bumps (inserts, deletes, epoch swaps).
    pub invalidations: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// The hot-window result cache. All methods take `&self`; a single
/// internal mutex covers the map and the write version so invalidation
/// and admission are mutually atomic. A `capacity` of 0 disables the
/// cache (every lookup misses, every admit drops).
pub struct WindowCache {
    capacity: usize,
    inner: Mutex<CacheInner>,
}

impl WindowCache {
    /// A cache holding at most `capacity` window answers.
    pub fn new(capacity: usize) -> Self {
        WindowCache {
            capacity,
            inner: Mutex::new(CacheInner {
                version: 0,
                map: HashMap::new(),
                order: VecDeque::new(),
                hits: 0,
                misses: 0,
                admitted: 0,
                invalidations: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // The lock only ever guards plain map/counter updates — nothing
        // inside can panic halfway through an invariant, so poison (from
        // a panicking *test* thread, say) is safe to clear.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Looks up the answer for `(kind, rect)`. A miss returns the
    /// current write version; pass it back to [`WindowCache::admit`]
    /// with the computed answer.
    pub fn lookup(&self, kind: CacheKind, rect: &Rect) -> CacheLookup {
        let mut inner = self.lock();
        match inner.map.get_mut(&CacheKey::new(kind, rect)) {
            Some(entry) => {
                entry.referenced = true;
                let ids = entry.ids.clone();
                inner.hits += 1;
                CacheLookup::Hit(ids)
            }
            None => {
                inner.misses += 1;
                CacheLookup::Miss(inner.version)
            }
        }
    }

    /// Offers a computed answer for caching. Dropped silently when
    /// `version` is no longer current — a write landed between the miss
    /// and this call, so the answer may describe a superseded state.
    pub fn admit(&self, kind: CacheKind, rect: &Rect, version: u64, ids: Arc<Vec<SegId>>) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.version != version {
            return;
        }
        let key = CacheKey::new(kind, rect);
        match inner.map.entry(key) {
            MapEntry::Occupied(_) => {}
            MapEntry::Vacant(slot) => {
                slot.insert(CacheEntry {
                    rect: *rect,
                    ids,
                    referenced: false,
                });
                inner.order.push_back(key);
                inner.admitted += 1;
                while inner.map.len() > self.capacity {
                    // Second chance: an entry hit since admission gets
                    // its bit cleared and goes to the back instead of
                    // dying, so one-shot probes churning through
                    // capacity cannot evict the hot set. Terminates:
                    // every iteration evicts, drops a stale key, or
                    // clears one referenced bit (bits are finite). Keys
                    // whose entries were invalidated away fall through.
                    match inner.order.pop_front() {
                        Some(old) => match inner.map.get_mut(&old) {
                            Some(e) if e.referenced => {
                                e.referenced = false;
                                inner.order.push_back(old);
                            }
                            Some(_) => {
                                inner.map.remove(&old);
                            }
                            None => {}
                        },
                        None => break,
                    }
                }
            }
        }
    }

    /// Invalidation for an accepted insert: evicts every entry whose
    /// window intersects `bbox` (the inserted segment's bounding box —
    /// a segment can only change answers of windows its bbox touches)
    /// and bumps the write version so in-flight answers from before the
    /// insert cannot be admitted.
    pub fn note_insert(&self, bbox: &Rect) {
        let mut inner = self.lock();
        inner.version += 1;
        inner.invalidations += 1;
        inner.map.retain(|_, entry| !entry.rect.intersects(bbox));
    }

    /// Invalidation for an accepted delete: a delete shifts every
    /// logical id above the removed one, so *all* cached answers may be
    /// stale — the cache is flushed wholesale.
    pub fn note_delete(&self) {
        self.flush();
    }

    /// Invalidation for an epoch swap: the logical collection is
    /// unchanged by compaction, but no entry outlives its epoch — the
    /// coarse barrier that keeps the invalidation argument (DESIGN §13)
    /// independent of compaction internals.
    pub fn note_epoch_swap(&self) {
        self.flush();
    }

    fn flush(&self) {
        let mut inner = self.lock();
        inner.version += 1;
        inner.invalidations += 1;
        inner.map.clear();
        inner.order.clear();
    }

    /// Current counters and residency.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            admitted: inner.admitted,
            invalidations: inner.invalidations,
            entries: inner.map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::from_coords(x0, y0, x1, y1)
    }

    fn miss_version(cache: &WindowCache, kind: CacheKind, r: &Rect) -> u64 {
        match cache.lookup(kind, r) {
            CacheLookup::Miss(v) => v,
            CacheLookup::Hit(_) => panic!("expected a miss"),
        }
    }

    #[test]
    fn admit_then_hit_round_trips() {
        let cache = WindowCache::new(8);
        let q = rect(0.0, 0.0, 4.0, 4.0);
        let v = miss_version(&cache, CacheKind::Window, &q);
        cache.admit(CacheKind::Window, &q, v, Arc::new(vec![1, 2, 3]));
        match cache.lookup(CacheKind::Window, &q) {
            CacheLookup::Hit(ids) => assert_eq!(*ids, vec![1, 2, 3]),
            CacheLookup::Miss(_) => panic!("expected a hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn kinds_do_not_share_entries() {
        let cache = WindowCache::new(8);
        let q = rect(1.0, 1.0, 1.0, 1.0);
        let v = miss_version(&cache, CacheKind::Window, &q);
        cache.admit(CacheKind::Window, &q, v, Arc::new(vec![7]));
        assert!(matches!(
            cache.lookup(CacheKind::PointInWindow, &q),
            CacheLookup::Miss(_)
        ));
    }

    #[test]
    fn overlapping_insert_evicts_disjoint_insert_does_not() {
        let cache = WindowCache::new(8);
        let near = rect(0.0, 0.0, 4.0, 4.0);
        let far = rect(10.0, 10.0, 12.0, 12.0);
        for q in [&near, &far] {
            let v = miss_version(&cache, CacheKind::Window, q);
            cache.admit(CacheKind::Window, q, v, Arc::new(Vec::new()));
        }
        // A segment bbox overlapping `near` only.
        cache.note_insert(&rect(3.0, 3.0, 5.0, 5.0));
        assert!(matches!(
            cache.lookup(CacheKind::Window, &near),
            CacheLookup::Miss(_)
        ));
        assert!(matches!(
            cache.lookup(CacheKind::Window, &far),
            CacheLookup::Hit(_)
        ));
    }

    #[test]
    fn delete_flushes_everything() {
        let cache = WindowCache::new(8);
        let q = rect(20.0, 20.0, 24.0, 24.0);
        let v = miss_version(&cache, CacheKind::Window, &q);
        cache.admit(CacheKind::Window, &q, v, Arc::new(vec![5]));
        cache.note_delete();
        assert!(matches!(
            cache.lookup(CacheKind::Window, &q),
            CacheLookup::Miss(_)
        ));
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn stale_version_admissions_are_dropped() {
        let cache = WindowCache::new(8);
        let q = rect(0.0, 0.0, 4.0, 4.0);
        let v = miss_version(&cache, CacheKind::Window, &q);
        // A write lands between the miss and the admit.
        cache.note_insert(&rect(1.0, 1.0, 2.0, 2.0));
        cache.admit(CacheKind::Window, &q, v, Arc::new(vec![9]));
        assert!(matches!(
            cache.lookup(CacheKind::Window, &q),
            CacheLookup::Miss(_)
        ));
        assert_eq!(cache.stats().admitted, 0);
    }

    #[test]
    fn capacity_evicts_in_admission_order() {
        let cache = WindowCache::new(2);
        let windows = [
            rect(0.0, 0.0, 1.0, 1.0),
            rect(2.0, 0.0, 3.0, 1.0),
            rect(4.0, 0.0, 5.0, 1.0),
        ];
        for q in &windows {
            let v = miss_version(&cache, CacheKind::Window, q);
            cache.admit(CacheKind::Window, q, v, Arc::new(Vec::new()));
        }
        // Oldest evicted, newest two resident.
        assert!(matches!(
            cache.lookup(CacheKind::Window, &windows[0]),
            CacheLookup::Miss(_)
        ));
        assert!(matches!(
            cache.lookup(CacheKind::Window, &windows[1]),
            CacheLookup::Hit(_)
        ));
        assert!(matches!(
            cache.lookup(CacheKind::Window, &windows[2]),
            CacheLookup::Hit(_)
        ));
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn hit_entries_survive_one_shot_churn() {
        // Second chance: a hot entry that keeps getting hits outlives a
        // stream of one-shot admissions larger than capacity.
        let cache = WindowCache::new(4);
        let hot = rect(0.0, 0.0, 2.0, 2.0);
        let v = miss_version(&cache, CacheKind::Window, &hot);
        cache.admit(CacheKind::Window, &hot, v, Arc::new(vec![42]));
        for i in 0..32 {
            // Touch the hot window, then admit a cold one-shot probe.
            assert!(matches!(
                cache.lookup(CacheKind::Window, &hot),
                CacheLookup::Hit(_)
            ));
            let cold = rect(10.0 + i as f64, 0.0, 10.5 + i as f64, 0.5);
            let v = miss_version(&cache, CacheKind::PointInWindow, &cold);
            cache.admit(CacheKind::PointInWindow, &cold, v, Arc::new(Vec::new()));
        }
        match cache.lookup(CacheKind::Window, &hot) {
            CacheLookup::Hit(ids) => assert_eq!(*ids, vec![42]),
            CacheLookup::Miss(_) => panic!("hot entry churned out"),
        }
        assert!(cache.stats().entries <= 4);
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = WindowCache::new(0);
        let q = rect(0.0, 0.0, 1.0, 1.0);
        let v = miss_version(&cache, CacheKind::Window, &q);
        cache.admit(CacheKind::Window, &q, v, Arc::new(vec![1]));
        assert!(matches!(
            cache.lookup(CacheKind::Window, &q),
            CacheLookup::Miss(_)
        ));
    }
}
