//! Load driver: replays a workload request stream against the sharded
//! query service at configurable concurrency and reports throughput plus
//! the service's per-shard statistics.
//!
//! ```text
//! load_driver [--workload uniform|clustered|roads|rings|paper]
//!             [--segments N] [--requests N] [--shards G] [--threads T]
//!             [--flush N] [--batch N] [--seed S] [--sequential]
//!             [--overlay N] [--fault-seed S] [--fault-rate R] [--self-check]
//! ```
//!
//! The stream is split across `T` driver threads; each thread slices its
//! share into `--batch`-sized calls to `QueryService::execute_batch`, so
//! the service sees concurrent mixed batches the way a front end would
//! deliver them. `--overlay N` builds a second segment layer of `N`
//! segments and folds windowed `Join` requests into the stream; the
//! per-shard frontier-join round table is printed after the run.
//! `--fault-seed S` attaches a seeded `FaultPlan` (round aborts and
//! arena overflows at `--fault-rate`, default 0.01) so the run exercises
//! the recovery ladder; recovery events are printed after the run.
//! `--self-check` re-runs a sample of the stream against brute force
//! after the timed run — it also passes under injected faults, since
//! recovered and degraded shards answer bit-identically.
//! `--updates` switches to the `WITH_UPDATES` mix: insert and delete
//! requests ride the stream, exercising the overlay ladder and
//! epoch-swapped compaction; with `--self-check` a prefix of the stream
//! is replayed sequentially on a fresh service against an eager
//! insert/delete oracle.
//!
//! `--snapshot-dir DIR` persists the service's serving state to
//! `DIR/service.snap` after the (closed-loop) run, and `--warm-restart`
//! builds the service *from* that snapshot instead of rebuilding the
//! trees — printing the warm-vs-cold construction timing and falling
//! back to a cold build (with the typed reason) whenever the snapshot
//! is missing, corrupt, or inconsistent with the requested
//! configuration. Together the two flags script a restart: run once
//! with `--snapshot-dir`, run again adding `--warm-restart`, and
//! `--self-check` on the second run verifies the restored service
//! bit-for-bit against brute force over its own restored collection.
//!
//! `--rate R` switches the driver to *open loop*: requests arrive on a
//! pre-generated Poisson schedule at `R` req/s and flow through the
//! pipelined admission layer (`ServicePipeline`) instead of direct
//! `execute_batch` calls. Arrival does not slow down when the service
//! does, so queueing delay becomes visible: the driver reports
//! p50/p99/p999 end-to-end latency from its own fixed-bucket histogram,
//! plus how many requests the admission layer shed (`--policy shed`,
//! the default) or how hard backpressure throttled the submitter
//! (`--policy block`). `--slo-p999 MICROS` turns the run into a smoke
//! gate: exit nonzero when the p999 bucket bound exceeds the budget.
//! `--self-check` also works open loop: read-only runs verify a sample
//! of the *served pipeline responses* against brute force (updates runs
//! fall back to the sequential oracle replay described above).
//! `--sweep` replaces the single run with a throughput table over
//! shard-grid × lane-count combinations at saturation.

use dp_geom::LineSeg;
use dp_geom::Rect;
use dp_service::{
    brute_knearest, AdmissionPolicy, LatencyHistogram, QueryService, QueryServiceConfig,
    RecoveryAction, Response, ServicePipeline,
};
use dp_spatial::join::brute_force_join_in;
use dp_spatial::SpatialError;
use dp_workloads::{
    clustered_segments, open_loop_schedule, paper_dataset, paper_world, polygon_rings,
    request_stream, request_stream_with_updates, road_network, skew_hot_windows, uniform_segments,
    Dataset, Request, RequestMix,
};
use scan_model::{Backend, FaultMode, FaultPlan, FaultSite};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    workload: String,
    segments: usize,
    requests: usize,
    shards: u32,
    threads: usize,
    flush: usize,
    batch: usize,
    seed: u64,
    sequential: bool,
    overlay: usize,
    fault_seed: Option<u64>,
    fault_rate: f64,
    self_check: bool,
    updates: bool,
    dominance: bool,
    rate: Option<f64>,
    lanes: Option<usize>,
    policy: AdmissionPolicy,
    slo_p999: Option<u64>,
    sweep: bool,
    hot: f64,
    hot_count: usize,
    queue: Option<usize>,
    snapshot_dir: Option<String>,
    warm_restart: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        workload: "uniform".to_string(),
        segments: 20_000,
        requests: 10_000,
        shards: 4,
        threads: 4,
        flush: 1024,
        batch: 512,
        seed: 42,
        sequential: false,
        overlay: 0,
        fault_seed: None,
        fault_rate: 0.01,
        self_check: false,
        updates: false,
        dominance: false,
        rate: None,
        lanes: None,
        policy: AdmissionPolicy::Shed,
        slo_p999: None,
        sweep: false,
        hot: 0.0,
        hot_count: 64,
        queue: None,
        snapshot_dir: None,
        warm_restart: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--workload" => args.workload = value("--workload"),
            "--segments" => args.segments = value("--segments").parse().expect("--segments"),
            "--requests" => args.requests = value("--requests").parse().expect("--requests"),
            "--shards" => args.shards = value("--shards").parse().expect("--shards"),
            "--threads" => {
                args.threads = value("--threads")
                    .parse::<usize>()
                    .expect("--threads")
                    .max(1)
            }
            "--flush" => args.flush = value("--flush").parse().expect("--flush"),
            "--batch" => args.batch = value("--batch").parse::<usize>().expect("--batch").max(1),
            "--seed" => args.seed = value("--seed").parse().expect("--seed"),
            "--sequential" => args.sequential = true,
            "--overlay" => args.overlay = value("--overlay").parse().expect("--overlay"),
            "--fault-seed" => {
                args.fault_seed = Some(value("--fault-seed").parse().expect("--fault-seed"))
            }
            "--fault-rate" => {
                args.fault_rate = value("--fault-rate").parse().expect("--fault-rate")
            }
            "--self-check" => args.self_check = true,
            "--updates" => args.updates = true,
            "--dominance" => args.dominance = true,
            "--rate" => args.rate = Some(value("--rate").parse().expect("--rate")),
            "--lanes" => args.lanes = Some(value("--lanes").parse().expect("--lanes")),
            "--policy" => {
                args.policy = match value("--policy").as_str() {
                    "block" => AdmissionPolicy::Block,
                    "shed" => AdmissionPolicy::Shed,
                    other => panic!("unknown admission policy {other} (block|shed)"),
                }
            }
            "--slo-p999" => args.slo_p999 = Some(value("--slo-p999").parse().expect("--slo-p999")),
            "--sweep" => args.sweep = true,
            "--queue" => args.queue = Some(value("--queue").parse().expect("--queue")),
            "--snapshot-dir" => args.snapshot_dir = Some(value("--snapshot-dir")),
            "--warm-restart" => args.warm_restart = true,
            "--hot" => args.hot = value("--hot").parse().expect("--hot"),
            "--hot-count" => {
                args.hot_count = value("--hot-count")
                    .parse::<usize>()
                    .expect("--hot-count")
                    .max(1)
            }
            "--help" | "-h" => {
                println!(
                    "usage: load_driver [--workload uniform|clustered|roads|rings|paper] \
                     [--segments N] [--requests N] [--shards G] [--threads T] \
                     [--flush N] [--batch N] [--seed S] [--sequential] \
                     [--overlay N] [--fault-seed S] [--fault-rate R] [--self-check] \
                     [--updates] [--dominance] [--rate R] [--lanes N] [--policy block|shed] \
                     [--slo-p999 MICROS] [--sweep] [--hot F] [--hot-count N] [--queue N] \
                     [--snapshot-dir DIR] [--warm-restart]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn load_dataset(args: &Args) -> Dataset {
    let n = args.segments;
    match args.workload.as_str() {
        "uniform" => uniform_segments(n, 1024, 16, args.seed),
        "clustered" => clustered_segments(n, 32, 24, 1024, args.seed),
        "roads" => road_network(64, 1024, args.seed),
        "rings" => polygon_rings(48, 1024, args.seed),
        "paper" => Dataset {
            name: "paper 9-segment example".to_string(),
            world: paper_world(),
            segs: paper_dataset(),
        },
        other => panic!("unknown workload {other}"),
    }
}

fn main() {
    let args = parse_args();
    let data = load_dataset(&args);
    println!(
        "workload: {} ({} segments, world {})",
        data.name,
        data.segs.len(),
        data.world
    );

    if args.sweep {
        sweep(&args, &data);
        return;
    }
    if let Some(rate) = args.rate {
        open_loop_run(&args, &data, rate);
        return;
    }

    let config = QueryServiceConfig {
        shard_grid: args.shards,
        flush_batch: args.flush,
        backend: if args.sequential {
            Backend::Sequential
        } else {
            Backend::Parallel
        },
        ..QueryServiceConfig::default()
    };
    // An overlay layer of the same world, for the windowed join family.
    let overlay_segs = if args.overlay > 0 {
        let side = (data.world.max.x - data.world.min.x) as u32;
        let max_len = (side / 64).clamp(2, 16);
        uniform_segments(args.overlay, side, max_len, args.seed ^ 7).segs
    } else {
        Vec::new()
    };
    if !overlay_segs.is_empty() {
        println!(
            "overlay: {} segments (join family enabled)",
            overlay_segs.len()
        );
    }

    let plan = match args.fault_seed {
        Some(seed) => {
            println!(
                "fault plan: seed {seed}, round-abort + arena-overflow at rate {}",
                args.fault_rate
            );
            Arc::new(
                FaultPlan::new(seed)
                    .with(
                        FaultSite::RoundAbort,
                        FaultMode::Seeded {
                            rate: args.fault_rate,
                        },
                    )
                    .with(
                        FaultSite::ArenaOverflow,
                        FaultMode::Seeded {
                            rate: args.fault_rate,
                        },
                    ),
            )
        }
        None => Arc::new(FaultPlan::disabled()),
    };

    let snap_path = args
        .snapshot_dir
        .as_ref()
        .map(|d| std::path::Path::new(d).join("service.snap"));

    let t0 = Instant::now();
    let service = if let (Some(path), true) = (&snap_path, args.warm_restart) {
        let t_warm = Instant::now();
        let (service, warm) = QueryService::try_restore_or_build(
            config,
            data.world,
            data.segs.clone(),
            overlay_segs.clone(),
            plan,
            path,
        )
        .unwrap_or_else(|e| panic!("service build rejected: {e}"));
        let restore_ms = t_warm.elapsed().as_secs_f64() * 1e3;
        if warm {
            // A reference cold build of the same request, so the run
            // reports the restart speedup it actually bought.
            let t_cold = Instant::now();
            let cold = QueryService::try_build_with_overlay(
                config,
                data.world,
                data.segs.clone(),
                overlay_segs.clone(),
            )
            .unwrap_or_else(|e| panic!("service build rejected: {e}"));
            let cold_ms = t_cold.elapsed().as_secs_f64() * 1e3;
            drop(cold);
            println!(
                "warm restart: served from snapshot in {:.2} ms \
                 (cold build {:.2} ms, {:.1}x faster)",
                restore_ms,
                cold_ms,
                cold_ms / restore_ms.max(1e-9)
            );
        } else {
            let cause = service
                .recovery_events()
                .into_iter()
                .rev()
                .find(|e| e.action == RecoveryAction::ColdRestart)
                .map(|e| e.error.to_string())
                .unwrap_or_else(|| "unknown cause".to_string());
            println!("warm restart: cold fallback in {restore_ms:.2} ms — {cause}");
        }
        service
    } else {
        QueryService::try_build_with_faults(
            config,
            data.world,
            data.segs.clone(),
            overlay_segs.clone(),
            plan,
        )
        .unwrap_or_else(|e| panic!("service build rejected: {e}"))
    };
    println!(
        "built {} shards in {:.1} ms",
        service.num_shards(),
        t0.elapsed().as_secs_f64() * 1e3
    );
    println!("per-shard build trace (rounds / scan passes / peak lanes / arena high water):");
    for s in &service.stats().shards {
        let trace = &s.build_trace;
        let passes: u64 = trace.iter().map(|t| t.scan_passes).sum();
        let peak_lanes = trace.iter().map(|t| t.active_elements).max().unwrap_or(0);
        let arena_hw = trace
            .iter()
            .map(|t| t.arena_high_water_bytes)
            .max()
            .unwrap_or(0);
        let wall: u64 = trace.iter().map(|t| t.wall_nanos).sum();
        println!(
            "  shard {:>3}: {:>3} / {:>5} / {:>8} / {:>7} KiB  ({:.2} ms)",
            s.shard,
            trace.len(),
            passes,
            peak_lanes,
            arena_hw / 1024,
            wall as f64 / 1e6
        );
    }

    let mix = if args.dominance {
        RequestMix::WITH_DOMINANCE
    } else if args.updates {
        RequestMix::WITH_UPDATES
    } else if args.overlay > 0 {
        RequestMix::WITH_JOINS
    } else {
        RequestMix::DEFAULT
    };
    // WITH_DOMINANCE carries writes too, so it rides the update-aware
    // stream generator.
    let mut stream = if args.updates || args.dominance {
        request_stream_with_updates(
            data.world,
            args.requests,
            mix,
            args.seed ^ 1,
            data.segs.len(),
        )
    } else {
        request_stream(data.world, args.requests, mix, args.seed ^ 1)
    };
    if args.hot > 0.0 {
        // Same skew the open-loop path applies — the direct path has no
        // cache, so comparing the two runs isolates what admission buys.
        skew_hot_windows(
            &mut stream,
            &data.world,
            args.hot,
            args.hot_count,
            args.seed ^ 1,
        );
    }
    service.reset_stats();

    let t1 = Instant::now();
    std::thread::scope(|scope| {
        let per_thread = stream.len().div_ceil(args.threads);
        for slice in stream.chunks(per_thread.max(1)) {
            let service = &service;
            scope.spawn(move || {
                for batch in slice.chunks(args.batch) {
                    let out = service.execute_batch(batch);
                    assert_eq!(out.len(), batch.len());
                }
            });
        }
    });
    let elapsed = t1.elapsed().as_secs_f64();

    let stats = service.stats();
    println!(
        "{} requests on {} threads in {:.3} s  →  {:.0} req/s",
        stats.requests,
        args.threads,
        elapsed,
        stats.requests as f64 / elapsed
    );
    println!(
        "probes: {} (fan-out ×{:.2}), knn rounds: {}, scan-model primitives: {}",
        stats.total_probes(),
        stats.total_probes() as f64 / stats.requests.max(1) as f64,
        stats.knn_rounds,
        stats.total_primitives()
    );
    if args.updates {
        println!(
            "epoch: {}, compactions: {} ({} failed), overlay: {} pending / {} tombstones",
            stats.epoch,
            stats.compactions,
            stats.failed_compactions,
            stats.overlay_size,
            stats.tombstones
        );
    }
    for q in [0.5, 0.9, 0.99] {
        if let Some(us) = stats.flush_latency_quantile_micros(q) {
            println!("flush latency p{:<4} < {} µs", (q * 100.0) as u32, us);
        }
    }
    println!("per-shard (segments / probes / batches / max queue / retries / rebuilds / faults):");
    for s in &stats.shards {
        println!(
            "  shard {:>3}: {:>7} / {:>7} / {:>5} / {:>6} / {:>4} / {:>4} / {:>4}{}",
            s.shard,
            s.segments,
            s.probes,
            s.batches,
            s.max_queue_depth,
            s.retries,
            s.rebuilds,
            s.faults_injected,
            if s.degraded { "  [degraded]" } else { "" }
        );
    }
    let events = service.recovery_events();
    if !events.is_empty() {
        println!("recovery events ({}):", events.len());
        for e in &events {
            println!("  shard {:>3}: {:?} — {}", e.shard, e.action, e.error);
        }
    }
    if stats.join_requests > 0 {
        println!(
            "join requests: {} — per-shard frontier-join trace \
             (rounds / pairs / tested / peak frontier / scan passes):",
            stats.join_requests
        );
        for s in &stats.shards {
            let Some(j) = &s.join else { continue };
            let passes: u64 = j.trace.iter().map(|t| t.scan_passes).sum();
            println!(
                "  shard {:>3}: {:>3} / {:>6} / {:>8} / {:>8} / {:>5}",
                s.shard, j.rounds, j.pairs, j.pairs_tested, j.frontier_peak, passes
            );
        }
    }

    if let Some(path) = &snap_path {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("--snapshot-dir: {e}"));
        }
        match service.save_snapshot(path) {
            Ok(()) => {
                let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
                println!("snapshot saved: {} ({bytes} bytes)", path.display());
            }
            Err(e) => println!("snapshot not saved: {e}"),
        }
    }

    if args.self_check && (args.updates || args.dominance) {
        self_check_updates(&args, &data, &stream);
    } else if args.self_check {
        // Brute force runs over the service's own logical collection:
        // identical to the dataset for a fresh build, and the restored
        // state (pending inserts, tombstones included) after a warm
        // restart from a post-writes snapshot.
        let oracle = service.segments();
        let sample: Vec<Request> = stream.iter().step_by(97).copied().collect();
        let out = service.execute_batch(&sample);
        for (i, (r, resp)) in sample.iter().zip(&out).enumerate() {
            match r {
                Request::Window(q) => {
                    let brute: Vec<u32> = (0..oracle.len() as u32)
                        .filter(|&id| {
                            dp_geom::clip_segment_closed(&oracle[id as usize], q).is_some()
                        })
                        .collect();
                    let ids = resp
                        .try_window(i)
                        .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                    assert_eq!(ids, brute, "window {q}");
                }
                Request::PointInWindow(p) => {
                    let q = Rect::point(*p);
                    let brute: Vec<u32> = (0..oracle.len() as u32)
                        .filter(|&id| {
                            dp_geom::clip_segment_closed(&oracle[id as usize], &q).is_some()
                        })
                        .collect();
                    let ids = resp
                        .try_point_in_window(i)
                        .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                    assert_eq!(ids, brute, "point {p:?}");
                }
                Request::KNearest { p, k } => {
                    let found = resp
                        .try_knearest(i)
                        .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                    assert_eq!(found, brute_knearest(&oracle, *p, *k));
                }
                Request::Join(q) => {
                    let pairs = resp
                        .try_join(i)
                        .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                    assert_eq!(
                        pairs,
                        brute_force_join_in(&oracle, &overlay_segs, q),
                        "join window {q}"
                    );
                }
                Request::Skyline(q) => {
                    let ids = resp
                        .try_skyline(i)
                        .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                    assert_eq!(ids, brute_skyline_in(&oracle, q), "skyline {q}");
                }
                Request::DominanceAgg(p) => {
                    let got = resp
                        .try_dominance_agg(i)
                        .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                    assert_eq!(got, brute_dominance_agg(&oracle, *p), "dominance {p:?}");
                }
                Request::Insert(_) | Request::Delete(_) => {
                    unreachable!("writes only appear in --updates/--dominance streams")
                }
            }
        }
        println!("self-check OK over {} sampled requests", sample.len());
    }
}

/// Replays a prefix of the update stream sequentially on a fresh service
/// and checks every response against an eager insert/delete oracle that
/// answers reads by brute force over its live collection.
fn self_check_updates(args: &Args, data: &Dataset, stream: &[Request]) {
    let config = QueryServiceConfig {
        shard_grid: args.shards,
        flush_batch: args.flush,
        backend: if args.sequential {
            Backend::Sequential
        } else {
            Backend::Parallel
        },
        ..QueryServiceConfig::default()
    };
    let service = QueryService::try_build(config, data.world, data.segs.clone())
        .unwrap_or_else(|e| panic!("self-check service build rejected: {e}"));
    let sample = &stream[..stream.len().min(2_000)];
    let mut live: Vec<LineSeg> = data.segs.clone();
    let out = service.execute_batch(sample);
    for (i, (r, resp)) in sample.iter().zip(&out).enumerate() {
        match r {
            Request::Window(q) => {
                let brute: Vec<u32> = (0..live.len() as u32)
                    .filter(|&id| dp_geom::clip_segment_closed(&live[id as usize], q).is_some())
                    .collect();
                let ids = resp
                    .try_window(i)
                    .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                assert_eq!(ids, brute, "window {q}");
            }
            Request::PointInWindow(p) => {
                let q = Rect::point(*p);
                let brute: Vec<u32> = (0..live.len() as u32)
                    .filter(|&id| dp_geom::clip_segment_closed(&live[id as usize], &q).is_some())
                    .collect();
                let ids = resp
                    .try_point_in_window(i)
                    .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                assert_eq!(ids, brute, "point {p:?}");
            }
            Request::KNearest { p, k } => {
                let found = resp
                    .try_knearest(i)
                    .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                assert_eq!(found, brute_knearest(&live, *p, *k));
            }
            Request::Join(_) => unreachable!("the update-family mixes carry no joins"),
            Request::Skyline(q) => {
                let ids = resp
                    .try_skyline(i)
                    .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                assert_eq!(ids, brute_skyline_in(&live, q), "skyline {q}");
            }
            Request::DominanceAgg(p) => {
                let got = resp
                    .try_dominance_agg(i)
                    .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                assert_eq!(got, brute_dominance_agg(&live, *p), "dominance {p:?}");
            }
            Request::Insert(seg) => {
                let got = resp
                    .try_inserted(i)
                    .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                assert_eq!(got, live.len() as u32, "insert logical id");
                live.push(*seg);
            }
            Request::Delete(id) => {
                let got = resp
                    .try_deleted(i)
                    .unwrap_or_else(|e| panic!("sampled request {i}: {e}"));
                assert_eq!(got, *id, "delete echo");
                live.remove(*id as usize);
            }
        }
    }
    let stats = service.stats();
    println!(
        "self-check OK over {} replayed requests (epoch {}, {} compactions)",
        sample.len(),
        stats.epoch,
        stats.compactions
    );
}

/// The service configuration shared by the pipelined run modes. The
/// lane queue bound defaults to the larger of the config default and one
/// flush batch (validation requires `queue_bound >= flush_batch`);
/// `--queue` overrides it to trade shed rate against tail latency.
fn pipeline_config(args: &Args) -> QueryServiceConfig {
    let default = QueryServiceConfig::default();
    QueryServiceConfig {
        shard_grid: args.shards,
        flush_batch: args.flush,
        queue_bound: args.queue.unwrap_or(default.queue_bound).max(args.flush),
        backend: if args.sequential {
            Backend::Sequential
        } else {
            Backend::Parallel
        },
        ..default
    }
}

/// Sleeps until `due`. Oversleep from coarse OS timers is fine for an
/// open-loop driver — late arrivals submit immediately, so the *average*
/// offered rate tracks the schedule — and sleeping (instead of spinning)
/// leaves the CPU to the lane workers, which matters on small machines.
fn pace_until(due: Instant) {
    let now = Instant::now();
    if due > now {
        std::thread::sleep(due - now);
    }
}

/// Open-loop replay: requests flow through the pipelined admission layer
/// on a fixed Poisson arrival schedule, and the driver reports end-to-end
/// latency quantiles plus the admission counters.
fn open_loop_run(args: &Args, data: &Dataset, rate: f64) {
    let t0 = Instant::now();
    let service = Arc::new(
        QueryService::try_build(pipeline_config(args), data.world, data.segs.clone())
            .unwrap_or_else(|e| panic!("service build rejected: {e}")),
    );
    println!(
        "built {} shards in {:.1} ms",
        service.num_shards(),
        t0.elapsed().as_secs_f64() * 1e3
    );

    let mix = if args.dominance {
        RequestMix::WITH_DOMINANCE
    } else if args.updates {
        RequestMix::WITH_UPDATES
    } else {
        RequestMix::DEFAULT
    };
    let mut sched = open_loop_schedule(
        data.world,
        args.requests,
        mix,
        rate,
        args.seed ^ 1,
        data.segs.len(),
    );
    if args.hot > 0.0 {
        let mut reqs: Vec<Request> = sched.arrivals.iter().map(|a| a.request).collect();
        let n = skew_hot_windows(
            &mut reqs,
            &data.world,
            args.hot,
            args.hot_count,
            args.seed ^ 1,
        );
        for (a, r) in sched.arrivals.iter_mut().zip(reqs) {
            a.request = r;
        }
        println!(
            "hot-window skew: {n} of {} requests collapse onto {} hot windows",
            sched.arrivals.len(),
            args.hot_count
        );
    }
    let lanes = args.lanes.unwrap_or_else(|| service.num_shards());
    let pipeline = ServicePipeline::new(Arc::clone(&service), lanes, args.policy)
        .unwrap_or_else(|e| panic!("pipeline rejected: {e}"));
    println!(
        "open loop: {} arrivals at {:.0} req/s over {} lanes, {:?} policy, \
         flush {} / deadline {} µs",
        sched.arrivals.len(),
        rate,
        pipeline.num_lanes(),
        args.policy,
        args.flush,
        QueryServiceConfig::default().coalesce_deadline_micros,
    );
    service.reset_stats();

    let start = Instant::now();
    let mut tickets = Vec::with_capacity(sched.arrivals.len());
    for a in &sched.arrivals {
        pace_until(start + Duration::from_micros(a.at_micros));
        tickets.push(pipeline.submit(a.request));
    }
    let dispatch_secs = start.elapsed().as_secs_f64();

    // Every ticket resolves within the bound or the admission layer has
    // leaked a reply slot — the "no unshed request waits forever" check.
    let mut hist = LatencyHistogram::new();
    let (mut shed, mut rejected) = (0u64, 0u64);
    let mut last_done = start;
    // Sampled responses are retained for the post-run brute-force check;
    // the read-only mixes never mutate state, so every sample can be
    // verified against the initial segment set after the timed run.
    // Update and dominance streams mutate state as they drain, so their
    // sampled replies can't be checked against a static oracle.
    let sample_reads = args.self_check && !args.updates && !args.dominance;
    let mut samples: Vec<(Request, Response)> = Vec::new();
    for (i, t) in tickets.into_iter().enumerate() {
        let submitted = t.submitted_at();
        let (resp, done) = t
            .wait_timeout(Duration::from_secs(10))
            .unwrap_or_else(|_| panic!("a request waited > 10 s: reply slot leaked"));
        if matches!(resp, Response::Rejected(SpatialError::Overloaded { .. })) {
            shed += 1;
        } else {
            if matches!(resp, Response::Rejected(_)) {
                rejected += 1;
            }
            hist.record(done.saturating_duration_since(submitted));
            if sample_reads && i % 97 == 0 {
                samples.push((sched.arrivals[i].request, resp));
            }
        }
        if done > last_done {
            last_done = done;
        }
    }
    let span = last_done
        .saturating_duration_since(start)
        .as_secs_f64()
        .max(1e-9);
    println!(
        "dispatched in {:.3} s (virtual span {:.3} s); served {} + shed {} \
         (+ {} rejected) in {:.3} s  →  {:.0} req/s",
        dispatch_secs,
        sched.span_micros() as f64 / 1e6,
        hist.count(),
        shed,
        rejected,
        span,
        hist.count() as f64 / span,
    );
    println!("latency: {}", hist.summary());

    let stats = service.stats();
    println!("per-shard (admitted / batches / cache hits / shed / max queue / mean wait µs):");
    for s in &stats.shards {
        println!(
            "  shard {:>3}: {:>7} / {:>5} / {:>6} / {:>6} / {:>6} / {:>8.1}",
            s.shard,
            s.admitted,
            s.coalesced_batches,
            s.cache_hits,
            s.shed,
            s.max_queue_depth,
            s.queue_wait_micros as f64 / s.admitted.max(1) as f64,
        );
    }
    let cs = service.cache_stats();
    println!(
        "cache: {} hits / {} misses / {} admitted / {} invalidations",
        cs.hits, cs.misses, cs.admitted, cs.invalidations
    );
    if args.updates {
        let after = service.stats();
        println!(
            "epoch: {}, compactions: {} ({} failed)",
            after.epoch, after.compactions, after.failed_compactions
        );
    }
    drop(pipeline);

    if sample_reads {
        for (i, (req, resp)) in samples.iter().enumerate() {
            match req {
                Request::Window(q) => {
                    let brute: Vec<u32> = (0..data.segs.len() as u32)
                        .filter(|&id| {
                            dp_geom::clip_segment_closed(&data.segs[id as usize], q).is_some()
                        })
                        .collect();
                    let ids = resp
                        .try_window(i)
                        .unwrap_or_else(|e| panic!("sampled open-loop response {i}: {e}"));
                    assert_eq!(ids, brute, "window {q}");
                }
                Request::PointInWindow(p) => {
                    let q = Rect::point(*p);
                    let brute: Vec<u32> = (0..data.segs.len() as u32)
                        .filter(|&id| {
                            dp_geom::clip_segment_closed(&data.segs[id as usize], &q).is_some()
                        })
                        .collect();
                    let ids = resp
                        .try_point_in_window(i)
                        .unwrap_or_else(|e| panic!("sampled open-loop response {i}: {e}"));
                    assert_eq!(ids, brute, "point {p:?}");
                }
                Request::KNearest { p, k } => {
                    let found = resp
                        .try_knearest(i)
                        .unwrap_or_else(|e| panic!("sampled open-loop response {i}: {e}"));
                    assert_eq!(found, brute_knearest(&data.segs, *p, *k));
                }
                // The open-loop mixes carry no joins, and writes are
                // excluded by `sample_reads`; anything else here means
                // the mix and the checker have drifted apart.
                other => unreachable!("unsampled request kind {other:?}"),
            }
        }
        println!(
            "self-check OK over {} sampled open-loop responses",
            samples.len()
        );
    } else if args.self_check {
        // Update streams mutate state as they drain, so sampled replies
        // can't be checked against a static oracle; replay a prefix of
        // the same request sequence against the eager oracle instead.
        let reqs: Vec<Request> = sched.arrivals.iter().map(|a| a.request).collect();
        self_check_updates(args, data, &reqs);
    }

    if let Some(budget) = args.slo_p999 {
        let p999 = hist.quantile_micros(0.999).unwrap_or(0);
        if p999 > budget {
            eprintln!("SLO FAIL: p999 < {p999} µs exceeds the {budget} µs budget");
            std::process::exit(1);
        }
        println!("SLO OK: p999 < {p999} µs within the {budget} µs budget");
    }
}

/// Saturation throughput over shard-grid × lane-count combinations: the
/// whole stream is pushed through a backpressured pipeline as fast as
/// the submitter can go, so the table shows how serving rate scales with
/// the two pool widths.
fn sweep(args: &Args, data: &Dataset) {
    let mix = if args.dominance {
        RequestMix::WITH_DOMINANCE
    } else if args.updates {
        RequestMix::WITH_UPDATES
    } else {
        RequestMix::DEFAULT
    };
    let mut stream = request_stream_with_updates(
        data.world,
        args.requests,
        mix,
        args.seed ^ 1,
        data.segs.len(),
    );
    if args.hot > 0.0 {
        skew_hot_windows(
            &mut stream,
            &data.world,
            args.hot,
            args.hot_count,
            args.seed ^ 1,
        );
    }
    println!(
        "saturation sweep: {} requests, Block policy, flush {}, hot {:.2}",
        stream.len(),
        args.flush,
        args.hot
    );
    println!(
        "{:>6} {:>6} {:>10} {:>9} {:>11}",
        "shards", "lanes", "req/s", "batches", "mean batch"
    );
    for shards in [1u32, 2, 4] {
        for lanes in [1usize, 2, 4, 8] {
            let config = QueryServiceConfig {
                shard_grid: shards,
                ..pipeline_config(args)
            };
            let service = Arc::new(
                QueryService::try_build(config, data.world, data.segs.clone())
                    .unwrap_or_else(|e| panic!("service build rejected: {e}")),
            );
            let pipeline =
                ServicePipeline::new(Arc::clone(&service), lanes, AdmissionPolicy::Block)
                    .unwrap_or_else(|e| panic!("pipeline rejected: {e}"));
            service.reset_stats();
            let t = Instant::now();
            let out = pipeline.submit_all(&stream);
            let secs = t.elapsed().as_secs_f64().max(1e-9);
            assert_eq!(out.len(), stream.len());
            let stats = service.stats();
            let batches: u64 = stats.shards.iter().map(|s| s.coalesced_batches).sum();
            let admitted: u64 = stats.shards.iter().map(|s| s.admitted).sum();
            println!(
                "{:>6} {:>6} {:>10.0} {:>9} {:>11.1}",
                shards,
                lanes,
                stream.len() as f64 / secs,
                batches,
                admitted as f64 / batches.max(1) as f64
            );
        }
    }
}

/// Self-check oracle for `Request::Skyline`: among the segments
/// intersecting the window (closed clip, matching the probe path), the
/// ids whose midpoints no other candidate midpoint dominates under
/// closed max-dominance, sorted ascending.
fn brute_skyline_in(live: &[LineSeg], q: &Rect) -> Vec<u32> {
    let cands: Vec<(u32, f64, f64)> = (0..live.len() as u32)
        .filter(|&id| dp_geom::clip_segment_closed(&live[id as usize], q).is_some())
        .map(|id| {
            let m = live[id as usize].midpoint();
            (id, m.x, m.y)
        })
        .collect();
    let dominates = |a: &(u32, f64, f64), b: &(u32, f64, f64)| {
        a.1 >= b.1 && a.2 >= b.2 && (a.1 > b.1 || a.2 > b.2)
    };
    let mut out: Vec<u32> = cands
        .iter()
        .filter(|p| !cands.iter().any(|c| dominates(c, p)))
        .map(|p| p.0)
        .collect();
    out.sort_unstable();
    out
}

/// Self-check oracle for `Request::DominanceAgg`: `(count, sum, max)`
/// of the quantized-length weights over every live segment whose
/// midpoint lies in the closed lower-left quadrant of the query point
/// (in-world midpoints make the world clip a no-op, so the plain filter
/// matches the service's probe-then-filter exactly).
fn brute_dominance_agg(live: &[LineSeg], p: dp_geom::Point) -> (u64, u64, u64) {
    let mut agg = (0u64, 0u64, 0u64);
    for seg in live {
        let m = seg.midpoint();
        if m.x <= p.x && m.y <= p.y {
            let w = dp_spatial::dominance::dominance_weight(seg);
            agg = (agg.0 + 1, agg.1 + w, agg.2.max(w));
        }
    }
    agg
}
