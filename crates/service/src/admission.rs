//! The pipelined admission layer: bounded per-lane queues, micro-batch
//! coalescing workers, reply slots, and background compaction.
//!
//! [`QueryService::execute_batch`] welds request arrival to round
//! execution: the caller hands over a whole batch and blocks until the
//! last response. [`ServicePipeline`] decouples the two. Arriving
//! requests are routed to a *lane* (by default one per shard, keyed by
//! the first shard the request's geometry overlaps, so a coalesced
//! micro-batch mostly probes a single shard), enqueued on a bounded
//! MPSC queue, and answered through a [`Ticket`] — a condvar-backed
//! reply slot, no async runtime. A worker thread per lane coalesces
//! arrivals into micro-batches under the [`Coalescer`] policy (flush on
//! size `flush_batch` OR a latency deadline) and executes each batch
//! through the unchanged lockstep core, so full batches keep the
//! per-level primitive amortisation the paper's primitives exist for.
//!
//! A full lane applies the configured [`AdmissionPolicy`]: backpressure
//! (block the submitter) or load shedding (immediate typed
//! [`Response::Rejected`]`(`[`SpatialError::Overloaded`]`)`). Writes
//! admitted through a lane no longer compact inline; workers signal a
//! background compactor thread instead, which rebuilds the next epoch
//! off-thread while readers keep serving (see
//! [`QueryService::compact_now`]'s optimistic swap).
//!
//! ## Ordering model
//!
//! Each lane is strictly FIFO: requests admitted to the same lane are
//! executed in admission order, and every read observes all writes
//! admitted before it on its lane (plus any previously *published*
//! writes from other lanes — writes are atomic `Arc` swaps). A pipeline
//! built with one lane therefore serves exactly the eager sequential
//! semantics of [`QueryService::execute_batch`], which is what the
//! differential suite pins; with more lanes, cross-lane order is
//! scheduling-dependent while per-lane order and write atomicity still
//! hold.

use crate::coalesce::{Coalescer, FlushDecision};
use crate::shed::{Admission, AdmissionPolicy};
use crate::{QueryService, Response};
use dp_geom::Rect;
use dp_spatial::SpatialError;
use dp_workloads::Request;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle worker sleeps between shutdown checks when its lane
/// is empty. Latency is unaffected — every enqueue notifies the lane's
/// condvar — this only bounds how stale a shutdown flag can go
/// unnoticed.
const IDLE_POLL: Duration = Duration::from_millis(5);

/// A condvar-backed future for one response: the worker fulfils it, the
/// submitter blocks on [`Ticket::wait`]. No async runtime anywhere.
struct ReplySlot {
    inner: Mutex<Option<(Response, Instant)>>,
    ready: Condvar,
}

impl ReplySlot {
    fn empty() -> Arc<Self> {
        Arc::new(ReplySlot {
            inner: Mutex::new(None),
            ready: Condvar::new(),
        })
    }

    fn fulfilled(response: Response) -> Arc<Self> {
        Arc::new(ReplySlot {
            inner: Mutex::new(Some((response, Instant::now()))),
            ready: Condvar::new(),
        })
    }

    fn fulfil(&self, response: Response) {
        let mut slot = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if slot.is_none() {
            *slot = Some((response, Instant::now()));
        }
        self.ready.notify_all();
    }
}

/// The submitter's handle to one in-flight request.
pub struct Ticket {
    slot: Arc<ReplySlot>,
    lane: usize,
    submitted: Instant,
}

impl Ticket {
    /// Blocks until the response is ready and returns it together with
    /// the instant the worker fulfilled it (so latency can be measured
    /// against the *completion* time even when `wait` is called much
    /// later, as an open-loop driver does).
    pub fn wait_timed(self) -> (Response, Instant) {
        let mut slot = self
            .slot
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(done) = slot.take() {
                return done;
            }
            slot = self
                .slot
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Blocks until the response is ready.
    pub fn wait(self) -> Response {
        self.wait_timed().0
    }

    /// Waits up to `timeout` for the response. `Err(self)` gives the
    /// ticket back on timeout so the caller can keep waiting — used by
    /// the tests that pin "no admitted request waits forever".
    pub fn wait_timeout(self, timeout: Duration) -> Result<(Response, Instant), Ticket> {
        let deadline = Instant::now() + timeout;
        {
            let mut slot = self
                .slot
                .inner
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(done) = slot.take() {
                    return Ok(done);
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _) = self
                    .slot
                    .ready
                    .wait_timeout(slot, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                slot = guard;
            }
        }
        Err(self)
    }

    /// The lane this request was routed to.
    pub fn lane(&self) -> usize {
        self.lane
    }

    /// When the request was submitted (shed tickets included).
    pub fn submitted_at(&self) -> Instant {
        self.submitted
    }
}

/// A condvar-backed future for a whole submitted batch: one mutex and
/// one condvar shared by every member, instead of a [`ReplySlot`]
/// allocation per request. Workers fill all their members of a group
/// under a single lock (see `worker_loop`), which is what makes the
/// bulk [`ServicePipeline::submit_batch`] path cheap enough to saturate
/// the engine rather than the dispatcher.
struct GroupSlot {
    inner: Mutex<GroupState>,
    ready: Condvar,
}

/// The fills a worker gathers from one drained micro-batch, grouped per
/// distinct [`GroupSlot`] so each group pays one lock and one wakeup.
type GroupFills = Vec<(Arc<GroupSlot>, Vec<(usize, Response)>)>;

struct GroupState {
    responses: Vec<Option<(Response, Instant)>>,
    done: usize,
}

impl GroupSlot {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(GroupSlot {
            inner: Mutex::new(GroupState {
                responses: (0..n).map(|_| None).collect(),
                done: 0,
            }),
            ready: Condvar::new(),
        })
    }

    /// Fills several members under one lock and one wakeup. All members
    /// filled together share one completion instant — they completed in
    /// the same micro-batch, so that is also the honest timestamp.
    fn fulfil_many(&self, fills: impl IntoIterator<Item = (usize, Response)>) {
        let now = Instant::now();
        let mut state = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        for (index, response) in fills {
            if state.responses[index].is_none() {
                state.responses[index] = Some((response, now));
                state.done += 1;
            }
        }
        self.ready.notify_all();
    }
}

/// The submitter's handle to one bulk-submitted batch.
pub struct BatchTicket {
    group: Arc<GroupSlot>,
    n: usize,
    submitted: Instant,
}

impl BatchTicket {
    /// Blocks until every member is answered; responses come back in
    /// submission order, shed members as
    /// [`Response::Rejected`]`(`[`SpatialError::Overloaded`]`)`.
    pub fn wait_all(self) -> Vec<Response> {
        self.wait_all_timed().into_iter().map(|(r, _)| r).collect()
    }

    /// Like [`BatchTicket::wait_all`], pairing each response with the
    /// instant its micro-batch completed.
    pub fn wait_all_timed(self) -> Vec<(Response, Instant)> {
        let mut state = self
            .group
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        while state.done < self.n {
            state = self
                .group
                .ready
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
        state
            .responses
            .iter_mut()
            .map(|slot| slot.take().expect("done == n implies every slot filled"))
            .collect()
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// When the batch was submitted.
    pub fn submitted_at(&self) -> Instant {
        self.submitted
    }
}

/// Where a worker writes one request's response.
enum ReplyHandle {
    /// Individually submitted: its own slot.
    Single(Arc<ReplySlot>),
    /// Bulk-submitted: member `index` of a shared group.
    Group { group: Arc<GroupSlot>, index: usize },
}

/// One queued request awaiting its micro-batch.
struct Envelope {
    request: Request,
    slot: ReplyHandle,
    enqueued: Instant,
}

/// One admission lane: a bounded MPSC queue plus the condvars that make
/// it blocking on both ends.
struct Lane {
    queue: Mutex<Vec<Envelope>>,
    /// Wakes the lane worker on enqueue (and on shutdown).
    nonempty: Condvar,
    /// Wakes blocked submitters when the worker drains.
    space: Condvar,
    bound: usize,
    /// High-water mark of the queue depth since the worker last drained
    /// it into the shard counters — the *steady-state admission depth*
    /// that `ShardStats::max_queue_depth` now reports.
    max_depth: AtomicU64,
    shutdown: AtomicBool,
}

impl Lane {
    fn lock(&self) -> MutexGuard<'_, Vec<Envelope>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Shared state of the background compactor thread.
struct CompactorShared {
    flags: Mutex<CompactorFlags>,
    cv: Condvar,
}

struct CompactorFlags {
    pending: bool,
    shutdown: bool,
}

impl CompactorShared {
    fn signal(&self) {
        let mut flags = self.flags.lock().unwrap_or_else(PoisonError::into_inner);
        flags.pending = true;
        self.cv.notify_one();
    }

    fn stop(&self) {
        let mut flags = self.flags.lock().unwrap_or_else(PoisonError::into_inner);
        flags.shutdown = true;
        self.cv.notify_one();
    }
}

/// The pipelined admission front-end over a [`QueryService`]. Submit
/// requests from any number of threads with [`ServicePipeline::submit`];
/// drop the pipeline to flush every queued request and join the workers.
pub struct ServicePipeline {
    service: Arc<QueryService>,
    lanes: Vec<Arc<Lane>>,
    policy: AdmissionPolicy,
    workers: Vec<JoinHandle<()>>,
    compactor: Option<JoinHandle<()>>,
    compactor_shared: Arc<CompactorShared>,
    shed_total: Arc<AtomicU64>,
    submitted_total: AtomicU64,
}

impl ServicePipeline {
    /// A pipeline with one lane (and one worker thread) per shard — the
    /// default shape, aligning coalesced micro-batches with shard
    /// locality.
    pub fn per_shard(
        service: Arc<QueryService>,
        policy: AdmissionPolicy,
    ) -> Result<Self, SpatialError> {
        let lanes = service.num_shards();
        ServicePipeline::new(service, lanes, policy)
    }

    /// A pipeline with `lanes` admission lanes. Queue bound, flush size
    /// and coalescing deadline come from the service's validated
    /// [`QueryServiceConfig`](crate::QueryServiceConfig).
    pub fn new(
        service: Arc<QueryService>,
        lanes: usize,
        policy: AdmissionPolicy,
    ) -> Result<Self, SpatialError> {
        if lanes == 0 {
            return Err(SpatialError::InvalidConfig {
                reason: "a pipeline needs at least one admission lane",
            });
        }
        let config = *service.config();
        let coalescer = Coalescer::new(config.flush_batch, config.coalesce_deadline_micros);
        let lanes: Vec<Arc<Lane>> = (0..lanes)
            .map(|_| {
                Arc::new(Lane {
                    queue: Mutex::new(Vec::new()),
                    nonempty: Condvar::new(),
                    space: Condvar::new(),
                    bound: config.queue_bound,
                    max_depth: AtomicU64::new(0),
                    shutdown: AtomicBool::new(false),
                })
            })
            .collect();
        // Writes admitted through the pipeline defer compaction to the
        // background thread below instead of compacting inline under
        // write pressure.
        service.set_deferred_compaction(true);
        let compactor_shared = Arc::new(CompactorShared {
            flags: Mutex::new(CompactorFlags {
                pending: false,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        let compactor = {
            let service = service.clone();
            let shared = compactor_shared.clone();
            std::thread::spawn(move || compactor_loop(&service, &shared))
        };
        let num_shards = service.num_shards();
        let workers = lanes
            .iter()
            .enumerate()
            .map(|(i, lane)| {
                let service = service.clone();
                let lane = lane.clone();
                let shared = compactor_shared.clone();
                let shard_slot = i % num_shards;
                std::thread::spawn(move || {
                    worker_loop(&service, &lane, coalescer, shard_slot, &shared)
                })
            })
            .collect();
        Ok(ServicePipeline {
            service,
            lanes,
            policy,
            workers,
            compactor: Some(compactor),
            compactor_shared,
            shed_total: Arc::new(AtomicU64::new(0)),
            submitted_total: AtomicU64::new(0),
        })
    }

    /// The service behind this pipeline.
    pub fn service(&self) -> &Arc<QueryService> {
        &self.service
    }

    /// Number of admission lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Requests submitted so far (shed ones included).
    pub fn submitted(&self) -> u64 {
        self.submitted_total.load(Ordering::Relaxed)
    }

    /// Requests shed so far by full lanes under
    /// [`AdmissionPolicy::Shed`].
    pub fn shed(&self) -> u64 {
        self.shed_total.load(Ordering::Relaxed)
    }

    /// Which lane a request routes to: the first shard its geometry
    /// overlaps (so a coalesced batch stays shard-local), folded into
    /// the lane count; deletes address logical ids, not geometry, and
    /// spread by id instead.
    pub fn lane_of(&self, r: &Request) -> usize {
        let grid = self.service.grid();
        let shard = match r {
            Request::Window(q) | Request::Join(q) | Request::Skyline(q) => {
                grid.first_shard_overlapping(q).unwrap_or(0)
            }
            Request::PointInWindow(p) | Request::KNearest { p, .. } | Request::DominanceAgg(p) => {
                grid.first_shard_overlapping(&Rect::point(*p)).unwrap_or(0)
            }
            Request::Insert(seg) => grid
                .first_shard_overlapping(&Rect::point(seg.a))
                .unwrap_or(0),
            Request::Delete(id) => *id as usize,
        };
        shard % self.lanes.len()
    }

    /// Submits one request and returns its [`Ticket`]. Under
    /// [`AdmissionPolicy::Block`] a full lane blocks the caller until a
    /// worker drains (backpressure); under [`AdmissionPolicy::Shed`]
    /// the ticket comes back already rejected with
    /// [`SpatialError::Overloaded`].
    pub fn submit(&self, request: Request) -> Ticket {
        self.submitted_total.fetch_add(1, Ordering::Relaxed);
        let lane_idx = self.lane_of(&request);
        let lane = &self.lanes[lane_idx];
        let submitted = Instant::now();
        let mut queue = lane.lock();
        loop {
            match self.policy.admit(lane_idx, queue.len(), lane.bound) {
                Admission::Enqueue => {
                    let slot = ReplySlot::empty();
                    queue.push(Envelope {
                        request,
                        slot: ReplyHandle::Single(slot.clone()),
                        enqueued: submitted,
                    });
                    lane.max_depth
                        .fetch_max(queue.len() as u64, Ordering::Relaxed);
                    drop(queue);
                    lane.nonempty.notify_one();
                    return Ticket {
                        slot,
                        lane: lane_idx,
                        submitted,
                    };
                }
                Admission::Block => {
                    queue = lane
                        .space
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                Admission::Shed(e) => {
                    drop(queue);
                    self.shed_total.fetch_add(1, Ordering::Relaxed);
                    self.service.note_shed(lane_idx % self.service.num_shards());
                    return Ticket {
                        slot: ReplySlot::fulfilled(Response::Rejected(e)),
                        lane: lane_idx,
                        submitted,
                    };
                }
            }
        }
    }

    /// Submits a whole batch through the bulk path: requests are grouped
    /// by lane so each lane's mutex is taken once per group rather than
    /// once per request, and all replies share one group slot (a single
    /// mutex + condvar for the whole batch). This
    /// is the throughput front door — per-request submission overhead is
    /// what caps a saturated pipeline on few cores, not the engine.
    ///
    /// Per-lane FIFO order follows slice order, so a one-lane pipeline
    /// still serves exact eager-sequential semantics; across lanes the
    /// enqueue order is by lane index (reads commute, and cross-lane
    /// write order was already scheduling-dependent).
    pub fn submit_batch(&self, requests: &[Request]) -> BatchTicket {
        self.submitted_total
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let submitted = Instant::now();
        let group = GroupSlot::new(requests.len());
        let mut by_lane: Vec<Vec<(usize, Request)>> = vec![Vec::new(); self.lanes.len()];
        for (index, &request) in requests.iter().enumerate() {
            by_lane[self.lane_of(&request)].push((index, request));
        }
        for (lane_idx, items) in by_lane.into_iter().enumerate() {
            if items.is_empty() {
                continue;
            }
            let lane = &self.lanes[lane_idx];
            let mut shed_fills: Vec<(usize, Response)> = Vec::new();
            {
                let mut queue = lane.lock();
                let mut enqueued = Instant::now();
                'items: for (index, request) in items {
                    loop {
                        match self.policy.admit(lane_idx, queue.len(), lane.bound) {
                            Admission::Enqueue => {
                                queue.push(Envelope {
                                    request,
                                    slot: ReplyHandle::Group {
                                        group: group.clone(),
                                        index,
                                    },
                                    enqueued,
                                });
                                continue 'items;
                            }
                            Admission::Block => {
                                // Wake the worker before parking: it may
                                // never have been notified about the
                                // requests just pushed, and the queue
                                // only drains through it.
                                lane.nonempty.notify_one();
                                queue = lane
                                    .space
                                    .wait(queue)
                                    .unwrap_or_else(PoisonError::into_inner);
                                enqueued = Instant::now();
                            }
                            Admission::Shed(e) => {
                                shed_fills.push((index, Response::Rejected(e)));
                                continue 'items;
                            }
                        }
                    }
                }
                lane.max_depth
                    .fetch_max(queue.len() as u64, Ordering::Relaxed);
            }
            lane.nonempty.notify_one();
            if !shed_fills.is_empty() {
                self.shed_total
                    .fetch_add(shed_fills.len() as u64, Ordering::Relaxed);
                for _ in 0..shed_fills.len() {
                    self.service.note_shed(lane_idx % self.service.num_shards());
                }
                group.fulfil_many(shed_fills);
            }
        }
        BatchTicket {
            group,
            n: requests.len(),
            submitted,
        }
    }

    /// Convenience: submits a whole slice through the bulk path and
    /// waits for every response, preserving order — `execute_batch`
    /// semantics through the admission path (used by tests and the
    /// closed-loop driver legs).
    pub fn submit_all(&self, requests: &[Request]) -> Vec<Response> {
        self.submit_batch(requests).wait_all()
    }
}

impl Drop for ServicePipeline {
    fn drop(&mut self) {
        for lane in &self.lanes {
            lane.shutdown.store(true, Ordering::Release);
            lane.nonempty.notify_all();
            // Unblock any submitter still waiting for space; its
            // re-check happens against a draining queue.
            lane.space.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        self.compactor_shared.stop();
        if let Some(compactor) = self.compactor.take() {
            let _ = compactor.join();
        }
        self.service.set_deferred_compaction(false);
    }
}

/// The lane worker: coalesce, flush, execute, fulfil — forever.
fn worker_loop(
    service: &QueryService,
    lane: &Lane,
    coalescer: Coalescer,
    shard_slot: usize,
    compactor: &CompactorShared,
) {
    loop {
        let batch: Vec<Envelope> = {
            let mut queue = lane.lock();
            loop {
                if lane.shutdown.load(Ordering::Acquire) {
                    if queue.is_empty() {
                        return;
                    }
                    break; // final flushes: drain everything left
                }
                let decision = match queue.first() {
                    None => FlushDecision::Empty,
                    Some(front) => coalescer.decide(queue.len(), front.enqueued.elapsed()),
                };
                let wait_for = match decision {
                    FlushDecision::Size | FlushDecision::Deadline => break,
                    FlushDecision::Wait(remaining) => remaining,
                    FlushDecision::Empty => IDLE_POLL,
                };
                let (guard, _) = lane
                    .nonempty
                    .wait_timeout(queue, wait_for)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
            let take = queue.len().min(coalescer.flush_batch);
            queue.drain(..take).collect()
        };
        lane.space.notify_all();

        let drained = Instant::now();
        let queue_wait_micros: u64 = batch
            .iter()
            .map(|e| {
                drained
                    .saturating_duration_since(e.enqueued)
                    .as_micros()
                    .min(u64::MAX as u128) as u64
            })
            .sum();
        let requests: Vec<Request> = batch.iter().map(|e| e.request).collect();
        // `execute_admitted` never panics by design (the recovery ladder
        // owns crashes below it); this backstop keeps the no-ticket-
        // waits-forever guarantee even if that invariant ever breaks.
        let responses = catch_unwind(AssertUnwindSafe(|| {
            service.execute_admitted(&requests, shard_slot)
        }))
        .unwrap_or_else(|_| {
            vec![
                Response::Rejected(SpatialError::ShardUnavailable {
                    shard: shard_slot,
                    attempts: 1,
                });
                requests.len()
            ]
        });
        // Singles get their own slot; group members are gathered per
        // distinct group and filled under one lock + one wakeup each —
        // a drained micro-batch usually belongs to a single bulk submit.
        let mut group_fills: GroupFills = Vec::new();
        for (envelope, response) in batch.iter().zip(responses) {
            match &envelope.slot {
                ReplyHandle::Single(slot) => slot.fulfil(response),
                ReplyHandle::Group { group, index } => {
                    match group_fills.iter_mut().find(|(g, _)| Arc::ptr_eq(g, group)) {
                        Some((_, fills)) => fills.push((*index, response)),
                        None => group_fills.push((group.clone(), vec![(*index, response)])),
                    }
                }
            }
        }
        for (group, fills) in group_fills {
            group.fulfil_many(fills);
        }
        service.note_admitted_batch(
            shard_slot,
            batch.len() as u64,
            queue_wait_micros,
            lane.max_depth.swap(0, Ordering::Relaxed),
        );
        if service.wants_compaction() {
            compactor.signal();
        }
    }
}

/// The background compactor: waits for write-pressure signals from lane
/// workers and runs [`QueryService::compact_now`] off-thread. Readers
/// keep serving the old epoch while the new one builds (the optimistic
/// path inside `compact_now`); a failed attempt just leaves the old
/// epoch serving and waits for the next signal.
fn compactor_loop(service: &QueryService, shared: &CompactorShared) {
    loop {
        {
            let mut flags = shared.flags.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if flags.shutdown {
                    return;
                }
                if flags.pending {
                    flags.pending = false;
                    break;
                }
                flags = shared
                    .cv
                    .wait(flags)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        // Crashing compactions (injected or genuine) return typed errors
        // and leave the previous epoch serving; nothing to do but wait
        // for the next signal.
        let _ = service.compact_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QueryServiceConfig;
    use dp_workloads::{request_stream, uniform_segments, RequestMix};

    fn small_service(compact_threshold: usize) -> Arc<QueryService> {
        let data = uniform_segments(200, 64, 8, 41);
        Arc::new(QueryService::build(
            QueryServiceConfig {
                compact_threshold,
                ..QueryServiceConfig::sequential(2)
            },
            data.world,
            data.segs,
        ))
    }

    #[test]
    fn pipeline_matches_execute_batch_on_reads() {
        let data = uniform_segments(300, 64, 8, 42);
        let svc = Arc::new(QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        ));
        let oracle = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        let reqs = request_stream(data.world, 120, RequestMix::DEFAULT, 7);
        let pipeline = ServicePipeline::per_shard(svc, AdmissionPolicy::Block).unwrap();
        assert_eq!(pipeline.submit_all(&reqs), oracle.execute_batch(&reqs));
        assert_eq!(pipeline.submitted(), reqs.len() as u64);
        assert_eq!(pipeline.shed(), 0);
    }

    #[test]
    fn drop_flushes_queued_requests() {
        let svc = small_service(1_000);
        let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
        let world = svc.grid().world();
        let tickets: Vec<Ticket> = (0..50)
            .map(|_| pipeline.submit(Request::Window(world)))
            .collect();
        drop(pipeline); // workers must answer everything before exiting
        for t in tickets {
            match t.wait_timeout(Duration::from_secs(10)) {
                Ok((Response::Window(_), _)) => {}
                Ok((other, _)) => panic!("unexpected response {other:?}"),
                Err(_) => panic!("ticket never fulfilled after pipeline drop"),
            }
        }
    }

    #[test]
    fn zero_lanes_is_a_typed_config_error() {
        let svc = small_service(1_000);
        assert!(matches!(
            ServicePipeline::new(svc, 0, AdmissionPolicy::Block),
            Err(SpatialError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn pipelined_writes_compact_in_the_background() {
        let svc = small_service(4);
        let world = svc.grid().world();
        let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
        let seg = dp_geom::LineSeg::from_coords(1.0, 1.0, 2.0, 2.0);
        let tickets: Vec<Ticket> = (0..16)
            .map(|_| pipeline.submit(Request::Insert(seg)))
            .collect();
        for t in tickets {
            assert!(matches!(t.wait(), Response::Inserted(_)));
        }
        // The background compactor owns compaction now; wait for it to
        // absorb the pressure (bounded spin — the signal is already in).
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.stats().compactions == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        drop(pipeline);
        let stats = svc.stats();
        assert!(stats.compactions > 0, "background compactor never ran");
        // And the collection is exactly what an eager engine would hold.
        assert_eq!(svc.segments().len(), 200 + 16);
        let out = svc.execute_batch(&[Request::Window(world)]);
        let hits = out[0].try_window(0).unwrap();
        assert_eq!(hits.len(), 216);
    }

    #[test]
    fn queue_depth_gauge_resets_on_epoch_swap_and_stat_reset() {
        let svc = small_service(1_000);
        let world = svc.grid().world();
        {
            let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
            let reqs = vec![Request::Window(world); 64];
            pipeline.submit_all(&reqs);
        }
        let stats = svc.stats();
        // The bulk submit pushed its whole chunk under one lane lock, so
        // the recorded steady-state high-water mark saw the full burst.
        let depth = stats.shards.iter().map(|s| s.max_queue_depth).max();
        assert!(
            depth >= Some(64),
            "admission burst missing from gauge: {depth:?}"
        );
        assert_eq!(stats.shards.iter().map(|s| s.admitted).sum::<u64>(), 64);

        // Epoch swap: monotone counters carry, the gauge resets — the
        // new epoch's queues start empty, so an old peak would be
        // unfalsifiable telemetry.
        let seg = dp_geom::LineSeg::from_coords(1.0, 1.0, 2.0, 2.0);
        assert!(matches!(
            svc.execute_batch(&[Request::Insert(seg)])[0],
            Response::Inserted(_)
        ));
        svc.compact_now().expect("clean compaction");
        let stats = svc.stats();
        assert_eq!(stats.epoch, 1);
        assert_eq!(
            stats.shards.iter().map(|s| s.max_queue_depth).max(),
            Some(0)
        );
        assert_eq!(stats.shards.iter().map(|s| s.admitted).sum::<u64>(), 64);

        // reset_stats clears gauge and counters coherently.
        svc.reset_stats();
        let stats = svc.stats();
        assert_eq!(
            stats.shards.iter().map(|s| s.max_queue_depth).max(),
            Some(0)
        );
        assert_eq!(stats.shards.iter().map(|s| s.admitted).sum::<u64>(), 0);
    }

    #[test]
    fn bulk_submit_matches_per_request_submission() {
        let data = uniform_segments(300, 64, 8, 44);
        let svc = Arc::new(QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        ));
        let oracle = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        let reqs = request_stream(data.world, 200, RequestMix::DEFAULT, 9);
        let pipeline = ServicePipeline::per_shard(svc, AdmissionPolicy::Block).unwrap();
        let ticket = pipeline.submit_batch(&reqs);
        assert_eq!(ticket.len(), reqs.len());
        let timed = ticket.wait_all_timed();
        assert!(timed.iter().all(|(_, done)| *done >= pipeline_epoch()));
        let responses: Vec<Response> = timed.into_iter().map(|(r, _)| r).collect();
        assert_eq!(responses, oracle.execute_batch(&reqs));
        assert_eq!(pipeline.submitted(), reqs.len() as u64);

        // An empty batch is answered instantly.
        let empty = pipeline.submit_batch(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.wait_all(), Vec::<Response>::new());
    }

    /// An instant strictly before any test submission (for sanity checks
    /// on completion timestamps).
    fn pipeline_epoch() -> Instant {
        Instant::now() - Duration::from_secs(3600)
    }

    #[test]
    fn bulk_submit_sheds_with_typed_overload() {
        let data = uniform_segments(100, 64, 8, 45);
        let svc = Arc::new(QueryService::build(
            QueryServiceConfig {
                flush_batch: 8,
                coalesce_deadline_micros: 200_000,
                queue_bound: 8,
                ..QueryServiceConfig::sequential(2)
            },
            data.world,
            data.segs,
        ));
        let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Shed).unwrap();
        let world = svc.grid().world();
        let reqs = vec![Request::Window(world); 256];
        let out = pipeline.submit_all(&reqs);
        let shed = out
            .iter()
            .filter(|r| matches!(r, Response::Rejected(SpatialError::Overloaded { .. })))
            .count();
        let answered = out
            .iter()
            .filter(|r| matches!(r, Response::Window(_)))
            .count();
        assert_eq!(shed + answered, 256);
        assert!(shed > 0, "a 256-burst against a bound of 8 must shed");
        assert_eq!(pipeline.shed(), shed as u64);
    }

    #[test]
    fn full_lanes_shed_with_typed_overload() {
        let data = uniform_segments(100, 64, 8, 43);
        // A long coalescing deadline parks the worker in its wait (the
        // buffer stays under flush_batch), so a fast submit burst
        // reliably overruns the tiny bound.
        let svc = Arc::new(QueryService::build(
            QueryServiceConfig {
                flush_batch: 8,
                coalesce_deadline_micros: 200_000,
                queue_bound: 8,
                ..QueryServiceConfig::sequential(2)
            },
            data.world,
            data.segs,
        ));
        let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Shed).unwrap();
        let world = svc.grid().world();
        let tickets: Vec<Ticket> = (0..256)
            .map(|_| pipeline.submit(Request::Window(world)))
            .collect();
        let mut shed = 0usize;
        let mut answered = 0usize;
        for t in tickets {
            match t.wait() {
                Response::Rejected(SpatialError::Overloaded { lane, .. }) => {
                    assert_eq!(lane, 0);
                    shed += 1;
                }
                Response::Window(_) => answered += 1,
                other => panic!("unexpected response {other:?}"),
            }
        }
        assert_eq!(shed + answered, 256);
        // flush_batch 8 = bound 8: the burst of 256 cannot all fit.
        assert!(shed > 0, "a 256-burst against a bound of 8 must shed");
        assert_eq!(pipeline.shed(), shed as u64);
        let stats = svc.stats();
        let counted: u64 = stats.shards.iter().map(|s| s.shed).sum();
        assert_eq!(counted, shed as u64);
    }
}
