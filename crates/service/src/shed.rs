//! Admission control: what happens when a lane's bounded queue is full.
//!
//! The admission layer gives every lane a bounded queue; the bound is
//! what turns overload into a *decision* instead of unbounded memory
//! growth. Two policies exist, and both are expressed through the same
//! typed response surface as the crash ladder — an overloaded service
//! and a crashed shard look the same to a client: a
//! [`Response::Rejected`](crate::Response::Rejected) carrying a typed
//! [`SpatialError`]:
//!
//! * [`AdmissionPolicy::Block`] — *backpressure*: the submitting thread
//!   waits for queue space, so offered load is throttled to service
//!   throughput and nothing is ever lost. Right for internal callers
//!   that can afford to stall (the closed-loop driver, batch jobs).
//! * [`AdmissionPolicy::Shed`] — *load shedding*: a full lane rejects
//!   immediately with [`SpatialError::Overloaded`], bounding the latency
//!   of every request that *is* admitted. Right for open-loop traffic
//!   where arrival does not slow down when the service does.
//!
//! The decision itself ([`AdmissionPolicy::admit`]) is a pure function
//! of queue depth and bound, unit-tested below; the blocking/waking
//! mechanics live in [`crate::admission`].

use dp_spatial::SpatialError;

/// What a full lane does with a new arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Backpressure: block the submitter until the lane has space.
    #[default]
    Block,
    /// Load shedding: reject immediately with
    /// [`SpatialError::Overloaded`] when the lane is full.
    Shed,
}

/// The outcome of an admission decision for one arriving request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// The lane has space: enqueue now.
    Enqueue,
    /// The lane is full and the policy is backpressure: wait for space,
    /// then re-decide.
    Block,
    /// The lane is full and the policy is shedding: reject with this
    /// typed error (already carrying the lane and the observed depth).
    Shed(SpatialError),
}

impl AdmissionPolicy {
    /// Decides what to do with an arrival at a lane currently holding
    /// `depth` requests against a bound of `bound`.
    pub fn admit(self, lane: usize, depth: usize, bound: usize) -> Admission {
        if depth < bound {
            return Admission::Enqueue;
        }
        match self {
            AdmissionPolicy::Block => Admission::Block,
            AdmissionPolicy::Shed => Admission::Shed(SpatialError::Overloaded { lane, depth }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_bound_always_enqueues() {
        for policy in [AdmissionPolicy::Block, AdmissionPolicy::Shed] {
            assert_eq!(policy.admit(0, 0, 1), Admission::Enqueue);
            assert_eq!(policy.admit(3, 7, 8), Admission::Enqueue);
        }
    }

    #[test]
    fn full_lane_blocks_under_backpressure() {
        assert_eq!(AdmissionPolicy::Block.admit(2, 8, 8), Admission::Block);
        assert_eq!(AdmissionPolicy::Block.admit(2, 9, 8), Admission::Block);
    }

    #[test]
    fn full_lane_sheds_with_a_typed_error() {
        match AdmissionPolicy::Shed.admit(5, 16, 16) {
            Admission::Shed(SpatialError::Overloaded { lane, depth }) => {
                assert_eq!((lane, depth), (5, 16));
            }
            other => panic!("expected a typed shed, got {other:?}"),
        }
    }

    #[test]
    fn overloaded_error_displays_the_lane() {
        let e = SpatialError::Overloaded { lane: 3, depth: 64 };
        let s = e.to_string();
        assert!(s.contains("lane 3") && s.contains("64"), "{s}");
    }
}
