//! Micro-batch coalescing policy and the fixed-bucket latency histogram.
//!
//! The admission layer (see [`crate::admission`]) buffers arriving
//! requests per lane and hands the batch engine *micro-batches*: large
//! enough to amortise the per-level primitive cost of a lockstep descent
//! over many lanes (the whole point of the paper's batch primitives),
//! small enough that the oldest buffered request never waits past a
//! latency deadline. The flush decision itself is pure — a function of
//! the buffer size, the configured size trigger, and the age of the
//! oldest buffered request — so it is unit-testable without threads and
//! identical across worker schedulings.
//!
//! The histogram is the workspace's own fixed-bucket implementation (the
//! build is offline; no hdrhistogram dependency): power-of-two
//! microsecond buckets, constant memory, mergeable, with quantile
//! lookups that report the bucket upper bound — exactly the shape the
//! per-shard flush histograms already used, promoted to a reusable type
//! for the open-loop driver's p50/p99/p999 SLO reporting.

use std::time::Duration;

/// Why (or whether) a coalescing buffer should flush now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlushDecision {
    /// The buffer reached the size trigger: flush immediately.
    Size,
    /// The oldest buffered request reached its latency deadline: flush
    /// what is there.
    Deadline,
    /// Keep coalescing; the payload is how long the worker may wait for
    /// more arrivals before the deadline forces a flush.
    Wait(Duration),
    /// Nothing is buffered; the worker should block for arrivals.
    Empty,
}

/// The micro-batch coalescing policy: flush on size `flush_batch` OR
/// when the oldest buffered request has waited `deadline`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Coalescer {
    /// Size trigger: a buffer holding this many requests flushes
    /// immediately (also the upper bound handed to one lockstep batch).
    pub flush_batch: usize,
    /// Latency trigger: the oldest buffered request never waits longer
    /// than this before its batch is handed to the engine.
    pub deadline: Duration,
}

impl Coalescer {
    /// A policy from the service configuration's `flush_batch` and
    /// `coalesce_deadline_micros`.
    pub fn new(flush_batch: usize, deadline_micros: u64) -> Self {
        Coalescer {
            flush_batch: flush_batch.max(1),
            deadline: Duration::from_micros(deadline_micros),
        }
    }

    /// The flush decision for a buffer of `buffered` requests whose
    /// oldest member has waited `oldest_wait`.
    pub fn decide(&self, buffered: usize, oldest_wait: Duration) -> FlushDecision {
        if buffered == 0 {
            return FlushDecision::Empty;
        }
        if buffered >= self.flush_batch {
            return FlushDecision::Size;
        }
        if oldest_wait >= self.deadline {
            return FlushDecision::Deadline;
        }
        FlushDecision::Wait(self.deadline - oldest_wait)
    }
}

/// Number of power-of-two microsecond buckets ([`LatencyHistogram`]).
/// Bucket 31 absorbs everything from ~18 minutes up, far beyond any
/// request latency the service can produce.
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-bucket latency histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` microseconds (bucket 0: sub-microsecond). Constant
/// memory, no allocation per sample, mergeable — the workspace's own
/// replacement for an hdrhistogram dependency.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum_micros: u64,
    max_micros: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }

    /// The bucket index for a sample of `micros` microseconds.
    pub fn bucket_of(micros: u64) -> usize {
        (64 - micros.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: Duration) {
        self.record_micros(latency.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Records one latency sample given in microseconds.
    pub fn record_micros(&mut self, micros: u64) {
        self.buckets[Self::bucket_of(micros)] += 1;
        self.count += 1;
        self.sum_micros = self.sum_micros.saturating_add(micros);
        self.max_micros = self.max_micros.max(micros);
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in microseconds (`None` before any sample).
    pub fn mean_micros(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_micros as f64 / self.count as f64)
    }

    /// The exact largest recorded sample, in microseconds.
    pub fn max_micros(&self) -> u64 {
        self.max_micros
    }

    /// Upper bound (microseconds) of the bucket holding the `q`-quantile
    /// sample, or `None` before any sample. `quantile(0.999)` is the
    /// p999 the SLO checks gate on.
    pub fn quantile_micros(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (HISTOGRAM_BUCKETS - 1))
    }

    /// The raw bucket counts (bucket `i`: `[2^(i-1), 2^i)` µs).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// A compact one-line rendering of p50/p90/p99/p999 and the mean,
    /// for driver output and CI artifacts.
    pub fn summary(&self) -> String {
        match self.mean_micros() {
            None => "no samples".to_string(),
            Some(mean) => format!(
                "n={} mean={:.0}µs p50<{}µs p90<{}µs p99<{}µs p999<{}µs max={}µs",
                self.count,
                mean,
                self.quantile_micros(0.5).unwrap_or(0),
                self.quantile_micros(0.9).unwrap_or(0),
                self.quantile_micros(0.99).unwrap_or(0),
                self.quantile_micros(0.999).unwrap_or(0),
                self.max_micros,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalescer_flushes_on_size() {
        let c = Coalescer::new(8, 1_000);
        assert_eq!(c.decide(8, Duration::ZERO), FlushDecision::Size);
        assert_eq!(c.decide(9, Duration::ZERO), FlushDecision::Size);
    }

    #[test]
    fn coalescer_flushes_on_deadline() {
        let c = Coalescer::new(8, 1_000);
        assert_eq!(
            c.decide(3, Duration::from_micros(1_000)),
            FlushDecision::Deadline
        );
        assert_eq!(
            c.decide(1, Duration::from_micros(5_000)),
            FlushDecision::Deadline
        );
    }

    #[test]
    fn coalescer_waits_out_the_remaining_deadline() {
        let c = Coalescer::new(8, 1_000);
        match c.decide(3, Duration::from_micros(400)) {
            FlushDecision::Wait(d) => assert_eq!(d, Duration::from_micros(600)),
            other => panic!("expected Wait, got {other:?}"),
        }
        assert_eq!(c.decide(0, Duration::ZERO), FlushDecision::Empty);
    }

    #[test]
    fn zero_flush_batch_is_clamped_to_one() {
        // Defensive only: QueryServiceConfig::validate rejects 0 before a
        // Coalescer is ever built from it.
        let c = Coalescer::new(0, 100);
        assert_eq!(c.decide(1, Duration::ZERO), FlushDecision::Size);
    }

    #[test]
    fn histogram_quantiles_bound_the_samples() {
        let mut h = LatencyHistogram::new();
        for micros in [1u64, 2, 3, 700, 800, 900, 64_000] {
            h.record_micros(micros);
        }
        assert_eq!(h.count(), 7);
        let p50 = h.quantile_micros(0.5).unwrap();
        assert!((700..=1024).contains(&p50), "p50 bucket bound {p50}");
        // The top quantile lands in the bucket of the largest sample:
        // 64_000µs has a 16-bit magnitude, so its bucket spans
        // [2^15, 2^16) and reports the 2^16 upper bound.
        assert_eq!(h.quantile_micros(1.0).unwrap(), 1 << 16);
        assert_eq!(h.max_micros(), 64_000);
        assert!(h.summary().contains("n=7"));
    }

    #[test]
    fn histogram_merges_and_handles_empty() {
        let empty = LatencyHistogram::new();
        assert_eq!(empty.quantile_micros(0.5), None);
        assert_eq!(empty.mean_micros(), None);
        assert_eq!(empty.summary(), "no samples");

        let mut a = LatencyHistogram::new();
        a.record(Duration::from_micros(10));
        let mut b = LatencyHistogram::new();
        b.record(Duration::from_micros(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.max_micros(), 1_000_000);
    }

    #[test]
    fn bucket_of_is_monotone_and_bounded() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        let mut prev = 0;
        for shift in 0..40u32 {
            let b = LatencyHistogram::bucket_of(1u64 << shift);
            assert!(b >= prev);
            assert!(b < HISTOGRAM_BUCKETS);
            prev = b;
        }
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
    }
}
