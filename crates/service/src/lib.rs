//! # dp-service — a sharded concurrent query service over the batch engine
//!
//! The paper's batch primitives turn *many queries* into one lockstep
//! data-parallel descent ([`dp_spatial::batch`]). This crate wraps that
//! engine in a service shape: the world is split into a `g × g` grid of
//! tiles ([`dp_spatial::shard::ShardGrid`]), each tile gets its own bucket
//! PMR quadtree over the segments touching it, and a batch of mixed
//! requests — window queries, point-in-window probes, k-nearest-neighbour
//! lookups, and (against an optional *overlay* layer) windowed spatial
//! joins — is routed to the overlapping shards, executed per shard as
//! lockstep batches on a long-lived [`Machine`], and merged per request.
//!
//! A service built with [`QueryService::build_with_overlay`] indexes a
//! second segment layer per shard; `Join` requests then answer with the
//! base×overlay pairs intersecting inside their window, computed by the
//! data-parallel [`frontier_join`] once per shard and filtered per
//! window (see [`QueryService::stats`] for the per-shard join round
//! telemetry).
//!
//! ## Execution model
//!
//! 1. **Route.** Every request contributes one or more *window probes*
//!    (a point probe is the degenerate window `Rect::point(p)`; a
//!    k-nearest request contributes one probe per expansion round). Each
//!    probe is routed to every shard whose tile it overlaps.
//! 2. **Execute.** Shards run concurrently. A shard drains its probe
//!    queue in chunks of at most `flush_batch`, each chunk executed as one
//!    [`batch_window_query`] — a lockstep descent costing a constant
//!    number of scan-model primitives per tree level regardless of the
//!    chunk size (paper Sec. 4). The shard reuses one [`Machine`] and one
//!    [`scan_model::ScratchArena`] across its lifetime.
//! 3. **Merge.** Per-shard hits are mapped from shard-local to global
//!    segment ids, concatenated per request in shard order, sorted and
//!    deduplicated — a segment spanning several tiles is reported once.
//!
//! K-nearest requests run as *expanding window* rounds: probe a square of
//! half-width `r` around the query point; if fewer than `k` hits come
//! back, or the k-th best distance exceeds `r`, double `r` and re-probe
//! (all unfinished k-NN requests advance together, each round being one
//! more routed probe batch). Since a segment at Euclidean distance `d`
//! from the centre always intersects the square of half-width `d`, a
//! k-th best distance `≤ r` proves no unseen segment can do better.
//!
//! Results are **byte-identical** to running the same requests through a
//! single unsharded machine — shard outputs are merged in deterministic
//! shard order before the final sort — which is what the differential
//! tests in `tests/` assert, per workload family and per backend.

use dp_geom::{LineSeg, Point, Rect};
use dp_spatial::batch::batch_window_query;
use dp_spatial::join::{frontier_join, pair_intersects_in};
use dp_spatial::shard::{build_shard, ShardGrid, ShardIndex};
use dp_spatial::SegId;
use dp_workloads::Request;
use rayon::prelude::*;
use scan_model::{Backend, Machine, RoundTrace, StatsSnapshot};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Number of log₂-microsecond latency buckets per shard.
pub const LATENCY_BUCKETS: usize = 32;

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryServiceConfig {
    /// Tiles per world side; the service runs `shard_grid²` shards. Must
    /// be a positive power of two.
    pub shard_grid: u32,
    /// Maximum probes executed per per-shard lockstep batch. Larger
    /// batches amortise the per-level primitive cost over more lanes;
    /// smaller batches bound per-flush latency.
    pub flush_batch: usize,
    /// Backend of every shard's [`Machine`].
    pub backend: Backend,
    /// Parallel-threshold override for the shard machines (`None` keeps
    /// the machine default).
    pub par_threshold: Option<usize>,
    /// Bucket capacity of the per-shard PMR quadtrees.
    pub capacity: usize,
    /// Maximum subdivision depth of the per-shard quadtrees.
    pub max_depth: usize,
}

impl Default for QueryServiceConfig {
    fn default() -> Self {
        QueryServiceConfig {
            shard_grid: 4,
            flush_batch: 1024,
            backend: Backend::Parallel,
            par_threshold: None,
            capacity: 8,
            max_depth: 16,
        }
    }
}

impl QueryServiceConfig {
    /// A sequential-backend configuration with the given shard grid
    /// (handy in tests).
    pub fn sequential(shard_grid: u32) -> Self {
        QueryServiceConfig {
            shard_grid,
            backend: Backend::Sequential,
            ..QueryServiceConfig::default()
        }
    }
}

/// One response, aligned with the request at the same batch position.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Sorted, deduplicated ids of segments intersecting the window.
    Window(Vec<SegId>),
    /// Sorted, deduplicated ids of segments passing through the point.
    PointInWindow(Vec<SegId>),
    /// Up to `k` `(id, distance)` pairs, nearest first, ties broken by
    /// ascending id. Shorter than `k` only when the collection itself
    /// holds fewer segments.
    KNearest(Vec<(SegId, f64)>),
    /// Sorted, deduplicated `(base_id, overlay_id)` pairs intersecting
    /// inside the request window. Empty when the service was built
    /// without an overlay layer.
    Join(Vec<(SegId, SegId)>),
}

/// Interior-mutable per-shard counters.
#[derive(Debug)]
struct ShardCounters {
    probes: AtomicU64,
    batches: AtomicU64,
    max_queue_depth: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl ShardCounters {
    fn new() -> Self {
        ShardCounters {
            probes: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record_flush(&self, elapsed_micros: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let bucket = (64 - elapsed_micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    fn record_queue(&self, depth: usize) {
        self.probes.fetch_add(depth as u64, Ordering::Relaxed);
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }
}

/// A point-in-time view of one shard, part of [`ServiceStats`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (row-major in the grid).
    pub shard: usize,
    /// The shard's tile.
    pub tile: Rect,
    /// Segments assigned to the shard.
    pub segments: usize,
    /// Window probes routed to the shard over its lifetime.
    pub probes: u64,
    /// Lockstep batches the shard has executed.
    pub batches: u64,
    /// Largest probe queue handed to the shard by a single
    /// [`QueryService::execute_batch`] call.
    pub max_queue_depth: u64,
    /// Per-flush latency histogram: bucket `i` counts flushes that took
    /// `[2^(i-1), 2^i)` microseconds (bucket 0: sub-microsecond).
    pub latency_histogram: [u64; LATENCY_BUCKETS],
    /// Scan-model primitive counters of the shard's machine — the
    /// service-level extension of [`scan_model::OpStats`].
    pub ops: StatsSnapshot,
    /// Scratch-arena buffer leases taken by the shard's machine over its
    /// lifetime (not reset by [`QueryService::reset_stats`]).
    pub arena_takes: u64,
    /// Of [`ShardStats::arena_takes`], leases served from the pool
    /// without allocating.
    pub arena_hits: u64,
    /// Per-round telemetry of the shard's index build, captured at
    /// construction time (one [`RoundTrace`] per subdivision round; not
    /// affected by [`QueryService::reset_stats`]).
    pub build_trace: Vec<RoundTrace>,
    /// Telemetry of the shard's base×overlay frontier join. `None` until
    /// the first `Join` request touches the shard (the join is computed
    /// lazily and cached) or when the service has no overlay layer.
    pub join: Option<ShardJoinStats>,
}

/// Telemetry of one shard's cached base×overlay frontier join.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJoinStats {
    /// Intersecting pairs the shard contributes (global ids, pre-window
    /// filtering).
    pub pairs: usize,
    /// Frontier-expansion rounds the join took (≤ max tree height).
    pub rounds: usize,
    /// Largest candidate-pair frontier across those rounds.
    pub frontier_peak: usize,
    /// Exact segment-pair tests issued in leaf×leaf blocks.
    pub pairs_tested: u64,
    /// Per-round [`RoundTrace`] of the join's driver run.
    pub trace: Vec<RoundTrace>,
}

/// Aggregated service statistics: per-shard views plus batch-level
/// counters.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// One entry per shard.
    pub shards: Vec<ShardStats>,
    /// Requests accepted by [`QueryService::execute_batch`].
    pub requests: u64,
    /// Expanding-window rounds spent on k-nearest requests.
    pub knn_rounds: u64,
    /// `Join` requests answered (each may touch several shards).
    pub join_requests: u64,
}

impl ServiceStats {
    /// Total window probes across shards (≥ `requests`: a request fans
    /// out to every overlapping shard, and k-NN requests probe once per
    /// round).
    pub fn total_probes(&self) -> u64 {
        self.shards.iter().map(|s| s.probes).sum()
    }

    /// Total scan-model primitives across all shard machines.
    pub fn total_primitives(&self) -> u64 {
        self.shards.iter().map(|s| s.ops.total_primitives()).sum()
    }

    /// Approximate latency quantile over all per-shard flushes: the upper
    /// bound (in microseconds) of the histogram bucket containing the
    /// `q`-quantile flush, or `None` before any flush.
    pub fn flush_latency_quantile_micros(&self, q: f64) -> Option<u64> {
        let mut merged = [0u64; LATENCY_BUCKETS];
        for s in &self.shards {
            for (m, v) in merged.iter_mut().zip(s.latency_histogram.iter()) {
                *m += v;
            }
        }
        let total: u64 = merged.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in merged.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (LATENCY_BUCKETS - 1))
    }
}

/// A shard's cached base×overlay join: pairs in global ids plus the
/// round telemetry of the frontier run that produced them.
struct ShardJoin {
    pairs: Vec<(SegId, SegId)>,
    rounds: usize,
    frontier_peak: usize,
    pairs_tested: u64,
    trace: Vec<RoundTrace>,
}

struct Shard {
    index: ShardIndex,
    /// Overlay-layer index over the same tile (and the same full-world
    /// tree span, so base and overlay trees are aligned for the frontier
    /// join). `None` when the service has no overlay.
    overlay: Option<ShardIndex>,
    machine: Machine,
    counters: ShardCounters,
    /// Round-driver telemetry of this shard's build, drained from the
    /// machine right after construction (so later batch work and stat
    /// resets cannot disturb it).
    build_trace: Vec<RoundTrace>,
    /// The shard's base×overlay join, computed on first use by
    /// [`QueryService::shard_join`].
    join: OnceLock<ShardJoin>,
}

/// The sharded query service. Cheap to share by reference across threads:
/// every query path takes `&self`.
pub struct QueryService {
    config: QueryServiceConfig,
    grid: ShardGrid,
    shards: Vec<Shard>,
    segs: Vec<LineSeg>,
    /// Overlay segment collection (empty without an overlay layer);
    /// `Response::Join` pairs index `(segs, overlay_segs)`.
    overlay_segs: Vec<LineSeg>,
    requests: AtomicU64,
    knn_rounds: AtomicU64,
    join_requests: AtomicU64,
}

impl QueryService {
    /// Builds the service: partitions `segs` over the shard grid and
    /// constructs every shard's quadtree (shards build concurrently,
    /// each through its own machine).
    ///
    /// # Panics
    ///
    /// Panics if `config.shard_grid` is not a power of two, if
    /// `config.capacity` is zero, or if any segment endpoint lies outside
    /// the half-open `world` (the build precondition of
    /// [`dp_spatial::bucket_pmr::build_bucket_pmr`]).
    pub fn build(config: QueryServiceConfig, world: Rect, segs: Vec<LineSeg>) -> Self {
        QueryService::build_with_overlay(config, world, segs, Vec::new())
    }

    /// [`QueryService::build`] plus a second *overlay* layer of segments,
    /// indexed per shard exactly like the base layer. `Join` requests
    /// answer with base×overlay pairs intersecting inside their window;
    /// with an empty `overlay` every join answer is empty.
    ///
    /// Both layers' shard trees span the full world, so each shard's base
    /// and overlay quadtrees are aligned decompositions — exactly the
    /// precondition of [`frontier_join`].
    pub fn build_with_overlay(
        config: QueryServiceConfig,
        world: Rect,
        segs: Vec<LineSeg>,
        overlay: Vec<LineSeg>,
    ) -> Self {
        let grid = ShardGrid::new(world, config.shard_grid);
        let assignment = grid.assign_segments(&segs);
        let overlay_assignment = grid.assign_segments(&overlay);
        let shards: Vec<Shard> = (0..grid.num_shards())
            .into_par_iter()
            .map(|i| {
                let machine = match config.par_threshold {
                    Some(t) => Machine::new(config.backend).with_par_threshold(t),
                    None => Machine::new(config.backend),
                };
                let index = build_shard(
                    &machine,
                    world,
                    grid.tile_of(i),
                    &segs,
                    &assignment[i],
                    config.capacity,
                    config.max_depth,
                );
                let build_trace = machine.take_round_traces();
                let overlay_index = if overlay.is_empty() {
                    None
                } else {
                    let idx = build_shard(
                        &machine,
                        world,
                        grid.tile_of(i),
                        &overlay,
                        &overlay_assignment[i],
                        config.capacity,
                        config.max_depth,
                    );
                    // The overlay build's traces are not part of the base
                    // build table; the join's own trace is captured when
                    // the join first runs.
                    machine.take_round_traces();
                    Some(idx)
                };
                Shard {
                    index,
                    overlay: overlay_index,
                    machine,
                    counters: ShardCounters::new(),
                    build_trace,
                    join: OnceLock::new(),
                }
            })
            .collect();
        QueryService {
            config,
            grid,
            shards,
            segs,
            overlay_segs: overlay,
            requests: AtomicU64::new(0),
            knn_rounds: AtomicU64::new(0),
            join_requests: AtomicU64::new(0),
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &QueryServiceConfig {
        &self.config
    }

    /// The shard grid.
    pub fn grid(&self) -> ShardGrid {
        self.grid
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The full segment collection (global ids index into this).
    pub fn segments(&self) -> &[LineSeg] {
        &self.segs
    }

    /// The overlay segment collection (empty without an overlay layer);
    /// the second id of a [`Response::Join`] pair indexes into this.
    pub fn overlay_segments(&self) -> &[LineSeg] {
        &self.overlay_segs
    }

    /// Executes a batch of mixed requests; `out[i]` answers
    /// `requests[i]`. Deterministic: identical batches produce identical
    /// responses regardless of backend, shard count or thread schedule.
    pub fn execute_batch(&self, requests: &[Request]) -> Vec<Response> {
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);

        // Window-like requests become probes immediately; k-NN requests
        // join the expanding-window rounds afterwards.
        let mut probes: Vec<(usize, Rect)> = Vec::new();
        for (slot, r) in requests.iter().enumerate() {
            match r {
                Request::Window(q) => probes.push((slot, *q)),
                Request::PointInWindow(p) => probes.push((slot, Rect::point(*p))),
                Request::KNearest { .. } | Request::Join(_) => {}
            }
        }
        let window_hits = self.run_probes(&probes);
        let knn_answers = self.run_knn(requests);
        let join_answers = self.run_joins(requests);

        let mut window_hits = window_hits.into_iter();
        requests
            .iter()
            .enumerate()
            .map(|(slot, r)| match r {
                Request::Window(_) => {
                    Response::Window(window_hits.next().expect("probe per window"))
                }
                Request::PointInWindow(_) => {
                    Response::PointInWindow(window_hits.next().expect("probe per point"))
                }
                Request::KNearest { .. } => Response::KNearest(
                    knn_answers[slot]
                        .clone()
                        .expect("k-NN rounds answer every slot"),
                ),
                Request::Join(_) => {
                    Response::Join(join_answers[slot].clone().expect("join per join request"))
                }
            })
            .collect()
    }

    /// Routes `probes` to overlapping shards, executes every shard's
    /// queue in `flush_batch`-sized lockstep batches, and merges the hits
    /// back per probe (global ids, sorted, deduplicated).
    fn run_probes(&self, probes: &[(usize, Rect)]) -> Vec<Vec<SegId>> {
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); self.shards.len()];
        for (pi, (_, rect)) in probes.iter().enumerate() {
            for s in self.grid.shards_overlapping(rect) {
                per_shard[s].push(pi as u32);
            }
        }
        let shard_hits: Vec<Vec<(u32, Vec<SegId>)>> = (0..self.shards.len())
            .into_par_iter()
            .map(|s| self.run_shard(s, &per_shard[s], probes))
            .collect();

        let mut results: Vec<Vec<SegId>> = vec![Vec::new(); probes.len()];
        for hits in shard_hits {
            for (pi, ids) in hits {
                results[pi as usize].extend(ids);
            }
        }
        for ids in &mut results {
            ids.sort_unstable();
            ids.dedup();
        }
        results
    }

    /// Executes one shard's probe queue. Returns `(probe index, global
    /// ids)` pairs; ids are shard-local hits translated through the
    /// shard's id map, not yet deduplicated across shards.
    fn run_shard(
        &self,
        s: usize,
        queue: &[u32],
        probes: &[(usize, Rect)],
    ) -> Vec<(u32, Vec<SegId>)> {
        let shard = &self.shards[s];
        shard.counters.record_queue(queue.len());
        let mut out = Vec::with_capacity(queue.len());
        for chunk in queue.chunks(self.config.flush_batch.max(1)) {
            // The probe-window buffer leases from the shard machine's own
            // scratch arena — the same pool the batch engine's `_into`
            // primitives recycle through.
            let mut rects: Vec<Rect> = shard.machine.lease();
            rects.extend(chunk.iter().map(|&pi| probes[pi as usize].1));
            let t0 = Instant::now();
            let hits =
                batch_window_query(&shard.machine, &shard.index.tree, &rects, &shard.index.segs);
            shard.counters.record_flush(t0.elapsed().as_micros() as u64);
            for (j, locals) in hits.into_iter().enumerate() {
                let globals: Vec<SegId> = locals
                    .into_iter()
                    .map(|l| shard.index.global_ids[l as usize])
                    .collect();
                out.push((chunk[j], globals));
            }
            shard.machine.recycle(rects);
        }
        out
    }

    /// Answers every k-NN request in `requests` by batched expanding
    /// windows; other request kinds get `None`.
    fn run_knn(&self, requests: &[Request]) -> Vec<Option<Vec<(SegId, f64)>>> {
        let mut answers: Vec<Option<Vec<(SegId, f64)>>> = vec![None; requests.len()];
        let world = self.grid.world();
        // Initial half-width: a quarter tile, so round one stays local.
        let r0 = ((world.max.x - world.min.x) / self.config.shard_grid as f64 / 4.0).max(1e-9);
        let mut pending: Vec<(usize, Point, usize, f64)> = requests
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| match r {
                Request::KNearest { p, k } => Some((slot, *p, *k, r0)),
                _ => None,
            })
            .collect();

        while !pending.is_empty() {
            self.knn_rounds.fetch_add(1, Ordering::Relaxed);
            let probes: Vec<(usize, Rect)> = pending
                .iter()
                .map(|&(slot, p, _, r)| {
                    (slot, Rect::from_coords(p.x - r, p.y - r, p.x + r, p.y + r))
                })
                .collect();
            let hits = self.run_probes(&probes);
            let mut next = Vec::new();
            for (&(slot, p, k, r), (ids, (_, window))) in
                pending.iter().zip(hits.into_iter().zip(probes.iter()))
            {
                let mut scored: Vec<(SegId, f64)> = ids
                    .into_iter()
                    .map(|id| (id, self.segs[id as usize].dist2_to_point(p).sqrt()))
                    .collect();
                scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                // Every segment at distance ≤ r intersects the window, so
                // a k-th best ≤ r is provably final; a window covering the
                // whole world has seen everything.
                let world_covered = window.min.x <= world.min.x
                    && window.min.y <= world.min.y
                    && window.max.x >= world.max.x
                    && window.max.y >= world.max.y;
                let settled = world_covered || (scored.len() >= k && scored[k - 1].1 <= r);
                if settled {
                    scored.truncate(k);
                    answers[slot] = Some(scored);
                } else {
                    next.push((slot, p, k, r * 2.0));
                }
            }
            pending = next;
        }
        answers
    }

    /// Answers every `Join` request in `requests`; other request kinds
    /// get `None`.
    ///
    /// Routing mirrors the window path: a join window is routed to every
    /// shard whose tile it overlaps. Each routed shard contributes its
    /// cached base×overlay frontier join (computed on first use), and the
    /// router keeps only the pairs that intersect *inside* the window —
    /// an exact filter, so a pair spanning several tiles is reported once
    /// and out-of-window candidates never surface. This is sound and
    /// complete: an intersection point inside the window lies in some
    /// overlapping tile, and both segments of the pair are assigned to
    /// that tile's shard.
    fn run_joins(&self, requests: &[Request]) -> Vec<Option<Vec<(SegId, SegId)>>> {
        let mut answers: Vec<Option<Vec<(SegId, SegId)>>> = vec![None; requests.len()];
        let joins: Vec<(usize, Rect)> = requests
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| match r {
                Request::Join(q) => Some((slot, *q)),
                _ => None,
            })
            .collect();
        if joins.is_empty() {
            return answers;
        }
        self.join_requests
            .fetch_add(joins.len() as u64, Ordering::Relaxed);

        // Warm every needed shard's join cache concurrently, then filter
        // per request.
        let mut needed: Vec<usize> = joins
            .iter()
            .flat_map(|(_, q)| self.grid.shards_overlapping(q))
            .collect();
        needed.sort_unstable();
        needed.dedup();
        needed.par_iter().for_each(|&s| {
            self.shard_join(s);
        });

        for (slot, q) in joins {
            let mut pairs: Vec<(SegId, SegId)> = Vec::new();
            for s in self.grid.shards_overlapping(&q) {
                pairs.extend(self.shard_join(s).pairs.iter().copied().filter(|&(a, b)| {
                    pair_intersects_in(&self.segs[a as usize], &self.overlay_segs[b as usize], &q)
                }));
            }
            pairs.sort_unstable();
            pairs.dedup();
            answers[slot] = Some(pairs);
        }
        answers
    }

    /// The shard's cached base×overlay join, computing it on first use by
    /// running [`frontier_join`] on the shard's own machine and mapping
    /// shard-local ids to global ids.
    fn shard_join(&self, s: usize) -> &ShardJoin {
        let shard = &self.shards[s];
        shard.join.get_or_init(|| {
            let Some(overlay) = shard.overlay.as_ref() else {
                return ShardJoin {
                    pairs: Vec::new(),
                    rounds: 0,
                    frontier_peak: 0,
                    pairs_tested: 0,
                    trace: Vec::new(),
                };
            };
            // Isolate the join's round trace from any traces buffered by
            // earlier driver runs on this machine.
            let resumed = shard.machine.take_round_traces();
            let outcome = frontier_join(
                &shard.machine,
                &shard.index.tree,
                &shard.index.segs,
                &overlay.tree,
                &overlay.segs,
            )
            .expect("shard base and overlay trees span the same world");
            let trace = shard.machine.take_round_traces();
            for t in resumed {
                shard.machine.record_round_trace(t);
            }
            let pairs: Vec<(SegId, SegId)> = outcome
                .pairs
                .iter()
                .map(|&(a, b)| {
                    (
                        shard.index.global_ids[a as usize],
                        overlay.global_ids[b as usize],
                    )
                })
                .collect();
            ShardJoin {
                pairs,
                rounds: outcome.rounds,
                frontier_peak: outcome.frontier_peak,
                pairs_tested: outcome.pairs_tested,
                trace,
            }
        })
    }

    /// A snapshot of the service counters, including every shard
    /// machine's primitive-operation counts.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardStats {
                    shard: i,
                    tile: s.index.tile,
                    segments: s.index.segs.len(),
                    probes: s.counters.probes.load(Ordering::Relaxed),
                    batches: s.counters.batches.load(Ordering::Relaxed),
                    max_queue_depth: s.counters.max_queue_depth.load(Ordering::Relaxed),
                    latency_histogram: std::array::from_fn(|b| {
                        s.counters.latency[b].load(Ordering::Relaxed)
                    }),
                    ops: s.machine.stats(),
                    arena_takes: s.machine.arena_stats().0,
                    arena_hits: s.machine.arena_stats().1,
                    build_trace: s.build_trace.clone(),
                    join: s.join.get().map(|j| ShardJoinStats {
                        pairs: j.pairs.len(),
                        rounds: j.rounds,
                        frontier_peak: j.frontier_peak,
                        pairs_tested: j.pairs_tested,
                        trace: j.trace.clone(),
                    }),
                })
                .collect(),
            requests: self.requests.load(Ordering::Relaxed),
            knn_rounds: self.knn_rounds.load(Ordering::Relaxed),
            join_requests: self.join_requests.load(Ordering::Relaxed),
        }
    }

    /// Resets every counter (shard machines included). Index structures
    /// are untouched.
    pub fn reset_stats(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.knn_rounds.store(0, Ordering::Relaxed);
        self.join_requests.store(0, Ordering::Relaxed);
        for s in &self.shards {
            s.machine.reset_stats();
            s.counters.probes.store(0, Ordering::Relaxed);
            s.counters.batches.store(0, Ordering::Relaxed);
            s.counters.max_queue_depth.store(0, Ordering::Relaxed);
            for b in &s.counters.latency {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Reference answer for a k-NN request: brute force over all segments,
/// sorted by `(distance, id)`. Shared by the differential tests and the
/// load driver's self-check.
pub fn brute_knearest(segs: &[LineSeg], p: Point, k: usize) -> Vec<(SegId, f64)> {
    let mut scored: Vec<(SegId, f64)> = segs
        .iter()
        .enumerate()
        .map(|(id, s)| (id as SegId, s.dist2_to_point(p).sqrt()))
        .collect();
    scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geom::clip_segment_closed;
    use dp_workloads::{request_stream, uniform_segments, RequestMix};

    fn assert_sync<T: Sync + Send>() {}

    #[test]
    fn service_is_shareable_across_threads() {
        assert_sync::<QueryService>();
    }

    fn brute_window(segs: &[LineSeg], q: &Rect) -> Vec<SegId> {
        (0..segs.len() as SegId)
            .filter(|&id| clip_segment_closed(&segs[id as usize], q).is_some())
            .collect()
    }

    #[test]
    fn mixed_batch_matches_brute_force() {
        let data = uniform_segments(300, 64, 8, 11);
        let svc = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        let reqs = request_stream(data.world, 150, RequestMix::DEFAULT, 5);
        let out = svc.execute_batch(&reqs);
        assert_eq!(out.len(), reqs.len());
        for (r, resp) in reqs.iter().zip(&out) {
            match (r, resp) {
                (Request::Window(q), Response::Window(ids)) => {
                    assert_eq!(*ids, brute_window(&data.segs, q), "window {q}");
                }
                (Request::PointInWindow(p), Response::PointInWindow(ids)) => {
                    assert_eq!(*ids, brute_window(&data.segs, &Rect::point(*p)));
                }
                (Request::KNearest { p, k }, Response::KNearest(found)) => {
                    assert_eq!(*found, brute_knearest(&data.segs, *p, *k));
                }
                other => panic!("response kind mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn empty_collection_and_empty_batch() {
        let world = Rect::from_coords(0.0, 0.0, 16.0, 16.0);
        let svc = QueryService::build(QueryServiceConfig::sequential(2), world, Vec::new());
        assert!(svc.execute_batch(&[]).is_empty());
        let out = svc.execute_batch(&[
            Request::Window(world),
            Request::KNearest {
                p: Point::new(1.0, 1.0),
                k: 3,
            },
        ]);
        assert_eq!(out[0], Response::Window(Vec::new()));
        assert_eq!(out[1], Response::KNearest(Vec::new()));
    }

    #[test]
    fn stats_track_probes_and_batches() {
        let data = uniform_segments(200, 64, 6, 3);
        let mut cfg = QueryServiceConfig::sequential(2);
        cfg.flush_batch = 16;
        let svc = QueryService::build(cfg, data.world, data.segs.clone());
        let reqs = request_stream(data.world, 100, RequestMix::WINDOW_ONLY, 9);
        svc.execute_batch(&reqs);
        let stats = svc.stats();
        assert_eq!(stats.requests, 100);
        assert!(
            stats.total_probes() >= 100,
            "probes {}",
            stats.total_probes()
        );
        let busiest = stats.shards.iter().map(|s| s.probes).max().unwrap();
        assert!(busiest > 0);
        // flush_batch = 16 forces multi-flush queues on busy shards.
        assert!(stats.shards.iter().any(|s| s.batches > 1));
        for s in &stats.shards {
            assert!(s.max_queue_depth as usize <= reqs.len());
            let flushes: u64 = s.latency_histogram.iter().sum();
            assert_eq!(flushes, s.batches);
        }
        assert!(stats.total_primitives() > 0);
        assert!(stats.flush_latency_quantile_micros(0.5).is_some());
        svc.reset_stats();
        let zeroed = svc.stats();
        assert_eq!(zeroed.requests, 0);
        assert_eq!(zeroed.total_probes(), 0);
        assert_eq!(zeroed.total_primitives(), 0);
    }

    #[test]
    fn join_requests_match_windowed_brute_force() {
        use dp_spatial::join::brute_force_join_in;
        let base = uniform_segments(200, 64, 8, 21);
        let overlay = uniform_segments(150, 64, 8, 22);
        let svc = QueryService::build_with_overlay(
            QueryServiceConfig::sequential(2),
            base.world,
            base.segs.clone(),
            overlay.segs.clone(),
        );
        let windows = [
            base.world,
            Rect::from_coords(0.0, 0.0, 20.0, 20.0),
            Rect::from_coords(30.0, 30.0, 34.0, 34.0),
            Rect::point(Point::new(32.0, 32.0)),
        ];
        let reqs: Vec<Request> = windows.iter().map(|&q| Request::Join(q)).collect();
        let out = svc.execute_batch(&reqs);
        for (q, resp) in windows.iter().zip(&out) {
            let Response::Join(pairs) = resp else {
                panic!("join request answered with {resp:?}");
            };
            assert_eq!(
                *pairs,
                brute_force_join_in(&base.segs, &overlay.segs, q),
                "join window {q}"
            );
        }
        let stats = svc.stats();
        assert_eq!(stats.join_requests, windows.len() as u64);
        let joined: Vec<&ShardJoinStats> = stats
            .shards
            .iter()
            .filter_map(|s| s.join.as_ref())
            .collect();
        assert!(!joined.is_empty(), "no shard computed a join");
        for j in joined {
            assert_eq!(
                j.trace.iter().filter(|t| t.nodes_split > 0).count(),
                j.rounds
            );
        }
    }

    #[test]
    fn join_without_overlay_is_empty() {
        let data = uniform_segments(100, 64, 8, 4);
        let svc = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        let out = svc.execute_batch(&[Request::Join(data.world)]);
        assert_eq!(out[0], Response::Join(Vec::new()));
        assert!(svc.stats().shards.iter().all(|s| s
            .join
            .as_ref()
            .map(|j| j.pairs == 0)
            .unwrap_or(true)));
    }

    #[test]
    fn knn_crosses_shard_boundaries() {
        // Nearest neighbours of a point hugging a tile corner live in
        // other tiles; expanding windows must find them.
        let world = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let segs = vec![
            LineSeg::from_coords(40.0, 40.0, 41.0, 41.0), // far, same tile as p? no: NE region
            LineSeg::from_coords(33.0, 33.0, 34.0, 33.0), // just across the centre
            LineSeg::from_coords(1.0, 1.0, 2.0, 2.0),     // same tile as p, far away
        ];
        let svc = QueryService::build(QueryServiceConfig::sequential(2), world, segs.clone());
        let p = Point::new(31.0, 31.0);
        let out = svc.execute_batch(&[Request::KNearest { p, k: 2 }]);
        assert_eq!(out[0], Response::KNearest(brute_knearest(&segs, p, 2)));
        assert!(svc.stats().knn_rounds >= 1);
    }
}
