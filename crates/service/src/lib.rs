//! # dp-service — a sharded, crash-tolerant query service over the batch engine
//!
//! The paper's batch primitives turn *many queries* into one lockstep
//! data-parallel descent ([`dp_spatial::batch`]). This crate wraps that
//! engine in a service shape: the world is split into a `g × g` grid of
//! tiles ([`dp_spatial::shard::ShardGrid`]), each tile gets its own bucket
//! PMR quadtree over the segments touching it, and a batch of mixed
//! requests — window queries, point-in-window probes, k-nearest-neighbour
//! lookups, and (against an optional *overlay* layer) windowed spatial
//! joins — is routed to the overlapping shards, executed per shard as
//! lockstep batches on a long-lived [`Machine`], and merged per request.
//!
//! A service built with [`QueryService::build_with_overlay`] indexes a
//! second segment layer per shard; `Join` requests then answer with the
//! base×overlay pairs intersecting inside their window, computed by the
//! data-parallel [`frontier_join`] once per shard and filtered per
//! window (see [`QueryService::stats`] for the per-shard join round
//! telemetry).
//!
//! ## Execution model
//!
//! 1. **Route.** Every request contributes one or more *window probes*
//!    (a point probe is the degenerate window `Rect::point(p)`; a
//!    k-nearest request contributes one probe per expansion round). Each
//!    probe is routed to every shard whose tile it overlaps.
//! 2. **Execute.** Shards run concurrently. A shard drains its probe
//!    queue in chunks of at most `flush_batch`, each chunk executed as one
//!    [`batch_window_query`] — a lockstep descent costing a constant
//!    number of scan-model primitives per tree level regardless of the
//!    chunk size (paper Sec. 4). The shard reuses one [`Machine`] and one
//!    [`scan_model::ScratchArena`] across its lifetime.
//! 3. **Merge.** Per-shard hits are mapped from shard-local to global
//!    segment ids, concatenated per request in shard order, sorted and
//!    deduplicated — a segment spanning several tiles is reported once.
//!
//! K-nearest requests run as *expanding window* rounds: probe a square of
//! half-width `r` around the query point; if fewer than `k` hits come
//! back, or the k-th best distance exceeds `r`, double `r` and re-probe
//! (all unfinished k-NN requests advance together, each round being one
//! more routed probe batch). Since a segment at Euclidean distance `d`
//! from the centre always intersects the square of half-width `d`, a
//! k-th best distance `≤ r` proves no unseen segment can do better.
//!
//! ## Crash tolerance
//!
//! No failure on the request path aborts the process. The service is
//! typed-fallible end to end:
//!
//! * **Validation.** Unanswerable requests (non-finite windows or points,
//!   `k = 0`) are rejected per slot with
//!   [`Response::Rejected`]`(`[`SpatialError::MalformedRequest`]`)` —
//!   neighbouring requests in the batch are unaffected.
//! * **Isolation.** Every per-shard unit of work (a probe chunk, a join
//!   computation, a shard build) runs under `catch_unwind`, so a panic —
//!   injected or genuine — is confined to the shard that raised it.
//! * **Recovery ladder.** A crashed unit is retried up to
//!   [`RETRY_LIMIT`] times with a deterministic spin backoff (no wall
//!   clock); if it keeps crashing, the shard is **rebuilt** from its
//!   assigned segments on a fresh machine; if even that fails, the shard
//!   is marked **degraded**: its index is dropped and every probe routed
//!   to it is answered by the sequential oracle (an exact per-segment
//!   clip test over the shard's assignment), so answers stay correct —
//!   and differentially checkable — at reduced speed. Each rung is
//!   recorded as a [`RecoveryEvent`] and surfaced in [`ShardStats`]
//!   (`degraded`, `retries`, `rebuilds`, `faults_injected`).
//! * **Determinism.** Faults are injected only through a seeded
//!   [`scan_model::FaultPlan`] ([`QueryService::try_build_with_faults`]),
//!   forked per shard so occurrence indices count per shard and the same
//!   plan replays the same faults regardless of thread schedule.
//!
//! Results are **byte-identical** to running the same requests through a
//! single unsharded machine — shard outputs are merged in deterministic
//! shard order before the final sort, and a recovered or degraded shard
//! returns exactly what its healthy twin would — which is what the
//! differential suites in `tests/` (including `tests/fault_injection.rs`)
//! assert, per workload family, backend and fault site.
//!
//! ## Admission (serving under sustained load)
//!
//! `execute_batch` welds arrival to execution: the caller blocks for the
//! whole batch. For sustained serving, wrap the service in a
//! [`ServicePipeline`] (module [`admission`]): bounded per-lane queues
//! decouple arrival from round execution, workers coalesce arrivals into
//! micro-batches ([`coalesce`]), full lanes apply backpressure or typed
//! load shedding ([`shed`]), hot windows answer from a write-versioned
//! result cache ([`cache`]), and epoch compaction moves to a background
//! thread. The lockstep execution core underneath is unchanged — the
//! differential suites run the same streams through both paths.

pub mod admission;
pub mod cache;
pub mod coalesce;
pub mod shed;
pub mod snapshot;

pub use admission::{BatchTicket, ServicePipeline, Ticket};
pub use cache::{CacheKind, CacheLookup, CacheStats, WindowCache};
pub use coalesce::{Coalescer, FlushDecision, LatencyHistogram, HISTOGRAM_BUCKETS};
pub use shed::{Admission, AdmissionPolicy};

use dp_geom::{clip_segment_closed, LineSeg, Point, Rect};
use dp_spatial::batch::batch_window_query;
use dp_spatial::bucket_pmr::build_bucket_pmr;
use dp_spatial::dominance::{dominance_agg, dominance_weight, skyline, DomPoint};
use dp_spatial::join::{frontier_join, pair_intersects_in};
use dp_spatial::quadtree::DpQuadtree;
use dp_spatial::shard::{build_shard, ShardGrid, ShardIndex};
use dp_spatial::update::{batch_update_bucket_pmr, UpdateBatch};
use dp_spatial::{MalformedKind, SegId, SpatialError};
use dp_workloads::Request;
use rayon::prelude::*;
use scan_model::{Backend, FaultPlan, InjectedFault, Machine, RoundTrace, StatsSnapshot};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

/// Number of log₂-microsecond latency buckets per shard.
pub const LATENCY_BUCKETS: usize = 32;

/// Crashed shard work is retried this many times (per ladder rung) before
/// escalating to a rebuild, and again before degrading.
pub const RETRY_LIMIT: u32 = 2;

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryServiceConfig {
    /// Tiles per world side; the service runs `shard_grid²` shards. Must
    /// be a positive power of two.
    pub shard_grid: u32,
    /// Maximum probes executed per per-shard lockstep batch. Larger
    /// batches amortise the per-level primitive cost over more lanes;
    /// smaller batches bound per-flush latency.
    pub flush_batch: usize,
    /// Backend of every shard's [`Machine`].
    pub backend: Backend,
    /// Parallel-threshold override for the shard machines (`None` keeps
    /// the machine default).
    pub par_threshold: Option<usize>,
    /// Bucket capacity of the per-shard PMR quadtrees.
    pub capacity: usize,
    /// Maximum subdivision depth of the per-shard quadtrees.
    pub max_depth: usize,
    /// Write pressure (accumulated tombstones + pending overlay inserts)
    /// at which a compaction merges base and overlay into a fresh epoch.
    pub compact_threshold: usize,
    /// Admission-lane coalescing deadline: the oldest request buffered
    /// by a [`ServicePipeline`] lane waits at most this long before its
    /// micro-batch is flushed, full or not.
    pub coalesce_deadline_micros: u64,
    /// Bound of each admission lane's queue; a full lane applies the
    /// pipeline's [`AdmissionPolicy`] (backpressure or shedding). Must
    /// be at least `flush_batch` so one full micro-batch fits.
    pub queue_bound: usize,
    /// Capacity of the hot-window result cache consulted on the
    /// admission path (`0` disables caching).
    pub cache_capacity: usize,
}

impl Default for QueryServiceConfig {
    fn default() -> Self {
        QueryServiceConfig {
            shard_grid: 4,
            flush_batch: 1024,
            backend: Backend::Parallel,
            par_threshold: None,
            capacity: 8,
            max_depth: 16,
            compact_threshold: 256,
            coalesce_deadline_micros: 200,
            queue_bound: 4096,
            cache_capacity: 1024,
        }
    }
}

impl QueryServiceConfig {
    /// A sequential-backend configuration with the given shard grid
    /// (handy in tests).
    pub fn sequential(shard_grid: u32) -> Self {
        QueryServiceConfig {
            shard_grid,
            backend: Backend::Sequential,
            ..QueryServiceConfig::default()
        }
    }

    fn validate(&self) -> Result<(), SpatialError> {
        if self.shard_grid == 0 || !self.shard_grid.is_power_of_two() {
            return Err(SpatialError::InvalidConfig {
                reason: "shard_grid must be a positive power of two",
            });
        }
        if self.capacity == 0 {
            return Err(SpatialError::InvalidConfig {
                reason: "bucket capacity must be at least 1",
            });
        }
        if self.compact_threshold == 0 {
            return Err(SpatialError::InvalidConfig {
                reason: "compact_threshold must be at least 1",
            });
        }
        if self.flush_batch == 0 {
            return Err(SpatialError::InvalidConfig {
                reason: "flush_batch must be at least 1",
            });
        }
        if self.queue_bound < self.flush_batch {
            return Err(SpatialError::InvalidConfig {
                reason: "queue_bound must hold at least one full flush_batch",
            });
        }
        Ok(())
    }
}

/// One response, aligned with the request at the same batch position.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Sorted, deduplicated ids of segments intersecting the window.
    /// The payload is shared (`Arc`) so a hot-window cache hit hands the
    /// cached answer out without copying the id vector; equality still
    /// compares the ids themselves.
    Window(Arc<Vec<SegId>>),
    /// Sorted, deduplicated ids of segments passing through the point
    /// (shared like [`Response::Window`]).
    PointInWindow(Arc<Vec<SegId>>),
    /// Up to `k` `(id, distance)` pairs, nearest first, ties broken by
    /// ascending id. Shorter than `k` only when the collection itself
    /// holds fewer segments.
    KNearest(Vec<(SegId, f64)>),
    /// Sorted, deduplicated `(base_id, overlay_id)` pairs intersecting
    /// inside the request window. Empty when the service was built
    /// without an overlay layer.
    Join(Vec<(SegId, SegId)>),
    /// The segment was added; the payload is its *logical* id — its
    /// position in the serving collection right after the insert, the id
    /// subsequent query responses report it under (until later deletes
    /// shift it, exactly as in an eagerly-updated `Vec`).
    Inserted(SegId),
    /// The segment with this logical id was removed.
    Deleted(SegId),
    /// Sorted ascending logical ids of the *skyline* segments of the
    /// window: among the midpoints of the segments intersecting the
    /// request window, the points dominated by no other candidate under
    /// closed max-dominance (see [`dp_spatial::dominance`]). Shared like
    /// [`Response::Window`] so cache hits hand out one allocation.
    Skyline(Arc<Vec<SegId>>),
    /// Dominated-set aggregate of a query point: over every live segment
    /// whose midpoint lies in the closed lower-left quadrant of the
    /// query (and intersects that quadrant's world clip), the count, the
    /// sum and the max of the quantized-length weights
    /// ([`dp_spatial::dominance::dominance_weight`]). `max` is 0 when
    /// the dominated set is empty.
    DominanceAgg {
        /// Number of dominated segments.
        count: u64,
        /// Sum of their weights.
        sum: u64,
        /// Maximum weight (0 for an empty set).
        max: u64,
    },
    /// The request was unanswerable (non-finite geometry, `k = 0`,
    /// unknown delete id) and was rejected by per-slot validation
    /// without touching any shard.
    Rejected(SpatialError),
}

impl Response {
    /// The window hits, or the typed error: the rejection that produced
    /// a [`Response::Rejected`], or
    /// [`SpatialError::ResponseKindMismatch`] when the slot holds a
    /// different response kind. `index` is the slot position, echoed
    /// into the mismatch error.
    pub fn try_window(&self, index: usize) -> Result<&[SegId], SpatialError> {
        match self {
            Response::Window(ids) => Ok(ids),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }

    /// The point-probe hits (see [`Response::try_window`] for the error
    /// contract).
    pub fn try_point_in_window(&self, index: usize) -> Result<&[SegId], SpatialError> {
        match self {
            Response::PointInWindow(ids) => Ok(ids),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }

    /// The k-nearest answer (see [`Response::try_window`] for the error
    /// contract).
    pub fn try_knearest(&self, index: usize) -> Result<&[(SegId, f64)], SpatialError> {
        match self {
            Response::KNearest(found) => Ok(found),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }

    /// The join pairs (see [`Response::try_window`] for the error
    /// contract).
    pub fn try_join(&self, index: usize) -> Result<&[(SegId, SegId)], SpatialError> {
        match self {
            Response::Join(pairs) => Ok(pairs),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }

    /// The inserted segment's logical id (see [`Response::try_window`]
    /// for the error contract).
    pub fn try_inserted(&self, index: usize) -> Result<SegId, SpatialError> {
        match self {
            Response::Inserted(id) => Ok(*id),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }

    /// The skyline ids (see [`Response::try_window`] for the error
    /// contract).
    pub fn try_skyline(&self, index: usize) -> Result<&[SegId], SpatialError> {
        match self {
            Response::Skyline(ids) => Ok(ids),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }

    /// The dominance aggregate as `(count, sum, max)` (see
    /// [`Response::try_window`] for the error contract).
    pub fn try_dominance_agg(&self, index: usize) -> Result<(u64, u64, u64), SpatialError> {
        match self {
            Response::DominanceAgg { count, sum, max } => Ok((*count, *sum, *max)),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }

    /// The deleted segment's logical id (see [`Response::try_window`]
    /// for the error contract).
    pub fn try_deleted(&self, index: usize) -> Result<SegId, SpatialError> {
        match self {
            Response::Deleted(id) => Ok(*id),
            Response::Rejected(e) => Err(*e),
            _ => Err(SpatialError::ResponseKindMismatch { index }),
        }
    }
}

/// Which rung of the recovery ladder a [`RecoveryEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryAction {
    /// The crashed unit was re-run on the same shard core (the `n`-th
    /// retry of its ladder rung, 1-based).
    Retry(u32),
    /// The shard was rebuilt from its assigned segments on a fresh
    /// machine.
    Rebuild,
    /// The shard gave up: its index was dropped and the sequential
    /// oracle answers for it from now on.
    Degrade,
    /// A warm restart from an on-disk snapshot was attempted but the
    /// snapshot could not be used (missing, corrupt, wrong version, or
    /// inconsistent with the requested build); the service fell through
    /// to a cold rebuild from segments. `shard` is the grid size (one
    /// event per restart, not per shard) and `error` carries the typed
    /// cause.
    ColdRestart,
}

/// One recovery decision taken by the service, in the order observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryEvent {
    /// Row-major shard slot the event concerns.
    pub shard: usize,
    /// Which ladder rung was taken.
    pub action: RecoveryAction,
    /// Best-effort cause: the typed form of the caught panic for
    /// retries/rebuilds, [`SpatialError::ShardUnavailable`] for
    /// degradations.
    pub error: SpatialError,
}

/// Interior-mutable per-shard counters.
#[derive(Debug)]
struct ShardCounters {
    probes: AtomicU64,
    batches: AtomicU64,
    max_queue_depth: AtomicU64,
    admitted: AtomicU64,
    coalesced_batches: AtomicU64,
    shed: AtomicU64,
    cache_hits: AtomicU64,
    queue_wait_micros: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
}

impl ShardCounters {
    fn new() -> Self {
        ShardCounters {
            probes: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_queue_depth: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
            coalesced_batches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            queue_wait_micros: AtomicU64::new(0),
            latency: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record_flush(&self, elapsed_micros: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        let bucket = (64 - elapsed_micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A fresh counter block holding the same values — carried into the
    /// replacement [`Shard`]s of a compacted epoch so telemetry is
    /// continuous across epoch swaps. `max_queue_depth` is the one
    /// exception: it is a *gauge* (steady-state admission-queue
    /// high-water mark), not a monotone counter, and the new epoch's
    /// queues start empty — carrying an old peak would make the value
    /// unfalsifiable, so epoch swaps reset it.
    fn carry(&self) -> ShardCounters {
        ShardCounters {
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
            batches: AtomicU64::new(self.batches.load(Ordering::Relaxed)),
            max_queue_depth: AtomicU64::new(0),
            admitted: AtomicU64::new(self.admitted.load(Ordering::Relaxed)),
            coalesced_batches: AtomicU64::new(self.coalesced_batches.load(Ordering::Relaxed)),
            shed: AtomicU64::new(self.shed.load(Ordering::Relaxed)),
            cache_hits: AtomicU64::new(self.cache_hits.load(Ordering::Relaxed)),
            queue_wait_micros: AtomicU64::new(self.queue_wait_micros.load(Ordering::Relaxed)),
            latency: std::array::from_fn(|i| {
                AtomicU64::new(self.latency[i].load(Ordering::Relaxed))
            }),
        }
    }

    fn record_queue(&self, depth: usize) {
        self.probes.fetch_add(depth as u64, Ordering::Relaxed);
        // On the direct `execute_batch` path the handed queue *is* the
        // instantaneous depth: everything arrives at once. The admission
        // path records the steady-state lane depth instead (see
        // `QueryService::note_admitted_batch`).
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.probes.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.max_queue_depth.store(0, Ordering::Relaxed);
        self.admitted.store(0, Ordering::Relaxed);
        self.coalesced_batches.store(0, Ordering::Relaxed);
        self.shed.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.queue_wait_micros.store(0, Ordering::Relaxed);
        for b in &self.latency {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// A point-in-time view of one shard, part of [`ServiceStats`].
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Shard index (row-major in the grid).
    pub shard: usize,
    /// The serving epoch this snapshot was taken from (bumped by every
    /// successful compaction).
    pub epoch: u64,
    /// The shard's tile.
    pub tile: Rect,
    /// Segments assigned to the shard.
    pub segments: usize,
    /// Window probes routed to the shard over its lifetime.
    pub probes: u64,
    /// Lockstep batches the shard has executed.
    pub batches: u64,
    /// High-water mark of the shard's *request queue depth*: on the
    /// admission path, the steady-state depth of the shard's lane
    /// (sampled at every enqueue); on the direct
    /// [`QueryService::execute_batch`] path, the probe queue handed per
    /// call. A gauge, not a counter — reset by epoch swaps (the new
    /// epoch's queues start empty) and by
    /// [`QueryService::reset_stats`].
    pub max_queue_depth: u64,
    /// Requests admitted to this shard's lane(s) through a
    /// [`ServicePipeline`] (0 on the direct path).
    pub admitted: u64,
    /// Coalesced micro-batches flushed by this shard's lane worker(s).
    pub coalesced_batches: u64,
    /// Requests shed by this shard's lane(s) under
    /// [`AdmissionPolicy::Shed`].
    pub shed: u64,
    /// Admission-path probes answered from the hot-window cache.
    pub cache_hits: u64,
    /// Total microseconds admitted requests spent queued in this
    /// shard's lane(s) before their micro-batch was handed to the
    /// engine.
    pub queue_wait_micros: u64,
    /// Per-flush latency histogram: bucket `i` counts flushes that took
    /// `[2^(i-1), 2^i)` microseconds (bucket 0: sub-microsecond).
    pub latency_histogram: [u64; LATENCY_BUCKETS],
    /// Scan-model primitive counters of the shard's machine — the
    /// service-level extension of [`scan_model::OpStats`].
    pub ops: StatsSnapshot,
    /// Scratch-arena buffer leases taken by the shard's machine over its
    /// lifetime (not reset by [`QueryService::reset_stats`]).
    pub arena_takes: u64,
    /// Of [`ShardStats::arena_takes`], leases served from the pool
    /// without allocating.
    pub arena_hits: u64,
    /// Per-round telemetry of the shard's index build, captured at
    /// construction time (one [`RoundTrace`] per subdivision round; not
    /// affected by [`QueryService::reset_stats`]). Empty when the build
    /// itself degraded.
    pub build_trace: Vec<RoundTrace>,
    /// The shard gave up on its index and answers via the sequential
    /// oracle (see the crate docs' recovery ladder).
    pub degraded: bool,
    /// Crashed work units re-run on the same core.
    pub retries: u64,
    /// Times the shard was rebuilt from segments on a fresh machine.
    pub rebuilds: u64,
    /// Faults the shard's [`FaultPlan`] fork has injected, across all
    /// sites (0 without fault injection).
    pub faults_injected: u64,
    /// Telemetry of the shard's base×overlay frontier join. `None` until
    /// the first `Join` request touches the shard (the join is computed
    /// lazily and cached) or when the service has no overlay layer.
    pub join: Option<ShardJoinStats>,
}

/// Telemetry of one shard's cached base×overlay frontier join.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardJoinStats {
    /// Intersecting pairs the shard contributes (global ids, pre-window
    /// filtering).
    pub pairs: usize,
    /// Frontier-expansion rounds the join took (≤ max tree height).
    pub rounds: usize,
    /// Largest candidate-pair frontier across those rounds.
    pub frontier_peak: usize,
    /// Exact segment-pair tests issued in leaf×leaf blocks.
    pub pairs_tested: u64,
    /// Per-round [`RoundTrace`] of the join's driver run.
    pub trace: Vec<RoundTrace>,
}

/// Aggregated service statistics: per-shard views plus batch-level
/// counters.
#[derive(Debug, Clone)]
pub struct ServiceStats {
    /// One entry per shard.
    pub shards: Vec<ShardStats>,
    /// Requests accepted by [`QueryService::execute_batch`] (rejected
    /// slots included — they were received, then refused).
    pub requests: u64,
    /// Expanding-window rounds spent on k-nearest requests.
    pub knn_rounds: u64,
    /// `Join` requests answered (each may touch several shards).
    pub join_requests: u64,
    /// The serving epoch number (bumped by every successful compaction).
    pub epoch: u64,
    /// Pending overlay segments awaiting the next compaction.
    pub overlay_size: usize,
    /// Tombstoned epoch-base segments awaiting the next compaction.
    pub tombstones: usize,
    /// Successful compactions over the service lifetime.
    pub compactions: u64,
    /// Compaction attempts that crashed and left the old epoch serving.
    pub failed_compactions: u64,
    /// Faults injected by the overlay ladder's fault-plan fork (0
    /// without fault injection).
    pub ladder_faults: u64,
}

impl ServiceStats {
    /// Total window probes across shards (≥ answered window requests: a
    /// request fans out to every overlapping shard, and k-NN requests
    /// probe once per round).
    pub fn total_probes(&self) -> u64 {
        self.shards.iter().map(|s| s.probes).sum()
    }

    /// The busiest shard's probe count — `0` for a service with no
    /// shards or no traffic (never panics, unlike `max().unwrap()`).
    pub fn max_shard_probes(&self) -> u64 {
        self.shards.iter().map(|s| s.probes).max().unwrap_or(0)
    }

    /// Total scan-model primitives across all shard machines.
    pub fn total_primitives(&self) -> u64 {
        self.shards.iter().map(|s| s.ops.total_primitives()).sum()
    }

    /// Shards currently degraded to the sequential oracle.
    pub fn degraded_shards(&self) -> usize {
        self.shards.iter().filter(|s| s.degraded).count()
    }

    /// Requests admitted through the pipeline, across all lanes.
    pub fn total_admitted(&self) -> u64 {
        self.shards.iter().map(|s| s.admitted).sum()
    }

    /// Requests shed by full lanes, across all lanes.
    pub fn total_shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Admission-path probes answered from the hot-window cache.
    pub fn total_cache_hits(&self) -> u64 {
        self.shards.iter().map(|s| s.cache_hits).sum()
    }

    /// Mean admission-queue wait per admitted request, in microseconds
    /// (`None` before any pipelined request).
    pub fn mean_queue_wait_micros(&self) -> Option<f64> {
        let admitted = self.total_admitted();
        (admitted > 0).then(|| {
            self.shards.iter().map(|s| s.queue_wait_micros).sum::<u64>() as f64 / admitted as f64
        })
    }

    /// Total faults injected across all shard fault-plan forks, plus the
    /// overlay ladder's fork.
    pub fn total_faults_injected(&self) -> u64 {
        self.shards.iter().map(|s| s.faults_injected).sum::<u64>() + self.ladder_faults
    }

    /// Approximate latency quantile over all per-shard flushes: the upper
    /// bound (in microseconds) of the histogram bucket containing the
    /// `q`-quantile flush, or `None` before any flush.
    pub fn flush_latency_quantile_micros(&self, q: f64) -> Option<u64> {
        let mut merged = [0u64; LATENCY_BUCKETS];
        for s in &self.shards {
            for (m, v) in merged.iter_mut().zip(s.latency_histogram.iter()) {
                *m += v;
            }
        }
        let total: u64 = merged.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((total as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in merged.iter().enumerate() {
            seen += count;
            if seen >= target {
                return Some(1u64 << i);
            }
        }
        Some(1u64 << (LATENCY_BUCKETS - 1))
    }
}

/// A shard's cached base×overlay join: pairs in global ids plus the
/// round telemetry of the frontier run that produced them.
struct ShardJoin {
    pairs: Vec<(SegId, SegId)>,
    rounds: usize,
    frontier_peak: usize,
    pairs_tested: u64,
    trace: Vec<RoundTrace>,
}

impl ShardJoin {
    fn empty() -> Self {
        ShardJoin {
            pairs: Vec::new(),
            rounds: 0,
            frontier_peak: 0,
            pairs_tested: 0,
            trace: Vec::new(),
        }
    }
}

/// The swappable heart of a shard. Everything is behind an `Arc` so a
/// query thread can *snapshot* the core under a brief lock, run the
/// actual machine work with no lock held (holding a shard lock across
/// pool work can self-deadlock when the holder help-drains another
/// batch's job for the same shard), and a recovering thread can swap in
/// a rebuilt core underneath it.
#[derive(Clone)]
struct ShardCore {
    machine: Arc<Machine>,
    /// `None` once the shard has degraded to the sequential oracle.
    index: Option<Arc<ShardIndex>>,
    overlay: Option<Arc<ShardIndex>>,
    /// The cached base×overlay join (first computation wins).
    join: Option<Arc<ShardJoin>>,
}

struct Shard {
    /// The shard's tile (kept outside the core so stats work when the
    /// index is gone).
    tile: Rect,
    /// Global ids of base segments assigned to this shard — the rebuild
    /// source and the oracle's scan list.
    assigned: Vec<SegId>,
    /// Global ids of overlay segments assigned to this shard.
    overlay_assigned: Vec<SegId>,
    /// This shard's fork of the service fault plan (occurrence indices
    /// count per shard, so injection is schedule-independent).
    plan: Arc<FaultPlan>,
    counters: ShardCounters,
    retries: AtomicU64,
    rebuilds: AtomicU64,
    degraded: AtomicBool,
    /// Round-driver telemetry of this shard's (first successful) build,
    /// drained from the machine right after construction.
    build_trace: Vec<RoundTrace>,
    core: Mutex<ShardCore>,
}

impl Shard {
    fn lock_core(&self) -> MutexGuard<'_, ShardCore> {
        // A panic while the lock was held cannot corrupt the core (it
        // only holds Arcs swapped atomically under the lock), so poison
        // is safe to clear.
        self.core.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn snapshot(&self) -> ShardCore {
        self.lock_core().clone()
    }
}

/// Rank of base id `b` among the live (non-tombstoned) ids of its epoch
/// — its logical id. `tombstones` is sorted ascending.
fn logical_of_base(tombstones: &[SegId], b: SegId) -> SegId {
    b - tombstones.partition_point(|&t| t < b) as SegId
}

/// The `j`-th live base id: the inverse of [`logical_of_base`]. Standard
/// rank/select fixpoint — `b = j + #{t ∈ tombstones : t ≤ b}` converges
/// because the right-hand side is monotone and bounded.
fn base_of_logical(tombstones: &[SegId], j: SegId) -> SegId {
    let mut b = j;
    loop {
        let nb = j + tombstones.partition_point(|&t| t <= b) as SegId;
        if nb == b {
            return b;
        }
        b = nb;
    }
}

/// One immutable serving epoch plus the write overlay accumulated on top
/// of it. Readers snapshot the whole state with one `Arc` clone and run
/// lock-free; writers publish a replacement `Arc` under the state write
/// lock; a compaction folds the overlay into the shard trees and bumps
/// `epoch` in the same single atomic swap — so no reader ever observes a
/// half-swapped tree.
///
/// **Logical ids.** Query responses and write requests address segments
/// by *logical* id: the segment's position in the collection an eager
/// sequential engine would hold after replaying every accepted write
/// (`Vec::push` per insert, `Vec::remove` per delete). Inside an epoch
/// that collection is: the epoch's base segments minus `tombstones` (in
/// base order), then `pending` in arrival order.
struct ServingState {
    /// Compaction generation, bumped once per epoch swap.
    epoch: u64,
    /// The epoch's base segment collection; shard `global_ids` and
    /// `tombstones` index into it.
    segs: Arc<Vec<LineSeg>>,
    /// The epoch's shards, built over `segs`.
    shards: Arc<Vec<Shard>>,
    /// Base ids deleted since the epoch was built (sorted ascending).
    tombstones: Vec<SegId>,
    /// Segments inserted since the epoch was built, in arrival order.
    pending: Vec<LineSeg>,
    /// The overlay ladder: a bucket PMR quadtree over `pending`
    /// (local ids), maintained incrementally by the batch updater.
    /// `None` exactly when `pending` is empty.
    ladder: Option<Arc<DpQuadtree>>,
}

impl ServingState {
    /// Live base segments: logical ids `0..kept()` map to them.
    fn kept(&self) -> SegId {
        (self.segs.len() - self.tombstones.len()) as SegId
    }

    /// Total live segments (base survivors + pending).
    fn live(&self) -> SegId {
        self.kept() + self.pending.len() as SegId
    }

    fn is_tombstoned(&self, b: SegId) -> bool {
        self.tombstones.binary_search(&b).is_ok()
    }

    /// The segment behind a logical id.
    fn logical_seg(&self, id: SegId) -> LineSeg {
        let kept = self.kept();
        if id < kept {
            self.segs[base_of_logical(&self.tombstones, id) as usize]
        } else {
            self.pending[(id - kept) as usize]
        }
    }

    /// The full logical collection — what an eager engine would hold.
    fn logical_collection(&self) -> Vec<LineSeg> {
        let mut out = Vec::with_capacity(self.live() as usize);
        let mut t = 0;
        for (b, seg) in self.segs.iter().enumerate() {
            if t < self.tombstones.len() && self.tombstones[t] as usize == b {
                t += 1;
                continue;
            }
            out.push(*seg);
        }
        out.extend(self.pending.iter().copied());
        out
    }
}

/// The sharded query service. Cheap to share by reference across threads:
/// every query path takes `&self`; reads run on an epoch snapshot, writes
/// serialize on the state lock and publish atomically.
pub struct QueryService {
    config: QueryServiceConfig,
    grid: ShardGrid,
    world: Rect,
    /// The serving state: swapped wholesale on writes and compactions.
    state: RwLock<Arc<ServingState>>,
    /// Overlay segment collection (empty without an overlay layer);
    /// `Response::Join` pairs index `(logical collection, overlay_segs)`.
    overlay_segs: Vec<LineSeg>,
    /// The fault-plan fork driving the write path's ladder machine
    /// (salted past every shard fork).
    ladder_plan: Arc<FaultPlan>,
    /// The machine the overlay ladder and its queries run on.
    ladder_machine: Machine,
    requests: AtomicU64,
    knn_rounds: AtomicU64,
    join_requests: AtomicU64,
    compactions: AtomicU64,
    failed_compactions: AtomicU64,
    events: Mutex<Vec<RecoveryEvent>>,
    /// Hot-window result cache, consulted only on the admission path
    /// (see [`QueryService::execute_admitted`]); the write path always
    /// invalidates it, so direct and pipelined callers can mix freely.
    cache: WindowCache,
    /// When set (a [`ServicePipeline`] is attached), accepted writes do
    /// not compact inline — lane workers signal the pipeline's
    /// background compactor instead.
    defer_compaction: AtomicBool,
}

/// Maps a caught panic payload to its typed cause: injected faults keep
/// their site and occurrence; anything else becomes a generic
/// shard-unavailable cause.
fn error_from_panic(shard: usize, attempts: u32, payload: &(dyn Any + Send)) -> SpatialError {
    match payload.downcast_ref::<InjectedFault>() {
        Some(f) => SpatialError::FaultInjected {
            site: f.site,
            occurrence: f.occurrence,
        },
        None => SpatialError::ShardUnavailable { shard, attempts },
    }
}

/// Deterministic backoff: a bounded spin that grows with the attempt
/// number. No wall clock, so recovery timing cannot perturb the seeded
/// fault streams or make replays diverge.
fn backoff(attempt: u32) {
    for _ in 0..(1u64 << attempt.min(8)) * 64 {
        std::hint::spin_loop();
    }
}

fn make_machine(config: &QueryServiceConfig, plan: &Arc<FaultPlan>) -> Machine {
    let machine = match config.par_threshold {
        Some(t) => Machine::new(config.backend).with_par_threshold(t),
        None => Machine::new(config.backend),
    };
    machine.with_fault_plan(plan.clone())
}

/// Per-slot request validation: `Some(error)` when the request can never
/// be answered. Windows reaching outside the world are *not* rejected —
/// the service clips them naturally via routing plus exact filters.
fn validate_request(index: usize, r: &Request) -> Option<SpatialError> {
    // The canonical empty rect (`Rect::empty()`) is deliberately built
    // from infinities and is a well-defined request that matches nothing;
    // NaN corners fail `is_empty`'s comparisons, so poisoned rects are
    // still caught.
    let malformed_rect = |q: &Rect| {
        let finite = q.min.x.is_finite()
            && q.min.y.is_finite()
            && q.max.x.is_finite()
            && q.max.y.is_finite();
        !finite && !q.is_empty()
    };
    let finite_point = |p: &Point| p.x.is_finite() && p.y.is_finite();
    match r {
        Request::Window(q) | Request::Join(q) | Request::Skyline(q) if malformed_rect(q) => {
            Some(SpatialError::MalformedRequest {
                index,
                kind: MalformedKind::NonFiniteWindow,
            })
        }
        Request::PointInWindow(p) | Request::DominanceAgg(p) if !finite_point(p) => {
            Some(SpatialError::MalformedRequest {
                index,
                kind: MalformedKind::NonFinitePoint,
            })
        }
        Request::KNearest { k: 0, .. } => Some(SpatialError::MalformedRequest {
            index,
            kind: MalformedKind::ZeroK,
        }),
        Request::KNearest { p, .. } if !finite_point(p) => Some(SpatialError::MalformedRequest {
            index,
            kind: MalformedKind::NonFinitePoint,
        }),
        Request::Insert(seg) if !(finite_point(&seg.a) && finite_point(&seg.b)) => {
            Some(SpatialError::MalformedRequest {
                index,
                kind: MalformedKind::NonFiniteSegment,
            })
        }
        _ => None,
    }
}

/// Packs a dominance aggregate triple into six `u32` words (hi/lo per
/// value) so the answer can ride the cache's `Arc<Vec<SegId>>` payload
/// unchanged.
fn encode_agg((count, sum, max): (u64, u64, u64)) -> Vec<SegId> {
    let mut out = Vec::with_capacity(6);
    for v in [count, sum, max] {
        out.push((v >> 32) as SegId);
        out.push(v as SegId);
    }
    out
}

/// Inverse of [`encode_agg`]; a malformed payload decodes to the empty
/// aggregate rather than panicking on the serving path.
fn decode_agg(words: &[SegId]) -> (u64, u64, u64) {
    if words.len() != 6 {
        return (0, 0, 0);
    }
    let v = |i: usize| ((words[i] as u64) << 32) | words[i + 1] as u64;
    (v(0), v(2), v(4))
}

/// Brute closed max-dominance skyline over dominance points — the
/// degraded rung when the ladder machine crashes mid-pipeline. O(n²)
/// but exact; restates the `seq_spatial` oracle locally because that
/// crate is a dev-dependency only.
fn brute_skyline(points: &[DomPoint]) -> Vec<SegId> {
    let dominates =
        |a: &DomPoint, b: &DomPoint| a.x >= b.x && a.y >= b.y && (a.x > b.x || a.y > b.y);
    points
        .iter()
        .filter(|p| !points.iter().any(|q| dominates(q, p)))
        .map(|p| p.id)
        .collect()
}

/// What one shard's fault-tolerant build produced.
struct ShardBuild {
    core: ShardCore,
    build_trace: Vec<RoundTrace>,
    events: Vec<RecoveryEvent>,
    retries: u64,
    degraded: bool,
}

/// Builds one shard's core, riding the recovery ladder: up to
/// `1 + RETRY_LIMIT` attempts (each on a fresh machine — the shared plan
/// keeps its occurrence counters, so a once-at fault does not re-fire),
/// then degradation (core with no index).
#[allow(clippy::too_many_arguments)]
fn build_core_recovering(
    config: &QueryServiceConfig,
    world: Rect,
    segs: &[LineSeg],
    overlay_segs: &[LineSeg],
    tile: Rect,
    assigned: &[SegId],
    overlay_assigned: &[SegId],
    plan: &Arc<FaultPlan>,
    shard_no: usize,
) -> ShardBuild {
    let mut events = Vec::new();
    let mut retries = 0u64;
    for attempt in 0..=RETRY_LIMIT {
        let machine = make_machine(config, plan);
        let built = catch_unwind(AssertUnwindSafe(|| {
            let index = build_shard(
                &machine,
                world,
                tile,
                segs,
                assigned,
                config.capacity,
                config.max_depth,
            );
            let trace = machine.take_round_traces();
            let overlay = if overlay_segs.is_empty() {
                None
            } else {
                let idx = build_shard(
                    &machine,
                    world,
                    tile,
                    overlay_segs,
                    overlay_assigned,
                    config.capacity,
                    config.max_depth,
                );
                // The overlay build's traces are not part of the base
                // build table; the join's own trace is captured when the
                // join first runs.
                machine.take_round_traces();
                Some(Arc::new(idx))
            };
            (index, trace, overlay)
        }));
        match built {
            Ok((index, build_trace, overlay)) => {
                return ShardBuild {
                    core: ShardCore {
                        machine: Arc::new(machine),
                        index: Some(Arc::new(index)),
                        overlay,
                        join: None,
                    },
                    build_trace,
                    events,
                    retries,
                    degraded: false,
                };
            }
            Err(payload) => {
                let cause = error_from_panic(shard_no, attempt + 1, payload.as_ref());
                if attempt < RETRY_LIMIT {
                    retries += 1;
                    events.push(RecoveryEvent {
                        shard: shard_no,
                        action: RecoveryAction::Retry(attempt + 1),
                        error: cause,
                    });
                    backoff(attempt + 1);
                } else {
                    events.push(RecoveryEvent {
                        shard: shard_no,
                        action: RecoveryAction::Degrade,
                        error: SpatialError::ShardUnavailable {
                            shard: shard_no,
                            attempts: RETRY_LIMIT + 1,
                        },
                    });
                }
            }
        }
    }
    ShardBuild {
        core: ShardCore {
            machine: Arc::new(make_machine(config, plan)),
            index: None,
            overlay: None,
            join: None,
        },
        build_trace: Vec::new(),
        events,
        retries,
        degraded: true,
    }
}

impl QueryService {
    /// Builds the service: partitions `segs` over the shard grid and
    /// constructs every shard's quadtree (shards build concurrently,
    /// each through its own machine).
    ///
    /// # Panics
    ///
    /// Panics on the validation errors [`QueryService::try_build`]
    /// reports (invalid shard grid or capacity, segments outside the
    /// half-open `world`).
    pub fn build(config: QueryServiceConfig, world: Rect, segs: Vec<LineSeg>) -> Self {
        QueryService::try_build(config, world, segs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`QueryService::build`] plus a second *overlay* layer of segments,
    /// indexed per shard exactly like the base layer. `Join` requests
    /// answer with base×overlay pairs intersecting inside their window;
    /// with an empty `overlay` every join answer is empty.
    ///
    /// Both layers' shard trees span the full world, so each shard's base
    /// and overlay quadtrees are aligned decompositions — exactly the
    /// precondition of [`frontier_join`].
    ///
    /// # Panics
    ///
    /// Panics on the validation errors
    /// [`QueryService::try_build_with_overlay`] reports.
    pub fn build_with_overlay(
        config: QueryServiceConfig,
        world: Rect,
        segs: Vec<LineSeg>,
        overlay: Vec<LineSeg>,
    ) -> Self {
        QueryService::try_build_with_overlay(config, world, segs, overlay)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`QueryService::build`]: validates the configuration and
    /// every segment endpoint before any shard work, returning a typed
    /// [`SpatialError`] instead of panicking.
    pub fn try_build(
        config: QueryServiceConfig,
        world: Rect,
        segs: Vec<LineSeg>,
    ) -> Result<Self, SpatialError> {
        QueryService::try_build_with_overlay(config, world, segs, Vec::new())
    }

    /// Fallible [`QueryService::build_with_overlay`].
    pub fn try_build_with_overlay(
        config: QueryServiceConfig,
        world: Rect,
        segs: Vec<LineSeg>,
        overlay: Vec<LineSeg>,
    ) -> Result<Self, SpatialError> {
        QueryService::try_build_with_faults(
            config,
            world,
            segs,
            overlay,
            Arc::new(FaultPlan::disabled()),
        )
    }

    /// [`QueryService::try_build_with_overlay`] under a fault plan: each
    /// shard gets a [`FaultPlan::fork`] of `plan` (salted by its shard
    /// index) attached to its machine, so round aborts, arena overflows
    /// and — with an armed worker hook — pool panics are injected
    /// deterministically per shard. `Err` is returned only for
    /// validation failures; shards whose *builds* keep crashing degrade
    /// to the oracle instead of failing construction.
    pub fn try_build_with_faults(
        config: QueryServiceConfig,
        world: Rect,
        segs: Vec<LineSeg>,
        overlay: Vec<LineSeg>,
        plan: Arc<FaultPlan>,
    ) -> Result<Self, SpatialError> {
        config.validate()?;
        for (index, s) in segs.iter().chain(overlay.iter()).enumerate() {
            if !(world.contains_half_open(s.a) && world.contains_half_open(s.b)) {
                return Err(SpatialError::SegmentOutsideWorld {
                    index: index % segs.len().max(1),
                });
            }
        }
        let grid = ShardGrid::new(world, config.shard_grid);
        let assignment = grid.assign_segments(&segs);
        let overlay_assignment = grid.assign_segments(&overlay);
        let build_one = |i: usize| {
            let shard_plan = Arc::new(plan.fork(i as u64));
            let built = build_core_recovering(
                &config,
                world,
                &segs,
                &overlay,
                grid.tile_of(i),
                &assignment[i],
                &overlay_assignment[i],
                &shard_plan,
                i,
            );
            let shard = Shard {
                tile: grid.tile_of(i),
                assigned: assignment[i].clone(),
                overlay_assigned: overlay_assignment[i].clone(),
                plan: shard_plan,
                counters: ShardCounters::new(),
                retries: AtomicU64::new(built.retries),
                rebuilds: AtomicU64::new(0),
                degraded: AtomicBool::new(built.degraded),
                build_trace: built.build_trace,
                core: Mutex::new(built.core),
            };
            (shard, built.events)
        };
        // Concurrent shard builds, with the same pre-body-fault fallback
        // as the query fan-outs: if a worker fault escapes the fan-out
        // itself, rebuild every shard on this thread. Partial results
        // from the crashed fan-out are discarded and each shard's plan
        // fork is recreated fresh, so the fallback is self-consistent
        // (worker-fault timing is thread-schedule-dependent by nature —
        // the seeded sites stay deterministic per shard regardless).
        let fan_out = || -> Vec<(Shard, Vec<RecoveryEvent>)> {
            (0..grid.num_shards())
                .into_par_iter()
                .map(build_one)
                .collect()
        };
        let builds = catch_unwind(AssertUnwindSafe(fan_out))
            .unwrap_or_else(|_| (0..grid.num_shards()).map(build_one).collect());
        let mut shards = Vec::with_capacity(builds.len());
        let mut events = Vec::new();
        for (shard, shard_events) in builds {
            shards.push(shard);
            events.extend(shard_events);
        }
        let ladder_plan = Arc::new(plan.fork(grid.num_shards() as u64));
        let ladder_machine = make_machine(&config, &ladder_plan);
        Ok(QueryService {
            config,
            grid,
            world,
            state: RwLock::new(Arc::new(ServingState {
                epoch: 0,
                segs: Arc::new(segs),
                shards: Arc::new(shards),
                tombstones: Vec::new(),
                pending: Vec::new(),
                ladder: None,
            })),
            overlay_segs: overlay,
            ladder_plan,
            ladder_machine,
            requests: AtomicU64::new(0),
            knn_rounds: AtomicU64::new(0),
            join_requests: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            failed_compactions: AtomicU64::new(0),
            events: Mutex::new(events),
            cache: WindowCache::new(config.cache_capacity),
            defer_compaction: AtomicBool::new(false),
        })
    }

    fn state_snapshot(&self) -> Arc<ServingState> {
        self.state
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The service configuration.
    pub fn config(&self) -> &QueryServiceConfig {
        &self.config
    }

    /// The shard grid.
    pub fn grid(&self) -> ShardGrid {
        self.grid
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.grid.num_shards()
    }

    /// The live *logical* segment collection: the ids in query responses
    /// index into this, and it equals what an eager sequential engine
    /// would hold after replaying every accepted write.
    pub fn segments(&self) -> Vec<LineSeg> {
        self.state_snapshot().logical_collection()
    }

    /// The overlay segment collection (empty without an overlay layer);
    /// the second id of a [`Response::Join`] pair indexes into this.
    pub fn overlay_segments(&self) -> &[LineSeg] {
        &self.overlay_segs
    }

    /// Every recovery decision taken so far, in observation order (build
    /// events first, then query-time events as they happened).
    pub fn recovery_events(&self) -> Vec<RecoveryEvent> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn push_event(&self, event: RecoveryEvent) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event);
    }

    /// Executes a batch of mixed requests; `out[i]` answers
    /// `requests[i]`. Deterministic: identical batches against identical
    /// service states produce identical responses regardless of backend,
    /// shard count or thread schedule — including under injected faults,
    /// where recovered shards return exactly what a healthy run would.
    /// Unanswerable requests come back as [`Response::Rejected`] without
    /// disturbing their neighbours; nothing on this path panics.
    ///
    /// Writes and reads interleave with strict batch-order semantics:
    /// the batch is split into maximal read runs and single writes; each
    /// read run executes against the serving state snapshot taken after
    /// the preceding write, so every request observes exactly the writes
    /// before it in the batch — the eager sequential oracle's view.
    pub fn execute_batch(&self, requests: &[Request]) -> Vec<Response> {
        self.execute_inner(requests, None)
    }

    /// The admission path's executor: [`execute_batch`] semantics, plus
    /// the hot-window cache (hits skip routing and descent entirely) and
    /// per-shard admission telemetry attributed to `cache_shard`. Only
    /// [`ServicePipeline`] lane workers call this — the direct path
    /// never consults the cache, so its probe-count invariants (one
    /// probe per overlapping shard, pinned by the differential suite)
    /// hold unconditionally.
    ///
    /// [`execute_batch`]: QueryService::execute_batch
    pub(crate) fn execute_admitted(
        &self,
        requests: &[Request],
        cache_shard: usize,
    ) -> Vec<Response> {
        self.execute_inner(requests, Some(cache_shard))
    }

    fn execute_inner(&self, requests: &[Request], cache_shard: Option<usize>) -> Vec<Response> {
        self.requests
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let is_write = |r: &Request| matches!(r, Request::Insert(_) | Request::Delete(_));
        let mut out = Vec::with_capacity(requests.len());
        let mut i = 0;
        while i < requests.len() {
            if is_write(&requests[i]) {
                out.push(self.apply_write(i, &requests[i]));
                i += 1;
            } else {
                let mut j = i;
                while j < requests.len() && !is_write(&requests[j]) {
                    j += 1;
                }
                let st = self.state_snapshot();
                out.extend(self.execute_reads(&st, &requests[i..j], i, cache_shard));
                i = j;
            }
        }
        out
    }

    /// Executes one run of read requests against an epoch snapshot.
    /// `offset` is the run's position in the enclosing batch (typed
    /// errors carry batch-absolute indices). With `cache_shard` set
    /// (the admission path), window/point probes consult the
    /// hot-window cache first: hits skip routing and descent, misses
    /// execute normally and offer their answers back under the
    /// write-version protocol (see [`cache`]).
    fn execute_reads(
        &self,
        st: &ServingState,
        requests: &[Request],
        offset: usize,
        cache_shard: Option<usize>,
    ) -> Vec<Response> {
        let rejections: Vec<Option<SpatialError>> = requests
            .iter()
            .enumerate()
            .map(|(i, r)| validate_request(offset + i, r))
            .collect();

        // Window-like requests become probes immediately; k-NN requests
        // join the expanding-window rounds afterwards. Rejected slots
        // contribute nothing.
        let mut probe_answers: Vec<Option<Arc<Vec<SegId>>>> = vec![None; requests.len()];
        let mut probes: Vec<(usize, Rect)> = Vec::new();
        // Cache misses awaiting their computed answer: (slot, kind,
        // rect, version-at-miss).
        let mut pending_admits: Vec<(usize, CacheKind, Rect, u64)> = Vec::new();
        for (slot, r) in requests.iter().enumerate() {
            if rejections[slot].is_some() {
                continue;
            }
            let (kind, rect) = match r {
                Request::Window(q) => (CacheKind::Window, *q),
                Request::PointInWindow(p) => (CacheKind::PointInWindow, Rect::point(*p)),
                Request::Skyline(q) => (CacheKind::Skyline, *q),
                Request::DominanceAgg(p) => (CacheKind::DominanceAgg, self.dominated_rect(p)),
                Request::KNearest { .. } | Request::Join(_) => continue,
                Request::Insert(_) | Request::Delete(_) => unreachable!("writes split out"),
            };
            if let Some(shard) = cache_shard {
                match self.cache.lookup(kind, &rect) {
                    CacheLookup::Hit(ids) => {
                        st.shards[shard % st.shards.len().max(1)]
                            .counters
                            .cache_hits
                            .fetch_add(1, Ordering::Relaxed);
                        probe_answers[slot] = Some(ids);
                        continue;
                    }
                    CacheLookup::Miss(version) => {
                        pending_admits.push((slot, kind, rect, version));
                    }
                }
            }
            probes.push((slot, rect));
        }
        let window_hits = self.run_probes(st, &probes);
        for ((slot, _), ids) in probes.iter().zip(window_hits) {
            // Dominance-family probes produce *candidates* (the logical
            // ids intersecting the rect); reduce them to the final
            // answer here so the cache admit below and the response
            // share one allocation holding the finished result.
            let answer = match &requests[*slot] {
                Request::Skyline(_) => self.compute_skyline(st, &ids),
                Request::DominanceAgg(p) => encode_agg(self.compute_dominance_agg(st, &ids, p)),
                _ => ids,
            };
            probe_answers[*slot] = Some(Arc::new(answer));
        }
        for (slot, kind, rect, version) in pending_admits {
            if let Some(ids) = &probe_answers[slot] {
                // One allocation shared by the cache entry and the
                // response: hits hand the same `Arc` back out.
                self.cache.admit(kind, &rect, version, ids.clone());
            }
        }
        let knn_answers = self.run_knn(st, requests, &rejections);
        let join_answers = self.run_joins(st, requests, &rejections);

        requests
            .iter()
            .enumerate()
            .map(|(slot, r)| {
                if let Some(e) = rejections[slot] {
                    return Response::Rejected(e);
                }
                match r {
                    Request::Window(_) => {
                        Response::Window(probe_answers[slot].take().unwrap_or_default())
                    }
                    Request::PointInWindow(_) => {
                        Response::PointInWindow(probe_answers[slot].take().unwrap_or_default())
                    }
                    Request::KNearest { .. } => {
                        Response::KNearest(knn_answers[slot].clone().unwrap_or_default())
                    }
                    Request::Join(_) => {
                        Response::Join(join_answers[slot].clone().unwrap_or_default())
                    }
                    Request::Skyline(_) => {
                        Response::Skyline(probe_answers[slot].take().unwrap_or_default())
                    }
                    Request::DominanceAgg(_) => {
                        let enc = probe_answers[slot].take().unwrap_or_default();
                        let (count, sum, max) = decode_agg(&enc);
                        Response::DominanceAgg { count, sum, max }
                    }
                    Request::Insert(_) | Request::Delete(_) => unreachable!("writes split out"),
                }
            })
            .collect()
    }

    /// Routes `probes` to overlapping shards, executes every shard's
    /// queue in `flush_batch`-sized lockstep batches, and merges the hits
    /// back per probe — mapped to *logical* ids (tombstoned base hits
    /// dropped, overlay-ladder hits folded in), sorted, deduplicated.
    fn run_probes(&self, st: &ServingState, probes: &[(usize, Rect)]) -> Vec<Vec<SegId>> {
        let mut per_shard: Vec<Vec<u32>> = vec![Vec::new(); st.shards.len()];
        for (pi, (_, rect)) in probes.iter().enumerate() {
            for s in self.grid.shards_overlapping(rect) {
                per_shard[s].push(pi as u32);
            }
        }
        // The per-chunk ladder catches panics raised *inside* shard work,
        // but an armed worker-fault hook fires before a pool job's body —
        // ahead of that ladder — and surfaces here, at the fan-out
        // itself. Fall back to draining the shards on this thread: the
        // machine-level pool (and its faults) still engages inside each
        // chunk, where the ladder owns recovery.
        let run_all = || -> Vec<Vec<(u32, Vec<SegId>)>> {
            (0..st.shards.len())
                .into_par_iter()
                .map(|s| self.run_shard(st, s, &per_shard[s], probes))
                .collect()
        };
        let shard_hits = catch_unwind(AssertUnwindSafe(run_all)).unwrap_or_else(|_| {
            (0..st.shards.len())
                .map(|s| self.run_shard(st, s, &per_shard[s], probes))
                .collect()
        });

        let mut results: Vec<Vec<SegId>> = vec![Vec::new(); probes.len()];
        for hits in shard_hits {
            for (pi, ids) in hits {
                results[pi as usize].extend(ids);
            }
        }
        for ids in &mut results {
            ids.sort_unstable();
            ids.dedup();
        }
        // Base → logical: drop tombstoned hits and subtract each
        // survivor's tombstone rank (a monotone map, so sortedness and
        // dedup survive).
        if !st.tombstones.is_empty() {
            for ids in &mut results {
                ids.retain(|&b| !st.is_tombstoned(b));
                for id in ids.iter_mut() {
                    *id = logical_of_base(&st.tombstones, *id);
                }
            }
        }
        // Overlay-ladder hits: every pending segment has a logical id ≥
        // kept(), above every base logical — appending keeps the order.
        if !st.pending.is_empty() {
            let rects: Vec<Rect> = probes.iter().map(|&(_, q)| q).collect();
            let kept = st.kept();
            for (ids, extra) in results.iter_mut().zip(self.ladder_probe(st, &rects)) {
                ids.extend(extra.into_iter().map(|l| kept + l));
            }
        }
        results
    }

    /// Window hits among the pending (overlay) segments, as local ids:
    /// one lockstep batch over the ladder tree, with a brute exact-clip
    /// fallback when the ladder machine crashes (injected or genuine) —
    /// answers stay bit-identical either way.
    fn ladder_probe(&self, st: &ServingState, rects: &[Rect]) -> Vec<Vec<SegId>> {
        if let Some(tree) = &st.ladder {
            let run = catch_unwind(AssertUnwindSafe(|| {
                batch_window_query(&self.ladder_machine, tree, rects, &st.pending)
            }));
            if let Ok(hits) = run {
                return hits;
            }
        }
        rects
            .iter()
            .map(|q| {
                (0..st.pending.len() as SegId)
                    .filter(|&l| clip_segment_closed(&st.pending[l as usize], q).is_some())
                    .collect()
            })
            .collect()
    }

    /// The query's dominated rectangle — world min corner to the query
    /// point (clamped so the rect stays well-formed when the point lies
    /// below the world). No segment outside it can contribute to the
    /// dominated set, and its bit pattern is the canonical
    /// [`CacheKind::DominanceAgg`] cache key.
    fn dominated_rect(&self, p: &Point) -> Rect {
        Rect::from_coords(
            self.world.min.x.min(p.x),
            self.world.min.y.min(p.y),
            p.x,
            p.y,
        )
    }

    /// Midpoint of a logical segment lifted to a dominance point with
    /// its quantized-length weight.
    fn dom_point(st: &ServingState, id: SegId) -> DomPoint {
        let seg = st.logical_seg(id);
        let mid = seg.midpoint();
        DomPoint {
            id,
            x: mid.x,
            y: mid.y,
            w: dominance_weight(&seg),
        }
    }

    /// Skyline of the candidates' midpoints via the data-parallel
    /// sort + segmented-scan pipeline on the ladder machine, with a
    /// brute closed-dominance fallback when the machine crashes
    /// (injected [`scan_model::FaultSite::SkylineAbort`] or genuine) —
    /// ids come back sorted ascending either way.
    fn compute_skyline(&self, st: &ServingState, cands: &[SegId]) -> Vec<SegId> {
        let points: Vec<DomPoint> = cands.iter().map(|&id| Self::dom_point(st, id)).collect();
        let run = catch_unwind(AssertUnwindSafe(|| skyline(&self.ladder_machine, &points)));
        let mut ids = run.unwrap_or_else(|_| brute_skyline(&points));
        ids.sort_unstable();
        ids
    }

    /// `(count, sum, max)` over the candidates whose midpoint lies in
    /// the closed lower-left quadrant of `p`. The dominated set is
    /// resolved by the filter; the scan-model [`dominance_agg`] pipeline
    /// then aggregates it (every retained point is dominated by `p`, so
    /// the single-query aggregate covers the whole set), with a direct
    /// fold as the crash fallback.
    fn compute_dominance_agg(
        &self,
        st: &ServingState,
        cands: &[SegId],
        p: &Point,
    ) -> (u64, u64, u64) {
        let points: Vec<DomPoint> = cands
            .iter()
            .map(|&id| Self::dom_point(st, id))
            .filter(|d| d.x <= p.x && d.y <= p.y)
            .collect();
        if points.is_empty() {
            return (0, 0, 0);
        }
        let run = catch_unwind(AssertUnwindSafe(|| {
            dominance_agg(&self.ladder_machine, &points, &[(p.x, p.y)])
        }));
        match run {
            Ok(aggs) => (aggs[0].count, aggs[0].sum, aggs[0].max),
            Err(_) => points
                .iter()
                .fold((0, 0, 0), |(c, s, m), d| (c + 1, s + d.w, m.max(d.w))),
        }
    }

    /// Executes one shard's probe queue. Returns `(probe index, global
    /// ids)` pairs; ids are global hits not yet deduplicated across
    /// shards.
    fn run_shard(
        &self,
        st: &ServingState,
        s: usize,
        queue: &[u32],
        probes: &[(usize, Rect)],
    ) -> Vec<(u32, Vec<SegId>)> {
        let shard = &st.shards[s];
        shard.counters.record_queue(queue.len());
        let mut out = Vec::with_capacity(queue.len());
        // `flush_batch >= 1` is a construction-time invariant
        // (`QueryServiceConfig::validate`), so chunking cannot panic.
        for chunk in queue.chunks(self.config.flush_batch) {
            let rects: Vec<Rect> = chunk.iter().map(|&pi| probes[pi as usize].1).collect();
            let hits = self.probe_chunk_recovering(st, s, &rects);
            for (j, globals) in hits.into_iter().enumerate() {
                out.push((chunk[j], globals));
            }
        }
        out
    }

    /// One probe chunk through the recovery ladder: run on a core
    /// snapshot (no lock held across machine work); on a caught panic
    /// retry up to [`RETRY_LIMIT`] times, then rebuild the shard and
    /// retry again, then degrade to the oracle. Always answers.
    fn probe_chunk_recovering(
        &self,
        st: &ServingState,
        s: usize,
        rects: &[Rect],
    ) -> Vec<Vec<SegId>> {
        let shard = &st.shards[s];
        let mut retries_left = RETRY_LIMIT;
        let mut rebuilt = false;
        let mut attempts = 0u32;
        loop {
            let core = shard.snapshot();
            let Some(index) = core.index.clone() else {
                return self.oracle_probe(st, s, rects);
            };
            let machine = core.machine.clone();
            attempts += 1;
            let run = catch_unwind(AssertUnwindSafe(|| {
                // The probe-window buffer leases from the shard machine's
                // own scratch arena — the same pool the batch engine's
                // `_into` primitives recycle through. (Lost, not leaked
                // back, if this closure unwinds.)
                let mut buf: Vec<Rect> = machine.lease();
                buf.extend_from_slice(rects);
                let t0 = Instant::now();
                let hits = batch_window_query(&machine, &index.tree, &buf, &index.segs);
                let micros = t0.elapsed().as_micros() as u64;
                machine.recycle(buf);
                (hits, micros)
            }));
            match run {
                Ok((hits, micros)) => {
                    shard.counters.record_flush(micros);
                    return hits
                        .into_iter()
                        .map(|locals| {
                            locals
                                .into_iter()
                                .map(|l| index.global_ids[l as usize])
                                .collect()
                        })
                        .collect();
                }
                Err(payload) => {
                    let cause = error_from_panic(s, attempts, payload.as_ref());
                    if retries_left > 0 {
                        retries_left -= 1;
                        shard.retries.fetch_add(1, Ordering::Relaxed);
                        self.push_event(RecoveryEvent {
                            shard: s,
                            action: RecoveryAction::Retry(RETRY_LIMIT - retries_left),
                            error: cause,
                        });
                        backoff(RETRY_LIMIT - retries_left);
                        continue;
                    }
                    if !rebuilt {
                        rebuilt = true;
                        retries_left = RETRY_LIMIT;
                        match self.rebuild_shard(st, s) {
                            Ok(()) => {
                                self.push_event(RecoveryEvent {
                                    shard: s,
                                    action: RecoveryAction::Rebuild,
                                    error: cause,
                                });
                                continue;
                            }
                            Err(_) => {
                                self.degrade_shard(st, s, attempts + 1);
                                return self.oracle_probe(st, s, rects);
                            }
                        }
                    }
                    self.degrade_shard(st, s, attempts);
                    return self.oracle_probe(st, s, rects);
                }
            }
        }
    }

    /// The degraded path: answers window probes by scanning the shard's
    /// assigned segments with the exact closed-clip test — the same
    /// predicate the indexed path bottoms out in, so answers are
    /// bit-identical, just O(probes × assigned) instead of lockstep.
    /// Pure sequential code: no machine, no pool, nothing to crash.
    fn oracle_probe(&self, st: &ServingState, s: usize, rects: &[Rect]) -> Vec<Vec<SegId>> {
        let shard = &st.shards[s];
        rects
            .iter()
            .map(|q| {
                shard
                    .assigned
                    .iter()
                    .copied()
                    .filter(|&id| clip_segment_closed(&st.segs[id as usize], q).is_some())
                    .collect()
            })
            .collect()
    }

    /// Rebuilds the shard's machine and indexes from the service's
    /// segment collections, then swaps the new core in under a brief
    /// lock. Runs under `catch_unwind` itself: a crashing rebuild
    /// reports its cause instead of unwinding further. The shard's fault
    /// plan is reused as-is — its occurrence counters persist, so a
    /// `once_at` fault that already fired cannot re-fire during
    /// recovery.
    fn rebuild_shard(&self, st: &ServingState, s: usize) -> Result<(), SpatialError> {
        let shard = &st.shards[s];
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            let machine = make_machine(&self.config, &shard.plan);
            let index = build_shard(
                &machine,
                self.world,
                shard.tile,
                &st.segs,
                &shard.assigned,
                self.config.capacity,
                self.config.max_depth,
            );
            machine.take_round_traces();
            let overlay = if self.overlay_segs.is_empty() {
                None
            } else {
                let idx = build_shard(
                    &machine,
                    self.world,
                    shard.tile,
                    &self.overlay_segs,
                    &shard.overlay_assigned,
                    self.config.capacity,
                    self.config.max_depth,
                );
                machine.take_round_traces();
                Some(Arc::new(idx))
            };
            (Arc::new(machine), Arc::new(index), overlay)
        }));
        match attempt {
            Ok((machine, index, overlay)) => {
                shard.rebuilds.fetch_add(1, Ordering::Relaxed);
                let mut core = shard.lock_core();
                core.machine = machine;
                core.index = Some(index);
                core.overlay = overlay;
                // The cached join refers to the old trees; recomputing on
                // the rebuilt (identical) trees yields identical pairs.
                core.join = None;
                Ok(())
            }
            Err(payload) => Err(error_from_panic(s, 1, payload.as_ref())),
        }
    }

    /// Marks the shard degraded: drops its index so every subsequent
    /// probe takes the oracle path, and records the final ladder rung.
    fn degrade_shard(&self, st: &ServingState, s: usize, attempts: u32) {
        let shard = &st.shards[s];
        shard.degraded.store(true, Ordering::Relaxed);
        {
            let mut core = shard.lock_core();
            core.index = None;
            core.overlay = None;
            core.join = None;
        }
        self.push_event(RecoveryEvent {
            shard: s,
            action: RecoveryAction::Degrade,
            error: SpatialError::ShardUnavailable { shard: s, attempts },
        });
    }

    /// Answers every valid k-NN request in `requests` by batched
    /// expanding windows; other request kinds and rejected slots get
    /// `None`.
    fn run_knn(
        &self,
        st: &ServingState,
        requests: &[Request],
        rejections: &[Option<SpatialError>],
    ) -> Vec<Option<Vec<(SegId, f64)>>> {
        let mut answers: Vec<Option<Vec<(SegId, f64)>>> = vec![None; requests.len()];
        let world = self.grid.world();
        // Initial half-width: a quarter tile, so round one stays local.
        let r0 = ((world.max.x - world.min.x) / self.config.shard_grid as f64 / 4.0).max(1e-9);
        let mut pending: Vec<(usize, Point, usize, f64)> = requests
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| match r {
                Request::KNearest { p, k } if rejections[slot].is_none() => {
                    Some((slot, *p, *k, r0))
                }
                _ => None,
            })
            .collect();

        while !pending.is_empty() {
            self.knn_rounds.fetch_add(1, Ordering::Relaxed);
            let probes: Vec<(usize, Rect)> = pending
                .iter()
                .map(|&(slot, p, _, r)| {
                    (slot, Rect::from_coords(p.x - r, p.y - r, p.x + r, p.y + r))
                })
                .collect();
            let hits = self.run_probes(st, &probes);
            let mut next = Vec::new();
            for (&(slot, p, k, r), (ids, (_, window))) in
                pending.iter().zip(hits.into_iter().zip(probes.iter()))
            {
                let mut scored: Vec<(SegId, f64)> = ids
                    .into_iter()
                    .map(|id| (id, st.logical_seg(id).dist2_to_point(p).sqrt()))
                    .collect();
                scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                // Every segment at distance ≤ r intersects the window, so
                // a k-th best ≤ r is provably final; a window covering the
                // whole world has seen everything. (`k == 0` never reaches
                // here — validation rejects it — but the guard keeps the
                // indexing panic-free regardless.)
                let world_covered = window.min.x <= world.min.x
                    && window.min.y <= world.min.y
                    && window.max.x >= world.max.x
                    && window.max.y >= world.max.y;
                let kth_within = k > 0 && scored.len() >= k && scored[k - 1].1 <= r;
                if world_covered || kth_within {
                    scored.truncate(k);
                    answers[slot] = Some(scored);
                } else {
                    next.push((slot, p, k, r * 2.0));
                }
            }
            pending = next;
        }
        answers
    }

    /// Answers every valid `Join` request in `requests`; other request
    /// kinds and rejected slots get `None`.
    ///
    /// Routing mirrors the window path: a join window is routed to every
    /// shard whose tile it overlaps. Each routed shard contributes its
    /// cached base×overlay frontier join (computed on first use), and the
    /// router keeps only the pairs that intersect *inside* the window —
    /// an exact filter, so a pair spanning several tiles is reported once
    /// and out-of-window candidates never surface. This is sound and
    /// complete: an intersection point inside the window lies in some
    /// overlapping tile, and both segments of the pair are assigned to
    /// that tile's shard. A degraded shard contributes the same pairs by
    /// brute force over its assignment (the oracle form of the join).
    fn run_joins(
        &self,
        st: &ServingState,
        requests: &[Request],
        rejections: &[Option<SpatialError>],
    ) -> Vec<Option<Vec<(SegId, SegId)>>> {
        let mut answers: Vec<Option<Vec<(SegId, SegId)>>> = vec![None; requests.len()];
        let joins: Vec<(usize, Rect)> = requests
            .iter()
            .enumerate()
            .filter_map(|(slot, r)| match r {
                Request::Join(q) if rejections[slot].is_none() => Some((slot, *q)),
                _ => None,
            })
            .collect();
        if joins.is_empty() {
            return answers;
        }
        self.join_requests
            .fetch_add(joins.len() as u64, Ordering::Relaxed);

        // Warm every needed shard's join cache concurrently, then filter
        // per request.
        let mut needed: Vec<usize> = joins
            .iter()
            .flat_map(|(_, q)| self.grid.shards_overlapping(q))
            .collect();
        needed.sort_unstable();
        needed.dedup();
        // Same fallback as `run_probes`: a pre-body worker fault escapes
        // the fan-out, not the per-shard ladder — warm sequentially then.
        let warm = || {
            needed.par_iter().for_each(|&s| {
                self.shard_join(st, s);
            })
        };
        if catch_unwind(AssertUnwindSafe(warm)).is_err() {
            for &s in &needed {
                self.shard_join(st, s);
            }
        }

        let kept = st.kept();
        for (slot, q) in joins {
            let mut pairs: Vec<(SegId, SegId)> = Vec::new();
            for s in self.grid.shards_overlapping(&q) {
                match self.shard_join(st, s) {
                    Some(join) => {
                        // Cached pairs carry epoch-base ids: drop the
                        // tombstoned ones, report survivors logically.
                        pairs.extend(join.pairs.iter().copied().filter_map(|(a, b)| {
                            if st.is_tombstoned(a)
                                || !pair_intersects_in(
                                    &st.segs[a as usize],
                                    &self.overlay_segs[b as usize],
                                    &q,
                                )
                            {
                                return None;
                            }
                            Some((logical_of_base(&st.tombstones, a), b))
                        }));
                    }
                    None => {
                        // Degraded shard: the oracle join — every assigned
                        // base×overlay pair, exact-filtered by the window.
                        let shard = &st.shards[s];
                        for &a in &shard.assigned {
                            if st.is_tombstoned(a) {
                                continue;
                            }
                            for &b in &shard.overlay_assigned {
                                if pair_intersects_in(
                                    &st.segs[a as usize],
                                    &self.overlay_segs[b as usize],
                                    &q,
                                ) {
                                    pairs.push((logical_of_base(&st.tombstones, a), b));
                                }
                            }
                        }
                    }
                }
            }
            // Pending segments join by brute force over the overlay: the
            // compaction threshold keeps them few, and a global pass per
            // window needs no routing argument at all.
            for (l, ps) in st.pending.iter().enumerate() {
                for (b, os) in self.overlay_segs.iter().enumerate() {
                    if pair_intersects_in(ps, os, &q) {
                        pairs.push((kept + l as SegId, b as SegId));
                    }
                }
            }
            pairs.sort_unstable();
            pairs.dedup();
            answers[slot] = Some(pairs);
        }
        answers
    }

    /// The shard's cached base×overlay join, computing it on first use
    /// through the recovery ladder. `None` means the shard is degraded —
    /// the caller must fall back to the oracle join. The computation
    /// runs on a core snapshot with no lock held; the first finished
    /// computation wins the cache.
    fn shard_join(&self, st: &ServingState, s: usize) -> Option<Arc<ShardJoin>> {
        let shard = &st.shards[s];
        {
            let core = shard.lock_core();
            if let Some(join) = &core.join {
                return Some(join.clone());
            }
            core.index.as_ref()?;
        }
        let mut retries_left = RETRY_LIMIT;
        let mut rebuilt = false;
        let mut attempts = 0u32;
        loop {
            let core = shard.snapshot();
            let index = core.index.clone()?;
            attempts += 1;
            let run = catch_unwind(AssertUnwindSafe(|| {
                compute_shard_join(&core.machine, &index, core.overlay.as_deref())
            }));
            let cause = match run {
                Ok(Ok(join)) => {
                    let join = Arc::new(join);
                    let mut locked = shard.lock_core();
                    if locked.join.is_none() {
                        locked.join = Some(join);
                    }
                    return locked.join.clone();
                }
                // A typed join error (world mismatch between base and
                // overlay trees) rides the same ladder as a panic: a
                // rebuild reconstructs both trees over the service world.
                Ok(Err(e)) => e,
                Err(payload) => error_from_panic(s, attempts, payload.as_ref()),
            };
            if retries_left > 0 {
                retries_left -= 1;
                shard.retries.fetch_add(1, Ordering::Relaxed);
                self.push_event(RecoveryEvent {
                    shard: s,
                    action: RecoveryAction::Retry(RETRY_LIMIT - retries_left),
                    error: cause,
                });
                backoff(RETRY_LIMIT - retries_left);
                continue;
            }
            if !rebuilt {
                rebuilt = true;
                retries_left = RETRY_LIMIT;
                match self.rebuild_shard(st, s) {
                    Ok(()) => {
                        self.push_event(RecoveryEvent {
                            shard: s,
                            action: RecoveryAction::Rebuild,
                            error: cause,
                        });
                        continue;
                    }
                    Err(_) => {
                        self.degrade_shard(st, s, attempts + 1);
                        return None;
                    }
                }
            }
            self.degrade_shard(st, s, attempts);
            return None;
        }
    }

    /// Applies one write request under the state write lock: the overlay
    /// ladder absorbs the mutation (a size-1 batch through the core
    /// update engine, with a bulk-rebuild fallback) and the new serving
    /// state is published in one atomic swap. A write that cannot be
    /// applied — malformed, out of world, unknown id, or a ladder that
    /// keeps crashing — is rejected per slot and publishes nothing.
    fn apply_write(&self, index: usize, r: &Request) -> Response {
        if let Some(e) = validate_request(index, r) {
            return Response::Rejected(e);
        }
        let mut guard = self.state.write().unwrap_or_else(PoisonError::into_inner);
        let st = guard.clone();
        let response = match *r {
            Request::Insert(seg) => {
                if !(self.world.contains_half_open(seg.a) && self.world.contains_half_open(seg.b)) {
                    return Response::Rejected(SpatialError::SegmentOutsideWorld { index });
                }
                let logical = st.live();
                match self.ladder_apply(&st, &UpdateBatch::inserting(vec![seg])) {
                    Ok((tree, pending)) => {
                        *guard = Arc::new(ServingState {
                            epoch: st.epoch,
                            segs: st.segs.clone(),
                            shards: st.shards.clone(),
                            tombstones: st.tombstones.clone(),
                            pending,
                            ladder: Some(Arc::new(tree)),
                        });
                        // Invalidate *after* publishing, still under the
                        // write lock: any reader that missed the cache at
                        // the pre-bump version either snapshotted the old
                        // state (its admit is refused by the bump) or
                        // blocks here and snapshots the new one.
                        self.cache.note_insert(&Rect::from_corners(seg.a, seg.b));
                        Response::Inserted(logical)
                    }
                    Err(e) => Response::Rejected(e),
                }
            }
            Request::Delete(id) => {
                if id >= st.live() {
                    return Response::Rejected(SpatialError::MalformedRequest {
                        index,
                        kind: MalformedKind::UnknownSegment,
                    });
                }
                if id < st.kept() {
                    // An epoch-base segment: tombstone it; the ladder and
                    // pending overlay are untouched.
                    let b = base_of_logical(&st.tombstones, id);
                    let mut tombstones = st.tombstones.clone();
                    let pos = tombstones.partition_point(|&t| t < b);
                    tombstones.insert(pos, b);
                    *guard = Arc::new(ServingState {
                        epoch: st.epoch,
                        segs: st.segs.clone(),
                        shards: st.shards.clone(),
                        tombstones,
                        pending: st.pending.clone(),
                        ladder: st.ladder.clone(),
                    });
                    // Deletes shift logical ids: flush the whole cache.
                    self.cache.note_delete();
                    Response::Deleted(id)
                } else {
                    // A pending segment: the ladder compacts it out (the
                    // logical ids of later pending segments shift down,
                    // matching the eager oracle's `Vec::remove`).
                    let local = id - st.kept();
                    match self.ladder_apply(&st, &UpdateBatch::deleting(vec![local])) {
                        Ok((tree, pending)) => {
                            let ladder = if pending.is_empty() {
                                None
                            } else {
                                Some(Arc::new(tree))
                            };
                            *guard = Arc::new(ServingState {
                                epoch: st.epoch,
                                segs: st.segs.clone(),
                                shards: st.shards.clone(),
                                tombstones: st.tombstones.clone(),
                                pending,
                                ladder,
                            });
                            self.cache.note_delete();
                            Response::Deleted(id)
                        }
                        Err(e) => Response::Rejected(e),
                    }
                }
            }
            _ => unreachable!("apply_write is only called for writes"),
        };
        drop(guard);
        // With a pipeline attached, compaction moves off-thread: the lane
        // workers signal the compactor after handing replies back, so a
        // write never pays the rebuild inline.
        if !matches!(response, Response::Rejected(_))
            && !self.defer_compaction.load(Ordering::Relaxed)
        {
            self.maybe_compact();
        }
        response
    }

    /// The ladder tree and pending collection after applying `batch`: a
    /// size-1 batch through the data-parallel update engine, falling
    /// back to a bulk rebuild of the final pending set when the
    /// incremental pass crashes (both under `catch_unwind`, so injected
    /// ladder faults surface as typed rejections, not aborts). By the
    /// update differential, both paths produce the same tree.
    fn ladder_apply(
        &self,
        st: &ServingState,
        batch: &UpdateBatch,
    ) -> Result<(DpQuadtree, Vec<LineSeg>), SpatialError> {
        let (cap, depth) = (self.config.capacity, self.config.max_depth);
        let incremental = catch_unwind(AssertUnwindSafe(|| {
            let mut pending = st.pending.clone();
            let mut tree = match &st.ladder {
                Some(t) => DpQuadtree::clone(t),
                None => build_bucket_pmr(&self.ladder_machine, self.world, &pending, cap, depth),
            };
            batch_update_bucket_pmr(
                &self.ladder_machine,
                &mut tree,
                &mut pending,
                batch,
                cap,
                depth,
            );
            (tree, pending)
        }));
        let attempt = incremental.or_else(|_| {
            catch_unwind(AssertUnwindSafe(|| {
                let mut pending = st.pending.clone();
                for &d in batch.deletes.iter().rev() {
                    pending.remove(d as usize);
                }
                pending.extend(batch.inserts.iter().copied());
                let tree = build_bucket_pmr(&self.ladder_machine, self.world, &pending, cap, depth);
                (tree, pending)
            }))
        });
        // The ladder's driver traces are telemetry no stats surface
        // reads; drain them so a long write stream cannot grow the
        // machine's trace buffer without bound.
        self.ladder_machine.take_round_traces();
        attempt.map_err(|p| error_from_panic(self.grid.num_shards(), 2, p.as_ref()))
    }

    /// Compacts when the accumulated write pressure crosses the
    /// configured threshold. A failed compaction is not retried here —
    /// the previous epoch keeps serving and the next write re-triggers.
    fn maybe_compact(&self) {
        let pressure = {
            let st = self.state_snapshot();
            st.tombstones.len() + st.pending.len()
        };
        if pressure >= self.config.compact_threshold {
            let _ = self.compact_now();
        }
    }

    /// Merges the epoch base with the accumulated tombstones and pending
    /// overlay into a fresh epoch: every live shard's tree absorbs its
    /// slice of the writes through the data-parallel batch updater on a
    /// fresh machine (so the result equals a bulk build of the final
    /// collection — the update differential's guarantee), and serving
    /// flips to the new state in one atomic `Arc` swap. On any crash the
    /// swap never happens: the previous epoch keeps serving, the error
    /// is returned typed, and a retry converges because every fault-plan
    /// fork keeps its occurrence counters across attempts. Returns the
    /// serving epoch number (bumped on success, also when there was
    /// nothing to compact and the call was a no-op).
    pub fn compact_now(&self) -> Result<u64, SpatialError> {
        // Optimistic path: build the next epoch from a lock-free snapshot
        // so readers (and writers) keep flowing during the rebuild. The
        // swap only happens if the serving state is still the exact Arc
        // we snapshotted — a write that lands mid-build fails the
        // `ptr_eq` check and we rebuild from the fresher state. After a
        // few lost races, fall back to building under the write lock,
        // which cannot lose.
        const OPTIMISTIC_ATTEMPTS: usize = 3;
        for _ in 0..OPTIMISTIC_ATTEMPTS {
            let st = self.state_snapshot();
            if st.tombstones.is_empty() && st.pending.is_empty() {
                return Ok(st.epoch);
            }
            let built = catch_unwind(AssertUnwindSafe(|| self.build_compacted_state(&st)));
            let new_state = match built {
                Ok(s) => s,
                Err(payload) => {
                    self.failed_compactions.fetch_add(1, Ordering::Relaxed);
                    return Err(error_from_panic(
                        self.grid.num_shards(),
                        1,
                        payload.as_ref(),
                    ));
                }
            };
            let mut guard = self.state.write().unwrap_or_else(PoisonError::into_inner);
            if Arc::ptr_eq(&*guard, &st) {
                let epoch = new_state.epoch;
                *guard = Arc::new(new_state);
                // Flush the hot-window cache under the same write lock
                // that publishes the epoch: no reader can admit an
                // answer computed against the old state at the
                // post-swap cache version.
                self.cache.note_epoch_swap();
                self.compactions.fetch_add(1, Ordering::Relaxed);
                return Ok(epoch);
            }
        }
        // Pessimistic fallback: hold the write lock across the build so
        // no concurrent write can invalidate the snapshot.
        let mut guard = self.state.write().unwrap_or_else(PoisonError::into_inner);
        let st = guard.clone();
        if st.tombstones.is_empty() && st.pending.is_empty() {
            return Ok(st.epoch);
        }
        let built = catch_unwind(AssertUnwindSafe(|| self.build_compacted_state(&st)));
        match built {
            Ok(new_state) => {
                let epoch = new_state.epoch;
                *guard = Arc::new(new_state);
                self.cache.note_epoch_swap();
                self.compactions.fetch_add(1, Ordering::Relaxed);
                Ok(epoch)
            }
            Err(payload) => {
                self.failed_compactions.fetch_add(1, Ordering::Relaxed);
                Err(error_from_panic(
                    self.grid.num_shards(),
                    1,
                    payload.as_ref(),
                ))
            }
        }
    }

    /// Builds the next epoch's full serving state. Runs inside
    /// [`QueryService::compact_now`]'s `catch_unwind`: any panic —
    /// injected round aborts included — discards everything built here.
    fn build_compacted_state(&self, st: &ServingState) -> ServingState {
        let final_segs = st.logical_collection();
        let assignment = self.grid.assign_segments(&final_segs);
        let pending_assignment = self.grid.assign_segments(&st.pending);
        let kept = st.kept();
        let mut shards = Vec::with_capacity(st.shards.len());
        for (i, old) in st.shards.iter().enumerate() {
            let machine = make_machine(&self.config, &old.plan);
            let degraded = old.degraded.load(Ordering::Relaxed);
            let core_snapshot = old.snapshot();
            let (core, build_trace) = match (&core_snapshot.index, degraded) {
                (Some(index), false) => {
                    let mut tree = index.tree.clone();
                    let mut local_segs = index.segs.clone();
                    // Local deletes: the positions holding a tombstoned
                    // base id. Local inserts: the pending segments whose
                    // geometry reaches this tile (the same closed-clip
                    // assignment predicate the bulk build uses).
                    let deletes: Vec<SegId> = index
                        .global_ids
                        .iter()
                        .enumerate()
                        .filter(|&(_, &g)| st.is_tombstoned(g))
                        .map(|(p, _)| p as SegId)
                        .collect();
                    let inserts: Vec<LineSeg> = pending_assignment[i]
                        .iter()
                        .map(|&l| st.pending[l as usize])
                        .collect();
                    batch_update_bucket_pmr(
                        &machine,
                        &mut tree,
                        &mut local_segs,
                        &UpdateBatch { inserts, deletes },
                        self.config.capacity,
                        self.config.max_depth,
                    );
                    let build_trace = machine.take_round_traces();
                    // New local→global table: surviving base ids map to
                    // their logical ids (order-preserving), pending
                    // arrivals append above every base logical — exactly
                    // the ascending order `assign_segments` produces over
                    // the final collection.
                    let mut global_ids: Vec<SegId> = index
                        .global_ids
                        .iter()
                        .filter(|&&g| !st.is_tombstoned(g))
                        .map(|&g| logical_of_base(&st.tombstones, g))
                        .collect();
                    global_ids.extend(pending_assignment[i].iter().map(|&l| kept + l));
                    debug_assert_eq!(global_ids, assignment[i], "shard {i} assignment drift");
                    let index = ShardIndex {
                        tile: old.tile,
                        tree,
                        segs: local_segs,
                        global_ids,
                    };
                    (
                        ShardCore {
                            machine: Arc::new(machine),
                            index: Some(Arc::new(index)),
                            overlay: core_snapshot.overlay.clone(),
                            join: None,
                        },
                        build_trace,
                    )
                }
                // A degraded shard stays degraded — its new assignment
                // keeps the oracle path correct over the new collection.
                _ => (
                    ShardCore {
                        machine: Arc::new(machine),
                        index: None,
                        overlay: core_snapshot.overlay.clone(),
                        join: None,
                    },
                    Vec::new(),
                ),
            };
            shards.push(Shard {
                tile: old.tile,
                assigned: assignment[i].clone(),
                overlay_assigned: old.overlay_assigned.clone(),
                plan: old.plan.clone(),
                counters: old.counters.carry(),
                retries: AtomicU64::new(old.retries.load(Ordering::Relaxed)),
                rebuilds: AtomicU64::new(old.rebuilds.load(Ordering::Relaxed)),
                degraded: AtomicBool::new(degraded),
                build_trace,
                core: Mutex::new(core),
            });
        }
        ServingState {
            epoch: st.epoch + 1,
            segs: Arc::new(final_segs),
            shards: Arc::new(shards),
            tombstones: Vec::new(),
            pending: Vec::new(),
            ladder: None,
        }
    }

    /// A snapshot of the service counters, including every shard
    /// machine's primitive-operation counts.
    pub fn stats(&self) -> ServiceStats {
        let st = self.state_snapshot();
        ServiceStats {
            shards: st
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    let core = s.snapshot();
                    let (arena_takes, arena_hits) = core.machine.arena_stats();
                    ShardStats {
                        shard: i,
                        epoch: st.epoch,
                        tile: s.tile,
                        segments: s.assigned.len(),
                        probes: s.counters.probes.load(Ordering::Relaxed),
                        batches: s.counters.batches.load(Ordering::Relaxed),
                        max_queue_depth: s.counters.max_queue_depth.load(Ordering::Relaxed),
                        admitted: s.counters.admitted.load(Ordering::Relaxed),
                        coalesced_batches: s.counters.coalesced_batches.load(Ordering::Relaxed),
                        shed: s.counters.shed.load(Ordering::Relaxed),
                        cache_hits: s.counters.cache_hits.load(Ordering::Relaxed),
                        queue_wait_micros: s.counters.queue_wait_micros.load(Ordering::Relaxed),
                        latency_histogram: std::array::from_fn(|b| {
                            s.counters.latency[b].load(Ordering::Relaxed)
                        }),
                        ops: core.machine.stats(),
                        arena_takes,
                        arena_hits,
                        build_trace: s.build_trace.clone(),
                        degraded: s.degraded.load(Ordering::Relaxed),
                        retries: s.retries.load(Ordering::Relaxed),
                        rebuilds: s.rebuilds.load(Ordering::Relaxed),
                        faults_injected: s.plan.total_fired(),
                        join: core.join.as_ref().map(|j| ShardJoinStats {
                            pairs: j.pairs.len(),
                            rounds: j.rounds,
                            frontier_peak: j.frontier_peak,
                            pairs_tested: j.pairs_tested,
                            trace: j.trace.clone(),
                        }),
                    }
                })
                .collect(),
            requests: self.requests.load(Ordering::Relaxed),
            knn_rounds: self.knn_rounds.load(Ordering::Relaxed),
            join_requests: self.join_requests.load(Ordering::Relaxed),
            epoch: st.epoch,
            overlay_size: st.pending.len(),
            tombstones: st.tombstones.len(),
            compactions: self.compactions.load(Ordering::Relaxed),
            failed_compactions: self.failed_compactions.load(Ordering::Relaxed),
            ladder_faults: self.ladder_plan.total_fired(),
        }
    }

    /// Resets every counter (shard machines included). Index structures,
    /// degradation flags and recovery history are untouched.
    pub fn reset_stats(&self) {
        self.requests.store(0, Ordering::Relaxed);
        self.knn_rounds.store(0, Ordering::Relaxed);
        self.join_requests.store(0, Ordering::Relaxed);
        let st = self.state_snapshot();
        for s in st.shards.iter() {
            s.snapshot().machine.reset_stats();
            s.counters.reset();
        }
    }

    /// A snapshot of the hot-window cache counters (hits, misses,
    /// admissions, invalidations).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Routes compaction off the writer's thread: while a
    /// [`ServicePipeline`] is attached, `apply_write` skips its inline
    /// [`QueryService::maybe_compact`] and the pipeline's compactor
    /// thread runs it instead, so writes never pay a rebuild inline.
    pub(crate) fn set_deferred_compaction(&self, on: bool) {
        self.defer_compaction.store(on, Ordering::Relaxed);
    }

    /// Whether accumulated write pressure has crossed the compaction
    /// threshold — the signal a pipeline lane worker checks after each
    /// batch to wake the background compactor.
    pub(crate) fn wants_compaction(&self) -> bool {
        let st = self.state_snapshot();
        st.tombstones.len() + st.pending.len() >= self.config.compact_threshold
    }

    /// Records one shed request against the shard a lane is attributed
    /// to (admission happens before any shard executes, so the lane's
    /// slot stands in for the shard that would have served it).
    pub(crate) fn note_shed(&self, shard: usize) {
        let st = self.state_snapshot();
        if let Some(s) = st.shards.get(shard % st.shards.len().max(1)) {
            s.counters.shed.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Folds one coalesced batch's admission telemetry into the shard
    /// counters: how many requests it carried, their summed queue wait,
    /// and the lane's high-water queue depth since the last batch.
    pub(crate) fn note_admitted_batch(
        &self,
        shard: usize,
        admitted: u64,
        queue_wait_micros: u64,
        depth_high: u64,
    ) {
        let st = self.state_snapshot();
        if let Some(s) = st.shards.get(shard % st.shards.len().max(1)) {
            s.counters.admitted.fetch_add(admitted, Ordering::Relaxed);
            s.counters.coalesced_batches.fetch_add(1, Ordering::Relaxed);
            s.counters
                .queue_wait_micros
                .fetch_add(queue_wait_micros, Ordering::Relaxed);
            s.counters
                .max_queue_depth
                .fetch_max(depth_high, Ordering::Relaxed);
        }
    }
}

/// Runs the frontier join for one shard core and maps the pairs to
/// global ids. Split out of [`QueryService::shard_join`] so the whole
/// computation sits inside one `catch_unwind`.
fn compute_shard_join(
    machine: &Machine,
    index: &ShardIndex,
    overlay: Option<&ShardIndex>,
) -> Result<ShardJoin, SpatialError> {
    let Some(overlay) = overlay else {
        return Ok(ShardJoin::empty());
    };
    // Isolate the join's round trace from any traces buffered by
    // earlier driver runs on this machine.
    let resumed = machine.take_round_traces();
    let outcome = frontier_join(
        machine,
        &index.tree,
        &index.segs,
        &overlay.tree,
        &overlay.segs,
    )?;
    let trace = machine.take_round_traces();
    for t in resumed {
        machine.record_round_trace(t);
    }
    let pairs: Vec<(SegId, SegId)> = outcome
        .pairs
        .iter()
        .map(|&(a, b)| (index.global_ids[a as usize], overlay.global_ids[b as usize]))
        .collect();
    Ok(ShardJoin {
        pairs,
        rounds: outcome.rounds,
        frontier_peak: outcome.frontier_peak,
        pairs_tested: outcome.pairs_tested,
        trace,
    })
}

/// Reference answer for a k-NN request: brute force over all segments,
/// sorted by `(distance, id)`. Shared by the differential tests and the
/// load driver's self-check.
pub fn brute_knearest(segs: &[LineSeg], p: Point, k: usize) -> Vec<(SegId, f64)> {
    let mut scored: Vec<(SegId, f64)> = segs
        .iter()
        .enumerate()
        .map(|(id, s)| (id as SegId, s.dist2_to_point(p).sqrt()))
        .collect();
    scored.sort_unstable_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_workloads::{request_stream, uniform_segments, RequestMix};
    use scan_model::FaultSite;

    fn assert_sync<T: Sync + Send>() {}

    #[test]
    fn service_is_shareable_across_threads() {
        assert_sync::<QueryService>();
    }

    fn brute_window(segs: &[LineSeg], q: &Rect) -> Vec<SegId> {
        (0..segs.len() as SegId)
            .filter(|&id| clip_segment_closed(&segs[id as usize], q).is_some())
            .collect()
    }

    #[test]
    fn mixed_batch_matches_brute_force() {
        let data = uniform_segments(300, 64, 8, 11);
        let svc = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        let reqs = request_stream(data.world, 150, RequestMix::DEFAULT, 5);
        let out = svc.execute_batch(&reqs);
        assert_eq!(out.len(), reqs.len());
        for (i, (r, resp)) in reqs.iter().zip(&out).enumerate() {
            match r {
                Request::Window(q) => {
                    let expected = brute_window(&data.segs, q);
                    assert_eq!(resp.try_window(i), Ok(expected.as_slice()), "window {q}");
                }
                Request::PointInWindow(p) => {
                    let expected = brute_window(&data.segs, &Rect::point(*p));
                    assert_eq!(resp.try_point_in_window(i), Ok(expected.as_slice()));
                }
                Request::KNearest { p, k } => {
                    let expected = brute_knearest(&data.segs, *p, *k);
                    assert_eq!(resp.try_knearest(i), Ok(expected.as_slice()));
                }
                Request::Join(q) => {
                    assert_eq!(resp.try_join(i), Ok([].as_slice()), "join {q}");
                }
                Request::Insert(_)
                | Request::Delete(_)
                | Request::Skyline(_)
                | Request::DominanceAgg(_) => {
                    unreachable!("DEFAULT mix carries no writes or dominance requests")
                }
            }
        }
    }

    #[test]
    fn response_accessors_type_the_mismatch() {
        let resp = Response::Window(Arc::new(vec![1, 2]));
        assert_eq!(
            resp.try_knearest(4),
            Err(SpatialError::ResponseKindMismatch { index: 4 })
        );
        let rejected = Response::Rejected(SpatialError::MalformedRequest {
            index: 0,
            kind: MalformedKind::ZeroK,
        });
        assert_eq!(
            rejected.try_window(0),
            Err(SpatialError::MalformedRequest {
                index: 0,
                kind: MalformedKind::ZeroK,
            })
        );
    }

    #[test]
    fn cache_hits_share_the_response_allocation() {
        // Regression: cache hits used to clone the cached id vector into
        // every response. The payload is an `Arc` now — a hit hands out
        // the cache's own allocation, observable as pointer equality
        // across hits.
        let data = uniform_segments(120, 64, 8, 31);
        let config = QueryServiceConfig {
            compact_threshold: 1_000,
            ..QueryServiceConfig::sequential(2)
        };
        let svc = Arc::new(QueryService::build(config, data.world, data.segs.clone()));
        let pipeline = ServicePipeline::new(svc.clone(), 1, AdmissionPolicy::Block).unwrap();
        let q = Rect::from_coords(4.0, 4.0, 40.0, 40.0);
        let payload = |r: &Response| match r {
            Response::Window(ids) => ids.clone(),
            other => panic!("expected a window answer, got {other:?}"),
        };
        // Miss + admit, then two hits.
        let miss = payload(&pipeline.submit_all(&[Request::Window(q)])[0]);
        let hit1 = payload(&pipeline.submit_all(&[Request::Window(q)])[0]);
        let hit2 = payload(&pipeline.submit_all(&[Request::Window(q)])[0]);
        assert_eq!(*miss, *hit1);
        assert!(
            Arc::ptr_eq(&hit1, &hit2),
            "cache hits must share one allocation, not clone per hit"
        );
        let stats = svc.cache_stats();
        assert_eq!(stats.admitted, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn empty_collection_and_empty_batch() {
        let world = Rect::from_coords(0.0, 0.0, 16.0, 16.0);
        let svc = QueryService::build(QueryServiceConfig::sequential(2), world, Vec::new());
        assert!(svc.execute_batch(&[]).is_empty());
        let out = svc.execute_batch(&[
            Request::Window(world),
            Request::KNearest {
                p: Point::new(1.0, 1.0),
                k: 3,
            },
        ]);
        assert_eq!(out[0], Response::Window(Arc::new(Vec::new())));
        assert_eq!(out[1], Response::KNearest(Vec::new()));
    }

    #[test]
    fn stats_handle_an_empty_segment_set() {
        // Regression: the busiest-shard reduction used to be
        // `max().unwrap()`, which panics the moment no shard has traffic
        // to compare — the degenerate service shape (no segments, no
        // probes executed yet) must produce stats, not a crash.
        let world = Rect::from_coords(0.0, 0.0, 16.0, 16.0);
        let svc = QueryService::build(QueryServiceConfig::sequential(1), world, Vec::new());
        let stats = svc.stats();
        assert_eq!(stats.max_shard_probes(), 0);
        assert_eq!(stats.total_probes(), 0);
        assert_eq!(stats.degraded_shards(), 0);
        assert_eq!(stats.flush_latency_quantile_micros(0.5), None);
        // And the all-shards-empty service still answers correctly.
        let out = svc.execute_batch(&[Request::Window(world)]);
        assert_eq!(out[0], Response::Window(Arc::new(Vec::new())));
        assert_eq!(svc.stats().max_shard_probes(), 1);
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        let world = Rect::from_coords(0.0, 0.0, 16.0, 16.0);
        let mut cfg = QueryServiceConfig::sequential(0);
        assert!(matches!(
            QueryService::try_build(cfg, world, Vec::new()),
            Err(SpatialError::InvalidConfig { .. })
        ));
        cfg.shard_grid = 3;
        assert!(matches!(
            QueryService::try_build(cfg, world, Vec::new()),
            Err(SpatialError::InvalidConfig { .. })
        ));
        cfg = QueryServiceConfig::sequential(2);
        cfg.capacity = 0;
        assert!(matches!(
            QueryService::try_build(cfg, world, Vec::new()),
            Err(SpatialError::InvalidConfig { .. })
        ));
        cfg = QueryServiceConfig::sequential(2);
        cfg.compact_threshold = 0;
        assert!(matches!(
            QueryService::try_build(cfg, world, Vec::new()),
            Err(SpatialError::InvalidConfig { .. })
        ));
        // Admission parameters are validated at construction, not
        // silently clamped: a zero flush_batch and a queue bound too
        // small to hold one flush are both typed errors.
        cfg = QueryServiceConfig::sequential(2);
        cfg.flush_batch = 0;
        assert!(matches!(
            QueryService::try_build(cfg, world, Vec::new()),
            Err(SpatialError::InvalidConfig { .. })
        ));
        cfg = QueryServiceConfig::sequential(2);
        cfg.flush_batch = 64;
        cfg.queue_bound = 63;
        let err = QueryService::try_build(cfg, world, Vec::new())
            .err()
            .expect("undersized queue_bound must not build");
        assert!(matches!(err, SpatialError::InvalidConfig { .. }));
        assert!(err.to_string().contains("queue_bound"), "{err}");
        let outside = vec![LineSeg::from_coords(1.0, 1.0, 20.0, 20.0)];
        assert!(
            QueryService::try_build(QueryServiceConfig::sequential(2), world, outside)
                .err()
                .map(|e| e.to_string())
                .unwrap_or_default()
                .contains("outside the service world")
        );
    }

    #[test]
    fn malformed_requests_are_rejected_per_slot() {
        let data = uniform_segments(80, 64, 8, 2);
        let svc = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        let nan_rect = Rect {
            min: Point::new(f64::NAN, f64::NAN),
            max: Point::new(f64::NAN, f64::NAN),
        };
        let good = Rect::from_coords(0.0, 0.0, 32.0, 32.0);
        let out = svc.execute_batch(&[
            Request::Window(good),
            Request::Window(nan_rect),
            Request::KNearest {
                p: Point::new(3.0, 3.0),
                k: 0,
            },
            Request::PointInWindow(Point::new(f64::INFINITY, 1.0)),
            Request::Window(good),
        ]);
        // Rejections are typed and slot-aligned...
        assert_eq!(
            out[1],
            Response::Rejected(SpatialError::MalformedRequest {
                index: 1,
                kind: MalformedKind::NonFiniteWindow,
            })
        );
        assert_eq!(
            out[2],
            Response::Rejected(SpatialError::MalformedRequest {
                index: 2,
                kind: MalformedKind::ZeroK,
            })
        );
        assert_eq!(
            out[3],
            Response::Rejected(SpatialError::MalformedRequest {
                index: 3,
                kind: MalformedKind::NonFinitePoint,
            })
        );
        // ...and do not disturb their neighbours.
        let expected = brute_window(&data.segs, &good);
        assert_eq!(out[0].try_window(0), Ok(expected.as_slice()));
        assert_eq!(out[4].try_window(4), Ok(expected.as_slice()));
    }

    #[test]
    fn permanently_dead_shards_degrade_to_correct_answers() {
        let data = uniform_segments(150, 64, 8, 13);
        let plan = Arc::new(FaultPlan::always(FaultSite::RoundAbort));
        let svc = QueryService::try_build_with_faults(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
            Vec::new(),
            plan,
        )
        .expect("validation passes; builds degrade instead of erroring");
        let stats = svc.stats();
        assert_eq!(stats.degraded_shards(), svc.num_shards());
        assert!(stats.total_faults_injected() > 0);
        assert!(svc
            .recovery_events()
            .iter()
            .any(|e| e.action == RecoveryAction::Degrade));

        // The oracle answers are bit-identical to a healthy service's.
        let reqs = request_stream(data.world, 60, RequestMix::DEFAULT, 17);
        let healthy = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        assert_eq!(svc.execute_batch(&reqs), healthy.execute_batch(&reqs));
    }

    #[test]
    fn stats_track_probes_and_batches() {
        let data = uniform_segments(200, 64, 6, 3);
        let mut cfg = QueryServiceConfig::sequential(2);
        cfg.flush_batch = 16;
        let svc = QueryService::build(cfg, data.world, data.segs.clone());
        let reqs = request_stream(data.world, 100, RequestMix::WINDOW_ONLY, 9);
        svc.execute_batch(&reqs);
        let stats = svc.stats();
        assert_eq!(stats.requests, 100);
        assert!(
            stats.total_probes() >= 100,
            "probes {}",
            stats.total_probes()
        );
        assert!(stats.max_shard_probes() > 0);
        // flush_batch = 16 forces multi-flush queues on busy shards.
        assert!(stats.shards.iter().any(|s| s.batches > 1));
        for s in &stats.shards {
            assert!(s.max_queue_depth as usize <= reqs.len());
            let flushes: u64 = s.latency_histogram.iter().sum();
            assert_eq!(flushes, s.batches);
            assert!(!s.degraded);
            assert_eq!(s.retries, 0);
            assert_eq!(s.rebuilds, 0);
            assert_eq!(s.faults_injected, 0);
        }
        assert!(stats.total_primitives() > 0);
        assert!(stats.flush_latency_quantile_micros(0.5).is_some());
        assert!(svc.recovery_events().is_empty());
        svc.reset_stats();
        let zeroed = svc.stats();
        assert_eq!(zeroed.requests, 0);
        assert_eq!(zeroed.total_probes(), 0);
        assert_eq!(zeroed.total_primitives(), 0);
    }

    #[test]
    fn join_requests_match_windowed_brute_force() {
        use dp_spatial::join::brute_force_join_in;
        let base = uniform_segments(200, 64, 8, 21);
        let overlay = uniform_segments(150, 64, 8, 22);
        let svc = QueryService::build_with_overlay(
            QueryServiceConfig::sequential(2),
            base.world,
            base.segs.clone(),
            overlay.segs.clone(),
        );
        let windows = [
            base.world,
            Rect::from_coords(0.0, 0.0, 20.0, 20.0),
            Rect::from_coords(30.0, 30.0, 34.0, 34.0),
            Rect::point(Point::new(32.0, 32.0)),
        ];
        let reqs: Vec<Request> = windows.iter().map(|&q| Request::Join(q)).collect();
        let out = svc.execute_batch(&reqs);
        for (i, (q, resp)) in windows.iter().zip(&out).enumerate() {
            let pairs = resp
                .try_join(i)
                .unwrap_or_else(|e| panic!("join window {q}: {e}"));
            assert_eq!(
                pairs,
                brute_force_join_in(&base.segs, &overlay.segs, q),
                "join window {q}"
            );
        }
        let stats = svc.stats();
        assert_eq!(stats.join_requests, windows.len() as u64);
        let joined: Vec<&ShardJoinStats> = stats
            .shards
            .iter()
            .filter_map(|s| s.join.as_ref())
            .collect();
        assert!(!joined.is_empty(), "no shard computed a join");
        for j in joined {
            assert_eq!(
                j.trace.iter().filter(|t| t.nodes_split > 0).count(),
                j.rounds
            );
        }
    }

    #[test]
    fn join_without_overlay_is_empty() {
        let data = uniform_segments(100, 64, 8, 4);
        let svc = QueryService::build(
            QueryServiceConfig::sequential(2),
            data.world,
            data.segs.clone(),
        );
        let out = svc.execute_batch(&[Request::Join(data.world)]);
        assert_eq!(out[0], Response::Join(Vec::new()));
        assert!(svc.stats().shards.iter().all(|s| s
            .join
            .as_ref()
            .map(|j| j.pairs == 0)
            .unwrap_or(true)));
    }

    #[test]
    fn logical_id_maps_round_trip() {
        // Tombstoned bases 1 and 4: base ids 0,2,3,5 are logical 0,1,2,3.
        let tombs = vec![1, 4];
        let bases = [0u32, 2, 3, 5];
        for (logical, &b) in bases.iter().enumerate() {
            assert_eq!(logical_of_base(&tombs, b), logical as SegId);
            assert_eq!(base_of_logical(&tombs, logical as SegId), b);
        }
    }

    #[test]
    fn writes_respond_typed_and_compaction_bumps_the_epoch() {
        let data = uniform_segments(60, 64, 8, 21);
        let svc = QueryService::build(
            QueryServiceConfig {
                compact_threshold: 4,
                ..QueryServiceConfig::sequential(2)
            },
            data.world,
            data.segs.clone(),
        );
        let n = data.segs.len() as u32;
        let seg = LineSeg::from_coords(5.0, 5.0, 9.0, 9.0);
        let out = svc.execute_batch(&[
            Request::Insert(seg),
            Request::Delete(0),
            Request::Delete(n - 1), // the inserted segment, shifted down one
            Request::Delete(n - 1), // ... and after its deletion, out of range
        ]);
        assert_eq!(out[0], Response::Inserted(n));
        assert_eq!(out[1], Response::Deleted(0));
        assert_eq!(out[2], Response::Deleted(n - 1), "id shifted by delete");
        assert_eq!(
            out[3],
            Response::Rejected(SpatialError::MalformedRequest {
                index: 3,
                kind: MalformedKind::UnknownSegment,
            })
        );
        // Out-of-world inserts are rejected without mutating anything.
        let out = svc.execute_batch(&[Request::Insert(LineSeg::from_coords(-5.0, 0.0, 3.0, 3.0))]);
        assert_eq!(
            out[0],
            Response::Rejected(SpatialError::SegmentOutsideWorld { index: 0 })
        );
        // Three successful writes crossed compact_threshold = 4? No:
        // pressure peaked at 1 pending + 1 tombstone = 2 before the
        // pending delete took it back to 1 tombstone. Force one.
        let epoch0 = svc.stats().epoch;
        svc.compact_now().expect("compaction");
        let stats = svc.stats();
        assert_eq!(stats.epoch, epoch0 + 1);
        assert_eq!(stats.compactions, 1);
        assert_eq!((stats.overlay_size, stats.tombstones), (0, 0));
        assert_eq!(svc.segments().len(), data.segs.len() - 1);
        // A clean state compacts as a no-op.
        assert_eq!(svc.compact_now(), Ok(stats.epoch));
    }

    #[test]
    fn write_stream_matches_eager_oracle_across_epochs() {
        let data = uniform_segments(80, 64, 8, 33);
        let svc = QueryService::build(
            QueryServiceConfig {
                compact_threshold: 3,
                ..QueryServiceConfig::sequential(2)
            },
            data.world,
            data.segs.clone(),
        );
        let mut live = data.segs.clone();
        let reqs = dp_workloads::request_stream_with_updates(
            data.world,
            200,
            RequestMix::WITH_UPDATES,
            17,
            live.len(),
        );
        let out = svc.execute_batch(&reqs);
        for (i, (r, resp)) in reqs.iter().zip(&out).enumerate() {
            match r {
                Request::Window(q) => {
                    assert_eq!(resp.try_window(i), Ok(brute_window(&live, q).as_slice()));
                }
                Request::PointInWindow(p) => {
                    let expected = brute_window(&live, &Rect::point(*p));
                    assert_eq!(resp.try_point_in_window(i), Ok(expected.as_slice()));
                }
                Request::KNearest { p, k } => {
                    let expected = brute_knearest(&live, *p, *k);
                    assert_eq!(resp.try_knearest(i), Ok(expected.as_slice()));
                }
                Request::Join(_) | Request::Skyline(_) | Request::DominanceAgg(_) => {
                    unreachable!("WITH_UPDATES carries no joins or dominance requests")
                }
                Request::Insert(seg) => {
                    assert_eq!(resp.try_inserted(i), Ok(live.len() as SegId));
                    live.push(*seg);
                }
                Request::Delete(id) => {
                    assert_eq!(resp.try_deleted(i), Ok(*id));
                    live.remove(*id as usize);
                }
            }
        }
        let stats = svc.stats();
        assert!(stats.compactions > 0, "threshold 3 must have compacted");
        assert_eq!(stats.epoch, stats.compactions);
        assert_eq!(svc.segments(), live);
    }

    #[test]
    fn knn_crosses_shard_boundaries() {
        // Nearest neighbours of a point hugging a tile corner live in
        // other tiles; expanding windows must find them.
        let world = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let segs = vec![
            LineSeg::from_coords(40.0, 40.0, 41.0, 41.0), // far, same tile as p? no: NE region
            LineSeg::from_coords(33.0, 33.0, 34.0, 33.0), // just across the centre
            LineSeg::from_coords(1.0, 1.0, 2.0, 2.0),     // same tile as p, far away
        ];
        let svc = QueryService::build(QueryServiceConfig::sequential(2), world, segs.clone());
        let p = Point::new(31.0, 31.0);
        let out = svc.execute_batch(&[Request::KNearest { p, k: 2 }]);
        assert_eq!(out[0], Response::KNearest(brute_knearest(&segs, p, 2)));
        assert!(svc.stats().knn_rounds >= 1);
    }
}
