//! Data-parallel PM₁ quadtree construction (paper Secs. 4.5 and 5.1).
//!
//! The split decision (Sec. 4.5, Figs. 20–22) runs entirely in segmented
//! scans over the line processor set:
//!
//! 1. each lane counts its line's endpoints inside the node (`EPs`: 0, 1
//!    or 2) — one elementwise op;
//! 2. downward inclusive `max`/`min` scans give each node the extreme
//!    endpoint counts among its lines (Fig. 20);
//! 3. `max = 2`, or `max = 1 ∧ min = 0` ⇒ **split**;
//! 4. for `max = min = 1` nodes, four more `min`/`max` scans form the
//!    minimum bounding box of the in-node endpoints (Fig. 21); a
//!    degenerate (point) box means all lines share one vertex ⇒ no split,
//!    otherwise split;
//! 5. for `max = min = 0` nodes, the node's line count (Fig. 19 capacity
//!    scan) decides: more than one line ⇒ split (Fig. 22).
//!
//! The build itself (Sec. 5.1) is the generic iterative driver: decide,
//! retire, split — O(log n) rounds of O(1) scans each.

use crate::lineproc::{run_quad_build, LineProcSet};
use crate::quadtree::DpQuadtree;
use dp_geom::{LineSeg, Rect};
use scan_model::ops::{Max, Min};
use scan_model::{Direction, FusedOp, Machine, ScanKind};

/// Per-node outcome of the PM₁ split decision, exposed for tests and the
/// Fig. 20–22 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pm1Verdict {
    /// `max EPs = 2`: two endpoints of one line in the node (Fig. 20).
    SplitTwoEndpoints,
    /// `max = 1, min = 0`: a vertex plus a passing line (Fig. 20).
    SplitMixed,
    /// `max = min = 1` and the endpoint MBB is not a point (Fig. 21).
    SplitDistinctVertices,
    /// `max = min = 0` and more than one line passes through (Fig. 22).
    SplitNoVertexManyLines,
    /// All lines share a single vertex (degenerate endpoint MBB).
    KeepSharedVertex,
    /// At most one line and no vertex conflicts.
    KeepSimple,
}

impl Pm1Verdict {
    /// Whether the verdict requires subdivision.
    pub fn must_split(self) -> bool {
        matches!(
            self,
            Pm1Verdict::SplitTwoEndpoints
                | Pm1Verdict::SplitMixed
                | Pm1Verdict::SplitDistinctVertices
                | Pm1Verdict::SplitNoVertexManyLines
        )
    }

    /// Classifies one node from the Figs. 20–22 quantities arriving at its
    /// segment head: the extreme per-lane endpoint counts, whether the
    /// in-node endpoint MBB is degenerate (a point), and the node's line
    /// count. This is the single verdict chain shared by the fused
    /// ([`pm1_verdicts`]) and unfused ([`pm1_verdicts_unfused`]) decision
    /// paths — they differ only in how the quantities are produced, so the
    /// two paths cannot drift.
    pub fn classify(max_eps: i64, min_eps: i64, mbb_degenerate: bool, lines: u64) -> Pm1Verdict {
        if max_eps == 2 {
            Pm1Verdict::SplitTwoEndpoints
        } else if max_eps == 1 && min_eps == 0 {
            Pm1Verdict::SplitMixed
        } else if max_eps == 1 && min_eps == 1 {
            if mbb_degenerate {
                Pm1Verdict::KeepSharedVertex
            } else {
                Pm1Verdict::SplitDistinctVertices
            }
        } else if lines > 1 {
            Pm1Verdict::SplitNoVertexManyLines
        } else {
            Pm1Verdict::KeepSimple
        }
    }
}

/// The PM₁ split decision for every active node, in scan-model ops
/// (Sec. 4.5). Exposed so the figure-level experiments can inspect the
/// per-node verdicts; the build uses [`pm1_decision`].
///
/// This is the **fused** form: the seven per-lane inputs of Figs. 20–22
/// (endpoint counts, four MBB extents, a count lane) are produced in one
/// elementwise pass into arena-leased buffers, then all seven downward
/// inclusive scans run as a single [`Machine::scan_lanes`] pass. The
/// endpoint counts and line counts are carried as `f64` lanes — their
/// values are small integers, exact in `f64` — so every lane shares one
/// element type. Verdicts are bit-identical to [`pm1_verdicts_unfused`]
/// (asserted by the fused-complexity differential test), which keeps the
/// original seven-scan composition for comparison benchmarks.
pub fn pm1_verdicts(machine: &Machine, state: &LineProcSet, segs: &[LineSeg]) -> Vec<Pm1Verdict> {
    let seg = &state.seg;
    let n = seg.len();
    // One fused elementwise pass fills all six distinct scan inputs
    // (counted as one elementwise op; the paper's Figs. 20-21 count the
    // EPs and per-lane-box derivations as elementwise steps). Parallel on
    // the parallel backend, like the maps of the unfused form.
    let mut ins: [Vec<f64>; 6] = std::array::from_fn(|_| machine.lease());
    machine.fill_lanes_into(
        n,
        |i| {
            let s = &segs[state.line[i] as usize];
            let r = &state.rect[i];
            let mut cnt = 0u32;
            let mut bx = (
                f64::INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
            );
            for p in [s.a, s.b] {
                if r.contains(p) {
                    cnt += 1;
                    bx.0 = bx.0.min(p.x);
                    bx.1 = bx.1.min(p.y);
                    bx.2 = bx.2.max(p.x);
                    bx.3 = bx.3.max(p.y);
                }
            }
            [cnt as f64, bx.0, bx.1, bx.2, bx.3, 1.0]
        },
        &mut ins,
    );
    let [eps, xs_min, ys_min, xs_max, ys_max, ones] = &ins;

    // All seven downward inclusive scans in one fused pass: node extremes
    // (Fig. 20), endpoint MBB (Fig. 21) and the capacity count (Fig. 19 /
    // 22) arrive together at each segment head.
    let lanes: [(&[f64], FusedOp); 7] = [
        (eps, FusedOp::Max),
        (eps, FusedOp::Min),
        (xs_min, FusedOp::Min),
        (ys_min, FusedOp::Min),
        (xs_max, FusedOp::Max),
        (ys_max, FusedOp::Max),
        (ones, FusedOp::Sum),
    ];
    let mut outs: Vec<Vec<f64>> = (0..lanes.len()).map(|_| machine.lease()).collect();
    machine.scan_lanes_into(&lanes, seg, Direction::Down, ScanKind::Inclusive, &mut outs);

    // Elementwise verdict at each node (segment head reads). The lane
    // values are exact small integers (EPs ∈ {0,1,2}, counts ≤ n), so the
    // f64 equality tests below are exact.
    machine.note_elementwise();
    let verdicts = seg
        .starts()
        .iter()
        .map(|&head| {
            // The lane values are exact small integers in f64, so the
            // conversions below are lossless.
            let degenerate = outs[2][head] == outs[4][head] && outs[3][head] == outs[5][head];
            Pm1Verdict::classify(
                outs[0][head] as i64,
                outs[1][head] as i64,
                degenerate,
                outs[6][head] as u64,
            )
        })
        .collect();

    for out in outs {
        machine.recycle(out);
    }
    for buf in ins {
        machine.recycle(buf);
    }
    verdicts
}

/// The original unfused PM₁ decision: seven independent scans composed
/// one at a time. Retained as the baseline for the fusion benchmarks and
/// the bit-identity differential test.
pub fn pm1_verdicts_unfused(
    machine: &Machine,
    state: &LineProcSet,
    segs: &[LineSeg],
) -> Vec<Pm1Verdict> {
    let seg = &state.seg;
    // Per-lane endpoint counts (EPs field of Fig. 20). Vertex membership
    // is *closed*: a vertex on a block boundary counts in every touching
    // block, matching Samet's closed-block convention — otherwise two
    // q-edges meeting at a vertex that falls exactly on a block border
    // would render the bordering block unsatisfiable (two vertexless
    // q-edges) at every depth.
    let eps: Vec<i64> = machine.zip_map(&state.line, &state.rect, |id, r| {
        segs[id as usize].count_endpoints_where(|p| r.contains(p)) as i64
    });
    // Downward inclusive scans: node extremes arrive at the segment head
    // (the "first line in each segment group" of Fig. 20).
    let max_eps = machine.down_scan_seg(&eps, seg, Max, ScanKind::Inclusive);
    let min_eps = machine.down_scan_seg(&eps, seg, Min, ScanKind::Inclusive);

    // Endpoint minimum bounding boxes (Fig. 21): per-lane boxes of the
    // in-node endpoints, combined with four min/max scans. Lanes with no
    // in-node endpoint contribute the empty box (infinite identities).
    let lane_boxes: Vec<(f64, f64, f64, f64)> =
        machine.zip_map(&state.line, &state.rect, |id, r| {
            let s = &segs[id as usize];
            let mut bx = (
                f64::INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
            );
            for p in [s.a, s.b] {
                if r.contains(p) {
                    bx.0 = bx.0.min(p.x);
                    bx.1 = bx.1.min(p.y);
                    bx.2 = bx.2.max(p.x);
                    bx.3 = bx.3.max(p.y);
                }
            }
            bx
        });
    let xs_min: Vec<f64> = machine.map(&lane_boxes, |b| b.0);
    let ys_min: Vec<f64> = machine.map(&lane_boxes, |b| b.1);
    let xs_max: Vec<f64> = machine.map(&lane_boxes, |b| b.2);
    let ys_max: Vec<f64> = machine.map(&lane_boxes, |b| b.3);
    let mbb_min_x = machine.down_scan_seg(&xs_min, seg, Min, ScanKind::Inclusive);
    let mbb_min_y = machine.down_scan_seg(&ys_min, seg, Min, ScanKind::Inclusive);
    let mbb_max_x = machine.down_scan_seg(&xs_max, seg, Max, ScanKind::Inclusive);
    let mbb_max_y = machine.down_scan_seg(&ys_max, seg, Max, ScanKind::Inclusive);

    // Line counts (Fig. 22 / Fig. 19 capacity scan).
    let counts = machine.segment_counts(seg);

    // Elementwise verdict at each node (segment head reads).
    machine.note_elementwise();
    seg.starts()
        .iter()
        .enumerate()
        .map(|(s, &head)| {
            let degenerate =
                mbb_min_x[head] == mbb_max_x[head] && mbb_min_y[head] == mbb_max_y[head];
            Pm1Verdict::classify(max_eps[head], min_eps[head], degenerate, counts[s])
        })
        .collect()
}

/// The boolean split decision used by the build driver.
pub fn pm1_decision(machine: &Machine, state: &LineProcSet, segs: &[LineSeg]) -> Vec<bool> {
    pm1_verdicts(machine, state, segs)
        .into_iter()
        .map(Pm1Verdict::must_split)
        .collect()
}

/// Unfused variant of [`pm1_decision`], for the fusion baseline.
pub fn pm1_decision_unfused(machine: &Machine, state: &LineProcSet, segs: &[LineSeg]) -> Vec<bool> {
    pm1_verdicts_unfused(machine, state, segs)
        .into_iter()
        .map(Pm1Verdict::must_split)
        .collect()
}

/// Builds a PM₁ quadtree over `segs` with all lines inserted
/// simultaneously (paper Sec. 5.1).
///
/// `max_depth` bounds subdivision; blocks still invalid there are
/// reported via [`DpQuadtree::truncated`].
///
/// # Panics
///
/// Panics if any segment endpoint lies outside the half-open `world`.
pub fn build_pm1(machine: &Machine, world: Rect, segs: &[LineSeg], max_depth: usize) -> DpQuadtree {
    let mut decide = pm1_decision;
    let out = run_quad_build(machine, world, segs, max_depth, &mut decide);
    DpQuadtree::from_outcome(world, out)
}

/// [`build_pm1`] driven by the unfused decision — the before-fusion
/// baseline for the complexity test and the criterion benchmarks. Builds
/// a tree bit-identical to the fused build; only the machine's op-count
/// profile (scan passes, fused-lane savings) differs.
pub fn build_pm1_unfused(
    machine: &Machine,
    world: Rect,
    segs: &[LineSeg],
    max_depth: usize,
) -> DpQuadtree {
    let mut decide = pm1_decision_unfused;
    let out = run_quad_build(machine, world, segs, max_depth, &mut decide);
    DpQuadtree::from_outcome(world, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geom::Point;
    use scan_model::Backend;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    /// Figs. 20–22 worked in miniature: one decision round over four
    /// distinct node situations.
    #[test]
    fn fig20_22_verdicts() {
        for m in machines() {
            // Node layout: we hand-construct a state with four active
            // nodes by running one split of a crafted dataset would be
            // indirect; instead call the decision on four single-node
            // states.
            // Case 1 (paper node 2): a line with both endpoints inside.
            let segs1 = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
            let st1 = LineProcSet::initial(world(), &segs1);
            assert_eq!(
                pm1_verdicts(&m, &st1, &segs1),
                vec![Pm1Verdict::SplitTwoEndpoints]
            );

            // Case 2 (paper node 1): two lines, one endpoint each, at
            // different positions -> split.
            let segs2 = vec![
                LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
                LineSeg::from_coords(2.0, 1.0, 7.0, 5.0),
            ];
            // Shrink to a state where each line has exactly one endpoint
            // inside: use the SW quadrant as the node.
            let node = world().quadrants()[2]; // [0,4)x[0,4)
            let st2 = LineProcSet {
                line: vec![0, 1],
                rect: vec![node, node],
                seg: scan_model::Segments::single(2),
                nodes: vec![crate::lineproc::ActiveNode {
                    path: dp_geom::NodePath::ROOT.child(dp_geom::Quadrant::SW),
                    rect: node,
                }],
            };
            assert_eq!(
                pm1_verdicts(&m, &st2, &segs2),
                vec![Pm1Verdict::SplitDistinctVertices]
            );

            // Case 3 (paper node 4): all lines share the single in-node
            // vertex -> keep.
            let segs3 = vec![
                LineSeg::from_coords(2.0, 2.0, 6.0, 6.0),
                LineSeg::from_coords(2.0, 2.0, 7.0, 1.0),
            ];
            let st3 = LineProcSet {
                line: vec![0, 1],
                rect: vec![node, node],
                seg: scan_model::Segments::single(2),
                nodes: st2.nodes.clone(),
            };
            assert_eq!(
                pm1_verdicts(&m, &st3, &segs3),
                vec![Pm1Verdict::KeepSharedVertex]
            );

            // Case 4 (paper node 3): no vertices, single passing line ->
            // keep; two passing lines -> split.
            // Endpoints chosen outside the NE block so EPs = 0 for both
            // (the state is hand-built, so the world bound is not
            // enforced here).
            let segs4 = vec![
                LineSeg::from_coords(0.0, 5.0, 9.0, 5.0),
                LineSeg::from_coords(0.0, 6.0, 9.0, 6.0),
            ];
            let node_ne = world().quadrants()[1]; // [4,8)x[4,8)
            let mk = |lines: Vec<u32>| LineProcSet {
                rect: vec![node_ne; lines.len()],
                seg: scan_model::Segments::single(lines.len()),
                line: lines,
                nodes: vec![crate::lineproc::ActiveNode {
                    path: dp_geom::NodePath::ROOT.child(dp_geom::Quadrant::NE),
                    rect: node_ne,
                }],
            };
            assert_eq!(
                pm1_verdicts(&m, &mk(vec![0]), &segs4),
                vec![Pm1Verdict::KeepSimple]
            );
            assert_eq!(
                pm1_verdicts(&m, &mk(vec![0, 1]), &segs4),
                vec![Pm1Verdict::SplitNoVertexManyLines]
            );
        }
    }

    #[test]
    fn build_satisfies_pm1_invariant() {
        for m in machines() {
            let segs = vec![
                LineSeg::from_coords(2.0, 5.0, 5.0, 6.0),
                LineSeg::from_coords(5.0, 7.0, 7.0, 3.0),
                LineSeg::from_coords(1.0, 6.0, 0.0, 7.0),
                LineSeg::from_coords(1.0, 6.0, 3.0, 7.0),
                LineSeg::from_coords(0.0, 2.0, 2.0, 1.0),
            ];
            let t = build_pm1(&m, world(), &segs, 8);
            assert_eq!(t.truncated(), 0);
            // Every leaf satisfies the PM1 criterion (checked against the
            // independent sequential implementation's validity predicate).
            t.for_each_leaf(|rect, _, ids| {
                assert!(
                    seq_spatial::pm1::pm1_block_valid(ids, &segs, rect),
                    "invalid PM1 leaf {rect} with {ids:?}"
                );
            });
            // Everything is retrievable.
            assert_eq!(t.window_query(&world(), &segs), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn empty_and_single_line_builds() {
        for m in machines() {
            let t = build_pm1(&m, world(), &[], 6);
            assert_eq!(t.stats().nodes, 1);
            let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 5.0)];
            let t = build_pm1(&m, world(), &segs, 6);
            assert!(t.rounds() >= 1, "two in-block endpoints force a split");
            assert_eq!(t.truncated(), 0);
            assert_eq!(t.point_query(Point::new(1.0, 1.0)), vec![0]);
        }
    }

    #[test]
    fn close_vertices_need_depth_fig2() {
        for m in machines() {
            let segs = vec![
                LineSeg::from_coords(1.0, 1.0, 6.0, 5.0),
                LineSeg::from_coords(2.0, 1.0, 6.0, 1.0),
            ];
            // Depth 1 cannot separate vertices (1,1) and (2,1).
            let shallow = build_pm1(&m, world(), &segs, 1);
            assert!(shallow.truncated() > 0);
            // Depth 3 (unit blocks) separates them.
            let deep = build_pm1(&m, world(), &segs, 4);
            assert_eq!(deep.truncated(), 0);
            assert!(deep.stats().height >= 3);
        }
    }

    #[test]
    fn backends_build_identical_trees() {
        let segs: Vec<LineSeg> = (0..30)
            .map(|k| {
                let x = (k % 6) as f64;
                let y = ((k * 3) % 7) as f64;
                LineSeg::from_coords(x, y, x + 1.0, y + 1.0)
            })
            .collect();
        let a = build_pm1(&Machine::sequential(), world(), &segs, 8);
        let b = build_pm1(
            &Machine::new(Backend::Parallel).with_par_threshold(1),
            world(),
            &segs,
            8,
        );
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            a.window_query(&world(), &segs),
            b.window_query(&world(), &segs)
        );
    }
}
