//! Build instrumentation: primitive-operation accounting per build.
//!
//! The paper states its complexity results in primitive operations per
//! subdivision stage ("a constant number of scans, clonings, and
//! un-shuffles", Secs. 5.1–5.3). [`measure_build`] wraps a build closure
//! and reports the machine's operation deltas, so the scaling experiments
//! can verify those claims directly (experiments E19–E21 in `DESIGN.md`).

use scan_model::{Machine, StatsSnapshot};
use std::time::{Duration, Instant};

/// Primitive-operation and wall-clock accounting for one build.
#[derive(Debug, Clone, Copy)]
pub struct BuildReport {
    /// Machine-op deltas attributable to the build.
    pub ops: StatsSnapshot,
    /// Wall-clock duration of the build.
    pub elapsed: Duration,
}

impl BuildReport {
    /// Scans per round, the paper's "constant number of scans" check
    /// (`None` when no rounds ran).
    pub fn scans_per_round(&self) -> Option<f64> {
        (self.ops.rounds > 0).then(|| self.ops.scans as f64 / self.ops.rounds as f64)
    }

    /// Total primitive ops per round.
    pub fn ops_per_round(&self) -> Option<f64> {
        (self.ops.rounds > 0).then(|| self.ops.total_primitives() as f64 / self.ops.rounds as f64)
    }
}

/// Runs `build` against `machine` and reports the operation delta and
/// elapsed time. The machine's counters are *not* reset — deltas are
/// computed from snapshots, so measurement composes with other work.
pub fn measure_build<T>(machine: &Machine, build: impl FnOnce() -> T) -> (T, BuildReport) {
    let before = machine.stats();
    let start = Instant::now();
    let value = build();
    let elapsed = start.elapsed();
    let ops = machine.stats().since(&before);
    (value, BuildReport { ops, elapsed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_pmr::build_bucket_pmr;
    use dp_geom::{LineSeg, Rect};

    #[test]
    fn measure_reports_ops_and_rounds() {
        let m = Machine::sequential();
        let world = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            LineSeg::from_coords(1.0, 2.0, 6.0, 2.0),
        ];
        let (tree, report) = measure_build(&m, || build_bucket_pmr(&m, world, &segs, 2, 6));
        assert!(tree.stats().nodes > 1);
        assert!(report.ops.scans > 0);
        assert!(report.ops.rounds > 0);
        assert!(report.scans_per_round().unwrap() > 0.0);
        assert!(report.ops_per_round().unwrap() >= report.scans_per_round().unwrap());
    }

    #[test]
    fn scans_per_round_is_bounded_constant() {
        // The paper's O(1)-ops-per-stage claim: the per-round scan count
        // must not grow with n. Compare a small and a larger build.
        let world = Rect::from_coords(0.0, 0.0, 64.0, 64.0);
        let mk = |n: usize| -> Vec<LineSeg> {
            (0..n)
                .map(|k| {
                    let x = ((k * 13) % 60) as f64;
                    let y = ((k * 29) % 60) as f64;
                    LineSeg::from_coords(x, y, x + 2.0, y + 1.0)
                })
                .collect()
        };
        let m = Machine::sequential();
        let (_t1, r1) = {
            let segs = mk(40);
            measure_build(&m, || build_bucket_pmr(&m, world, &segs, 4, 6))
        };
        let (_t2, r2) = {
            let segs = mk(400);
            measure_build(&m, || build_bucket_pmr(&m, world, &segs, 4, 6))
        };
        let (a, b) = (r1.ops_per_round().unwrap(), r2.ops_per_round().unwrap());
        assert!(
            (a - b).abs() / a.max(b) < 0.5,
            "ops/round should be near-constant: {a} vs {b}"
        );
    }
}
