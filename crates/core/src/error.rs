//! Error surface of the checked query/join entry points.
//!
//! The bulk operations historically disagreed about precondition
//! violations: `spatial_join` panicked on mismatched worlds while
//! `batch_window_query` silently clipped out-of-world windows. The
//! checked entry points ([`crate::join::frontier_join`],
//! [`crate::join::try_spatial_join`],
//! [`crate::batch::try_batch_window_query`]) unify both behind one
//! `Result`-returning surface with this error type; the panicking and
//! clipping variants remain for callers that have already validated
//! their inputs.

use dp_geom::Rect;
use std::fmt;

/// A precondition violation detected by a checked bulk operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialError {
    /// Two indexes that must cover the same world cover different ones
    /// (the aligned-decomposition precondition of the spatial join).
    WorldMismatch {
        /// World of the left-hand index.
        left: Rect,
        /// World of the right-hand index.
        right: Rect,
    },
    /// A query window reaches outside the index's world, so silently
    /// clipping it would hide misrouted traffic.
    WindowOutsideWorld {
        /// Position of the offending window in the request batch.
        index: usize,
        /// The offending window.
        window: Rect,
        /// The index's world rectangle.
        world: Rect,
    },
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::WorldMismatch { left, right } => write!(
                f,
                "operands cover different worlds: {left} vs {right} \
                 (aligned decompositions require identical worlds)"
            ),
            SpatialError::WindowOutsideWorld {
                index,
                window,
                world,
            } => write!(
                f,
                "query window {index} ({window}) reaches outside the index world {world}"
            ),
        }
    }
}

impl std::error::Error for SpatialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_worlds() {
        let e = SpatialError::WorldMismatch {
            left: Rect::from_coords(0.0, 0.0, 8.0, 8.0),
            right: Rect::from_coords(0.0, 0.0, 16.0, 16.0),
        };
        let s = e.to_string();
        assert!(s.contains("different worlds"), "{s}");
    }

    #[test]
    fn display_names_the_window_slot() {
        let e = SpatialError::WindowOutsideWorld {
            index: 3,
            window: Rect::from_coords(9.0, 9.0, 10.0, 10.0),
            world: Rect::from_coords(0.0, 0.0, 8.0, 8.0),
        };
        let s = e.to_string();
        assert!(s.contains("window 3"), "{s}");
    }
}
