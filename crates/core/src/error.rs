//! Error surface of the checked query/join entry points.
//!
//! The bulk operations historically disagreed about precondition
//! violations: `spatial_join` panicked on mismatched worlds while
//! `batch_window_query` silently clipped out-of-world windows. The
//! checked entry points ([`crate::join::frontier_join`],
//! [`crate::join::try_spatial_join`],
//! [`crate::batch::try_batch_window_query`]) unify both behind one
//! `Result`-returning surface with this error type; the panicking and
//! clipping variants remain for callers that have already validated
//! their inputs.

use dp_geom::Rect;
use scan_model::FaultSite;
use std::fmt;

/// Which malformation a rejected request carries (see
/// [`SpatialError::MalformedRequest`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MalformedKind {
    /// A window whose coordinates are NaN or infinite.
    NonFiniteWindow,
    /// A query point whose coordinates are NaN or infinite.
    NonFinitePoint,
    /// A k-nearest request with `k == 0` (no defined answer set).
    ZeroK,
    /// An insert whose segment endpoints are NaN or infinite.
    NonFiniteSegment,
    /// A delete naming a segment id that is not live in the collection.
    UnknownSegment,
}

impl fmt::Display for MalformedKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MalformedKind::NonFiniteWindow => "non-finite window",
            MalformedKind::NonFinitePoint => "non-finite point",
            MalformedKind::ZeroK => "k = 0",
            MalformedKind::NonFiniteSegment => "non-finite segment",
            MalformedKind::UnknownSegment => "unknown segment id",
        })
    }
}

/// A precondition violation detected by a checked bulk operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SpatialError {
    /// Two indexes that must cover the same world cover different ones
    /// (the aligned-decomposition precondition of the spatial join).
    WorldMismatch {
        /// World of the left-hand index.
        left: Rect,
        /// World of the right-hand index.
        right: Rect,
    },
    /// A query window reaches outside the index's world, so silently
    /// clipping it would hide misrouted traffic.
    WindowOutsideWorld {
        /// Position of the offending window in the request batch.
        index: usize,
        /// The offending window.
        window: Rect,
        /// The index's world rectangle.
        world: Rect,
    },
    /// A request that cannot be answered regardless of index state
    /// (non-finite coordinates, `k == 0`). Detected by per-request
    /// validation before any shard is probed.
    MalformedRequest {
        /// Position of the offending request in the batch.
        index: usize,
        /// Which malformation was detected.
        kind: MalformedKind,
    },
    /// A shard crashed and exhausted its retry and rebuild budget; the
    /// service marks it degraded and falls back to the sequential oracle.
    ShardUnavailable {
        /// Row-major shard slot in the service grid.
        shard: usize,
        /// Recovery attempts (retries + rebuilds) spent before giving up.
        attempts: u32,
    },
    /// An injected fault surfaced as an error (the typed form of an
    /// [`scan_model::InjectedFault`] panic payload caught by a recovery
    /// layer).
    FaultInjected {
        /// The fault site that fired.
        site: FaultSite,
        /// Which occurrence at that site fired.
        occurrence: u64,
    },
    /// A response slot was interrogated for the wrong kind (e.g. asking a
    /// k-NN answer for its window hits) — the service-level replacement
    /// for `panic!("response kind mismatch")`.
    ResponseKindMismatch {
        /// Position of the response in the batch.
        index: usize,
    },
    /// A service configuration that cannot describe a valid shard grid.
    InvalidConfig {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// The admission layer shed this request because its lane's bounded
    /// queue was full — the load-shedding arm of the same typed
    /// `Rejected` path that carries crash-ladder failures.
    Overloaded {
        /// Admission lane whose queue was full.
        lane: usize,
        /// Queue depth observed at the shed decision (the lane bound).
        depth: usize,
    },
    /// A segment endpoint falls outside the world the service was asked
    /// to index, so shard assignment would silently drop it.
    SegmentOutsideWorld {
        /// Position of the offending segment in the input slice.
        index: usize,
    },
    /// A snapshot file carries a format version this reader does not
    /// speak. A version bump must reject old fixtures cleanly through
    /// this variant, never panic.
    SnapshotVersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this reader expects.
        expected: u32,
    },
    /// A snapshot section failed its CRC or bounds check — torn write,
    /// bit rot, or truncation. The service falls through to a cold
    /// rebuild from segments.
    SnapshotCorrupt {
        /// Zero-based index of the offending section (`u32::MAX` when
        /// the whole-file header itself is damaged).
        section: u32,
    },
    /// A snapshot decoded cleanly at the byte level but describes a
    /// state inconsistent with the requesting service (wrong family,
    /// wrong world, mismatched counts).
    SnapshotMalformed {
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::WorldMismatch { left, right } => write!(
                f,
                "operands cover different worlds: {left} vs {right} \
                 (aligned decompositions require identical worlds)"
            ),
            SpatialError::WindowOutsideWorld {
                index,
                window,
                world,
            } => write!(
                f,
                "query window {index} ({window}) reaches outside the index world {world}"
            ),
            SpatialError::MalformedRequest { index, kind } => {
                write!(f, "request {index} is malformed: {kind}")
            }
            SpatialError::ShardUnavailable { shard, attempts } => write!(
                f,
                "shard {shard} unavailable after {attempts} recovery attempts; \
                 degraded to the sequential oracle"
            ),
            SpatialError::FaultInjected { site, occurrence } => {
                write!(f, "injected {site} fault (occurrence {occurrence})")
            }
            SpatialError::ResponseKindMismatch { index } => {
                write!(f, "response {index} holds a different kind than requested")
            }
            SpatialError::InvalidConfig { reason } => {
                write!(f, "invalid service configuration: {reason}")
            }
            SpatialError::SegmentOutsideWorld { index } => {
                write!(f, "segment {index} falls outside the service world")
            }
            SpatialError::Overloaded { lane, depth } => write!(
                f,
                "admission lane {lane} shed the request at queue depth {depth}"
            ),
            SpatialError::SnapshotVersionMismatch { found, expected } => write!(
                f,
                "snapshot format version {found} is not the expected version {expected}"
            ),
            SpatialError::SnapshotCorrupt { section } => {
                if *section == u32::MAX {
                    write!(f, "snapshot header is corrupt (bad magic, size, or CRC)")
                } else {
                    write!(f, "snapshot section {section} is corrupt (CRC or bounds)")
                }
            }
            SpatialError::SnapshotMalformed { reason } => {
                write!(f, "snapshot is malformed: {reason}")
            }
        }
    }
}

impl std::error::Error for SpatialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_worlds() {
        let e = SpatialError::WorldMismatch {
            left: Rect::from_coords(0.0, 0.0, 8.0, 8.0),
            right: Rect::from_coords(0.0, 0.0, 16.0, 16.0),
        };
        let s = e.to_string();
        assert!(s.contains("different worlds"), "{s}");
    }

    #[test]
    fn display_names_the_window_slot() {
        let e = SpatialError::WindowOutsideWorld {
            index: 3,
            window: Rect::from_coords(9.0, 9.0, 10.0, 10.0),
            world: Rect::from_coords(0.0, 0.0, 8.0, 8.0),
        };
        let s = e.to_string();
        assert!(s.contains("window 3"), "{s}");
    }

    #[test]
    fn display_names_the_malformation() {
        let e = SpatialError::MalformedRequest {
            index: 7,
            kind: MalformedKind::ZeroK,
        };
        let s = e.to_string();
        assert!(s.contains("request 7") && s.contains("k = 0"), "{s}");
    }

    #[test]
    fn display_names_the_write_malformations() {
        let e = SpatialError::MalformedRequest {
            index: 2,
            kind: MalformedKind::NonFiniteSegment,
        };
        assert!(e.to_string().contains("non-finite segment"));
        let e = SpatialError::MalformedRequest {
            index: 4,
            kind: MalformedKind::UnknownSegment,
        };
        assert!(e.to_string().contains("unknown segment id"));
    }

    #[test]
    fn display_names_the_degraded_shard() {
        let e = SpatialError::ShardUnavailable {
            shard: 2,
            attempts: 3,
        };
        let s = e.to_string();
        assert!(s.contains("shard 2") && s.contains("3 recovery"), "{s}");
    }

    #[test]
    fn display_names_the_snapshot_failures() {
        let e = SpatialError::SnapshotVersionMismatch {
            found: 2,
            expected: 1,
        };
        let s = e.to_string();
        assert!(s.contains("version 2") && s.contains("version 1"), "{s}");
        let e = SpatialError::SnapshotCorrupt { section: 4 };
        assert!(e.to_string().contains("section 4"));
        let e = SpatialError::SnapshotCorrupt { section: u32::MAX };
        assert!(e.to_string().contains("header"));
        let e = SpatialError::SnapshotMalformed {
            reason: "shard count",
        };
        assert!(e.to_string().contains("shard count"));
    }

    #[test]
    fn display_names_the_fault_site() {
        let e = SpatialError::FaultInjected {
            site: FaultSite::RoundAbort,
            occurrence: 5,
        };
        let s = e.to_string();
        assert!(
            s.contains("round-abort") && s.contains("occurrence 5"),
            "{s}"
        );
    }
}
