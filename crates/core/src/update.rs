//! Data-parallel batch insert / delete for the quadtree family.
//!
//! The paper builds its structures by *simultaneous* insertion of every
//! line (Secs. 5.1–5.2); this module extends the same primitive
//! vocabulary to *incremental* batches, so a built tree absorbs a set of
//! insertions and deletions without a full rebuild. The invariant it
//! maintains is the one the bucket PMR quadtree was chosen for (paper
//! Sec. 5.2, Fig. 34): the split decision is a pure function of each
//! block's line set, so the updated tree must answer queries exactly like
//! a bulk build of the final segment collection. That equivalence — for
//! any interleaving of batches — is enforced by
//! `tests/update_differential.rs`.
//!
//! One [`batch_update`] is five phases, all expressed in the scan-model
//! kernels and driven by the instrumented [`RoundDriver`]:
//!
//! 1. **Collection compaction** — deleted segments are removed from the
//!    backing collection with the deletion-compaction kernel (Sec. 4.3);
//!    an exclusive `+`-scan over the keep flags yields the old→new id
//!    remap in one scan pass. Inserts append after the kept ids.
//! 2. **Leaf delete-compaction** — every leaf's line list is flattened
//!    into one segmented lane vector; one [`Machine::delete_layout`] +
//!    gather compacts all leaves simultaneously and one elementwise pass
//!    remaps the survivors.
//! 3. **Insert routing** — the new segments descend the existing tree in
//!    lockstep, one level per round: a lane landing on a leaf retires
//!    into that leaf's record, a lane over an internal node fans out to
//!    its crossing children via the ×4 [`Machine::fanout_layout`] kernel
//!    (the generalized cloning of Sec. 4.1), with the copy *rank*
//!    selecting the r-th crossing child elementwise. Membership uses the
//!    same [`seg_in_block`] predicate as the bulk build's node split, so
//!    routed q-edges land exactly where a bulk build would place them.
//! 4. **Merge sweep** — underflowing regions collapse. The sweep is
//!    top-down over the *affected* subtree (a block is affected iff some
//!    batch segment — deleted old geometry or insert — crosses it):
//!    starting at the root, each affected internal block evaluates the
//!    structure's split decision on the distinct union of its subtree's
//!    lines; a `false` verdict collapses the whole subtree into one leaf,
//!    a `true` verdict descends into the affected children only.
//!    Unaffected subtrees are untouched — by induction they already equal
//!    the bulk shape. Top-down matters: split decisions need not be
//!    monotone in the line set, so a bottom-up cascade can stall below a
//!    block whose bulk verdict is "leaf".
//! 5. **Split repair** — leaves whose line set changed re-enter the
//!    ordinary [`QuadSplitPolicy`] via its multi-node frontier
//!    constructor and subdivide until the split criterion is satisfied,
//!    exactly as in a bulk build.
//!
//! Phases 4 and 5 run as [`SplitPolicy`]s on the [`RoundDriver`], so
//! every step hits the `RoundAbort` fault site and records a
//! [`scan_model::RoundTrace`] — the crash-recovery sweeps in
//! `tests/fault_injection.rs` kill updates at every round the same way
//! they kill builds.
//!
//! The rebuilt tree's `rounds()` accumulates across the tree's lifetime
//! (bulk rounds + every update's merge and repair rounds); `truncated()`
//! likewise accumulates newly truncated leaves. Both are telemetry, not
//! part of the bulk-equivalence contract.

use crate::lineproc::{ActiveNode, LeafRecord, LineProcSet, QuadSplitPolicy, SplitDecision};
use crate::quadtree::{DpQuadtree, QtNode};
use crate::round_driver::{RoundAdvance, RoundDriver, SplitPolicy};
use crate::SegId;
use dp_geom::{seg_in_block, LineSeg, NodePath, Quadrant, Rect};
use scan_model::ops::Sum;
use scan_model::{FaultSite, Machine, ScanKind, Segments};
use std::collections::HashMap;

/// One batch of mutations. Deletes refer to ids in the *pre-batch*
/// collection; inserts are appended after the surviving segments, so the
/// post-batch collection is `kept ++ inserts` and the new id of insert
/// `j` is `(old_len - deletes) + j`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UpdateBatch {
    /// Segments to add. Endpoints must lie inside the half-open world.
    pub inserts: Vec<LineSeg>,
    /// Pre-batch ids to remove (duplicates are tolerated and ignored).
    pub deletes: Vec<SegId>,
}

impl UpdateBatch {
    /// A batch of insertions only.
    pub fn inserting(inserts: Vec<LineSeg>) -> Self {
        UpdateBatch {
            inserts,
            deletes: Vec::new(),
        }
    }

    /// A batch of deletions only.
    pub fn deleting(deletes: Vec<SegId>) -> Self {
        UpdateBatch {
            inserts: Vec::new(),
            deletes,
        }
    }

    /// `true` when the batch mutates nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }
}

/// Accounting for one applied batch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Segments removed (after dedup).
    pub deleted: usize,
    /// Segments added.
    pub inserted: usize,
    /// Rounds of the top-down merge sweep.
    pub merge_rounds: usize,
    /// Rounds of the split-repair pass.
    pub split_rounds: usize,
    /// Leaf records absorbed by merge collapses.
    pub collapsed: usize,
}

/// One leaf block of the tree being updated, tracked through the phases.
struct Rec {
    path: NodePath,
    rect: Rect,
    lines: Vec<SegId>,
    /// Line set changed (deletion or routed insert) — split repair input.
    changed: bool,
    /// Absorbed by a merge collapse; excluded from the final assembly.
    dead: bool,
}

/// A frontier node of the merge sweep: an internal block of the old
/// structure whose subtree may collapse.
struct MergeCandidate {
    path: NodePath,
    rect: Rect,
    /// Indices into the record table of every leaf under this block.
    members: Vec<usize>,
    /// Indices into the batch footprint of the segments crossing this
    /// block (narrowed as the sweep descends).
    foot: Vec<u32>,
}

/// The merge sweep as a [`SplitPolicy`]: `decide` evaluates the split
/// criterion on each candidate's distinct line union (one batched closure
/// call per round), `emit` collapses the rejected candidates, `partition`
/// descends into the affected children of the rest.
struct MergeSweepPolicy<'a, 'd, 'c, 's> {
    recs: &'a mut Vec<Rec>,
    segs: &'s [LineSeg],
    footprint: &'a [LineSeg],
    decide: &'d mut SplitDecision<'c>,
    frontier: Vec<MergeCandidate>,
    /// Per frontier candidate: the distinct union of its subtree's lines,
    /// computed by `decide` and consumed by `emit`. Unordered: leaf line
    /// order is never semantic (queries sort before use).
    unions: Vec<Vec<SegId>>,
    /// Stamped seen-table for the union dedup: `seen[id] == stamp` iff
    /// `id` was already taken for the current candidate. One O(lines)
    /// sweep per round instead of a sort per candidate.
    seen: Vec<u32>,
    stamp: u32,
    collapsed: usize,
}

impl MergeSweepPolicy<'_, '_, '_, '_> {
    fn collapse(&mut self, c: usize) {
        let cand = &self.frontier[c];
        for &ri in &cand.members {
            self.recs[ri].dead = true;
        }
        self.collapsed += cand.members.len();
        let lines = std::mem::take(&mut self.unions[c]);
        // The collapsed block is decision-false by construction, so it
        // needs no split repair.
        self.recs.push(Rec {
            path: cand.path,
            rect: cand.rect,
            lines,
            changed: false,
            dead: false,
        });
    }
}

impl SplitPolicy for MergeSweepPolicy<'_, '_, '_, '_> {
    fn active_elements(&self) -> usize {
        self.frontier.iter().map(|c| c.members.len()).sum()
    }

    fn active_nodes(&self) -> usize {
        self.frontier.len()
    }

    fn decide(&mut self, machine: &Machine) -> Vec<bool> {
        // Distinct union of each candidate subtree's lines (a line crosses
        // the candidate block iff it appears in some leaf below it — the
        // q-edge rule).
        machine.note_elementwise();
        if self.seen.len() < self.segs.len() {
            self.seen.resize(self.segs.len(), 0);
        }
        self.unions.clear();
        for cand in &self.frontier {
            if self.stamp == u32::MAX {
                self.seen.iter_mut().for_each(|s| *s = 0);
                self.stamp = 0;
            }
            self.stamp += 1;
            let stamp = self.stamp;
            let mut u: Vec<SegId> = Vec::new();
            for &ri in &cand.members {
                for &id in &self.recs[ri].lines {
                    let s = &mut self.seen[id as usize];
                    if *s != stamp {
                        *s = stamp;
                        u.push(id);
                    }
                }
            }
            self.unions.push(u);
        }

        // One batched decision over the non-empty candidates; an emptied
        // subtree collapses unconditionally (a bulk build leaves an empty
        // block as a leaf).
        let occupied: Vec<usize> = (0..self.frontier.len())
            .filter(|&c| !self.unions[c].is_empty())
            .collect();
        let mut want = vec![false; self.frontier.len()];
        if !occupied.is_empty() {
            let lengths: Vec<usize> = occupied.iter().map(|&c| self.unions[c].len()).collect();
            let line: Vec<SegId> = occupied
                .iter()
                .flat_map(|&c| self.unions[c].iter().copied())
                .collect();
            let rect: Vec<Rect> = occupied
                .iter()
                .flat_map(|&c| std::iter::repeat(self.frontier[c].rect).take(self.unions[c].len()))
                .collect();
            let nodes: Vec<ActiveNode> = occupied
                .iter()
                .map(|&c| ActiveNode {
                    path: self.frontier[c].path,
                    rect: self.frontier[c].rect,
                })
                .collect();
            let state = LineProcSet {
                line,
                rect,
                seg: Segments::from_lengths(&lengths)
                    .expect("occupied candidates have non-empty unions"),
                nodes,
            };
            let verdict = (self.decide)(machine, &state, self.segs);
            assert_eq!(verdict.len(), occupied.len());
            for (&c, v) in occupied.iter().zip(verdict) {
                want[c] = v;
            }
        }
        want
    }

    fn emit(&mut self, _machine: &Machine, want: &[bool]) {
        for (c, keep) in want.iter().enumerate() {
            if !keep {
                self.collapse(c);
            }
        }
    }

    fn partition(&mut self, _machine: &Machine, want: &[bool]) {
        let mut next = Vec::new();
        for (c, cand) in self.frontier.iter().enumerate() {
            if !want[c] {
                continue;
            }
            // Group the member leaves by their quadrant under this block.
            let depth = cand.path.depth() as usize;
            let quads = cand.rect.quadrants();
            let mut groups: [Vec<usize>; 4] = Default::default();
            for &ri in &cand.members {
                let q = self.recs[ri].path.quadrants()[depth];
                groups[q.index()].push(ri);
            }
            for (qi, group) in groups.into_iter().enumerate() {
                if group.is_empty() {
                    continue;
                }
                let child_path = cand.path.child(Quadrant::from_index(qi));
                let child_rect = quads[qi];
                // A single record at the child block is already a leaf
                // there — nothing beneath it to merge.
                if group.len() == 1 && self.recs[group[0]].path == child_path {
                    continue;
                }
                // Unaffected children keep their structure: no batch
                // segment crosses the block, so its subtree is already
                // bulk-shaped.
                let foot: Vec<u32> = cand
                    .foot
                    .iter()
                    .copied()
                    .filter(|&f| seg_in_block(&self.footprint[f as usize], &child_rect))
                    .collect();
                if foot.is_empty() {
                    continue;
                }
                next.push(MergeCandidate {
                    path: child_path,
                    rect: child_rect,
                    members: group,
                    foot,
                });
            }
        }
        self.frontier = next;
    }

    fn advance(&mut self, _machine: &Machine, split_any: bool) -> RoundAdvance {
        RoundAdvance {
            round_completed: true,
            finished: !split_any || self.frontier.is_empty(),
        }
    }
}

/// Applies one batch of insertions and deletions to `tree` (and its
/// backing collection `segs`) so that the result answers queries exactly
/// like a bulk build of the final collection under the same `decide` /
/// `max_depth` parameters — for any split decision that is a pure
/// function of a block's line set.
///
/// Deletion remaps ids: surviving segments are compacted in order, then
/// inserts append. Callers holding external ids must apply the same
/// remap (`new = old - |{d in deletes : d < old}|`).
///
/// # Panics
///
/// Panics when a delete id is out of range or an insert endpoint lies
/// outside the half-open world.
pub fn batch_update(
    machine: &Machine,
    tree: &mut DpQuadtree,
    segs: &mut Vec<LineSeg>,
    batch: &UpdateBatch,
    max_depth: usize,
    decide: &mut SplitDecision<'_>,
) -> UpdateOutcome {
    let world = tree.world();
    for (j, s) in batch.inserts.iter().enumerate() {
        assert!(
            world.contains_half_open(s.a) && world.contains_half_open(s.b),
            "insert {j} endpoint outside the half-open world"
        );
    }
    let n = segs.len();
    let mut deletes: Vec<SegId> = batch.deletes.clone();
    deletes.sort_unstable();
    deletes.dedup();
    if let Some(&d) = deletes.last() {
        assert!(
            (d as usize) < n,
            "delete id {d} out of range ({n} segments)"
        );
    }
    if deletes.is_empty() && batch.inserts.is_empty() {
        return UpdateOutcome::default();
    }

    // ---- Phase 1: collection compaction + id remap (Sec. 4.3). ----
    let mut delete_flag = vec![false; n];
    for &d in &deletes {
        delete_flag[d as usize] = true;
    }
    let deleted_geom: Vec<LineSeg> = deletes.iter().map(|&d| segs[d as usize]).collect();
    let kept = n - deletes.len();
    // Exclusive +-scan over the keep flags: each survivor's rank is its
    // post-compaction id.
    let keep: Vec<u64> = machine.map(&delete_flag, |f| !f as u64);
    let ranks = machine.up_scan(&keep, Sum, ScanKind::Exclusive);
    machine.note_elementwise();
    let new_id: Vec<SegId> = (0..n)
        .map(|i| {
            if delete_flag[i] {
                SegId::MAX
            } else {
                ranks[i] as SegId
            }
        })
        .collect();
    if !deletes.is_empty() {
        let layout = machine.delete_layout(&Segments::single(n), &delete_flag);
        *segs = machine.apply_delete(segs, &layout);
    }
    segs.extend(batch.inserts.iter().copied());

    // The batch footprint: every region either verdict can change in is
    // crossed by one of these.
    let mut footprint = deleted_geom;
    footprint.extend(batch.inserts.iter().copied());

    // ---- Collect the current leaves (empty ones included, so every
    // block of the full 4-ary structure has a record beneath it). ----
    let mut recs: Vec<Rec> = Vec::new();
    let mut rec_of_node: HashMap<usize, usize> = HashMap::new();
    let mut stack = vec![(0usize, NodePath::ROOT, world)];
    while let Some((idx, path, rect)) = stack.pop() {
        match tree.node(idx) {
            QtNode::Leaf { lines } => {
                rec_of_node.insert(idx, recs.len());
                recs.push(Rec {
                    path,
                    rect,
                    lines: lines.clone(),
                    changed: false,
                    dead: false,
                });
            }
            QtNode::Internal { children } => {
                let quads = rect.quadrants();
                for qi in 0..4 {
                    stack.push((
                        children[qi],
                        path.child(Quadrant::from_index(qi)),
                        quads[qi],
                    ));
                }
            }
        }
    }

    // ---- Phase 2: leaf delete-compaction, all leaves at once. ----
    if !deletes.is_empty() {
        let occupied: Vec<usize> = (0..recs.len())
            .filter(|&ri| !recs[ri].lines.is_empty())
            .collect();
        if !occupied.is_empty() {
            let lengths: Vec<usize> = occupied.iter().map(|&ri| recs[ri].lines.len()).collect();
            let flat: Vec<SegId> = occupied
                .iter()
                .flat_map(|&ri| recs[ri].lines.iter().copied())
                .collect();
            let seg = Segments::from_lengths(&lengths).expect("occupied leaves are non-empty");
            let mut flags: Vec<bool> = machine.lease();
            machine.map_into(&flat, |id| delete_flag[id as usize], &mut flags);
            let layout = machine.delete_layout(&seg, &flags);
            // Compact and remap the survivors in the flat buffer itself.
            let mut remapped = flat;
            machine.apply_delete_in_place(&mut remapped, &layout);
            machine.map_in_place(&mut remapped, |id| new_id[id as usize]);
            machine.recycle(flags);
            let mut off = 0;
            for (k, &ri) in occupied.iter().enumerate() {
                let klen = layout.kept_per_segment[k];
                if klen != recs[ri].lines.len() {
                    recs[ri].changed = true;
                }
                recs[ri].lines = remapped[off..off + klen].to_vec();
                off += klen;
            }
            debug_assert_eq!(off, remapped.len());
        }
    }

    // ---- Phase 3: insert routing via the ×4 fanout kernel. ----
    if !batch.inserts.is_empty() {
        let mut lane_ins: Vec<u32> = (0..batch.inserts.len() as u32).collect();
        let mut lane_node: Vec<usize> = vec![0; lane_ins.len()];
        let mut lane_rect: Vec<Rect> = vec![world; lane_ins.len()];
        loop {
            // The routing descent is lockstep like the driver's rounds:
            // the same abort site, one level per round.
            machine.check_fault(FaultSite::RoundAbort);
            machine.note_elementwise();
            let mut copies: Vec<u32> = Vec::with_capacity(lane_ins.len());
            for i in 0..lane_ins.len() {
                match tree.node(lane_node[i]) {
                    QtNode::Leaf { .. } => {
                        // Landed: retire the lane into the leaf's record.
                        let ri = rec_of_node[&lane_node[i]];
                        recs[ri].lines.push((kept as SegId) + lane_ins[i]);
                        recs[ri].changed = true;
                        copies.push(0);
                    }
                    QtNode::Internal { .. } => {
                        let s = &batch.inserts[lane_ins[i] as usize];
                        let quads = lane_rect[i].quadrants();
                        copies.push(quads.iter().filter(|q| seg_in_block(s, q)).count() as u32);
                    }
                }
            }
            if copies.iter().all(|&c| c == 0) {
                break;
            }
            let layout = machine.fanout_layout(&Segments::single(lane_ins.len()), &copies);
            let next_ins = machine.apply_fanout(&lane_ins, &layout);
            let mut next_node = machine.apply_fanout(&lane_node, &layout);
            let mut next_rect = machine.apply_fanout(&lane_rect, &layout);
            // Copy rank r addresses the r-th crossing child, elementwise.
            machine.note_elementwise();
            for i in 0..next_ins.len() {
                let s = &batch.inserts[next_ins[i] as usize];
                let quads = next_rect[i].quadrants();
                let QtNode::Internal { children } = tree.node(next_node[i]) else {
                    unreachable!("fanned-out lanes sit on internal nodes");
                };
                let mut r = layout.rank[i];
                let mut chosen = None;
                for (qi, quad) in quads.iter().enumerate() {
                    if seg_in_block(s, quad) {
                        if r == 0 {
                            chosen = Some(qi);
                            break;
                        }
                        r -= 1;
                    }
                }
                let qi = chosen.expect("rank addresses a crossing child");
                next_node[i] = children[qi];
                next_rect[i] = quads[qi];
            }
            lane_ins = next_ins;
            lane_node = next_node;
            lane_rect = next_rect;
            machine.bump_rounds();
        }
    }

    // ---- Phase 4: top-down merge sweep over the affected subtree. ----
    let mut merge_rounds = 0;
    let mut collapsed = 0;
    if recs.len() > 1 {
        let foot_all: Vec<u32> = (0..footprint.len() as u32).collect();
        let all_members: Vec<usize> = (0..recs.len()).collect();
        let mut policy = MergeSweepPolicy {
            recs: &mut recs,
            segs,
            footprint: &footprint,
            decide,
            frontier: vec![MergeCandidate {
                path: NodePath::ROOT,
                rect: world,
                members: all_members,
                foot: foot_all,
            }],
            unions: Vec::new(),
            seen: Vec::new(),
            stamp: 0,
            collapsed: 0,
        };
        merge_rounds = RoundDriver::run(machine, &mut policy);
        collapsed = policy.collapsed;
    }

    // ---- Phase 5: split repair over the changed leaves. ----
    let repair: Vec<usize> = (0..recs.len())
        .filter(|&ri| !recs[ri].dead && recs[ri].changed && !recs[ri].lines.is_empty())
        .collect();
    let mut split_rounds = 0;
    let mut new_truncated = 0;
    let mut repaired: Vec<LeafRecord> = Vec::new();
    if !repair.is_empty() {
        let lengths: Vec<usize> = repair.iter().map(|&ri| recs[ri].lines.len()).collect();
        let line: Vec<SegId> = repair
            .iter()
            .flat_map(|&ri| recs[ri].lines.iter().copied())
            .collect();
        let rect: Vec<Rect> = repair
            .iter()
            .flat_map(|&ri| std::iter::repeat(recs[ri].rect).take(recs[ri].lines.len()))
            .collect();
        let nodes: Vec<ActiveNode> = repair
            .iter()
            .map(|&ri| ActiveNode {
                path: recs[ri].path,
                rect: recs[ri].rect,
            })
            .collect();
        let state = LineProcSet {
            line,
            rect,
            seg: Segments::from_lengths(&lengths).expect("repair records are non-empty"),
            nodes,
        };
        let mut policy = QuadSplitPolicy::from_frontier(state, segs, max_depth, decide)
            .expect("repair frontier is non-empty");
        split_rounds = RoundDriver::run(machine, &mut policy);
        let out = policy.into_outcome(split_rounds);
        new_truncated = out.truncated;
        repaired = out.leaves;
        for &ri in &repair {
            recs[ri].dead = true;
        }
    }

    // ---- Reassemble. ----
    let mut final_leaves: Vec<LeafRecord> = recs
        .into_iter()
        .filter(|r| !r.dead && !r.lines.is_empty())
        .map(|r| LeafRecord {
            path: r.path,
            rect: r.rect,
            lines: r.lines,
        })
        .collect();
    final_leaves.extend(repaired);
    *tree = DpQuadtree::assemble(
        world,
        final_leaves,
        tree.rounds() + merge_rounds + split_rounds,
        tree.truncated() + new_truncated,
    );

    UpdateOutcome {
        deleted: deletes.len(),
        inserted: batch.inserts.len(),
        merge_rounds,
        split_rounds,
        collapsed,
    }
}

/// [`batch_update`] specialized to the bucket PMR quadtree's capacity
/// decision (paper Sec. 5.2) — the service layer's index family.
pub fn batch_update_bucket_pmr(
    machine: &Machine,
    tree: &mut DpQuadtree,
    segs: &mut Vec<LineSeg>,
    batch: &UpdateBatch,
    capacity: usize,
    max_depth: usize,
) -> UpdateOutcome {
    assert!(capacity >= 1, "bucket capacity must be at least 1");
    let mut decide = |m: &Machine, st: &LineProcSet, _segs: &[LineSeg]| {
        crate::bucket_pmr::bucket_pmr_decision(m, st, capacity)
    };
    batch_update(machine, tree, segs, batch, max_depth, &mut decide)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_pmr::build_bucket_pmr;
    use crate::pm1::pm1_decision;
    use crate::pm_family::{pm2_decision, pm3_decision};
    use dp_geom::Point;
    use scan_model::Backend;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn bundle() -> Vec<LineSeg> {
        vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            LineSeg::from_coords(1.0, 2.0, 6.0, 2.0),
            LineSeg::from_coords(3.0, 1.0, 3.0, 6.0),
            LineSeg::from_coords(0.0, 7.0, 2.0, 7.0),
        ]
    }

    /// Structural signature: every non-empty leaf as (depth, block corner,
    /// sorted line ids).
    fn signature(t: &DpQuadtree) -> Vec<(usize, (u64, u64), Vec<SegId>)> {
        let mut sig = Vec::new();
        t.for_each_leaf(|rect, depth, ids| {
            if !ids.is_empty() {
                let mut ids = ids.to_vec();
                ids.sort_unstable();
                sig.push((depth, (rect.min.x.to_bits(), rect.min.y.to_bits()), ids));
            }
        });
        sig.sort();
        sig
    }

    fn assert_equals_bulk(m: &Machine, t: &DpQuadtree, segs: &[LineSeg], cap: usize, depth: usize) {
        let bulk = build_bucket_pmr(m, t.world(), segs, cap, depth);
        assert_eq!(signature(t), signature(&bulk));
        assert_eq!(
            t.window_query(&t.world(), segs),
            bulk.window_query(&bulk.world(), segs)
        );
    }

    #[test]
    fn empty_batch_is_identity() {
        for m in machines() {
            let mut segs = bundle();
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let before = signature(&t);
            let out = batch_update_bucket_pmr(&m, &mut t, &mut segs, &UpdateBatch::default(), 2, 6);
            assert_eq!(out, UpdateOutcome::default());
            assert_eq!(signature(&t), before);
        }
    }

    #[test]
    fn insert_into_empty_tree_matches_bulk() {
        for m in machines() {
            let mut segs: Vec<LineSeg> = Vec::new();
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let out = batch_update_bucket_pmr(
                &m,
                &mut t,
                &mut segs,
                &UpdateBatch::inserting(bundle()),
                2,
                6,
            );
            assert_eq!(out.inserted, 5);
            assert_eq!(segs, bundle());
            assert_equals_bulk(&m, &t, &segs, 2, 6);
        }
    }

    #[test]
    fn delete_everything_collapses_to_empty_root() {
        for m in machines() {
            let mut segs = bundle();
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let out = batch_update_bucket_pmr(
                &m,
                &mut t,
                &mut segs,
                &UpdateBatch::deleting((0..5).collect()),
                2,
                6,
            );
            assert_eq!(out.deleted, 5);
            assert!(segs.is_empty());
            assert_eq!(t.stats().nodes, 1);
            assert_equals_bulk(&m, &t, &segs, 2, 6);
        }
    }

    #[test]
    fn mixed_batch_with_id_remap_matches_bulk() {
        for m in machines() {
            let mut segs = bundle();
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let batch = UpdateBatch {
                inserts: vec![
                    LineSeg::from_coords(6.5, 6.5, 7.5, 7.5),
                    LineSeg::from_coords(0.5, 0.5, 0.5, 3.5),
                ],
                deletes: vec![1, 3, 3], // duplicate delete tolerated
            };
            let out = batch_update_bucket_pmr(&m, &mut t, &mut segs, &batch, 2, 6);
            assert_eq!(out.deleted, 2);
            assert_eq!(out.inserted, 2);
            let expect: Vec<LineSeg> = vec![
                bundle()[0],
                bundle()[2],
                bundle()[4],
                batch.inserts[0],
                batch.inserts[1],
            ];
            assert_eq!(segs, expect);
            assert_equals_bulk(&m, &t, &segs, 2, 6);
        }
    }

    #[test]
    fn interleaved_batches_match_one_bulk_build() {
        // Several rounds of inserts and deletes, checked after each batch
        // — including a batch that both inserts and deletes.
        for m in machines() {
            let mut segs: Vec<LineSeg> = Vec::new();
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let b = bundle();
            let batches = vec![
                UpdateBatch::inserting(vec![b[0], b[1]]),
                UpdateBatch {
                    inserts: vec![b[2], b[3]],
                    deletes: vec![0],
                },
                UpdateBatch::default(),
                UpdateBatch {
                    inserts: vec![b[4], b[0]],
                    deletes: vec![1, 2],
                },
            ];
            for batch in &batches {
                batch_update_bucket_pmr(&m, &mut t, &mut segs, batch, 2, 6);
                assert_equals_bulk(&m, &t, &segs, 2, 6);
            }
            assert_eq!(segs.len(), 3);
        }
    }

    #[test]
    fn duplicate_geometry_inserts_match_bulk() {
        // Inserting a segment geometrically identical to an existing one
        // must behave like the bulk build of the multiset.
        for m in machines() {
            let mut segs = bundle();
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let batch = UpdateBatch::inserting(vec![bundle()[0], bundle()[0]]);
            batch_update_bucket_pmr(&m, &mut t, &mut segs, &batch, 2, 6);
            assert_eq!(segs.len(), 7);
            assert_equals_bulk(&m, &t, &segs, 2, 6);
        }
    }

    #[test]
    fn deletion_merges_deep_structure_back() {
        // Three lines on a shared vertex force deep subdivision (paper
        // Fig. 4); deleting two of them must collapse the region.
        for m in machines() {
            let mut segs = vec![
                LineSeg::from_coords(1.0, 6.0, 0.0, 7.0),
                LineSeg::from_coords(1.0, 6.0, 3.0, 7.0),
                LineSeg::from_coords(1.0, 6.0, 6.0, 2.0),
            ];
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 5);
            assert!(t.stats().height >= 3);
            let out = batch_update_bucket_pmr(
                &m,
                &mut t,
                &mut segs,
                &UpdateBatch::deleting(vec![0, 1]),
                2,
                5,
            );
            assert!(out.collapsed > 0, "no records collapsed: {out:?}");
            assert_equals_bulk(&m, &t, &segs, 2, 5);
            assert_eq!(t.stats().height, 0, "single survivor fits the root");
        }
    }

    #[test]
    fn insertion_splits_overflowing_leaves() {
        for m in machines() {
            let mut segs = vec![LineSeg::from_coords(1.0, 1.0, 2.0, 1.0)];
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            assert_eq!(t.stats().height, 0);
            let batch = UpdateBatch::inserting(vec![
                LineSeg::from_coords(1.0, 1.5, 2.0, 1.5),
                LineSeg::from_coords(1.0, 2.0, 2.0, 2.0),
                LineSeg::from_coords(5.0, 5.0, 6.0, 5.0),
            ]);
            let out = batch_update_bucket_pmr(&m, &mut t, &mut segs, &batch, 2, 6);
            assert!(out.split_rounds > 0, "overflowing leaf must split");
            assert_equals_bulk(&m, &t, &segs, 2, 6);
        }
    }

    #[test]
    fn updates_preserve_query_surface() {
        // Point, nearest and window queries all agree with brute force
        // after a mixed batch.
        for m in machines() {
            let mut segs = bundle();
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let batch = UpdateBatch {
                inserts: vec![LineSeg::from_coords(6.0, 1.0, 7.0, 1.0)],
                deletes: vec![2],
            };
            batch_update_bucket_pmr(&m, &mut t, &mut segs, &batch, 2, 6);
            let q = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
            let brute: Vec<SegId> = (0..segs.len() as SegId)
                .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], &q).is_some())
                .collect();
            assert_eq!(t.window_query(&q, &segs), brute);
            let p = Point::new(6.5, 1.0);
            let (id, _) = t.nearest(p, &segs).unwrap();
            assert_eq!(id, 4, "the routed insert is nearest to {p:?}");
            let probe = t.point_query(Point::new(6.5, 1.0));
            assert!(probe.contains(&4), "{probe:?}");
        }
    }

    #[test]
    fn truncated_count_accumulates_at_depth_bound() {
        for m in machines() {
            let mut segs = vec![
                LineSeg::from_coords(1.0, 6.0, 0.0, 7.0),
                LineSeg::from_coords(1.0, 6.0, 3.0, 7.0),
            ];
            let mut t = build_bucket_pmr(&m, world(), &segs, 2, 3);
            assert_eq!(t.truncated(), 0);
            // A third line on the shared vertex overflows the max-depth
            // bucket, exactly like the bulk build of Fig. 38.
            let batch = UpdateBatch::inserting(vec![LineSeg::from_coords(1.0, 6.0, 6.0, 2.0)]);
            batch_update_bucket_pmr(&m, &mut t, &mut segs, &batch, 2, 3);
            assert!(t.truncated() >= 1);
            assert_equals_bulk(&m, &t, &segs, 2, 3);
        }
    }

    #[test]
    fn pm_families_update_to_bulk_shape() {
        // The engine is generic over the split decision: PM₁, PM₂ and PM₃
        // updates must equal their bulk builds too.
        type DecideFn = fn(&Machine, &LineProcSet, &[LineSeg]) -> Vec<bool>;
        let families: Vec<(&str, DecideFn)> = vec![
            ("pm1", pm1_decision),
            ("pm2", pm2_decision),
            ("pm3", pm3_decision),
        ];
        for m in machines() {
            for (name, decision) in &families {
                let mut segs = vec![bundle()[0], bundle()[1], bundle()[4]];
                let mut decide =
                    |mm: &Machine, st: &LineProcSet, ss: &[LineSeg]| decision(mm, st, ss);
                let built = crate::lineproc::run_quad_build(&m, world(), &segs, 6, &mut decide);
                let mut t = DpQuadtree::from_outcome(world(), built);
                let batch = UpdateBatch {
                    inserts: vec![bundle()[2], bundle()[3]],
                    deletes: vec![0],
                };
                batch_update(&m, &mut t, &mut segs, &batch, 6, &mut decide);
                let bulk_out = crate::lineproc::run_quad_build(&m, world(), &segs, 6, &mut decide);
                let bulk = DpQuadtree::from_outcome(world(), bulk_out);
                assert_eq!(signature(&t), signature(&bulk), "family {name}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_delete_rejected() {
        let m = Machine::sequential();
        let mut segs = bundle();
        let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
        batch_update_bucket_pmr(
            &m,
            &mut t,
            &mut segs,
            &UpdateBatch::deleting(vec![99]),
            2,
            6,
        );
    }

    #[test]
    #[should_panic(expected = "outside the half-open world")]
    fn out_of_world_insert_rejected() {
        let m = Machine::sequential();
        let mut segs = bundle();
        let mut t = build_bucket_pmr(&m, world(), &segs, 2, 6);
        let batch = UpdateBatch::inserting(vec![LineSeg::from_coords(0.0, 0.0, 8.0, 8.0)]);
        batch_update_bucket_pmr(&m, &mut t, &mut segs, &batch, 2, 6);
    }
}
