//! Dominance/skyline aggregation over point sets — ROADMAP item 4(a),
//! after Sroka & Tyszkiewicz (PAPERS.md): aggregation over dominated
//! points falls out of exactly the primitives this repo already has —
//! sort, segmented scan, zip, and the variable-arity flat-map
//! ([`scan_model::Machine::flat_map`]) that generalizes the paper's
//! cloning kernel.
//!
//! ## Semantics
//!
//! All operators use **closed max-dominance**: point `q` dominates point
//! `p` iff `q.x >= p.x`, `q.y >= p.y`, and the inequality is strict in at
//! least one coordinate. Two points at identical coordinates dominate
//! each other in neither direction (both survive a skyline). The
//! *dominated set* of a query `q` is `{p : p.x <= q.x && p.y <= q.y}` —
//! the closed lower-left quadrant, including points on the boundary and
//! at `q` itself.
//!
//! Coordinates must be finite; the service layer validates requests
//! before they reach this module.
//!
//! ## Pipelines
//!
//! * [`skyline`] — one global sort by `(x desc, y desc)`, one exclusive
//!   unsegmented max-scan of the sorted `y` lane, two broadcast scans
//!   over the equal-`x` groups, and one flat-map compaction of the
//!   surviving ids. O(1) primitives after the sort, on both backends.
//! * [`dominance_agg`] — a bottom-up CDQ-style merge: after one global
//!   sort by `(x asc, points-before-queries)`, round `k` pairs adjacent
//!   index ranges of length `2^k` and lets the left half's *points*
//!   contribute to the right half's *queries* through one per-pair
//!   `y`-sort and one 3-lane fused segmented scan (`Sum` count, `Sum`
//!   weight, `Max` weight). Each (point, query) pair with the point at
//!   or below-left of the query meets exactly once — at the round of the
//!   highest differing bit of their sorted positions — so `ceil(log2 n)`
//!   rounds of O(1) primitives each cover every dominated pair exactly
//!   once. Every round records a [`scan_model::RoundTrace`] and checks
//!   [`FaultSite::SkylineAbort`], so the crash harness can kill a build
//!   at any round boundary.
//! * [`Staircase`] — the servable per-shard structure: the skyline
//!   frozen in `x`-ascending order (its `y` lane is then non-increasing,
//!   which is what makes it a staircase) with prefix count/weight
//!   tables. The staircase points dominated by a query form one
//!   contiguous run (an `x <= q.x` prefix intersected with a `y <= q.y`
//!   suffix of it), so count and weight-sum answer in O(log n) binary
//!   searches; max-weight scans the run (documented trade-off — a
//!   sparse-table would buy O(1) at 2× memory, not yet needed at
//!   skyline sizes).

use crate::SegId;
use dp_geom::LineSeg;
use scan_model::ops::Max;
use scan_model::{Direction, FaultSite, FusedOp, Machine, RoundTrace, ScanKind, Segments};
use std::time::Instant;

/// One input point for the dominance pipelines: an id the caller can map
/// back to its domain object, coordinates, and a non-negative integer
/// weight (see [`dominance_weight`] for the service's fixed-point
/// segment-length weight).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DomPoint {
    /// Caller-side identifier carried through sorts and compactions.
    pub id: SegId,
    /// X coordinate (must be finite).
    pub x: f64,
    /// Y coordinate (must be finite).
    pub y: f64,
    /// Aggregation weight.
    pub w: u64,
}

/// Aggregates over a dominated point set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DomAgg {
    /// Number of dominated points.
    pub count: u64,
    /// Sum of dominated points' weights.
    pub sum: u64,
    /// Maximum dominated weight (0 when the dominated set is empty).
    pub max: u64,
}

/// The service's canonical point weight: a line segment's length in
/// fixed-point 1/1024 units. Integer weights keep the scan lanes exact
/// (`u64` `Sum`/`Max` are associative bit-for-bit on every backend;
/// float addition would not be reorder-safe under blocked scans).
pub fn dominance_weight(seg: &LineSeg) -> u64 {
    (seg.length() * 1024.0).round() as u64
}

/// Extracts the skyline (maximal points under closed dominance): every
/// point not dominated by any other input point. Returns the surviving
/// ids in pipeline order (`x` descending, ties `y` descending then input
/// order); callers wanting a canonical set order sort the ids.
///
/// Mechanics: one global sort, one exclusive unsegmented `Max` scan of
/// the sorted `y` lane (each lane sees the best `y` among all strictly
/// better-`x` or earlier points), two broadcast scans over the equal-`x`
/// groups (the group head's exclusive value is the best `y` of *strictly
/// greater* `x`; the group max identifies within-group survivors), and
/// one flat-map compaction of the surviving ids — O(1) primitives after
/// the sort.
pub fn skyline(machine: &Machine, points: &[DomPoint]) -> Vec<SegId> {
    machine.check_fault(FaultSite::SkylineAbort);
    let n = points.len();
    if n == 0 {
        return Vec::new();
    }
    let started = Instant::now();
    let before = machine.stats();

    let all = Segments::single(n);
    let xs: Vec<f64> = machine.map_points(points, |p| p.x);
    let ys: Vec<f64> = machine.map_points(points, |p| p.y);
    let ids: Vec<SegId> = machine.map_points(points, |p| p.id);

    // Sort by x descending, y descending, stable.
    let keys: Vec<(f64, f64)> = machine.zip_map(&xs, &ys, |x, y| (x, y));
    let order = machine.segmented_sort_perm(&all, &keys, |a, b| {
        b.0.total_cmp(&a.0).then_with(|| b.1.total_cmp(&a.1))
    });
    let xs_s = machine.gather(&xs, &order);
    let ys_s = machine.gather(&ys, &order);
    let ids_s = machine.gather(&ids, &order);

    // Equal-x group boundaries: lane 0, plus every lane whose x differs
    // from its left neighbour (one elementwise pass over shifted lanes).
    machine.note_elementwise();
    let mut group_flags = vec![true; n];
    for i in 1..n {
        group_flags[i] = xs_s[i] != xs_s[i - 1];
    }
    let groups = Segments::from_flags(group_flags).expect("group flags start at lane 0");

    // ex_all[i] = max y over sorted lanes 0..i (identity -inf at lane 0):
    // at a group head this is the best y among all strictly-greater-x
    // points, which is exactly the closed-dominance threat from outside
    // the group.
    let ex_all = machine.up_scan(&ys_s, Max, ScanKind::Exclusive);
    let head_ex = machine.broadcast_first(&ex_all, &groups);
    // Within a group (equal x), only the group's max-y lanes survive;
    // coordinate duplicates of the max all survive (neither dominates).
    let gmax = machine.broadcast_first(&ys_s, &groups);

    let survive_out = machine.zip_map(&ys_s, &head_ex, |y, t| u64::from(y > t));
    let survive_in = machine.zip_map(&ys_s, &gmax, |y, g| u64::from(y == g));
    let counts: Vec<u32> = machine.zip_map(&survive_out, &survive_in, |a, b| (a * b) as u32);

    // Compact the surviving ids with the generalized flat-map (counts of
    // 0/1 make it the paper's "concentrate").
    let (out, _layout) = machine.flat_map(&all, &ids_s, &counts, |id, _rank| id);

    let delta = machine.stats().since(&before);
    machine.record_round_trace(RoundTrace {
        round: 0,
        active_elements: n,
        active_nodes: groups.num_segments(),
        nodes_split: 0,
        scans: delta.scans,
        scan_passes: delta.scan_passes,
        elementwise: delta.elementwise,
        permutes: delta.permutes,
        arena_high_water_bytes: machine.arena_high_water_bytes(),
        wall_nanos: started.elapsed().as_nanos() as u64,
        blocked_passes: delta.blocked_passes,
        bytes_moved: delta.bytes_moved,
        inplace_reuses: delta.inplace_reuses,
        block_bytes: machine.block_bytes(),
    });
    out
}

/// Computes, for every query point, the [`DomAgg`] aggregates over the
/// input points it dominates (closed lower-left quadrant — boundary
/// points and a point exactly at the query both count). Results align
/// with `queries` by index.
///
/// Mechanics: points and queries are merged into one lane set sorted by
/// `(x asc, points-before-queries)`. Round `k` pairs adjacent sorted
/// ranges of length `2^k`; within each pair the *left* half's points
/// contribute and the *right* half's queries receive, which covers each
/// (point at-or-left-of query) pair exactly once across `ceil(log2 n)`
/// rounds — the pair meets at the round of the highest differing bit of
/// their sorted positions, left/right halves resolved by that bit. One
/// per-pair `y`-sort (points before queries on ties, encoding the closed
/// `y <= q.y` bound) and one 3-lane fused inclusive scan (`Sum` count,
/// `Sum` weight, `Max` weight) deliver each query its round's
/// contribution; accumulators are masked to receiver lanes so left-half
/// query slots stay intact for later rounds. O(1) primitives per round;
/// every round checks [`FaultSite::SkylineAbort`], bumps the machine's
/// round counter and records a [`scan_model::RoundTrace`].
pub fn dominance_agg(
    machine: &Machine,
    points: &[DomPoint],
    queries: &[(f64, f64)],
) -> Vec<DomAgg> {
    let n_q = queries.len();
    if n_q == 0 {
        return Vec::new();
    }
    if points.is_empty() {
        return vec![DomAgg::default(); n_q];
    }
    let n = points.len() + n_q;
    let all = Segments::single(n);

    // Merged SoA lanes: kind 0 = point, 1 = query (the sort tie-break
    // that encodes the closed x bound), qidx maps a query lane back to
    // its slot in the caller's order.
    let mut xs: Vec<f64> = Vec::with_capacity(n);
    let mut ys: Vec<f64> = Vec::with_capacity(n);
    let mut kind: Vec<u64> = Vec::with_capacity(n);
    let mut ws: Vec<u64> = Vec::with_capacity(n);
    let mut qidx: Vec<u64> = Vec::with_capacity(n);
    machine.note_elementwise();
    for p in points {
        xs.push(p.x);
        ys.push(p.y);
        kind.push(0);
        ws.push(p.w);
        qidx.push(0);
    }
    for (qi, &(qx, qy)) in queries.iter().enumerate() {
        xs.push(qx);
        ys.push(qy);
        kind.push(1);
        ws.push(0);
        qidx.push(qi as u64);
    }

    // Global sort: x ascending, points before queries on equal x (the
    // closed `p.x <= q.x` bound), stable.
    let keys: Vec<(f64, u64)> = machine.zip_map(&xs, &kind, |x, k| (x, k));
    let order = machine.segmented_sort_perm(&all, &keys, |a, b| {
        a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1))
    });
    let ys_s = machine.gather(&ys, &order);
    let kind_s = machine.gather(&kind, &order);
    let ws_s = machine.gather(&ws, &order);
    let qidx_s = machine.gather(&qidx, &order);

    // Per-lane sorted position, used to derive the pair/half masks each
    // round with one elementwise op (a power-of-two L makes "left half
    // of my pair" the single bit test `i & L == 0`).
    let pos = machine.rank_in_segment(&all);
    // y-sort keys, fixed across rounds: y ascending, points before
    // queries on ties (the closed `p.y <= q.y` bound).
    let ykeys: Vec<(f64, u64)> = machine.zip_map(&ys_s, &kind_s, |y, k| (y, k));

    let mut acc_cnt = vec![0u64; n];
    let mut acc_sum = vec![0u64; n];
    let mut acc_max = vec![0u64; n];

    let mut l = 1usize;
    while l < n {
        machine.check_fault(FaultSite::SkylineAbort);
        let started = Instant::now();
        let before = machine.stats();
        let lbit = l as u64;

        // Pair segments of length 2L (the final pair may be partial).
        let pair_flags = machine.map(&pos, |i| i % (2 * lbit) == 0);
        let pairs = Segments::from_flags(pair_flags).expect("pair flags start at lane 0");

        // Contribution lanes: left-half points carry (weight, 1); all
        // other lanes carry the scan identities.
        let in_left = machine.map(&pos, |i| u64::from(i & lbit == 0));
        let contrib = machine.zip_map(&in_left, &kind_s, |lft, k| lft * (1 - k));
        let cw = machine.zip_map(&contrib, &ws_s, |c, w| c * w);

        // Per-pair y-sort, then one fused 3-lane inclusive scan: each
        // lane sees count / weight-sum / weight-max over contributions
        // with y at-or-below its own (ties resolved points-first by the
        // sort keys).
        let order_y = machine.segmented_sort_perm(&pairs, &ykeys, |a, b| {
            a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1))
        });
        let cw_y = machine.gather(&cw, &order_y);
        let cc_y = machine.gather(&contrib, &order_y);
        let scans = machine.scan_lanes(
            &[
                (&cw_y, FusedOp::Sum),
                (&cc_y, FusedOp::Sum),
                (&cw_y, FusedOp::Max),
            ],
            &pairs,
            Direction::Up,
            ScanKind::Inclusive,
        );
        // Scatter the scan results back to sorted-x positions.
        let sum_b = machine.permute(&scans[0], &order_y);
        let cnt_b = machine.permute(&scans[1], &order_y);
        let max_b = machine.permute(&scans[2], &order_y);

        // Only right-half queries receive this round. The mask is not
        // optional: left-half query lanes are receivers of *other*
        // rounds, and an unmasked accumulate would corrupt them.
        let recv = machine.zip_map(&in_left, &kind_s, |lft, k| (1 - lft) * k);
        let m_sum = machine.zip_map(&sum_b, &recv, |v, r| v * r);
        let m_cnt = machine.zip_map(&cnt_b, &recv, |v, r| v * r);
        let m_max = machine.zip_map(&max_b, &recv, |v, r| v * r);
        machine.zip_map_in_place(&mut acc_sum, &m_sum, |a, d| a + d);
        machine.zip_map_in_place(&mut acc_cnt, &m_cnt, |a, d| a + d);
        machine.zip_map_in_place(&mut acc_max, &m_max, |a, d| a.max(d));

        machine.bump_rounds();
        let delta = machine.stats().since(&before);
        machine.record_round_trace(RoundTrace {
            round: l.trailing_zeros() as usize,
            active_elements: n,
            active_nodes: pairs.num_segments(),
            nodes_split: 0,
            scans: delta.scans,
            scan_passes: delta.scan_passes,
            elementwise: delta.elementwise,
            permutes: delta.permutes,
            arena_high_water_bytes: machine.arena_high_water_bytes(),
            wall_nanos: started.elapsed().as_nanos() as u64,
            blocked_passes: delta.blocked_passes,
            bytes_moved: delta.bytes_moved,
            inplace_reuses: delta.inplace_reuses,
            block_bytes: machine.block_bytes(),
        });
        l *= 2;
    }

    // Extraction: route each query lane's accumulators back to the
    // caller's query order (one permutation-shaped pass).
    machine.note_permute();
    let mut out = vec![DomAgg::default(); n_q];
    for i in 0..n {
        if kind_s[i] == 1 {
            out[qidx_s[i] as usize] = DomAgg {
                count: acc_cnt[i],
                sum: acc_sum[i],
                max: acc_max[i],
            };
        }
    }
    out
}

/// The skyline frozen as a servable staircase: points in `x`-ascending
/// order with `y` non-increasing, plus prefix count/weight tables.
///
/// The staircase points dominated by a query `(qx, qy)` are exactly one
/// contiguous run: the `x <= qx` prefix intersected with the `y <= qy`
/// suffix of that prefix (non-increasing `y` makes the second filter a
/// suffix). [`Staircase::agg`] therefore answers count and weight-sum
/// with two binary searches and prefix-table lookups; max-weight scans
/// the run.
#[derive(Debug, Clone, PartialEq)]
pub struct Staircase {
    ids: Vec<SegId>,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ws: Vec<u64>,
    /// `pre_sum[i]` = sum of `ws[..i]`.
    pre_sum: Vec<u64>,
}

impl Staircase {
    /// Builds the staircase of `points`: runs [`skyline`] on the given
    /// machine, then freezes the survivors in `x`-ascending order.
    pub fn build(machine: &Machine, points: &[DomPoint]) -> Staircase {
        let sky = skyline(machine, points);
        // skyline returns x-descending pipeline order; reverse to
        // ascending. Duplicate-coordinate survivors stay adjacent.
        let by_id: std::collections::HashMap<SegId, &DomPoint> =
            points.iter().map(|p| (p.id, p)).collect();
        let mut ids: Vec<SegId> = sky;
        ids.reverse();
        let xs: Vec<f64> = ids.iter().map(|id| by_id[id].x).collect();
        let ys: Vec<f64> = ids.iter().map(|id| by_id[id].y).collect();
        let ws: Vec<u64> = ids.iter().map(|id| by_id[id].w).collect();
        let mut pre_sum = Vec::with_capacity(ids.len() + 1);
        pre_sum.push(0);
        for (i, &w) in ws.iter().enumerate() {
            pre_sum.push(pre_sum[i] + w);
        }
        Staircase {
            ids,
            xs,
            ys,
            ws,
            pre_sum,
        }
    }

    /// Number of staircase steps (skyline points).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// `true` when the staircase has no steps.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Skyline ids in `x`-ascending staircase order.
    pub fn ids(&self) -> &[SegId] {
        &self.ids
    }

    /// The contiguous index run of staircase points dominated by
    /// `(qx, qy)` (closed quadrant).
    pub fn dominated_run(&self, qx: f64, qy: f64) -> std::ops::Range<usize> {
        // x <= qx is a prefix of the x-ascending order.
        let hi = self.xs.partition_point(|&x| x <= qx);
        // Within it, y <= qy is a suffix (ys non-increasing).
        let lo = self.ys[..hi].partition_point(|&y| y > qy);
        lo..hi
    }

    /// Aggregates over the staircase points dominated by `(qx, qy)`:
    /// count and sum in O(log n), max by scanning the run.
    pub fn agg(&self, qx: f64, qy: f64) -> DomAgg {
        let run = self.dominated_run(qx, qy);
        DomAgg {
            count: (run.end - run.start) as u64,
            sum: self.pre_sum[run.end] - self.pre_sum[run.start],
            max: self.ws[run.clone()].iter().copied().max().unwrap_or(0),
        }
    }

    /// Whether `(x, y)` is dominated by (or coincides with) some
    /// staircase point — i.e. whether it would be redundant against this
    /// skyline. The best candidate is the leftmost step with `sx >= x`
    /// (it has the largest `y` among them).
    pub fn covers(&self, x: f64, y: f64) -> bool {
        let i = self.xs.partition_point(|&sx| sx < x);
        i < self.len() && self.ys[i] >= y
    }
}

/// Small helper used by the pipelines: an elementwise projection of the
/// (non-`Element`) `DomPoint` AoS into an SoA lane, charged as one
/// elementwise op.
trait MapPoints {
    fn map_points<U, F>(&self, points: &[DomPoint], f: F) -> Vec<U>
    where
        U: scan_model::ops::Element,
        F: Fn(&DomPoint) -> U;
}

impl MapPoints for Machine {
    fn map_points<U, F>(&self, points: &[DomPoint], f: F) -> Vec<U>
    where
        U: scan_model::ops::Element,
        F: Fn(&DomPoint) -> U,
    {
        self.note_elementwise();
        points.iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_model::Backend;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn pt(id: SegId, x: f64, y: f64, w: u64) -> DomPoint {
        DomPoint { id, x, y, w }
    }

    fn sky_sorted(m: &Machine, pts: &[DomPoint]) -> Vec<SegId> {
        let mut s = skyline(m, pts);
        s.sort_unstable();
        s
    }

    #[test]
    fn skyline_basic_shapes() {
        for m in machines() {
            // Empty and single.
            assert!(sky_sorted(&m, &[]).is_empty());
            assert_eq!(sky_sorted(&m, &[pt(7, 1.0, 1.0, 1)]), vec![7]);
            // A 3-step staircase dominating an interior point.
            let pts = [
                pt(0, 0.0, 3.0, 1),
                pt(1, 1.0, 2.0, 1),
                pt(2, 2.0, 1.0, 1),
                pt(3, 0.5, 0.5, 1),
            ];
            assert_eq!(sky_sorted(&m, &pts), vec![0, 1, 2]);
            // Coordinate duplicates: both survive.
            let dup = [pt(0, 1.0, 1.0, 1), pt(1, 1.0, 1.0, 1), pt(2, 0.0, 0.0, 1)];
            assert_eq!(sky_sorted(&m, &dup), vec![0, 1]);
            // Equal x, distinct y: only the max-y lane survives the group.
            let col = [pt(0, 1.0, 1.0, 1), pt(1, 1.0, 2.0, 1)];
            assert_eq!(sky_sorted(&m, &col), vec![1]);
        }
    }

    #[test]
    fn dominance_agg_counts_closed_quadrant() {
        for m in machines() {
            let pts = [
                pt(0, 0.0, 0.0, 5),
                pt(1, 1.0, 1.0, 7),
                pt(2, 2.0, 2.0, 11),
                pt(3, 1.0, 3.0, 13),
            ];
            // Query exactly on point 1: closed quadrant includes it.
            let aggs = dominance_agg(&m, &pts, &[(1.0, 1.0), (2.0, 2.0), (-1.0, -1.0)]);
            assert_eq!(
                aggs[0],
                DomAgg {
                    count: 2,
                    sum: 12,
                    max: 7
                }
            );
            assert_eq!(
                aggs[1],
                DomAgg {
                    count: 3,
                    sum: 23,
                    max: 11
                }
            );
            assert_eq!(aggs[2], DomAgg::default());
        }
    }

    #[test]
    fn staircase_agg_matches_run_scan() {
        for m in machines() {
            let pts = [
                pt(0, 0.0, 3.0, 2),
                pt(1, 1.0, 2.0, 9),
                pt(2, 2.0, 1.0, 4),
                pt(3, 0.5, 0.5, 100),
            ];
            let st = Staircase::build(&m, &pts);
            assert_eq!(st.ids(), &[0, 1, 2]);
            // Query dominating steps 1 and 2 but not 0.
            let a = st.agg(2.5, 2.5);
            assert_eq!(
                a,
                DomAgg {
                    count: 2,
                    sum: 13,
                    max: 9
                }
            );
            assert!(st.covers(0.5, 0.5));
            assert!(!st.covers(3.0, 0.5));
        }
    }

    #[test]
    fn dominance_rounds_are_logarithmic() {
        let m = Machine::sequential();
        let pts: Vec<DomPoint> = (0..100)
            .map(|i| pt(i, i as f64, (i * 7 % 100) as f64, 1))
            .collect();
        let queries: Vec<(f64, f64)> = (0..28).map(|i| (i as f64, i as f64)).collect();
        let before_rounds = m.stats().rounds;
        let _ = dominance_agg(&m, &pts, &queries);
        let rounds = m.stats().rounds - before_rounds;
        // n = 128 lanes -> exactly 7 merge rounds.
        assert_eq!(rounds, 7);
    }
}
