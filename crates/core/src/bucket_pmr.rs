//! Data-parallel bucket PMR quadtree construction (paper Sec. 5.2).
//!
//! All lines are inserted simultaneously; per round, every node counts its
//! lines with the node capacity check (Sec. 4.4, Fig. 19) and subdivides
//! when the count exceeds the bucket capacity, via the two-stage node
//! split of Sec. 4.6 — cloning for axis-crossing lines, unshuffles to
//! regroup (Figs. 35–38). Subdivision stops at the maximal resolution:
//! such over-capacity max-depth buckets are legal (paper Fig. 38's node 9)
//! and reported through [`DpQuadtree::truncated`].
//!
//! The *bucket* variant is used precisely because its shape is independent
//! of insertion order — the classic PMR split-once rule is nondeterministic
//! under simultaneous insertion (paper Fig. 34).

use crate::lineproc::{run_quad_build, LineProcSet};
use crate::quadtree::DpQuadtree;
use dp_geom::{LineSeg, Rect};
use scan_model::Machine;

/// The bucket PMR split decision: node line count exceeds the capacity
/// (Sec. 4.4's capacity check).
pub fn bucket_pmr_decision(machine: &Machine, state: &LineProcSet, capacity: usize) -> Vec<bool> {
    // The per-round counts buffer is leased from the machine's scratch
    // arena, so repeated decision rounds stop allocating.
    let mut counts: Vec<u64> = machine.lease();
    machine.segment_counts_into(&state.seg, &mut counts);
    machine.note_elementwise();
    let out = counts.iter().map(|&c| c as usize > capacity).collect();
    machine.recycle(counts);
    out
}

/// Builds a bucket PMR quadtree with bucket `capacity` and maximal
/// subdivision depth `max_depth` (paper Sec. 5.2).
///
/// # Panics
///
/// Panics if `capacity == 0` or any segment endpoint lies outside the
/// half-open `world`.
pub fn build_bucket_pmr(
    machine: &Machine,
    world: Rect,
    segs: &[LineSeg],
    capacity: usize,
    max_depth: usize,
) -> DpQuadtree {
    assert!(capacity >= 1, "bucket capacity must be at least 1");
    let mut decide =
        |m: &Machine, st: &LineProcSet, _segs: &[LineSeg]| bucket_pmr_decision(m, st, capacity);
    let out = run_quad_build(machine, world, segs, max_depth, &mut decide);
    DpQuadtree::from_outcome(world, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geom::Point;
    use scan_model::Backend;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn bundle() -> Vec<LineSeg> {
        vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            LineSeg::from_coords(1.0, 2.0, 6.0, 2.0),
            LineSeg::from_coords(3.0, 1.0, 3.0, 6.0),
            LineSeg::from_coords(0.0, 7.0, 2.0, 7.0),
        ]
    }

    #[test]
    fn capacity_respected_below_max_depth() {
        for m in machines() {
            let segs = bundle();
            let t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            assert_eq!(t.truncated(), 0);
            t.for_each_leaf(|_, depth, ids| {
                if depth < 6 {
                    assert!(ids.len() <= 2, "bucket over capacity: {ids:?}");
                }
            });
            assert_eq!(t.window_query(&world(), &segs), vec![0, 1, 2, 3, 4]);
        }
    }

    #[test]
    fn matches_sequential_bucket_pmr_shape() {
        // The defining property of the bucket PMR quadtree is that bulk
        // and incremental construction agree: the shape depends only on
        // the final segment set.
        for m in machines() {
            let segs = bundle();
            let par = build_bucket_pmr(&m, world(), &segs, 2, 6);
            let seq = seq_spatial::bucket_pmr::BucketPmrTree::build(world(), &segs, 2, 6);
            // Compare leaf signatures: (depth, sorted ids, block corner).
            let mut sig_par = Vec::new();
            par.for_each_leaf(|rect, depth, ids| {
                if !ids.is_empty() {
                    let mut ids = ids.to_vec();
                    ids.sort_unstable();
                    sig_par.push((depth, ids, (rect.min.x.to_bits(), rect.min.y.to_bits())));
                }
            });
            sig_par.sort();
            let sig_seq: Vec<_> = seq
                .shape_signature()
                .into_iter()
                .filter(|(_, ids, _)| !ids.is_empty())
                .collect();
            assert_eq!(sig_par, sig_seq);
        }
    }

    #[test]
    fn shared_vertex_truncates_at_max_depth_fig4() {
        for m in machines() {
            // Three lines incident on one vertex with capacity 2: the
            // vertex block subdivides to the maximal depth and stays over
            // capacity (paper Fig. 4 / Fig. 38).
            let segs = vec![
                LineSeg::from_coords(1.0, 6.0, 0.0, 7.0),
                LineSeg::from_coords(1.0, 6.0, 3.0, 7.0),
                LineSeg::from_coords(1.0, 6.0, 6.0, 2.0),
            ];
            let t = build_bucket_pmr(&m, world(), &segs, 2, 3);
            assert!(t.truncated() >= 1);
            assert_eq!(t.stats().height, 3);
            let at_vertex = t.point_query(Point::new(1.0, 6.0));
            assert_eq!(at_vertex, vec![0, 1, 2]);
        }
    }

    #[test]
    fn rounds_grow_logarithmically() {
        // Paper Sec. 5.2: O(log n) subdivision stages. The example build
        // over the 5-segment bundle needs at most the max depth.
        for m in machines() {
            let segs = bundle();
            let t = build_bucket_pmr(&m, world(), &segs, 2, 6);
            assert!(t.rounds() >= 2 && t.rounds() <= 6, "rounds {}", t.rounds());
        }
    }

    #[test]
    fn capacity_one_and_large_capacity_edges() {
        for m in machines() {
            let segs = bundle();
            // Huge capacity: nothing splits.
            let t = build_bucket_pmr(&m, world(), &segs, 100, 6);
            assert_eq!(t.stats().nodes, 1);
            assert_eq!(t.rounds(), 0);
            // Capacity 1: every leaf below max depth has at most one line.
            let t1 = build_bucket_pmr(&m, world(), &segs, 1, 6);
            t1.for_each_leaf(|_, depth, ids| {
                if depth < 6 {
                    assert!(ids.len() <= 1);
                }
            });
        }
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        build_bucket_pmr(&Machine::sequential(), world(), &[], 0, 4);
    }
}
