//! Data-parallel construction of the other PM-family quadtrees, PM₂ and
//! PM₃ (Samet & Webber). The paper's Section 2.1 presents PM₁, the
//! strictest member; its split-decision machinery (Sec. 4.5) extends to
//! the whole family with two more scan compositions:
//!
//! * **PM₃** needs only the *one-vertex rule*: a node splits exactly when
//!   the minimum bounding box of its in-node endpoints is non-degenerate
//!   (two or more distinct vertex positions) — the same four min/max
//!   scans as Fig. 21.
//! * **PM₂** relaxes PM₁'s vertexless-block rule: several q-edges may
//!   share a vertexless block if they are all incident on one *common*
//!   vertex (outside the block). The common-vertex test is two candidate
//!   broadcasts (the first lane's endpoints, an upward copy-scan) plus
//!   two downward AND-scans — every line checks the candidates against
//!   its own endpoints.
//!
//! Both builds reuse the generic driver and two-stage node split, so the
//! family differs *only* in the decision functions below.

use crate::lineproc::{run_quad_build, LineProcSet};
use crate::pm1::{pm1_verdicts, Pm1Verdict};
use crate::quadtree::DpQuadtree;
use dp_geom::{LineSeg, Rect};
use scan_model::ops::{And, Max, Min};
use scan_model::{Machine, ScanKind};

/// Per-segment flag: do all lines of the segment share a common endpoint
/// (anywhere in the plane)? Computed with the candidate-broadcast + AND
/// scan composition described in the module docs.
fn segments_share_vertex(machine: &Machine, state: &LineProcSet, segs: &[LineSeg]) -> Vec<bool> {
    let seg = &state.seg;
    let n = seg.len();
    if n == 0 {
        return Vec::new();
    }
    // Each lane's own endpoints.
    let own: Vec<(f64, f64, f64, f64)> = machine.map(&state.line, |id| {
        let s = &segs[id as usize];
        (s.a.x, s.a.y, s.b.x, s.b.y)
    });
    // Broadcast the first lane's endpoints to the whole segment: the two
    // shared-vertex candidates.
    let candidates = machine.broadcast_first(&own, seg);
    // Elementwise candidate checks.
    let ok1: Vec<bool> = machine.zip_map(&own, &candidates, |o, c| {
        (o.0 == c.0 && o.1 == c.1) || (o.2 == c.0 && o.3 == c.1)
    });
    let ok2: Vec<bool> = machine.zip_map(&own, &candidates, |o, c| {
        (o.0 == c.2 && o.1 == c.3) || (o.2 == c.2 && o.3 == c.3)
    });
    // Downward AND scans deliver the per-segment verdicts at the heads.
    let all1 = machine.down_scan_seg(&ok1, seg, And, ScanKind::Inclusive);
    let all2 = machine.down_scan_seg(&ok2, seg, And, ScanKind::Inclusive);
    machine.note_elementwise();
    seg.starts().iter().map(|&h| all1[h] || all2[h]).collect()
}

/// The PM₂ split decision: PM₁'s verdicts, except that a vertexless node
/// with several lines is kept when the lines share a common vertex.
pub fn pm2_decision(machine: &Machine, state: &LineProcSet, segs: &[LineSeg]) -> Vec<bool> {
    let verdicts = pm1_verdicts(machine, state, segs);
    let sharing = segments_share_vertex(machine, state, segs);
    machine.note_elementwise();
    verdicts
        .into_iter()
        .zip(sharing)
        .map(|(v, share)| match v {
            Pm1Verdict::SplitNoVertexManyLines => !share,
            other => other.must_split(),
        })
        .collect()
}

/// The PM₃ split decision: split exactly when the node holds two or more
/// distinct vertex positions (non-degenerate endpoint MBB). Closed vertex
/// membership, matching PM₁.
pub fn pm3_decision(machine: &Machine, state: &LineProcSet, segs: &[LineSeg]) -> Vec<bool> {
    let seg = &state.seg;
    let lane_boxes: Vec<(f64, f64, f64, f64)> =
        machine.zip_map(&state.line, &state.rect, |id, r| {
            let s = &segs[id as usize];
            let mut bx = (
                f64::INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
            );
            for p in [s.a, s.b] {
                if r.contains(p) {
                    bx.0 = bx.0.min(p.x);
                    bx.1 = bx.1.min(p.y);
                    bx.2 = bx.2.max(p.x);
                    bx.3 = bx.3.max(p.y);
                }
            }
            bx
        });
    let xs_min: Vec<f64> = machine.map(&lane_boxes, |b| b.0);
    let ys_min: Vec<f64> = machine.map(&lane_boxes, |b| b.1);
    let xs_max: Vec<f64> = machine.map(&lane_boxes, |b| b.2);
    let ys_max: Vec<f64> = machine.map(&lane_boxes, |b| b.3);
    let lo_x = machine.down_scan_seg(&xs_min, seg, Min, ScanKind::Inclusive);
    let lo_y = machine.down_scan_seg(&ys_min, seg, Min, ScanKind::Inclusive);
    let hi_x = machine.down_scan_seg(&xs_max, seg, Max, ScanKind::Inclusive);
    let hi_y = machine.down_scan_seg(&ys_max, seg, Max, ScanKind::Inclusive);
    machine.note_elementwise();
    seg.starts()
        .iter()
        .map(|&h| {
            let any = lo_x[h].is_finite();
            any && (lo_x[h] < hi_x[h] || lo_y[h] < hi_y[h])
        })
        .collect()
}

/// Builds a PM₂ quadtree with all lines inserted simultaneously.
///
/// # Panics
///
/// Panics if any segment endpoint lies outside the half-open `world`.
pub fn build_pm2(machine: &Machine, world: Rect, segs: &[LineSeg], max_depth: usize) -> DpQuadtree {
    let mut decide = pm2_decision;
    let out = run_quad_build(machine, world, segs, max_depth, &mut decide);
    DpQuadtree::from_outcome(world, out)
}

/// Builds a PM₃ quadtree with all lines inserted simultaneously.
///
/// # Panics
///
/// Panics if any segment endpoint lies outside the half-open `world`.
pub fn build_pm3(machine: &Machine, world: Rect, segs: &[LineSeg], max_depth: usize) -> DpQuadtree {
    let mut decide = pm3_decision;
    let out = run_quad_build(machine, world, segs, max_depth, &mut decide);
    DpQuadtree::from_outcome(world, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pm1::build_pm1;
    use scan_model::Backend;
    use seq_spatial::pm23::{PmTree, PmVariant};

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn datasets() -> Vec<Vec<LineSeg>> {
        vec![
            // Tight fan: PM1 splits vertexless shared blocks, PM2 keeps.
            vec![
                LineSeg::from_coords(0.0, 1.0, 7.0, 1.5),
                LineSeg::from_coords(0.0, 1.0, 7.0, 2.5),
            ],
            // Star.
            vec![
                LineSeg::from_coords(4.5, 4.5, 7.0, 7.0),
                LineSeg::from_coords(4.5, 4.5, 1.0, 7.0),
                LineSeg::from_coords(4.5, 4.5, 4.5, 1.0),
            ],
            // Crossing diagonals (PM3-only friendly).
            vec![
                LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
                LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            ],
            // The paper dataset.
            dp_workloads::paper_dataset(),
        ]
    }

    #[test]
    fn dp_pm2_matches_sequential_shape() {
        for m in machines() {
            for segs in datasets() {
                let dp = build_pm2(&m, world(), &segs, 10);
                let sq = PmTree::build(world(), &segs, PmVariant::Pm2, 10);
                assert_eq!(dp.stats().nodes, sq.stats().nodes, "{segs:?}");
                assert_eq!(dp.stats().entries, sq.stats().entries);
            }
        }
    }

    #[test]
    fn dp_pm3_matches_sequential_shape() {
        for m in machines() {
            for segs in datasets() {
                let dp = build_pm3(&m, world(), &segs, 10);
                let sq = PmTree::build(world(), &segs, PmVariant::Pm3, 10);
                assert_eq!(dp.stats().nodes, sq.stats().nodes, "{segs:?}");
                assert_eq!(dp.stats().entries, sq.stats().entries);
            }
        }
    }

    #[test]
    fn family_strictness_ordering() {
        for m in machines() {
            for segs in datasets() {
                let n1 = build_pm1(&m, world(), &segs, 10).stats().nodes;
                let n2 = build_pm2(&m, world(), &segs, 10).stats().nodes;
                let n3 = build_pm3(&m, world(), &segs, 10).stats().nodes;
                assert!(n1 >= n2, "PM1 {n1} < PM2 {n2}");
                assert!(n2 >= n3, "PM2 {n2} < PM3 {n3}");
            }
        }
    }

    #[test]
    fn pm3_handles_crossings_without_truncation() {
        for m in machines() {
            let segs = vec![
                LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
                LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            ];
            let t3 = build_pm3(&m, world(), &segs, 10);
            assert_eq!(t3.truncated(), 0);
            let t1 = build_pm1(&m, world(), &segs, 10);
            assert!(t1.truncated() > 0);
        }
    }

    #[test]
    fn queries_still_exact() {
        for m in machines() {
            let segs = dp_workloads::paper_dataset();
            for build in [build_pm2, build_pm3] {
                let t = build(&m, world(), &segs, 8);
                assert_eq!(
                    t.window_query(&world(), &segs),
                    (0..9).collect::<Vec<u32>>()
                );
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let m = Machine::sequential();
        assert_eq!(build_pm2(&m, world(), &[], 8).stats().nodes, 1);
        assert_eq!(build_pm3(&m, world(), &[], 8).stats().nodes, 1);
    }
}
