//! Assembly of a pointer quadtree from the leaf records of a
//! data-parallel build, plus the query surface.
//!
//! The build driver ([`crate::lineproc::run_quad_build`]) emits non-empty
//! leaf blocks identified by root-to-leaf quadrant paths. [`DpQuadtree`]
//! materializes the full tree: every internal node has exactly four
//! children, with children that received no lines becoming empty leaves
//! (the PM₁ quadtree creates empty blocks eagerly — paper Sec. 2.1 and
//! Fig. 2's "eleven of which are empty").

use crate::lineproc::LeafRecord;
use crate::SegId;
use dp_geom::{LineSeg, Point, Rect};

/// A node of the assembled quadtree.
#[derive(Debug, Clone, PartialEq)]
pub enum QtNode {
    /// Internal node; children in NW, NE, SW, SE order.
    Internal {
        /// Child indices.
        children: [usize; 4],
    },
    /// Leaf block with the ids of the lines passing through it.
    Leaf {
        /// Line ids (q-edges of the block).
        lines: Vec<SegId>,
    },
}

/// A quadtree assembled from data-parallel build output.
#[derive(Debug, Clone, PartialEq)]
pub struct DpQuadtree {
    world: Rect,
    nodes: Vec<QtNode>,
    rounds: usize,
    truncated: usize,
}

/// Structure statistics of an assembled quadtree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QtStats {
    /// Total nodes.
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Leaves holding no lines.
    pub empty_leaves: usize,
    /// Longest root-to-leaf path.
    pub height: usize,
    /// Total q-edge entries across leaves.
    pub entries: usize,
    /// Largest leaf occupancy.
    pub max_leaf_occupancy: usize,
}

impl DpQuadtree {
    /// Assembles the tree from build output.
    ///
    /// # Panics
    ///
    /// Panics if two leaf records overlap (one is an ancestor of another)
    /// — that would indicate a build-driver bug.
    pub fn assemble(world: Rect, leaves: Vec<LeafRecord>, rounds: usize, truncated: usize) -> Self {
        let mut tree = DpQuadtree {
            world,
            nodes: vec![QtNode::Leaf { lines: Vec::new() }],
            rounds,
            truncated,
        };
        for leaf in leaves {
            tree.place_leaf(leaf);
        }
        tree
    }

    /// Assembles the tree from a [`crate::lineproc::run_quad_build`]
    /// outcome — the one emission path shared by every quadtree-family
    /// builder (PM₁ fused and unfused, PM₂, PM₃, bucket PMR).
    pub fn from_outcome(world: Rect, outcome: crate::lineproc::QuadBuildOutcome) -> Self {
        DpQuadtree::assemble(world, outcome.leaves, outcome.rounds, outcome.truncated)
    }

    fn place_leaf(&mut self, leaf: LeafRecord) {
        let mut at = 0usize;
        for q in leaf.path.quadrants() {
            // Ensure `at` is internal, then descend.
            let children = match &self.nodes[at] {
                QtNode::Internal { children } => *children,
                QtNode::Leaf { lines } => {
                    assert!(
                        lines.is_empty(),
                        "leaf record descends through an occupied leaf (overlapping records)"
                    );
                    let base = self.nodes.len();
                    for _ in 0..4 {
                        self.nodes.push(QtNode::Leaf { lines: Vec::new() });
                    }
                    let children = [base, base + 1, base + 2, base + 3];
                    self.nodes[at] = QtNode::Internal { children };
                    children
                }
            };
            at = children[q.index()];
        }
        match &mut self.nodes[at] {
            QtNode::Leaf { lines } => {
                assert!(lines.is_empty(), "two leaf records target the same block");
                *lines = leaf.lines;
            }
            QtNode::Internal { .. } => {
                panic!("leaf record targets an internal node (overlapping records)")
            }
        }
    }

    /// The world rectangle.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// Subdivision rounds the build took (paper's O(log n) stage count).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of leaves cut off by the depth bound while still wanting to
    /// split.
    pub fn truncated(&self) -> usize {
        self.truncated
    }

    /// Borrow a node (index 0 is the root).
    pub fn node(&self, i: usize) -> &QtNode {
        &self.nodes[i]
    }

    /// Total node count (internal + leaves).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Reassembles a tree from raw parts — the snapshot codec's decode
    /// path. The caller (same crate) is responsible for structural
    /// validity; queries on a malformed node vector may panic on an
    /// out-of-range child index, which is why the codec bounds-checks
    /// child indexes before calling this.
    pub(crate) fn from_raw_parts(
        world: Rect,
        nodes: Vec<QtNode>,
        rounds: usize,
        truncated: usize,
    ) -> Self {
        DpQuadtree {
            world,
            nodes,
            rounds,
            truncated,
        }
    }

    /// Ids stored in leaves intersecting `query`, deduplicated and
    /// sorted; no exact-geometry filter.
    pub fn window_candidates(&self, query: &Rect) -> Vec<SegId> {
        let mut out = Vec::new();
        let mut stack = vec![(0usize, self.world)];
        while let Some((idx, rect)) = stack.pop() {
            if !rect.intersects(query) {
                continue;
            }
            match &self.nodes[idx] {
                QtNode::Leaf { lines } => out.extend_from_slice(lines),
                QtNode::Internal { children } => {
                    let quads = rect.quadrants();
                    for q in 0..4 {
                        stack.push((children[q], quads[q]));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ids of lines that truly intersect `query` (exact filter over the
    /// candidates).
    pub fn window_query(&self, query: &Rect, segs: &[LineSeg]) -> Vec<SegId> {
        self.window_candidates(query)
            .into_iter()
            .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], query).is_some())
            .collect()
    }

    /// Ids in the unique leaf block containing `p` (sorted), or empty when
    /// `p` is outside the world.
    pub fn point_query(&self, p: Point) -> Vec<SegId> {
        if !self.world.contains_half_open(p) {
            return Vec::new();
        }
        let mut idx = 0usize;
        let mut rect = self.world;
        loop {
            match &self.nodes[idx] {
                QtNode::Leaf { lines } => {
                    let mut v = lines.clone();
                    v.sort_unstable();
                    return v;
                }
                QtNode::Internal { children } => {
                    let quads = rect.quadrants();
                    let q = (0..4)
                        .find(|&q| quads[q].contains_half_open(p))
                        .expect("half-open quadrants partition the block");
                    idx = children[q];
                    rect = quads[q];
                }
            }
        }
    }

    /// The nearest line to `p` by true segment distance (best-first block
    /// search). `None` for an empty tree.
    pub fn nearest(&self, p: Point, segs: &[LineSeg]) -> Option<(SegId, f64)> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        struct Item {
            dist2: f64,
            node: usize,
            rect: Rect,
        }
        impl PartialEq for Item {
            fn eq(&self, other: &Self) -> bool {
                self.dist2 == other.dist2
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                other.dist2.total_cmp(&self.dist2) // min-heap
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item {
            dist2: self.world.dist2_to_point(p),
            node: 0,
            rect: self.world,
        });
        let mut best: Option<(SegId, f64)> = None;
        while let Some(item) = heap.pop() {
            if let Some((_, d)) = best {
                if item.dist2 > d * d {
                    break;
                }
            }
            match &self.nodes[item.node] {
                QtNode::Leaf { lines } => {
                    for &id in lines {
                        let d = segs[id as usize].dist2_to_point(p).sqrt();
                        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                            best = Some((id, d));
                        }
                    }
                }
                QtNode::Internal { children } => {
                    let quads = item.rect.quadrants();
                    for q in 0..4 {
                        heap.push(Item {
                            dist2: quads[q].dist2_to_point(p),
                            node: children[q],
                            rect: quads[q],
                        });
                    }
                }
            }
        }
        best
    }

    /// Visits every leaf with its block rectangle and depth.
    pub fn for_each_leaf<F: FnMut(&Rect, usize, &[SegId])>(&self, mut f: F) {
        let mut stack = vec![(0usize, self.world, 0usize)];
        while let Some((idx, rect, depth)) = stack.pop() {
            match &self.nodes[idx] {
                QtNode::Leaf { lines } => f(&rect, depth, lines),
                QtNode::Internal { children } => {
                    let quads = rect.quadrants();
                    for q in 0..4 {
                        stack.push((children[q], quads[q], depth + 1));
                    }
                }
            }
        }
    }

    /// Structure statistics.
    pub fn stats(&self) -> QtStats {
        let mut s = QtStats {
            nodes: self.nodes.len(),
            ..QtStats::default()
        };
        self.for_each_leaf(|_, depth, lines| {
            s.leaves += 1;
            s.height = s.height.max(depth);
            s.entries += lines.len();
            s.max_leaf_occupancy = s.max_leaf_occupancy.max(lines.len());
            if lines.is_empty() {
                s.empty_leaves += 1;
            }
        });
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dp_geom::{NodePath, Quadrant};

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn leaf(path: NodePath, rect: Rect, lines: Vec<SegId>) -> LeafRecord {
        LeafRecord { path, rect, lines }
    }

    #[test]
    fn assemble_empty() {
        let t = DpQuadtree::assemble(world(), Vec::new(), 0, 0);
        let s = t.stats();
        assert_eq!(s.nodes, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.empty_leaves, 1);
        assert!(t.point_query(Point::new(1.0, 1.0)).is_empty());
    }

    #[test]
    fn assemble_fills_empty_siblings() {
        let quads = world().quadrants();
        let t = DpQuadtree::assemble(
            world(),
            vec![leaf(
                NodePath::ROOT.child(Quadrant::NW),
                quads[0],
                vec![0, 1],
            )],
            1,
            0,
        );
        let s = t.stats();
        assert_eq!(s.nodes, 5);
        assert_eq!(s.leaves, 4);
        assert_eq!(s.empty_leaves, 3);
        assert_eq!(s.height, 1);
        assert_eq!(t.point_query(Point::new(1.0, 7.0)), vec![0, 1]);
        assert!(t.point_query(Point::new(7.0, 1.0)).is_empty());
    }

    #[test]
    fn deep_leaf_creates_skeleton() {
        let path = NodePath::ROOT.child(Quadrant::SE).child(Quadrant::NE);
        let rect = world().quadrants()[3].quadrants()[1];
        let t = DpQuadtree::assemble(world(), vec![leaf(path, rect, vec![7])], 2, 0);
        let s = t.stats();
        assert_eq!(s.height, 2);
        assert_eq!(s.leaves, 7); // 3 empties at depth 1 + 4 at depth 2
        assert_eq!(t.point_query(Point::new(7.0, 3.0)), vec![7]);
    }

    #[test]
    #[should_panic(expected = "overlapping records")]
    fn overlapping_records_rejected() {
        let quads = world().quadrants();
        let nw = NodePath::ROOT.child(Quadrant::NW);
        DpQuadtree::assemble(
            world(),
            vec![
                leaf(nw, quads[0], vec![0]),
                leaf(nw.child(Quadrant::NE), quads[0].quadrants()[1], vec![1]),
            ],
            1,
            0,
        );
    }

    #[test]
    fn window_candidates_dedup_across_blocks() {
        let quads = world().quadrants();
        let t = DpQuadtree::assemble(
            world(),
            vec![
                leaf(NodePath::ROOT.child(Quadrant::SW), quads[2], vec![3]),
                leaf(NodePath::ROOT.child(Quadrant::SE), quads[3], vec![3, 4]),
            ],
            1,
            0,
        );
        assert_eq!(t.window_candidates(&world()), vec![3, 4]);
    }

    #[test]
    fn nearest_on_small_tree() {
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 2.0, 1.0),
            LineSeg::from_coords(6.0, 6.0, 7.0, 6.0),
        ];
        let quads = world().quadrants();
        let t = DpQuadtree::assemble(
            world(),
            vec![
                leaf(NodePath::ROOT.child(Quadrant::SW), quads[2], vec![0]),
                leaf(NodePath::ROOT.child(Quadrant::NE), quads[1], vec![1]),
            ],
            1,
            0,
        );
        let (id, d) = t.nearest(Point::new(1.0, 2.0), &segs).unwrap();
        assert_eq!(id, 0);
        assert_eq!(d, 1.0);
        let (id2, _) = t.nearest(Point::new(7.0, 7.0), &segs).unwrap();
        assert_eq!(id2, 1);
    }
}
