//! # dp-spatial — data-parallel spatial index construction
//!
//! A reproduction of *Hoel & Samet, "Data-Parallel Primitives for Spatial
//! Operations", ICPP 1995*: bulk construction of three spatial data
//! structures over 2-D line segment collections, expressed entirely in the
//! scan-model primitives of the [`scan_model`] vector machine —
//!
//! * [`pm1::build_pm1`] — the **PM₁ quadtree** (paper Sec. 5.1), via the
//!   vertex-based split decision of Sec. 4.5 and the two-stage node split
//!   of Sec. 4.6;
//! * [`bucket_pmr::build_bucket_pmr`] — the **bucket PMR quadtree** (paper
//!   Sec. 5.2), the insertion-order-independent PMR variant designed for
//!   simultaneous insertion;
//! * [`rtree::build_rtree`] — the **R-tree** (paper Sec. 5.3), with both
//!   node split selectors of Sec. 4.7: the O(1) mean-of-midpoints split
//!   and the O(log n) sorted-sweep minimal-overlap split.
//!
//! All three builds insert *every segment simultaneously*: one conceptual
//! processor per (segment, node) pair, iteratively subdivided with
//! cloning, unshuffling and segmented scans until every node satisfies its
//! structure's criterion. Because every operation routes through a
//! [`scan_model::Machine`], the builds run identically on the sequential
//! reference backend and the rayon-parallel backend, and their primitive
//! operation counts (the paper's complexity currency) are observable via
//! [`scan_model::Machine::stats`].
//!
//! Beyond construction, [`batch::batch_window_query`] answers many window
//! queries in one lockstep descent, and [`join::frontier_join`] computes
//! the spatial join of two aligned quadtrees breadth-first over a vector
//! of candidate block pairs — the join, like the builds, is a policy on
//! the instrumented [`round_driver::RoundDriver`], which records a
//! [`scan_model::RoundTrace`] per round.
//!
//! ## Quick example
//!
//! ```
//! use dp_spatial::bucket_pmr::build_bucket_pmr;
//! use dp_geom::{LineSeg, Rect, Point};
//! use scan_model::Machine;
//!
//! let world = Rect::from_coords(0.0, 0.0, 8.0, 8.0);
//! let segs = vec![
//!     LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
//!     LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
//!     LineSeg::from_coords(1.0, 2.0, 6.0, 2.0),
//! ];
//! let m = Machine::parallel();
//! let tree = build_bucket_pmr(&m, world, &segs, 2, 6);
//! let hits = tree.window_query(&Rect::from_coords(0.0, 0.0, 4.5, 4.5), &segs);
//! assert_eq!(hits, vec![0, 1, 2]);
//! ```

pub mod batch;
pub mod bucket_pmr;
pub mod dominance;
pub mod error;
pub mod join;
pub mod kdtree;
pub mod lineproc;
pub mod pm1;
pub mod pm_family;
pub mod quadtree;
pub mod region;
pub mod round_driver;
pub mod rsplit;
pub mod rtree;
pub mod shard;
pub mod snapshot;
pub mod split;
pub mod stats;
pub mod update;

pub use error::{MalformedKind, SpatialError};

/// Identifier of a segment within the caller's segment slice (matches
/// `seq_spatial::SegId`).
pub type SegId = u32;
