//! The quadtree node splitting primitive (paper Sec. 4.6, Figs. 23–28).
//!
//! Splitting is a two-stage process: the node is first cut along the
//! horizontal centre line into its top and bottom halves, then each half
//! is cut along the vertical centre line, yielding four equal quadrants.
//! Each stage is the same three-step dance, executed for *all* splitting
//! nodes simultaneously:
//!
//! 1. every lane decides elementwise whether its line **crosses the split
//!    axis** within the node (it then belongs to both halves and must be
//!    *cloned* — paper Fig. 24);
//! 2. a **cloning** operation (Sec. 4.1) replicates the crossing lanes;
//! 3. every lane classifies itself to one side (originals of a cloned
//!    pair take the first side, the clones the second — Fig. 25), and an
//!    **unshuffle** (Sec. 4.2) packs each node's lanes into the two new
//!    contiguous segments (Figs. 26–28).

use crate::lineproc::{ActiveNode, LineProcSet};
use crate::SegId;
use dp_geom::{seg_in_block, LineSeg, NodePath, Quadrant, Rect};
use scan_model::{Machine, Segments};

/// A node midway through the split: one half of a splitting block.
#[derive(Debug, Clone, Copy)]
struct HalfNode {
    parent: NodePath,
    rect: Rect,
    /// `false` = top half, `true` = bottom half.
    bottom: bool,
}

/// The top and bottom halves of a block (stage 1 cut).
fn halves_y(r: &Rect) -> (Rect, Rect) {
    let cy = r.center().y;
    (
        Rect::from_coords(r.min.x, cy, r.max.x, r.max.y), // top
        Rect::from_coords(r.min.x, r.min.y, r.max.x, cy), // bottom
    )
}

/// The left and right halves of a block (stage 2 cut).
fn halves_x(r: &Rect) -> (Rect, Rect) {
    let cx = r.center().x;
    (
        Rect::from_coords(r.min.x, r.min.y, cx, r.max.y), // left
        Rect::from_coords(cx, r.min.y, r.max.x, r.max.y), // right
    )
}

/// One split stage over every active segment at once.
///
/// `first_of` / `second_of` produce the two candidate child rectangles of
/// a lane's current block; lanes whose lines belong to both are cloned.
/// Returns the reordered lane vectors, the per-input-segment
/// `(first_count, second_count)` pair, and the new per-lane child rects.
struct StageOut {
    line: Vec<SegId>,
    rect: Vec<Rect>,
    /// Per input segment: lanes in the first and second halves.
    counts: Vec<(usize, usize)>,
}

fn split_stage(
    machine: &Machine,
    mut line: Vec<SegId>,
    mut rect: Vec<Rect>,
    seg: &Segments,
    segs: &[LineSeg],
    halves: fn(&Rect) -> (Rect, Rect),
) -> StageOut {
    // Step 1 (elementwise): membership in each half; crossing lanes are
    // members of both (paper Fig. 24's `clone` flag). The two leased
    // intermediates are recycled before the stage returns; the lane
    // vectors themselves are reordered in place / through the ping-pong
    // slab, so the stage's peak footprint is the lanes plus one slab.
    let mut membership: Vec<(bool, bool)> = machine.lease();
    machine.zip_map_into(
        &line,
        &rect,
        |id, r| {
            let (first, second) = halves(&r);
            let s = &segs[id as usize];
            (seg_in_block(s, &first), seg_in_block(s, &second))
        },
        &mut membership,
    );
    let mut clone_flags: Vec<bool> = machine.lease();
    machine.map_into(&membership, |(a, b)| a && b, &mut clone_flags);
    debug_assert!(
        membership.iter().all(|&(a, b)| a || b),
        "every lane must belong to at least one half of its own block"
    );

    // Step 2: clone the crossing lanes (Sec. 4.1) — the gather is
    // monotone, so the lane vectors grow in place.
    let layout = machine.clone_layout(seg, &clone_flags);
    machine.apply_clone_in_place(&mut line, &layout);
    machine.apply_clone_in_place(&mut rect, &layout);
    let mut c_membership: Vec<(bool, bool)> = machine.lease();
    machine.apply_clone_into(&membership, &layout, &mut c_membership);
    machine.recycle(membership);
    machine.recycle(clone_flags);

    // Step 3: classify each lane (Fig. 25): of a cloned pair the original
    // takes the first half and the clone the second; non-crossing lanes
    // follow their membership. A lane crosses exactly when it belongs to
    // both halves, so the cloned membership pair already carries the
    // crossing bit.
    machine.note_elementwise();
    let mut class: Vec<bool> = machine.lease();
    class.extend(
        c_membership.iter().zip(layout.is_clone.iter()).map(
            |(&(a, b), &is_clone)| {
                if a && b {
                    is_clone
                } else {
                    b
                }
            },
        ),
    );
    machine.recycle(c_membership);

    // Unshuffle into [first | second] within each segment (Sec. 4.2),
    // ping-ponging the lane ids through one leased slab. The other two
    // lane vectors need no permutation at all:
    //
    // * `rect` is segment-constant — every lane of a node carries the
    //   node's block, and the unshuffle permutes lanes only within
    //   their segment — so the permutation is the identity on its
    //   values (and its slab would be the largest buffer of the whole
    //   build);
    // * `class` is the unshuffle *key*: after the pack each segment
    //   reads as `first_count` falses then `second_count` trues, which
    //   one elementwise pass reconstitutes straight from the layout's
    //   per-segment counts.
    let un = machine.unshuffle_layout(&layout.seg, &class);
    machine.apply_unshuffle_swap(&mut line, &un);
    machine.note_elementwise();
    class.clear();
    for &(n_first, n_second) in &un.counts {
        class.extend(std::iter::repeat(false).take(n_first));
        class.extend(std::iter::repeat(true).take(n_second));
    }

    // Update every lane's block to its half (elementwise in place — each
    // lane knows its side from the packed class bit).
    machine.zip_map_in_place(&mut rect, &class, |r, c| {
        let (first, second) = halves(&r);
        if c {
            second
        } else {
            first
        }
    });
    machine.recycle(class);

    StageOut {
        line,
        rect,
        counts: un.counts,
    }
}

/// Splits every active node into its four quadrants (paper Sec. 4.6).
///
/// Children that receive no lanes become implicit empty leaves (they are
/// not represented in the new state; the assembly in [`crate::quadtree`]
/// materializes them). The new active node list is ordered NW, NE, SW, SE
/// within each parent.
pub fn split_active_nodes(machine: &Machine, state: LineProcSet, segs: &[LineSeg]) -> LineProcSet {
    if state.nodes.is_empty() {
        return state;
    }

    // ---- Stage 1: horizontal cut into top / bottom halves. ----
    // The lane vectors are reordered in place (clone, unshuffle) rather
    // than copied into fresh leases, so the stage's footprint is the
    // lanes themselves plus one ping-pong slab.
    let LineProcSet {
        line: old_line,
        rect: old_rect,
        seg: old_seg,
        nodes: old_nodes,
    } = state;
    let stage1 = split_stage(machine, old_line, old_rect, &old_seg, segs, halves_y);
    let mut half_nodes: Vec<HalfNode> = Vec::with_capacity(old_nodes.len() * 2);
    let mut half_lengths: Vec<usize> = Vec::with_capacity(old_nodes.len() * 2);
    for (node, &(n_top, n_bottom)) in old_nodes.iter().zip(stage1.counts.iter()) {
        let (top, bottom) = halves_y(&node.rect);
        if n_top > 0 {
            half_nodes.push(HalfNode {
                parent: node.path,
                rect: top,
                bottom: false,
            });
            half_lengths.push(n_top);
        }
        if n_bottom > 0 {
            half_nodes.push(HalfNode {
                parent: node.path,
                rect: bottom,
                bottom: true,
            });
            half_lengths.push(n_bottom);
        }
    }
    let half_seg = Segments::from_lengths(&half_lengths).expect("non-empty halves only");

    // ---- Stage 2: vertical cut of each half into left / right. ----
    let stage2 = split_stage(machine, stage1.line, stage1.rect, &half_seg, segs, halves_x);
    let mut nodes: Vec<ActiveNode> = Vec::with_capacity(half_nodes.len() * 2);
    let mut lengths: Vec<usize> = Vec::with_capacity(half_nodes.len() * 2);
    for (half, &(n_left, n_right)) in half_nodes.iter().zip(stage2.counts.iter()) {
        let (left, right) = halves_x(&half.rect);
        let (q_left, q_right) = if half.bottom {
            (Quadrant::SW, Quadrant::SE)
        } else {
            (Quadrant::NW, Quadrant::NE)
        };
        if n_left > 0 {
            nodes.push(ActiveNode {
                path: half.parent.child(q_left),
                rect: left,
            });
            lengths.push(n_left);
        }
        if n_right > 0 {
            nodes.push(ActiveNode {
                path: half.parent.child(q_right),
                rect: right,
            });
            lengths.push(n_right);
        }
    }
    let seg = Segments::from_lengths(&lengths).expect("non-empty children only");

    let out = LineProcSet {
        line: stage2.line,
        rect: stage2.rect,
        seg,
        nodes,
    };
    debug_assert_eq!(out.seg.num_segments(), out.nodes.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_model::Backend;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    /// Paper Figs. 23–28 in miniature: one node, five lines, two of which
    /// cross the horizontal axis and one of which also crosses the
    /// vertical axis.
    #[test]
    fn two_stage_split_distributes_lines() {
        for m in machines() {
            let segs = vec![
                LineSeg::from_coords(1.0, 3.0, 2.0, 5.0), // a: crosses y=4, left side
                LineSeg::from_coords(5.0, 3.0, 6.0, 6.0), // b: crosses y=4, right side
                LineSeg::from_coords(1.0, 6.0, 2.0, 7.0), // NW only
                LineSeg::from_coords(5.0, 1.0, 6.0, 2.0), // SE only
                LineSeg::from_coords(1.0, 5.0, 6.0, 5.0), // top, crosses x=4
            ];
            let state = LineProcSet::initial(world(), &segs);
            let out = split_active_nodes(&m, state, &segs);
            out.validate();
            // Quadrant contents by membership ground truth.
            let mut by_quad: Vec<Vec<SegId>> = vec![Vec::new(); 4];
            for (s, r) in out.seg.ranges().enumerate() {
                let q = out.nodes[s].path.quadrant_in_parent().unwrap().index();
                let mut ids = out.line[r].to_vec();
                ids.sort_unstable();
                by_quad[q] = ids;
            }
            assert_eq!(by_quad[Quadrant::NW.index()], vec![0, 2, 4]);
            assert_eq!(by_quad[Quadrant::NE.index()], vec![1, 4]);
            assert_eq!(by_quad[Quadrant::SW.index()], vec![0]);
            assert_eq!(by_quad[Quadrant::SE.index()], vec![1, 3]);
        }
    }

    #[test]
    fn empty_children_are_skipped() {
        for m in machines() {
            // Everything in one quadrant: the other three children must
            // not appear as active nodes.
            let segs = vec![
                LineSeg::from_coords(1.0, 5.0, 2.0, 6.0),
                LineSeg::from_coords(2.0, 5.0, 3.0, 7.0),
            ];
            let state = LineProcSet::initial(world(), &segs);
            let out = split_active_nodes(&m, state, &segs);
            assert_eq!(out.nodes.len(), 1);
            assert_eq!(out.nodes[0].path.quadrant_in_parent(), Some(Quadrant::NW));
            assert_eq!(out.line, vec![0, 1]);
        }
    }

    #[test]
    fn lane_rects_match_child_blocks() {
        for m in machines() {
            let segs = vec![
                LineSeg::from_coords(1.0, 1.0, 6.0, 6.0), // crosses everything
                LineSeg::from_coords(5.0, 6.0, 7.0, 7.0),
            ];
            let state = LineProcSet::initial(world(), &segs);
            let out = split_active_nodes(&m, state, &segs);
            out.validate();
            // Every lane's line must belong to its (new) block.
            for (s, r) in out.seg.ranges().enumerate() {
                for i in r {
                    assert!(seg_in_block(
                        &segs[out.line[i] as usize],
                        &out.nodes[s].rect
                    ));
                }
            }
        }
    }

    #[test]
    fn diagonal_is_cloned_into_exactly_its_blocks() {
        for m in machines() {
            // The main diagonal passes through SW, NE and touches the
            // centre; with half-open point membership it must appear in
            // the blocks it has positive length in.
            let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
            let state = LineProcSet::initial(world(), &segs);
            let out = split_active_nodes(&m, state, &segs);
            let quads: Vec<Quadrant> = out
                .nodes
                .iter()
                .map(|n| n.path.quadrant_in_parent().unwrap())
                .collect();
            assert_eq!(quads, vec![Quadrant::NE, Quadrant::SW]);
        }
    }

    #[test]
    fn backends_agree_on_split_results() {
        let segs: Vec<LineSeg> = (0..40)
            .map(|k| {
                let x = (k % 7) as f64 + 0.0;
                let y = (k % 5) as f64;
                LineSeg::from_coords(x, y, x + 1.0, y + 2.0)
            })
            .collect();
        let seq_m = Machine::sequential();
        let par_m = Machine::new(Backend::Parallel).with_par_threshold(1);
        let a = split_active_nodes(&seq_m, LineProcSet::initial(world(), &segs), &segs);
        let b = split_active_nodes(&par_m, LineProcSet::initial(world(), &segs), &segs);
        assert_eq!(a.line, b.line);
        assert_eq!(a.seg, b.seg);
        assert_eq!(a.nodes.len(), b.nodes.len());
    }
}
