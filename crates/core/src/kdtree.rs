//! Data-parallel k-D tree construction over point sets, in the scan
//! model — the prior-work algorithm the paper builds upon ("the k-D-tree
//! research was limited to … building the data structure for a collection
//! of points using the scan model of computation \[Blel89b\]", paper
//! Sec. 1). Included both as context for the paper's contribution and as
//! a point-data companion to the segment structures.
//!
//! The build inserts all points simultaneously: active nodes are
//! contiguous segments of the point processor vector; per round every
//! oversized node is median-split along the alternating axis with one
//! segmented sort plus rank arithmetic, and the halves are packed with an
//! unshuffle — O(log n) rounds, one sort each, exactly the structure of
//! Blelloch's build.

use crate::SegId;
use dp_geom::{Point, Rect};
use scan_model::{Machine, Segments};

/// Splitting axis of an internal k-D node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Vertical split line (compare x).
    X,
    /// Horizontal split line (compare y).
    Y,
}

/// A node of the assembled k-D tree.
#[derive(Debug, Clone)]
pub enum KdNode {
    /// Internal node: everything with coordinate `< value` (or equal,
    /// when on the low-rank side of the median) descends left.
    Internal {
        /// Split axis.
        axis: Axis,
        /// Split coordinate.
        value: f64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf bucket of point ids.
    Leaf {
        /// Indexed point ids.
        points: Vec<SegId>,
    },
}

/// A k-D tree over a borrowed point slice.
#[derive(Debug, Clone)]
pub struct KdTree {
    nodes: Vec<KdNode>,
    rounds: usize,
    len: usize,
}

/// Builds a k-D tree over `points` with all points inserted
/// simultaneously; leaves hold at most `leaf_capacity` points.
///
/// # Panics
///
/// Panics if `leaf_capacity == 0`.
pub fn build_kdtree(machine: &Machine, points: &[Point], leaf_capacity: usize) -> KdTree {
    assert!(leaf_capacity >= 1, "leaf capacity must be at least 1");
    let n = points.len();
    let mut tree = KdTree {
        nodes: vec![KdNode::Leaf { points: Vec::new() }],
        rounds: 0,
        len: n,
    };
    if n == 0 {
        return tree;
    }

    // Lane state: point ids grouped by active node; per active node, its
    // arena index and depth (axis alternates with depth).
    let mut lane_id: Vec<SegId> = (0..n as SegId).collect();
    let mut seg = Segments::single(n);
    let mut node_of: Vec<usize> = vec![0];
    let mut depth_of: Vec<usize> = vec![0];

    loop {
        let counts = machine.segment_counts(&seg);
        machine.note_elementwise();
        let split: Vec<bool> = counts.iter().map(|&c| c as usize > leaf_capacity).collect();
        // Retire finished nodes as leaf buckets before (possibly)
        // terminating.
        for (s, r) in seg.ranges().enumerate() {
            if !split[s] {
                tree.nodes[node_of[s]] = KdNode::Leaf {
                    points: lane_id[r].to_vec(),
                };
            }
        }
        if !split.iter().any(|&b| b) {
            break;
        }

        // Median split along the alternating axis: one segmented sort by
        // the per-lane coordinate, then rank threshold.
        let keys: Vec<f64> = {
            machine.note_elementwise();
            (0..lane_id.len())
                .map(|i| {
                    let s = seg.segment_of(i);
                    let p = points[lane_id[i] as usize];
                    match axis_at(depth_of[s]) {
                        Axis::X => p.x,
                        Axis::Y => p.y,
                    }
                })
                .collect()
        };
        let order = machine.segmented_sort_perm(&seg, &keys, |a, b| a.total_cmp(b));
        lane_id = machine.gather(&lane_id, &order);
        let sorted_keys = machine.gather(&keys, &order);
        let ranks = machine.rank_in_segment(&seg);

        // Finalize non-splitting nodes, subdivide the rest.
        let mut new_lengths = Vec::new();
        let mut new_node_of = Vec::new();
        let mut new_depth_of = Vec::new();
        machine.note_elementwise();
        let mut retained = vec![false; lane_id.len()];
        for (s, r) in seg.ranges().enumerate() {
            if !split[s] {
                continue; // already retired above
            }
            let half = r.len().div_ceil(2);
            let value = sorted_keys[r.start + half - 1];
            let left = tree.nodes.len();
            tree.nodes.push(KdNode::Leaf { points: Vec::new() });
            let right = tree.nodes.len();
            tree.nodes.push(KdNode::Leaf { points: Vec::new() });
            tree.nodes[node_of[s]] = KdNode::Internal {
                axis: axis_at(depth_of[s]),
                value,
                left,
                right,
            };
            for i in r.clone() {
                retained[i] = true;
            }
            new_lengths.push(half);
            new_lengths.push(r.len() - half);
            new_node_of.push(left);
            new_node_of.push(right);
            new_depth_of.push(depth_of[s] + 1);
            new_depth_of.push(depth_of[s] + 1);
            let _ = ranks; // ranks define the halves; the sort already packed them
        }

        // Compact the lanes of splitting nodes (the sorted order already
        // partitions each segment at its median rank, so no unshuffle is
        // needed — the deletion primitive drops retired lanes).
        let delete_flags: Vec<bool> = machine.map(&retained, |b| !b);
        let layout = machine.delete_layout(&seg, &delete_flags);
        lane_id = machine.apply_delete(&lane_id, &layout);
        seg = Segments::from_lengths(&new_lengths).expect("split halves are non-empty");
        node_of = new_node_of;
        depth_of = new_depth_of;
        tree.rounds += 1;
        machine.bump_rounds();
        if lane_id.is_empty() {
            break;
        }
    }
    tree
}

fn axis_at(depth: usize) -> Axis {
    if depth % 2 == 0 {
        Axis::X
    } else {
        Axis::Y
    }
}

impl KdTree {
    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Build rounds taken.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Tree height (root-only tree = 0).
    pub fn height(&self) -> usize {
        fn rec(nodes: &[KdNode], at: usize) -> usize {
            match &nodes[at] {
                KdNode::Leaf { .. } => 0,
                KdNode::Internal { left, right, .. } => {
                    1 + rec(nodes, *left).max(rec(nodes, *right))
                }
            }
        }
        rec(&self.nodes, 0)
    }

    /// Ids of points inside the closed query rectangle, sorted.
    pub fn range_query(&self, query: &Rect, points: &[Point]) -> Vec<SegId> {
        let mut out = Vec::new();
        let mut stack = vec![0usize];
        while let Some(at) = stack.pop() {
            match &self.nodes[at] {
                KdNode::Leaf { points: ids } => {
                    out.extend(
                        ids.iter()
                            .copied()
                            .filter(|&id| query.contains(points[id as usize])),
                    );
                }
                KdNode::Internal {
                    axis,
                    value,
                    left,
                    right,
                } => {
                    let (lo, hi) = match axis {
                        Axis::X => (query.min.x, query.max.x),
                        Axis::Y => (query.min.y, query.max.y),
                    };
                    if lo <= *value {
                        stack.push(*left);
                    }
                    if hi >= *value {
                        stack.push(*right);
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The nearest indexed point to `p` (ties by lowest id are *not*
    /// guaranteed; distances are exact).
    pub fn nearest(&self, p: Point, points: &[Point]) -> Option<(SegId, f64)> {
        if self.len == 0 {
            return None;
        }
        let mut best: Option<(SegId, f64)> = None;
        self.nearest_rec(0, p, points, &mut best);
        best.map(|(id, d2)| (id, d2.sqrt()))
    }

    fn nearest_rec(&self, at: usize, p: Point, points: &[Point], best: &mut Option<(SegId, f64)>) {
        match &self.nodes[at] {
            KdNode::Leaf { points: ids } => {
                for &id in ids {
                    let d2 = points[id as usize].dist2(p);
                    if best.map(|(_, b)| d2 < b).unwrap_or(true) {
                        *best = Some((id, d2));
                    }
                }
            }
            KdNode::Internal {
                axis,
                value,
                left,
                right,
            } => {
                let diff = match axis {
                    Axis::X => p.x - value,
                    Axis::Y => p.y - value,
                };
                let (near, far) = if diff <= 0.0 {
                    (*left, *right)
                } else {
                    (*right, *left)
                };
                self.nearest_rec(near, p, points, best);
                if best.map(|(_, b)| diff * diff <= b).unwrap_or(true) {
                    self.nearest_rec(far, p, points, best);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_model::Backend;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn points(n: usize) -> Vec<Point> {
        (0..n)
            .map(|k| Point::new(((k * 37) % 101) as f64, ((k * 59) % 97) as f64))
            .collect()
    }

    #[test]
    fn build_and_height_are_balanced() {
        for m in machines() {
            let pts = points(256);
            let t = build_kdtree(&m, &pts, 4);
            assert!(
                t.height() <= 8,
                "median splits stay balanced: {}",
                t.height()
            );
            assert!(t.rounds() <= 8);
            assert_eq!(t.len(), 256);
        }
    }

    #[test]
    fn range_queries_match_brute_force() {
        for m in machines() {
            let pts = points(300);
            let t = build_kdtree(&m, &pts, 4);
            for q in [
                Rect::from_coords(0.0, 0.0, 30.0, 30.0),
                Rect::from_coords(50.0, 20.0, 80.0, 90.0),
                Rect::from_coords(0.0, 0.0, 101.0, 97.0),
                Rect::from_coords(96.0, 90.0, 99.0, 95.0),
            ] {
                let got = t.range_query(&q, &pts);
                let want: Vec<SegId> = (0..pts.len() as u32)
                    .filter(|&id| q.contains(pts[id as usize]))
                    .collect();
                assert_eq!(got, want, "window {q}");
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        for m in machines() {
            let pts = points(200);
            let t = build_kdtree(&m, &pts, 4);
            for probe in [
                Point::new(0.0, 0.0),
                Point::new(50.0, 50.0),
                Point::new(100.0, 1.0),
                Point::new(33.3, 66.6),
            ] {
                let (_, d) = t.nearest(probe, &pts).unwrap();
                let brute = pts
                    .iter()
                    .map(|q| q.dist(probe))
                    .min_by(|a, b| a.total_cmp(b))
                    .unwrap();
                assert_eq!(d, brute, "probe {probe}");
            }
        }
    }

    #[test]
    fn empty_and_tiny() {
        for m in machines() {
            let t = build_kdtree(&m, &[], 4);
            assert!(t.is_empty());
            assert!(t.nearest(Point::new(0.0, 0.0), &[]).is_none());
            let pts = points(3);
            let t = build_kdtree(&m, &pts, 4);
            assert_eq!(t.height(), 0);
            assert_eq!(
                t.range_query(&Rect::from_coords(0.0, 0.0, 200.0, 200.0), &pts)
                    .len(),
                3
            );
        }
    }

    #[test]
    fn duplicate_points_supported() {
        for m in machines() {
            let pts = vec![Point::new(5.0, 5.0); 20];
            let t = build_kdtree(&m, &pts, 4);
            let got = t.range_query(&Rect::from_coords(5.0, 5.0, 5.0, 5.0), &pts);
            assert_eq!(got.len(), 20);
        }
    }

    #[test]
    fn backends_agree() {
        let pts = points(500);
        let a = build_kdtree(&Machine::sequential(), &pts, 8);
        let b = build_kdtree(
            &Machine::new(Backend::Parallel).with_par_threshold(1),
            &pts,
            8,
        );
        assert_eq!(a.height(), b.height());
        let q = Rect::from_coords(10.0, 10.0, 70.0, 70.0);
        assert_eq!(a.range_query(&q, &pts), b.range_query(&q, &pts));
    }

    #[test]
    fn rounds_are_logarithmic() {
        let m = Machine::sequential();
        let r64 = build_kdtree(&m, &points(64), 2).rounds();
        let r4096 = build_kdtree(&m, &points(4096), 2).rounds();
        assert!(r4096 <= r64 + 7, "64 -> 4096 adds at most 6 rounds");
    }
}
