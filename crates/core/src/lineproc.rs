//! The line processor set: the central object of the paper's Section 5.
//!
//! During a data-parallel quadtree build, one conceptual processor holds
//! each *(line, node)* pair: the line's identifier plus "the size and
//! position of the node that it resides in" (paper Sec. 4.6). Processors
//! belonging to the same node form a contiguous *segment* of the linear
//! processor ordering. [`LineProcSet`] is that state: parallel lanes plus
//! a [`Segments`] descriptor plus the per-node bookkeeping (block path and
//! rectangle) that the final tree assembly needs.
//!
//! [`run_quad_build`] is the generic iterative build entry point of
//! Sections 5.1–5.2. The round loop itself lives in the unified
//! [`crate::round_driver::RoundDriver`]; this module contributes
//! [`QuadSplitPolicy`] — the quadtree-family
//! [`crate::round_driver::SplitPolicy`] shared by PM₁, PM₂, PM₃ and the
//! bucket PMR quadtree, which differ only in their *split decision*
//! closure. Per round: the decision marks nodes, finished nodes retire
//! their lanes into leaf records, and the remaining nodes subdivide via
//! the two-stage node split of Section 4.6 ([`crate::split`]).

use crate::round_driver::{RoundAdvance, RoundDriver, SplitPolicy};
use crate::split::split_active_nodes;
use crate::SegId;
use dp_geom::{LineSeg, NodePath, Rect};
use scan_model::{Machine, Segments};

/// An active (still subdividing) quadtree node.
#[derive(Debug, Clone, Copy)]
pub struct ActiveNode {
    /// Root-to-node quadrant path.
    pub path: NodePath,
    /// Block rectangle.
    pub rect: Rect,
}

/// The per-lane and per-node state of an in-progress quadtree build.
#[derive(Debug, Clone)]
pub struct LineProcSet {
    /// Per lane: the line's identifier.
    pub line: Vec<SegId>,
    /// Per lane: the block rectangle of the node the lane resides in
    /// (duplicated per lane, exactly as in the paper's formulation, so the
    /// split stages are purely elementwise).
    pub rect: Vec<Rect>,
    /// Lanes grouped by node.
    pub seg: Segments,
    /// Active nodes, aligned with the segments of `seg`.
    pub nodes: Vec<ActiveNode>,
}

impl LineProcSet {
    /// Initial state: every line in one root segment.
    ///
    /// # Panics
    ///
    /// Panics if any segment endpoint lies outside the half-open world.
    pub fn initial(world: Rect, segs: &[LineSeg]) -> Self {
        for (id, s) in segs.iter().enumerate() {
            assert!(
                world.contains_half_open(s.a) && world.contains_half_open(s.b),
                "segment {id} endpoint outside the half-open world"
            );
        }
        let n = segs.len();
        LineProcSet {
            line: (0..n as SegId).collect(),
            rect: vec![world; n],
            seg: Segments::single(n),
            nodes: if n == 0 {
                Vec::new()
            } else {
                vec![ActiveNode {
                    path: NodePath::ROOT,
                    rect: world,
                }]
            },
        }
    }

    /// Number of lanes.
    pub fn len(&self) -> usize {
        self.line.len()
    }

    /// `true` when no lanes remain active.
    pub fn is_empty(&self) -> bool {
        self.line.is_empty()
    }

    /// Internal consistency check (debug aid): segment count matches node
    /// count, every lane's rect matches its node's rect.
    pub fn validate(&self) {
        assert_eq!(self.seg.num_segments(), self.nodes.len());
        assert_eq!(self.seg.len(), self.line.len());
        assert_eq!(self.seg.len(), self.rect.len());
        for (s, r) in self.seg.ranges().enumerate() {
            for i in r {
                assert_eq!(
                    self.rect[i], self.nodes[s].rect,
                    "lane {i} rect does not match node {s}"
                );
            }
        }
    }
}

/// A finished (leaf) block emitted by the build driver.
#[derive(Debug, Clone)]
pub struct LeafRecord {
    /// Root-to-leaf quadrant path.
    pub path: NodePath,
    /// Block rectangle.
    pub rect: Rect,
    /// Lines passing through the block (its q-edges), in lane order.
    pub lines: Vec<SegId>,
}

/// Result of a quadtree build: the leaf blocks plus round accounting.
#[derive(Debug, Clone)]
pub struct QuadBuildOutcome {
    /// All non-empty leaf blocks. (Empty leaves are implicit: every
    /// internal node has exactly four children; the assembly in
    /// [`crate::quadtree`] materializes the missing ones as empty.)
    pub leaves: Vec<LeafRecord>,
    /// Number of subdivision rounds executed (the paper's O(log n) stage
    /// count).
    pub rounds: usize,
    /// Leaves that were cut off by the depth bound while their split
    /// criterion still wanted subdivision (e.g. the over-capacity
    /// max-resolution bucket of paper Fig. 38).
    pub truncated: usize,
}

/// The structure-specific split decision: given the machine and the
/// current state, return one flag per active node — `true` to subdivide.
/// The driver overrides the flag to `false` at the depth bound.
pub type SplitDecision<'a> = dyn FnMut(&Machine, &LineProcSet, &[LineSeg]) -> Vec<bool> + 'a;

/// The quadtree-family [`SplitPolicy`]: owns the frontier [`LineProcSet`]
/// and the emitted leaves, defers the per-node split verdict to a
/// structure-specific [`SplitDecision`] closure (PM₁ vertex test, bucket
/// PMR capacity test, ...), and partitions via the two-stage node split of
/// paper Sec. 4.6. One driver step is one subdivision round.
pub struct QuadSplitPolicy<'d, 'c, 's> {
    segs: &'s [LineSeg],
    max_depth: usize,
    decide: &'d mut SplitDecision<'c>,
    state: LineProcSet,
    leaves: Vec<LeafRecord>,
    truncated: usize,
}

impl<'d, 'c, 's> QuadSplitPolicy<'d, 'c, 's> {
    /// A policy over the initial single-root frontier. Returns `None` for
    /// empty input, where there is no frontier to drive (the build is
    /// trivially zero leaves, zero rounds).
    pub fn new(
        world: Rect,
        segs: &'s [LineSeg],
        max_depth: usize,
        decide: &'d mut SplitDecision<'c>,
    ) -> Option<Self> {
        let state = LineProcSet::initial(world, segs);
        if state.nodes.is_empty() {
            return None;
        }
        Some(QuadSplitPolicy {
            segs,
            max_depth,
            decide,
            state,
            leaves: Vec::new(),
            truncated: 0,
        })
    }

    /// A policy resuming from an arbitrary pre-populated frontier instead
    /// of the single root — the split-repair pass of the batch updater
    /// ([`crate::update`]) seeds it with the leaf blocks whose line sets
    /// changed, each node carrying its *absolute* root-to-block path, so
    /// the retired records drop straight into the existing tree. Returns
    /// `None` when the frontier holds no nodes.
    pub fn from_frontier(
        state: LineProcSet,
        segs: &'s [LineSeg],
        max_depth: usize,
        decide: &'d mut SplitDecision<'c>,
    ) -> Option<Self> {
        if state.nodes.is_empty() {
            return None;
        }
        Some(QuadSplitPolicy {
            segs,
            max_depth,
            decide,
            state,
            leaves: Vec::new(),
            truncated: 0,
        })
    }

    /// Consumes the policy into the build outcome (`rounds` comes from the
    /// driver).
    pub fn into_outcome(self, rounds: usize) -> QuadBuildOutcome {
        QuadBuildOutcome {
            leaves: self.leaves,
            rounds,
            truncated: self.truncated,
        }
    }
}

impl SplitPolicy for QuadSplitPolicy<'_, '_, '_> {
    fn active_elements(&self) -> usize {
        self.state.len()
    }

    fn active_nodes(&self) -> usize {
        self.state.nodes.len()
    }

    fn decide(&mut self, machine: &Machine) -> Vec<bool> {
        let mut want = (self.decide)(machine, &self.state, self.segs);
        assert_eq!(
            want.len(),
            self.state.nodes.len(),
            "split decision must return one flag per active node"
        );
        // Depth guard: nodes at the bound never split; count the ones that
        // wanted to.
        for (s, w) in want.iter_mut().enumerate() {
            if *w && self.state.nodes[s].path.depth() as usize >= self.max_depth {
                *w = false;
                self.truncated += 1;
            }
        }
        want
    }

    fn emit(&mut self, _machine: &Machine, want: &[bool]) {
        // Retire finished nodes as leaves.
        for (s, r) in self.state.seg.ranges().enumerate() {
            if !want[s] {
                self.leaves.push(LeafRecord {
                    path: self.state.nodes[s].path,
                    rect: self.state.nodes[s].rect,
                    lines: self.state.line[r].to_vec(),
                });
            }
        }
    }

    fn partition(&mut self, machine: &Machine, want: &[bool]) {
        // Remove retired lanes in-model: flag lanes of finished segments
        // and compact with the deletion primitive (Sec. 4.3 mechanics).
        let lane_finished: Vec<bool> = {
            // Broadcast the per-node flag across its lanes (the paper
            // would place the flag at the segment head and copy-scan it;
            // the per-node loop is the same one-op broadcast).
            let mut per_lane = vec![false; self.state.seg.len()];
            for (s, r) in self.state.seg.ranges().enumerate() {
                if !want[s] {
                    per_lane[r].fill(true);
                }
            }
            per_lane
        };
        let layout = machine.delete_layout(&self.state.seg, &lane_finished);
        // The deletion gather is strictly increasing, so the lane vectors
        // close ranks in place — no second buffer per vector.
        let mut line = std::mem::take(&mut self.state.line);
        machine.apply_delete_in_place(&mut line, &layout);
        let mut rect = std::mem::take(&mut self.state.rect);
        machine.apply_delete_in_place(&mut rect, &layout);
        let kept_nodes: Vec<ActiveNode> = self
            .state
            .nodes
            .iter()
            .zip(want.iter())
            .filter(|(_, &w)| w)
            .map(|(n, _)| *n)
            .collect();
        let kept_lengths: Vec<usize> = layout
            .kept_per_segment
            .iter()
            .copied()
            .filter(|&l| l > 0)
            .collect();
        debug_assert_eq!(kept_lengths.len(), kept_nodes.len());
        let seg = Segments::from_lengths(&kept_lengths)
            .expect("splitting nodes always hold at least one lane");
        let compacted = LineProcSet {
            line,
            rect,
            seg,
            nodes: kept_nodes,
        };

        // Subdivide every remaining node (Sec. 4.6, two stages).
        self.state = split_active_nodes(machine, compacted, self.segs);
    }

    fn advance(&mut self, _machine: &Machine, split_any: bool) -> RoundAdvance {
        RoundAdvance {
            round_completed: split_any,
            finished: !split_any || self.state.nodes.is_empty(),
        }
    }
}

/// Generic iterative quadtree build (paper Secs. 5.1–5.2): a
/// [`QuadSplitPolicy`] run to completion by the unified [`RoundDriver`].
///
/// Each round: decide which nodes split; retire the rest as leaves; apply
/// the two-stage node split (Sec. 4.6) to the remainder. `max_depth`
/// bounds subdivision.
pub fn run_quad_build(
    machine: &Machine,
    world: Rect,
    segs: &[LineSeg],
    max_depth: usize,
    decide: &mut SplitDecision<'_>,
) -> QuadBuildOutcome {
    match QuadSplitPolicy::new(world, segs, max_depth, decide) {
        Some(mut policy) => {
            let rounds = RoundDriver::run(machine, &mut policy);
            policy.into_outcome(rounds)
        }
        None => QuadBuildOutcome {
            leaves: Vec::new(),
            rounds: 0,
            truncated: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    #[test]
    fn initial_state_is_single_root_segment() {
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 2.0, 2.0),
            LineSeg::from_coords(5.0, 5.0, 6.0, 6.0),
        ];
        let s = LineProcSet::initial(world(), &segs);
        s.validate();
        assert_eq!(s.len(), 2);
        assert_eq!(s.nodes.len(), 1);
        assert_eq!(s.nodes[0].path, NodePath::ROOT);
    }

    #[test]
    fn empty_input_short_circuits() {
        let m = Machine::sequential();
        let mut decide =
            |_: &Machine, _: &LineProcSet, _: &[LineSeg]| -> Vec<bool> { unreachable!() };
        let out = run_quad_build(&m, world(), &[], 5, &mut decide);
        assert!(out.leaves.is_empty());
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn never_split_yields_single_root_leaf() {
        let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
        let m = Machine::sequential();
        let mut decide = |_: &Machine, st: &LineProcSet, _: &[LineSeg]| vec![false; st.nodes.len()];
        let out = run_quad_build(&m, world(), &segs, 5, &mut decide);
        assert_eq!(out.leaves.len(), 1);
        assert_eq!(out.leaves[0].path, NodePath::ROOT);
        assert_eq!(out.leaves[0].lines, vec![0]);
        assert_eq!(out.rounds, 0);
    }

    #[test]
    fn always_split_respects_depth_bound() {
        // A segment crossing the centre keeps every containing block
        // splittable; with an always-split policy the depth bound stops
        // the build and reports truncation.
        let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
        let m = Machine::sequential();
        let mut decide = |_: &Machine, st: &LineProcSet, _: &[LineSeg]| vec![true; st.nodes.len()];
        let out = run_quad_build(&m, world(), &segs, 3, &mut decide);
        assert!(out.truncated > 0);
        assert!(out.leaves.iter().all(|l| l.path.depth() as usize <= 3));
        assert_eq!(out.rounds, 3);
        // Every leaf's lines actually pass through the leaf's block.
        for leaf in &out.leaves {
            for &id in &leaf.lines {
                assert!(dp_geom::seg_in_block(&segs[id as usize], &leaf.rect));
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the half-open world")]
    fn rejects_out_of_world() {
        let segs = vec![LineSeg::from_coords(0.0, 0.0, 8.0, 8.0)];
        LineProcSet::initial(world(), &segs);
    }
}
