//! Batch (data-parallel) query execution over an assembled quadtree.
//!
//! The paper's primitives exist to support data-parallel *operations*,
//! not just builds — its conclusion points at the companion spatial-join
//! and query papers (\[Hoel94a\], \[Hoel94b\]). This module runs **many
//! window queries simultaneously** in the scan model: the frontier of
//! (query, node) pairs is a flat vector of lanes, and one descent round
//! is
//!
//! 1. retire lanes whose node is a leaf (collect its q-edges), using the
//!    *deletion* primitive (Sec. 4.3) to compact the frontier;
//! 2. expand every remaining lane to its four children with two *cloning*
//!    passes (Sec. 4.1) — each pass doubles the lane adjacently, so rank
//!    arithmetic assigns each copy a distinct quadrant;
//! 3. prune lanes whose child block misses their query window (deletion
//!    again).
//!
//! All queries advance in lockstep; per level the work is O(frontier)
//! with a constant number of primitive operations — the natural
//! object-space parallelization of query processing.

use crate::error::SpatialError;
use crate::quadtree::{DpQuadtree, QtNode};
use crate::SegId;
use dp_geom::Rect;
use scan_model::ops::{Element, Sum};
use scan_model::primitives::{CloneLayout, DeleteLayout};
use scan_model::{Machine, ScanKind, Segments};

/// Compacts a frontier vector in place (the deletion gather is strictly
/// increasing, so survivors close ranks within the same buffer).
fn delete_swap<T: Element>(machine: &Machine, mut src: Vec<T>, layout: &DeleteLayout) -> Vec<T> {
    machine.apply_delete_in_place(&mut src, layout);
    src
}

/// Grows a frontier vector in place (the clone gather is monotone, so a
/// backward sweep expands the buffer without a copy — the
/// frontier-doubling analogue of [`delete_swap`]).
fn clone_swap<T: Element>(machine: &Machine, mut src: Vec<T>, layout: &CloneLayout) -> Vec<T> {
    machine.apply_clone_in_place(&mut src, layout);
    src
}

/// Runs all `queries` against `tree` simultaneously; returns, per query,
/// the deduplicated sorted ids whose segments intersect the query window
/// (exact-geometry filtered, same contract as
/// [`DpQuadtree::window_query`]).
pub fn batch_window_query(
    machine: &Machine,
    tree: &DpQuadtree,
    queries: &[Rect],
    segs: &[dp_geom::LineSeg],
) -> Vec<Vec<SegId>> {
    let candidates = batch_window_candidates(machine, tree, queries);
    machine.note_elementwise();
    candidates
        .into_iter()
        .enumerate()
        .map(|(q, ids)| {
            ids.into_iter()
                .filter(|&id| {
                    dp_geom::clip_segment_closed(&segs[id as usize], &queries[q]).is_some()
                })
                .collect()
        })
        .collect()
}

/// Checked [`batch_window_query`]: rejects any window that reaches
/// outside the tree's world instead of silently clipping it, so
/// misrouted traffic surfaces as [`SpatialError::WindowOutsideWorld`]
/// rather than as quietly-smaller result sets. This is the join's
/// mismatched-world check unified onto the batch query path.
pub fn try_batch_window_query(
    machine: &Machine,
    tree: &DpQuadtree,
    queries: &[Rect],
    segs: &[dp_geom::LineSeg],
) -> Result<Vec<Vec<SegId>>, SpatialError> {
    for (index, window) in queries.iter().enumerate() {
        if !tree.world().contains_rect(window) {
            return Err(SpatialError::WindowOutsideWorld {
                index,
                window: *window,
                world: tree.world(),
            });
        }
    }
    Ok(batch_window_query(machine, tree, queries, segs))
}

/// The candidate phase of [`batch_window_query`]: per query, the
/// deduplicated sorted ids stored in leaves intersecting the window.
pub fn batch_window_candidates(
    machine: &Machine,
    tree: &DpQuadtree,
    queries: &[Rect],
) -> Vec<Vec<SegId>> {
    let mut results: Vec<Vec<SegId>> = vec![Vec::new(); queries.len()];
    if queries.is_empty() {
        return results;
    }

    // Frontier lanes: (query id, node index, node rect).
    let mut lane_query: Vec<u32> = Vec::new();
    let mut lane_node: Vec<u32> = Vec::new();
    let mut lane_rect: Vec<Rect> = Vec::new();
    machine.note_elementwise();
    for (q, window) in queries.iter().enumerate() {
        if tree.world().intersects(window) {
            lane_query.push(q as u32);
            lane_node.push(0);
            lane_rect.push(tree.world());
        }
    }

    while !lane_query.is_empty() {
        let seg = Segments::single(lane_query.len());

        // Retire leaf lanes: their node contents join the result sets.
        let mut at_leaf: Vec<bool> = machine.lease();
        machine.map_into(
            &lane_node,
            |n| matches!(tree.node(n as usize), QtNode::Leaf { .. }),
            &mut at_leaf,
        );
        machine.note_elementwise();
        for i in 0..lane_query.len() {
            if at_leaf[i] {
                if let QtNode::Leaf { lines } = tree.node(lane_node[i] as usize) {
                    results[lane_query[i] as usize].extend_from_slice(lines);
                }
            }
        }
        let keep = machine.delete_layout(&seg, &at_leaf);
        machine.recycle(at_leaf);
        lane_query = delete_swap(machine, lane_query, &keep);
        lane_node = delete_swap(machine, lane_node, &keep);
        lane_rect = delete_swap(machine, lane_rect, &keep);
        if lane_query.is_empty() {
            break;
        }

        // Expand to the four children: two adjacent-cloning passes make
        // four adjacent copies of every lane; the copy's rank mod 4 names
        // its quadrant.
        let seg = Segments::single(lane_query.len());
        let mut all: Vec<bool> = machine.lease();
        all.resize(lane_query.len(), true);
        let double = machine.clone_layout(&seg, &all);
        machine.recycle(all);
        lane_query = clone_swap(machine, lane_query, &double);
        lane_node = clone_swap(machine, lane_node, &double);
        lane_rect = clone_swap(machine, lane_rect, &double);
        let seg = double.seg;
        let mut all: Vec<bool> = machine.lease();
        all.resize(lane_query.len(), true);
        let quad = machine.clone_layout(&seg, &all);
        machine.recycle(all);
        lane_query = clone_swap(machine, lane_query, &quad);
        lane_node = clone_swap(machine, lane_node, &quad);
        lane_rect = clone_swap(machine, lane_rect, &quad);

        // Rank within each 4-group via an unsegmented exclusive scan.
        let mut ones: Vec<u64> = machine.lease();
        ones.resize(lane_query.len(), 1);
        let mut rank: Vec<u64> = machine.lease();
        machine.scan_into(
            &ones,
            &Segments::single(lane_query.len()),
            Sum,
            scan_model::Direction::Up,
            ScanKind::Exclusive,
            &mut rank,
        );
        machine.recycle(ones);

        // Each copy steps to its quadrant child.
        machine.note_elementwise();
        let mut child_node: Vec<u32> = machine.lease();
        child_node.resize(lane_query.len(), 0);
        let mut child_rect: Vec<Rect> = machine.lease();
        child_rect.resize(lane_query.len(), Rect::empty());
        let mut misses: Vec<bool> = machine.lease();
        misses.resize(lane_query.len(), false);
        for i in 0..lane_query.len() {
            let quadrant = (rank[i] % 4) as usize;
            match tree.node(lane_node[i] as usize) {
                QtNode::Internal { children } => {
                    let rects = lane_rect[i].quadrants();
                    child_node[i] = children[quadrant] as u32;
                    child_rect[i] = rects[quadrant];
                    misses[i] = !child_rect[i].intersects(&queries[lane_query[i] as usize]);
                }
                QtNode::Leaf { .. } => unreachable!("leaf lanes were retired"),
            }
        }
        machine.recycle(rank);

        // Prune the copies whose child block misses the window.
        let seg = Segments::single(lane_query.len());
        let keep = machine.delete_layout(&seg, &misses);
        machine.recycle(misses);
        machine.recycle(lane_node);
        machine.recycle(lane_rect);
        lane_query = delete_swap(machine, lane_query, &keep);
        lane_node = delete_swap(machine, child_node, &keep);
        lane_rect = delete_swap(machine, child_rect, &keep);

        // One descent level completed: all surviving lanes stepped one
        // node deeper in lockstep, with a constant number of primitives
        // issued above. Recorded so `Machine::stats` exposes the paper's
        // O(tree height) round bound for batch queries, exactly as
        // `run_quad_build` does for builds.
        machine.bump_rounds();
    }

    for ids in &mut results {
        ids.sort_unstable();
        ids.dedup();
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_pmr::build_bucket_pmr;
    use dp_geom::LineSeg;
    use scan_model::Backend;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 64.0, 64.0)
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn dataset() -> Vec<LineSeg> {
        (0..60)
            .map(|k| {
                let x = ((k * 13) % 60) as f64;
                let y = ((k * 29) % 60) as f64;
                LineSeg::from_coords(x, y, (x + 3.0).min(63.0), (y + 2.0).min(63.0))
            })
            .collect()
    }

    #[test]
    fn batch_matches_individual_queries() {
        for m in machines() {
            let segs = dataset();
            let tree = build_bucket_pmr(&m, world(), &segs, 4, 8);
            let queries = vec![
                Rect::from_coords(0.0, 0.0, 10.0, 10.0),
                Rect::from_coords(20.0, 20.0, 40.0, 40.0),
                Rect::from_coords(0.0, 0.0, 64.0, 64.0),
                Rect::from_coords(60.0, 60.0, 63.0, 63.0),
                Rect::from_coords(31.0, 0.0, 33.0, 64.0),
            ];
            let batched = batch_window_query(&m, &tree, &queries, &segs);
            for (q, window) in queries.iter().enumerate() {
                assert_eq!(
                    batched[q],
                    tree.window_query(window, &segs),
                    "query {q} {window}"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_missing_windows() {
        for m in machines() {
            let segs = dataset();
            let tree = build_bucket_pmr(&m, world(), &segs, 4, 8);
            assert!(batch_window_query(&m, &tree, &[], &segs).is_empty());
            // A window fully outside the world yields an empty result.
            let out = batch_window_query(
                &m,
                &tree,
                &[Rect::from_coords(100.0, 100.0, 110.0, 110.0)],
                &segs,
            );
            assert_eq!(out, vec![Vec::<SegId>::new()]);
        }
    }

    #[test]
    fn checked_batch_rejects_out_of_world_windows() {
        use crate::error::SpatialError;
        for m in machines() {
            let segs = dataset();
            let tree = build_bucket_pmr(&m, world(), &segs, 4, 8);
            let inside = Rect::from_coords(1.0, 1.0, 9.0, 9.0);
            let outside = Rect::from_coords(60.0, 60.0, 70.0, 70.0);
            // In-world windows behave exactly like the clipping variant.
            assert_eq!(
                try_batch_window_query(&m, &tree, &[inside], &segs).unwrap(),
                batch_window_query(&m, &tree, &[inside], &segs)
            );
            // The second window reaches outside → a positioned error, not
            // a silently clipped result.
            let err = try_batch_window_query(&m, &tree, &[inside, outside], &segs).unwrap_err();
            assert_eq!(
                err,
                SpatialError::WindowOutsideWorld {
                    index: 1,
                    window: outside,
                    world: world(),
                }
            );
        }
    }

    #[test]
    fn batch_on_single_leaf_tree() {
        for m in machines() {
            let segs = vec![LineSeg::from_coords(1.0, 1.0, 5.0, 5.0)];
            let tree = build_bucket_pmr(&m, world(), &segs, 8, 8);
            let out =
                batch_window_query(&m, &tree, &[Rect::from_coords(0.0, 0.0, 2.0, 2.0)], &segs);
            assert_eq!(out, vec![vec![0]]);
        }
    }

    #[test]
    fn many_queries_lockstep() {
        // Hundreds of queries at once still agree with the sequential
        // answers — the frontier mixes depths across queries.
        for m in machines() {
            let segs = dataset();
            let tree = build_bucket_pmr(&m, world(), &segs, 2, 8);
            let queries: Vec<Rect> = (0..200)
                .map(|k| {
                    let x = ((k * 7) % 56) as f64;
                    let y = ((k * 11) % 56) as f64;
                    Rect::from_coords(x, y, x + 6.0, y + 6.0)
                })
                .collect();
            let batched = batch_window_query(&m, &tree, &queries, &segs);
            for (q, window) in queries.iter().enumerate() {
                assert_eq!(batched[q], tree.window_query(window, &segs), "query {q}");
            }
        }
    }
}
