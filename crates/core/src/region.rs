//! Data-parallel **linear region quadtree** construction over binary
//! rasters — the structure the bulk of prior parallel-quadtree research
//! targeted (paper Sec. 1: "\[t\]he quadtree research has primarily
//! focussed on area (or raster) data and region quadtrees", citing
//! \[Dehn91\], \[Ibar93\], \[Best92\]). Included so the workspace covers the
//! research line the paper builds on.
//!
//! A linear region quadtree represents a binary image as the sorted list
//! of its maximal *black* blocks, each identified by a locational code.
//! The classic data-parallel bottom-up build:
//!
//! 1. one lane per black pixel, keyed by its Morton (Z-order) code — one
//!    elementwise op plus one sort through the machine;
//! 2. repeatedly merge complete sibling quadruples: four adjacent lanes
//!    whose codes are `4p, 4p+1, 4p+2, 4p+3` at the same level collapse
//!    into their parent block — an elementwise neighbour comparison, a
//!    *deletion* (Sec. 4.3 mechanics) of the three trailing siblings, and
//!    an elementwise code update, repeated `log₂ size` times.
//!
//! Set-theoretic operations (the "set theoretic spatial queries" of
//! \[Bhas88\]/\[Best92\]) run as linear merges of two block lists.

use crate::SegId;
use dp_geom::z_order;
use scan_model::{Machine, Segments};

/// A maximal black block: Morton code of its lower-left pixel plus its
/// level (0 = single pixel, `k` = `2^k × 2^k` block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Block {
    /// Morton code of the block's first (lowest-code) pixel.
    pub code: u64,
    /// Block side = `2^level` pixels.
    pub level: u8,
}

impl Block {
    /// Number of pixels covered.
    pub fn pixels(&self) -> u64 {
        1u64 << (2 * self.level)
    }

    /// The (exclusive) end of this block's pixel-code range.
    pub fn code_end(&self) -> u64 {
        self.code + self.pixels()
    }

    /// `true` when `pixel_code` falls inside this block.
    pub fn contains_code(&self, pixel_code: u64) -> bool {
        pixel_code >= self.code && pixel_code < self.code_end()
    }
}

/// A linear region quadtree over a `2^order × 2^order` binary image:
/// the sorted, disjoint, maximal black blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionQuadtree {
    order: u32,
    blocks: Vec<Block>,
}

/// Builds the linear region quadtree of the black pixels `(x, y)` in a
/// `2^order × 2^order` image, all pixels inserted simultaneously.
///
/// # Panics
///
/// Panics if `order > 31`, a pixel lies outside the image, or a pixel is
/// duplicated.
pub fn build_region_quadtree(
    machine: &Machine,
    order: u32,
    black_pixels: &[(u32, u32)],
) -> RegionQuadtree {
    assert!(order <= 31, "image order {order} too large");
    let n_side = 1u64 << order;
    let _ = n_side;

    // Lane per pixel: Morton code (one elementwise op), then sort.
    let mut codes: Vec<u64> = machine.map(black_pixels, |(x, y)| {
        assert!(
            (x as u64) < (1u64 << order) && (y as u64) < (1u64 << order),
            "pixel ({x}, {y}) outside 2^{order} image"
        );
        z_order(x, y)
    });
    if !codes.is_empty() {
        let seg = Segments::single(codes.len());
        let order_perm = machine.segmented_sort_perm(&seg, &codes, |a, b| a.cmp(b));
        codes = machine.gather(&codes, &order_perm);
        for w in codes.windows(2) {
            assert!(w[0] != w[1], "duplicate black pixel (code {})", w[0]);
        }
    }
    let mut levels: Vec<u8> = vec![0; codes.len()];

    // Bottom-up sibling merging, one level per round.
    for round in 0..order {
        if codes.len() < 4 {
            break;
        }
        machine.bump_rounds();
        let level = round as u8;
        // A lane starts a mergeable quadruple when it and its next three
        // lanes are the four siblings of one parent at `level`
        // (elementwise over shifted views — a constant number of vector
        // ops).
        machine.note_elementwise();
        let n = codes.len();
        let block_pixels = 1u64 << (2 * level);
        let mut merge_head = vec![false; n];
        for i in 0..n.saturating_sub(3) {
            if levels[i] != level {
                continue;
            }
            let parent_pixels = block_pixels * 4;
            let aligned = codes[i] % parent_pixels == 0;
            let ok = aligned
                && (1..4).all(|k| {
                    levels[i + k] == level && codes[i + k] == codes[i] + k as u64 * block_pixels
                });
            merge_head[i] = ok;
        }
        if !merge_head.iter().any(|&b| b) {
            continue;
        }
        // Promote heads to the parent level; delete the trailing three
        // siblings with the deletion primitive.
        machine.note_elementwise();
        let mut delete = vec![false; n];
        for i in 0..n {
            if merge_head[i] {
                levels[i] = level + 1;
                delete[i + 1] = true;
                delete[i + 2] = true;
                delete[i + 3] = true;
            }
        }
        let seg = Segments::single(n);
        let layout = machine.delete_layout(&seg, &delete);
        codes = machine.apply_delete(&codes, &layout);
        levels = machine.apply_delete(&levels, &layout);
    }

    let blocks = codes
        .into_iter()
        .zip(levels)
        .map(|(code, level)| Block { code, level })
        .collect();
    RegionQuadtree { order, blocks }
}

impl RegionQuadtree {
    /// Constructs directly from sorted disjoint blocks (used by the set
    /// operations; validated in debug builds).
    fn from_blocks(order: u32, blocks: Vec<Block>) -> Self {
        debug_assert!(blocks.windows(2).all(|w| w[0].code_end() <= w[1].code));
        RegionQuadtree { order, blocks }
    }

    /// Image order (side = `2^order` pixels).
    pub fn order(&self) -> u32 {
        self.order
    }

    /// The sorted maximal black blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of black pixels (a region property, computed by one scan in
    /// the model; plain fold here).
    pub fn black_area(&self) -> u64 {
        self.blocks.iter().map(|b| b.pixels()).sum()
    }

    /// Is pixel `(x, y)` black? Binary search over the block list.
    ///
    /// # Panics
    ///
    /// Panics if the pixel lies outside the image.
    pub fn contains_pixel(&self, x: u32, y: u32) -> bool {
        assert!(
            (x as u64) < (1u64 << self.order) && (y as u64) < (1u64 << self.order),
            "pixel ({x}, {y}) outside 2^{} image",
            self.order
        );
        let code = z_order(x, y);
        match self.blocks.binary_search_by(|b| b.code.cmp(&code)) {
            Ok(_) => true,
            Err(ins) => ins > 0 && self.blocks[ins - 1].contains_code(code),
        }
    }

    /// Union of two region quadtrees over the same image (merging the
    /// block lists and re-normalizing to maximal blocks).
    ///
    /// # Panics
    ///
    /// Panics if the image orders differ.
    pub fn union(&self, other: &RegionQuadtree) -> RegionQuadtree {
        assert_eq!(self.order, other.order, "image orders differ");
        // Merge the two sorted lists, keeping the larger block when one
        // contains the other.
        let mut merged: Vec<Block> = Vec::with_capacity(self.blocks.len() + other.blocks.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.blocks.len() || j < other.blocks.len() {
            let next = match (self.blocks.get(i), other.blocks.get(j)) {
                (Some(a), Some(b)) => {
                    if a.code <= b.code {
                        i += 1;
                        *a
                    } else {
                        j += 1;
                        *b
                    }
                }
                (Some(a), None) => {
                    i += 1;
                    *a
                }
                (None, Some(b)) => {
                    j += 1;
                    *b
                }
                (None, None) => unreachable!(),
            };
            match merged.last() {
                Some(last) if last.code_end() > next.code => {
                    // Overlap: keep whichever covers more (blocks are
                    // quadtree-aligned, so one contains the other).
                    if next.code_end() > last.code_end() {
                        merged.pop();
                        merged.push(next);
                    }
                }
                _ => merged.push(next),
            }
        }
        RegionQuadtree::from_blocks(self.order, merged).normalized()
    }

    /// Intersection of two region quadtrees over the same image.
    ///
    /// # Panics
    ///
    /// Panics if the image orders differ.
    pub fn intersection(&self, other: &RegionQuadtree) -> RegionQuadtree {
        assert_eq!(self.order, other.order, "image orders differ");
        let mut out: Vec<Block> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.blocks.len() && j < other.blocks.len() {
            let (a, b) = (self.blocks[i], other.blocks[j]);
            // Intersection of two aligned blocks is empty or the smaller.
            let lo = a.code.max(b.code);
            let hi = a.code_end().min(b.code_end());
            if lo < hi {
                out.push(if a.pixels() <= b.pixels() { a } else { b });
            }
            if a.code_end() <= b.code_end() {
                i += 1;
            } else {
                j += 1;
            }
        }
        RegionQuadtree::from_blocks(self.order, out).normalized()
    }

    /// Re-merges complete sibling quadruples so every block is maximal
    /// (set operations can create four mergeable siblings).
    fn normalized(mut self) -> RegionQuadtree {
        loop {
            let mut merged_any = false;
            let mut out: Vec<Block> = Vec::with_capacity(self.blocks.len());
            let mut i = 0usize;
            while i < self.blocks.len() {
                let b = self.blocks[i];
                let parent_pixels = b.pixels() * 4;
                let mergeable = b.code % parent_pixels == 0
                    && i + 3 < self.blocks.len()
                    && (1..4).all(|k| {
                        let s = self.blocks[i + k];
                        s.level == b.level && s.code == b.code + k as u64 * b.pixels()
                    });
                if mergeable {
                    out.push(Block {
                        code: b.code,
                        level: b.level + 1,
                    });
                    i += 4;
                    merged_any = true;
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            self.blocks = out;
            if !merged_any {
                return self;
            }
        }
    }

    /// All black pixels, decoded (for testing and rasterization).
    pub fn to_pixels(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::with_capacity(self.black_area() as usize);
        for b in &self.blocks {
            for code in b.code..b.code_end() {
                out.push(decode_code(code));
            }
        }
        out
    }

    /// Total boundary length between black and white (image-border edges
    /// of black pixels included) — a classic region property extracted
    /// from linear quadtrees (\[Bhas88\]'s "extracting region properties").
    /// Walks each block's exposed sides, probing the neighbouring pixels.
    pub fn perimeter(&self) -> u64 {
        let n = 1u64 << self.order;
        let mut total = 0u64;
        for b in &self.blocks {
            let (bx, by) = decode_code(b.code);
            let side = 1u32 << b.level;
            for k in 0..side {
                // West and east columns.
                if bx == 0 || !self.contains_pixel(bx - 1, by + k) {
                    total += 1;
                }
                if (bx + side) as u64 >= n || !self.contains_pixel(bx + side, by + k) {
                    total += 1;
                }
                // South and north rows.
                if by == 0 || !self.contains_pixel(bx + k, by - 1) {
                    total += 1;
                }
                if (by + side) as u64 >= n || !self.contains_pixel(bx + k, by + side) {
                    total += 1;
                }
            }
        }
        total
    }

    /// Number of blocks (the storage metric of the region-quadtree
    /// literature).
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

/// Decodes a Morton code back to pixel coordinates.
fn decode_code(code: u64) -> (u32, u32) {
    fn compact(mut v: u64) -> u32 {
        v &= 0x5555_5555_5555_5555;
        v = (v | (v >> 1)) & 0x3333_3333_3333_3333;
        v = (v | (v >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
        v = (v | (v >> 4)) & 0x00FF_00FF_00FF_00FF;
        v = (v | (v >> 8)) & 0x0000_FFFF_0000_FFFF;
        v = (v | (v >> 16)) & 0x0000_0000_FFFF_FFFF;
        v as u32
    }
    (compact(code >> 1), compact(code))
}

/// Reference sequential check: the number of ids used for parity with the
/// segment structures' id type.
pub type PixelId = SegId;

#[cfg(test)]
mod tests {
    use super::*;
    use scan_model::Backend;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn full_image(order: u32) -> Vec<(u32, u32)> {
        let n = 1u32 << order;
        (0..n).flat_map(|x| (0..n).map(move |y| (x, y))).collect()
    }

    #[test]
    fn full_image_collapses_to_one_block() {
        for m in machines() {
            let t = build_region_quadtree(&m, 3, &full_image(3));
            assert_eq!(t.num_blocks(), 1);
            assert_eq!(t.blocks()[0], Block { code: 0, level: 3 });
            assert_eq!(t.black_area(), 64);
        }
    }

    #[test]
    fn empty_image() {
        for m in machines() {
            let t = build_region_quadtree(&m, 4, &[]);
            assert_eq!(t.num_blocks(), 0);
            assert_eq!(t.black_area(), 0);
            assert!(!t.contains_pixel(3, 3));
        }
    }

    #[test]
    fn single_pixel_and_quadrant() {
        for m in machines() {
            let t = build_region_quadtree(&m, 2, &[(1, 1)]);
            assert_eq!(t.num_blocks(), 1);
            assert_eq!(t.blocks()[0].level, 0);
            assert!(t.contains_pixel(1, 1));
            assert!(!t.contains_pixel(1, 2));

            // One full 2x2 quadrant merges to a level-1 block.
            let quad = vec![(0, 0), (0, 1), (1, 0), (1, 1)];
            let t = build_region_quadtree(&m, 2, &quad);
            assert_eq!(t.num_blocks(), 1);
            assert_eq!(t.blocks()[0].level, 1);
        }
    }

    #[test]
    fn membership_matches_input_exactly() {
        for m in machines() {
            // A deterministic pseudo-random blob.
            let order = 5u32;
            let n = 1u32 << order;
            let black: Vec<(u32, u32)> = (0..n)
                .flat_map(|x| (0..n).map(move |y| (x, y)))
                .filter(|&(x, y)| (x * x + 3 * y + x * y) % 7 < 3)
                .collect();
            let t = build_region_quadtree(&m, order, &black);
            assert_eq!(t.black_area() as usize, black.len());
            for x in 0..n {
                for y in 0..n {
                    let want = (x * x + 3 * y + x * y) % 7 < 3;
                    assert_eq!(t.contains_pixel(x, y), want, "pixel ({x},{y})");
                }
            }
            // Maximality: fewer blocks than pixels for blobby data.
            assert!(t.num_blocks() < black.len());
            // Round-trip through decoding.
            let mut pixels = t.to_pixels();
            pixels.sort_unstable();
            let mut want = black.clone();
            want.sort_unstable();
            assert_eq!(pixels, want);
        }
    }

    #[test]
    fn blocks_are_maximal() {
        for m in machines() {
            let order = 4u32;
            let black = full_image(order);
            // Remove one pixel: the tree must decompose around the hole.
            let holey: Vec<(u32, u32)> = black
                .into_iter()
                .filter(|&(x, y)| !(x == 5 && y == 9))
                .collect();
            let t = build_region_quadtree(&m, order, &holey);
            assert_eq!(t.black_area() as usize, holey.len());
            // No four siblings left unmerged.
            for w in t.blocks().windows(4) {
                let b = w[0];
                let all_siblings = b.code % (b.pixels() * 4) == 0
                    && (1..4).all(|k| {
                        w[k].level == b.level && w[k].code == b.code + k as u64 * b.pixels()
                    });
                assert!(!all_siblings, "unmerged quadruple at code {}", b.code);
            }
        }
    }

    #[test]
    fn union_and_intersection_match_pixel_sets() {
        for m in machines() {
            let order = 4u32;
            let n = 1u32 << order;
            let a_px: Vec<(u32, u32)> = (0..n)
                .flat_map(|x| (0..n).map(move |y| (x, y)))
                .filter(|&(x, y)| x < 8 && y < 12)
                .collect();
            let b_px: Vec<(u32, u32)> = (0..n)
                .flat_map(|x| (0..n).map(move |y| (x, y)))
                .filter(|&(x, y)| x >= 4 && y >= 2)
                .collect();
            let a = build_region_quadtree(&m, order, &a_px);
            let b = build_region_quadtree(&m, order, &b_px);
            let u = a.union(&b);
            let i = a.intersection(&b);
            for x in 0..n {
                for y in 0..n {
                    let in_a = x < 8 && y < 12;
                    let in_b = x >= 4 && y >= 2;
                    assert_eq!(u.contains_pixel(x, y), in_a || in_b, "union ({x},{y})");
                    assert_eq!(
                        i.contains_pixel(x, y),
                        in_a && in_b,
                        "intersection ({x},{y})"
                    );
                }
            }
            // Areas agree with the set sizes.
            let inter_count = (0..n)
                .flat_map(|x| (0..n).map(move |y| (x, y)))
                .filter(|&(x, y)| x < 8 && y < 12 && x >= 4 && y >= 2)
                .count();
            assert_eq!(i.black_area() as usize, inter_count);
            assert_eq!(
                u.black_area() as usize,
                a_px.len() + b_px.len() - inter_count
            );
            // Results are normalized (maximal blocks): union of the two
            // overlapping rectangles has far fewer blocks than pixels.
            assert!(u.num_blocks() < u.black_area() as usize / 2);
        }
    }

    #[test]
    fn union_with_containment() {
        for m in machines() {
            let order = 3u32;
            let big = build_region_quadtree(&m, order, &full_image(order));
            let small = build_region_quadtree(&m, order, &[(2, 2), (5, 1)]);
            let u = small.union(&big);
            assert_eq!(u, big.clone().normalized());
            let i = small.intersection(&big);
            assert_eq!(i.black_area(), 2);
        }
    }

    #[test]
    fn perimeter_matches_pixel_count() {
        for m in machines() {
            // Full image: perimeter = 4 * side.
            let t = build_region_quadtree(&m, 3, &full_image(3));
            assert_eq!(t.perimeter(), 4 * 8);
            // Single pixel.
            let t = build_region_quadtree(&m, 3, &[(3, 4)]);
            assert_eq!(t.perimeter(), 4);
            // Two horizontally adjacent pixels share one edge: 6.
            let t = build_region_quadtree(&m, 3, &[(3, 4), (4, 4)]);
            assert_eq!(t.perimeter(), 6);
            // Random blob: brute-force per-pixel comparison.
            let order = 4u32;
            let n = 1u32 << order;
            let black: Vec<(u32, u32)> = (0..n)
                .flat_map(|x| (0..n).map(move |y| (x, y)))
                .filter(|&(x, y)| (3 * x + 5 * y + x * y) % 6 < 3)
                .collect();
            let t = build_region_quadtree(&m, order, &black);
            let is_black = |x: i64, y: i64| {
                x >= 0
                    && y >= 0
                    && x < n as i64
                    && y < n as i64
                    && black.contains(&(x as u32, y as u32))
            };
            let mut want = 0u64;
            for &(x, y) in &black {
                for (dx, dy) in [(1i64, 0i64), (-1, 0), (0, 1), (0, -1)] {
                    if !is_black(x as i64 + dx, y as i64 + dy) {
                        want += 1;
                    }
                }
            }
            assert_eq!(t.perimeter(), want);
        }
    }

    #[test]
    fn backends_agree() {
        let order = 5u32;
        let n = 1u32 << order;
        let black: Vec<(u32, u32)> = (0..n)
            .flat_map(|x| (0..n).map(move |y| (x, y)))
            .filter(|&(x, y)| (x + 2 * y) % 5 != 0)
            .collect();
        let a = build_region_quadtree(&Machine::sequential(), order, &black);
        let b = build_region_quadtree(
            &Machine::new(Backend::Parallel).with_par_threshold(1),
            order,
            &black,
        );
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "duplicate black pixel")]
    fn duplicate_pixels_rejected() {
        build_region_quadtree(&Machine::sequential(), 3, &[(1, 1), (1, 1)]);
    }

    #[test]
    #[should_panic(expected = "orders differ")]
    fn mismatched_orders_rejected() {
        let m = Machine::sequential();
        let a = build_region_quadtree(&m, 3, &[]);
        let b = build_region_quadtree(&m, 4, &[]);
        let _ = a.union(&b);
    }
}
