//! Spatial partitioning of a segment collection into index shards.
//!
//! The service layer (crate `dp-service`) splits the world into a
//! `g × g` grid of tiles and builds one quadtree per tile over the
//! segments that touch it. This module holds the partitioning logic the
//! service and its tests share:
//!
//! * [`ShardGrid`] — the tile geometry plus query routing (which shards a
//!   window overlaps, which shard owns a point);
//! * [`ShardGrid::assign_segments`] — the build-time partition: a segment
//!   belongs to every tile it (closed-)intersects, mirroring the q-edge
//!   rule of the paper's quadtrees where a line belongs to every block it
//!   passes through (Sec. 2.1);
//! * [`ShardIndex`] / [`build_shard`] — one shard's bucket PMR quadtree
//!   (paper Sec. 5.2) over its assigned subset.
//!
//! Shard trees keep the **original** segment geometry and span the full
//! world rectangle: the tree only subdivides where its subset has lines,
//! so an off-tile region costs a handful of empty blocks, and the build's
//! half-open containment precondition holds without rewriting endpoints.
//! Correctness of routing window queries: any intersection point of a
//! segment `s` with a window `q` lies in some tile `T`; `q` overlaps `T`,
//! so the request is routed there, and `s` touches `T`, so `T`'s shard
//! indexes `s`. Segments spanning several tiles are simply reported by
//! several shards; the merge step deduplicates.

use crate::bucket_pmr::build_bucket_pmr;
use crate::quadtree::DpQuadtree;
use crate::SegId;
use dp_geom::{clip_segment_closed, LineSeg, Point, Rect};
use scan_model::Machine;

/// A `g × g` grid of tiles partitioning a world rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardGrid {
    world: Rect,
    grid: u32,
}

impl ShardGrid {
    /// A grid of `grid × grid` tiles over `world`.
    ///
    /// # Panics
    ///
    /// Panics unless `grid` is a positive power of two (tile edges then
    /// coincide with quadtree split coordinates and stay exact in `f64`
    /// for the dyadic worlds the workloads use).
    pub fn new(world: Rect, grid: u32) -> Self {
        assert!(
            grid.is_power_of_two(),
            "shard grid {grid} must be a power of two"
        );
        ShardGrid { world, grid }
    }

    /// The world rectangle.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// Tiles per side.
    pub fn grid(&self) -> u32 {
        self.grid
    }

    /// Total number of shards (`grid²`).
    pub fn num_shards(&self) -> usize {
        (self.grid * self.grid) as usize
    }

    fn tile_size(&self) -> (f64, f64) {
        (
            (self.world.max.x - self.world.min.x) / self.grid as f64,
            (self.world.max.y - self.world.min.y) / self.grid as f64,
        )
    }

    /// The tile at column `ix`, row `iy` (both in `0..grid`, rows from
    /// `world.min.y` upward).
    pub fn tile(&self, ix: u32, iy: u32) -> Rect {
        assert!(ix < self.grid && iy < self.grid);
        let (tw, th) = self.tile_size();
        Rect::from_coords(
            self.world.min.x + ix as f64 * tw,
            self.world.min.y + iy as f64 * th,
            self.world.min.x + (ix + 1) as f64 * tw,
            self.world.min.y + (iy + 1) as f64 * th,
        )
    }

    /// The tile of shard `index` (row-major: `index = iy * grid + ix`).
    pub fn tile_of(&self, index: usize) -> Rect {
        let g = self.grid as usize;
        assert!(index < self.num_shards());
        self.tile((index % g) as u32, (index / g) as u32)
    }

    /// Candidate index range along one axis, widened by one tile on each
    /// side; the caller filters the candidates with the exact closed
    /// rectangle test so boundary-touching windows route to every shard
    /// [`Rect::intersects`] says they touch.
    fn axis_candidates(&self, lo: f64, hi: f64, wmin: f64, tile: f64) -> Option<(u32, u32)> {
        if hi < lo {
            return None; // empty rectangle
        }
        let g = self.grid;
        let wmax = wmin + g as f64 * tile;
        if hi < wmin || lo > wmax {
            return None;
        }
        let raw_lo = ((lo - wmin) / tile).floor();
        let raw_hi = ((hi - wmin) / tile).floor();
        let a = if raw_lo <= 1.0 {
            0
        } else {
            (raw_lo as u32 - 1).min(g - 1)
        };
        let b = if raw_hi < 0.0 {
            0
        } else {
            (raw_hi as u32).saturating_add(1).min(g - 1)
        };
        Some((a, b))
    }

    /// Indices of every shard whose tile (closed-)intersects `query`, in
    /// ascending row-major order. Empty for an empty or out-of-world
    /// rectangle. Shared boundaries count: a window edge lying exactly on
    /// a tile boundary routes to the tiles on both sides, matching
    /// [`Rect::intersects`].
    pub fn shards_overlapping(&self, query: &Rect) -> Vec<usize> {
        let (tw, th) = self.tile_size();
        let Some((x0, x1)) = self.axis_candidates(query.min.x, query.max.x, self.world.min.x, tw)
        else {
            return Vec::new();
        };
        let Some((y0, y1)) = self.axis_candidates(query.min.y, query.max.y, self.world.min.y, th)
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                if self.tile(ix, iy).intersects(query) {
                    out.push((iy * self.grid + ix) as usize);
                }
            }
        }
        out
    }

    /// The lowest-index shard whose tile (closed-)intersects `query` —
    /// `shards_overlapping(query).first()` without the allocation. The
    /// admission router calls this once per arriving request, so the
    /// `Vec` the full enumeration builds would be pure routing overhead.
    pub fn first_shard_overlapping(&self, query: &Rect) -> Option<usize> {
        let (tw, th) = self.tile_size();
        let (x0, x1) = self.axis_candidates(query.min.x, query.max.x, self.world.min.x, tw)?;
        let (y0, y1) = self.axis_candidates(query.min.y, query.max.y, self.world.min.y, th)?;
        for iy in y0..=y1 {
            for ix in x0..=x1 {
                if self.tile(ix, iy).intersects(query) {
                    return Some((iy * self.grid + ix) as usize);
                }
            }
        }
        None
    }

    /// The shard whose half-open tile contains `p`, or `None` when `p`
    /// lies outside the half-open world. Exactly one shard owns any
    /// in-world point (tiles partition the world under half-open
    /// membership, like quadtree blocks).
    pub fn shard_of_point(&self, p: Point) -> Option<usize> {
        if !self.world.contains_half_open(p) {
            return None;
        }
        let (tw, th) = self.tile_size();
        let ix = (((p.x - self.world.min.x) / tw).floor() as u32).min(self.grid - 1);
        let iy = (((p.y - self.world.min.y) / th).floor() as u32).min(self.grid - 1);
        // Guard against a float quotient landing one tile high for a point
        // just below a boundary: step back while the tile misses the point.
        let fix = |mut i: u32, coord: f64, wmin: f64, t: f64| {
            while i > 0 && coord < wmin + i as f64 * t {
                i -= 1;
            }
            i
        };
        let ix = fix(ix, p.x, self.world.min.x, tw);
        let iy = fix(iy, p.y, self.world.min.y, th);
        Some((iy * self.grid + ix) as usize)
    }

    /// Partitions `segs` over the tiles: shard `i` receives the ids of
    /// every segment that (closed-)intersects tile `i`. A segment
    /// crossing tile boundaries appears in every tile it touches.
    pub fn assign_segments(&self, segs: &[LineSeg]) -> Vec<Vec<SegId>> {
        let mut assignment = vec![Vec::new(); self.num_shards()];
        for (id, s) in segs.iter().enumerate() {
            let bbox = Rect::from_coords(
                s.a.x.min(s.b.x),
                s.a.y.min(s.b.y),
                s.a.x.max(s.b.x),
                s.a.y.max(s.b.y),
            );
            for shard in self.shards_overlapping(&bbox) {
                if clip_segment_closed(s, &self.tile_of(shard)).is_some() {
                    assignment[shard].push(id as SegId);
                }
            }
        }
        assignment
    }
}

/// One shard: its tile, its bucket PMR quadtree over the assigned subset,
/// and the local→global id map.
#[derive(Debug, Clone)]
pub struct ShardIndex {
    /// The tile this shard is responsible for.
    pub tile: Rect,
    /// Bucket PMR quadtree over [`ShardIndex::segs`] (local ids). The tree
    /// spans the full world, not the tile — see the module docs.
    pub tree: DpQuadtree,
    /// Original geometry of the assigned segments, indexed by local id.
    pub segs: Vec<LineSeg>,
    /// `global_ids[local]` is the id of the segment in the service's full
    /// collection.
    pub global_ids: Vec<SegId>,
}

/// Builds one shard's index: the bucket PMR quadtree (paper Sec. 5.2)
/// over the segments `ids` assigned to `tile`, keeping original geometry.
pub fn build_shard(
    machine: &Machine,
    world: Rect,
    tile: Rect,
    all_segs: &[LineSeg],
    ids: &[SegId],
    capacity: usize,
    max_depth: usize,
) -> ShardIndex {
    let segs: Vec<LineSeg> = ids.iter().map(|&id| all_segs[id as usize]).collect();
    let tree = build_bucket_pmr(machine, world, &segs, capacity, max_depth);
    ShardIndex {
        tile,
        tree,
        segs,
        global_ids: ids.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 64.0, 64.0)
    }

    /// Reference routing: test every tile.
    fn brute_overlap(grid: &ShardGrid, q: &Rect) -> Vec<usize> {
        (0..grid.num_shards())
            .filter(|&i| grid.tile_of(i).intersects(q))
            .collect()
    }

    #[test]
    fn tiles_partition_the_world() {
        let g = ShardGrid::new(world(), 4);
        assert_eq!(g.num_shards(), 16);
        let mut area = 0.0;
        for i in 0..g.num_shards() {
            let t = g.tile_of(i);
            area += (t.max.x - t.min.x) * (t.max.y - t.min.y);
        }
        assert_eq!(area, 64.0 * 64.0);
        // Every in-world point is owned by exactly one shard, and that
        // shard's tile half-open-contains it.
        for &(x, y) in &[
            (0.0, 0.0),
            (15.9, 16.0),
            (16.0, 16.0),
            (63.9, 63.9),
            (32.0, 0.0),
        ] {
            let p = Point::new(x, y);
            let s = g.shard_of_point(p).unwrap();
            assert!(g.tile_of(s).contains_half_open(p), "point {p:?} shard {s}");
            let owners = (0..g.num_shards())
                .filter(|&i| g.tile_of(i).contains_half_open(p))
                .count();
            assert_eq!(owners, 1);
        }
        assert_eq!(g.shard_of_point(Point::new(64.0, 1.0)), None);
        assert_eq!(g.shard_of_point(Point::new(1.0, -0.1)), None);
    }

    #[test]
    fn routing_matches_brute_force() {
        for grid in [1u32, 2, 4, 8] {
            let g = ShardGrid::new(world(), grid);
            let queries = [
                Rect::from_coords(0.0, 0.0, 64.0, 64.0),
                Rect::from_coords(1.0, 1.0, 2.0, 2.0),
                Rect::from_coords(16.0, 16.0, 16.0, 16.0), // degenerate on boundary
                Rect::point(Point::new(31.5, 33.0)),
                Rect::from_coords(16.0, 0.0, 48.0, 64.0),
                Rect::from_coords(-10.0, -10.0, 200.0, 200.0),
                Rect::from_coords(70.0, 70.0, 80.0, 80.0), // out of world
                Rect::from_coords(0.0, 32.0, 64.0, 32.0),  // boundary-aligned line
                Rect::empty(),
            ];
            for q in &queries {
                assert_eq!(
                    g.shards_overlapping(q),
                    brute_overlap(&g, q),
                    "grid {grid} query {q}"
                );
                assert_eq!(
                    g.first_shard_overlapping(q),
                    g.shards_overlapping(q).first().copied(),
                    "grid {grid} query {q}"
                );
            }
        }
    }

    #[test]
    fn boundary_window_routes_to_both_sides() {
        let g = ShardGrid::new(world(), 2);
        // A degenerate window on the centre split line touches all four.
        let q = Rect::point(Point::new(32.0, 32.0));
        assert_eq!(g.shards_overlapping(&q), vec![0, 1, 2, 3]);
    }

    #[test]
    fn assignment_covers_every_segment() {
        let g = ShardGrid::new(world(), 4);
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 2.0, 2.0),    // inside tile 0
            LineSeg::from_coords(1.0, 1.0, 60.0, 60.0),  // diagonal across many
            LineSeg::from_coords(0.0, 16.0, 63.0, 16.0), // along a tile boundary
        ];
        let assignment = g.assign_segments(&segs);
        let mut seen = vec![0usize; segs.len()];
        for (shard, ids) in assignment.iter().enumerate() {
            for &id in ids {
                seen[id as usize] += 1;
                assert!(
                    clip_segment_closed(&segs[id as usize], &g.tile_of(shard)).is_some(),
                    "segment {id} assigned to non-touching shard {shard}"
                );
            }
        }
        assert!(seen.iter().all(|&c| c >= 1), "unassigned segment: {seen:?}");
        // The boundary-following segment belongs to the tiles on both sides.
        assert!(
            seen[2] >= 8,
            "boundary segment rides both rows: {}",
            seen[2]
        );
    }

    #[test]
    fn shard_query_union_matches_global_query() {
        let m = Machine::sequential();
        let segs: Vec<LineSeg> = (0..40)
            .map(|k| {
                let x = ((k * 13) % 60) as f64;
                let y = ((k * 29) % 60) as f64;
                LineSeg::from_coords(x, y, (x + 5.0).min(63.0), (y + 3.0).min(63.0))
            })
            .collect();
        let g = ShardGrid::new(world(), 2);
        let assignment = g.assign_segments(&segs);
        let shards: Vec<ShardIndex> = (0..g.num_shards())
            .map(|i| build_shard(&m, world(), g.tile_of(i), &segs, &assignment[i], 4, 8))
            .collect();
        let global = build_bucket_pmr(&m, world(), &segs, 4, 8);
        for q in [
            Rect::from_coords(0.0, 0.0, 64.0, 64.0),
            Rect::from_coords(10.0, 10.0, 40.0, 30.0),
            Rect::from_coords(31.0, 31.0, 33.0, 33.0),
        ] {
            let mut merged: Vec<SegId> = Vec::new();
            for s in g.shards_overlapping(&q) {
                let sh = &shards[s];
                for local in sh.tree.window_query(&q, &sh.segs) {
                    merged.push(sh.global_ids[local as usize]);
                }
            }
            merged.sort_unstable();
            merged.dedup();
            assert_eq!(merged, global.window_query(&q, &segs), "query {q}");
        }
    }
}
