//! R-tree node split selection (paper Sec. 4.7).
//!
//! Two algorithms, both vectorized over *all* overflowing nodes at once:
//!
//! * [`RtreeSplitAlgorithm::Mean`] — the O(1) split: the split axis and
//!   coordinate come from the **means of the bounding-box midpoints**,
//!   computed with a downward addition scan, a head division, and an
//!   upward copy-scan broadcast; the axis whose two resulting bounding
//!   boxes overlap least wins.
//! * [`RtreeSplitAlgorithm::Sweep`] — the O(log n) split: entries are
//!   **sorted by the left edge** of their boxes, upward inclusive and
//!   downward exclusive min/max scans give each position the bounding box
//!   of everything before and after it (the `L Bbox` / `R Bbox` rows of
//!   Fig. 29), every *legal* split position (both sides ≥ m) is scored by
//!   overlap, and the minimum wins; ties fall to the smaller total margin
//!   (the paper's perimeter tie-break). The same procedure runs on the
//!   y-axis and the better axis is chosen.
//!
//! The selector returns a per-item class bit (`false` = left group) which
//! the build feeds to the unshuffle primitive.

use dp_geom::Rect;
use scan_model::{Direction, FusedOp, Machine, ScanKind, Segments};

/// Which node split selector the R-tree build uses (paper Sec. 4.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RtreeSplitAlgorithm {
    /// O(1) mean-of-midpoints split (first algorithm of Sec. 4.7).
    Mean,
    /// O(log n) sorted-sweep minimal-overlap split (second algorithm of
    /// Sec. 4.7, used by the paper's build in Sec. 5.3).
    Sweep,
}

/// Per-segment minimum bounding rectangle of the masked items: 4 masked
/// min/max scans plus a head read (the "small sequence of upward and
/// downward inclusive scan operations" of Sec. 4.7).
fn masked_group_rects(
    machine: &Machine,
    seg: &Segments,
    mbrs: &[Rect],
    mask: &[bool],
) -> Vec<Rect> {
    // One elementwise pass fills all four masked extent lanes into
    // arena-leased buffers, then the four min/max scans run fused.
    machine.note_elementwise();
    let mut lo_x: Vec<f64> = machine.lease();
    let mut lo_y: Vec<f64> = machine.lease();
    let mut hi_x: Vec<f64> = machine.lease();
    let mut hi_y: Vec<f64> = machine.lease();
    for (r, &m) in mbrs.iter().zip(mask) {
        lo_x.push(if m { r.min.x } else { f64::INFINITY });
        lo_y.push(if m { r.min.y } else { f64::INFINITY });
        hi_x.push(if m { r.max.x } else { f64::NEG_INFINITY });
        hi_y.push(if m { r.max.y } else { f64::NEG_INFINITY });
    }
    let lanes: [(&[f64], FusedOp); 4] = [
        (&lo_x, FusedOp::Min),
        (&lo_y, FusedOp::Min),
        (&hi_x, FusedOp::Max),
        (&hi_y, FusedOp::Max),
    ];
    let mut outs: Vec<Vec<f64>> = (0..lanes.len()).map(|_| machine.lease()).collect();
    machine.scan_lanes_into(&lanes, seg, Direction::Down, ScanKind::Inclusive, &mut outs);
    machine.note_elementwise();
    let rects = seg
        .starts()
        .iter()
        .map(|&h| {
            if outs[0][h] > outs[2][h] || outs[1][h] > outs[3][h] {
                Rect::empty()
            } else {
                Rect::from_coords(outs[0][h], outs[1][h], outs[2][h], outs[3][h])
            }
        })
        .collect();
    for out in outs {
        machine.recycle(out);
    }
    machine.recycle(lo_x);
    machine.recycle(lo_y);
    machine.recycle(hi_x);
    machine.recycle(hi_y);
    rects
}

/// The minimum number of items each side of a split must receive.
///
/// The paper's legality rule is *proportional*: "each of the two
/// resulting nodes receives at least m/M of the lines being
/// redistributed" (Sec. 4.7). The proportional floor is what makes the
/// build take O(log n) rounds — every split shrinks a node geometrically,
/// never by a constant. For a minimal overflow (`len = M + 1`) it reduces
/// to exactly `m`, matching Guttman's node-level constraint.
pub fn split_floor(len: usize, m_min: usize, max: usize) -> usize {
    m_min.max(len * m_min / (max + 1))
}

/// Computes the per-item split classes for every overflowing segment.
///
/// `seg` groups the items (nodes' children or leaves' lines), `mbrs` are
/// the item bounding rectangles, `overflowing` marks which segments must
/// split, and `(m_min, max)` is the tree order — each side of a split
/// receives at least [`split_floor`] items. Items of non-overflowing
/// segments come back `false` (the subsequent unshuffle leaves them in
/// place).
///
/// # Panics
///
/// Panics if an overflowing segment has fewer than `2 * m_min` items (the
/// build guarantees `len > M >= 2m - 1`).
pub fn select_split_classes(
    machine: &Machine,
    seg: &Segments,
    mbrs: &[Rect],
    overflowing: &[bool],
    m_min: usize,
    max: usize,
    algo: RtreeSplitAlgorithm,
) -> Vec<bool> {
    assert_eq!(seg.num_segments(), overflowing.len());
    assert_eq!(seg.len(), mbrs.len());
    for (s, r) in seg.ranges().enumerate() {
        if overflowing[s] {
            assert!(
                r.len() >= 2 * m_min,
                "segment {s} has {} items, cannot give both sides {m_min}",
                r.len()
            );
        }
    }
    match algo {
        RtreeSplitAlgorithm::Mean => mean_split(machine, seg, mbrs, overflowing, m_min, max),
        RtreeSplitAlgorithm::Sweep => sweep_split(machine, seg, mbrs, overflowing, m_min, max),
    }
}

// ----------------------------------------------------------------------
// Mean split (O(1))
// ----------------------------------------------------------------------

fn mean_split(
    machine: &Machine,
    seg: &Segments,
    mbrs: &[Rect],
    overflowing: &[bool],
    m_min: usize,
    max: usize,
) -> Vec<bool> {
    let n = seg.len();
    // Midpoints and a count lane, filled in one elementwise pass into
    // leased buffers.
    machine.note_elementwise();
    let mut mid_x: Vec<f64> = machine.lease();
    let mut mid_y: Vec<f64> = machine.lease();
    let mut ones: Vec<f64> = machine.lease();
    for r in mbrs {
        let c = r.center();
        mid_x.push(c.x);
        mid_y.push(c.y);
        ones.push(1.0);
    }
    // Downward addition scans sum the midpoints (and the count lane rides
    // along fused); the head divides by the count and broadcasts back
    // with an upward copy scan (Sec. 4.7).
    let sum_lanes: [(&[f64], FusedOp); 3] = [
        (&mid_x, FusedOp::Sum),
        (&mid_y, FusedOp::Sum),
        (&ones, FusedOp::Sum),
    ];
    let mut sums: Vec<Vec<f64>> = (0..sum_lanes.len()).map(|_| machine.lease()).collect();
    machine.scan_lanes_into(
        &sum_lanes,
        seg,
        Direction::Down,
        ScanKind::Inclusive,
        &mut sums,
    );
    machine.note_elementwise();
    let mut head_mean_x = vec![0.0f64; n];
    let mut head_mean_y = vec![0.0f64; n];
    for &h in seg.starts() {
        head_mean_x[h] = sums[0][h] / sums[2][h];
        head_mean_y[h] = sums[1][h] / sums[2][h];
    }
    for s in sums {
        machine.recycle(s);
    }
    machine.recycle(ones);
    let mean_x = machine.broadcast_first(&head_mean_x, seg);
    let mean_y = machine.broadcast_first(&head_mean_y, seg);

    // Each item decides its side per axis.
    let side_x: Vec<bool> = machine.zip_map(&mid_x, &mean_x, |m, mu| m >= mu);
    let side_y: Vec<bool> = machine.zip_map(&mid_y, &mean_y, |m, mu| m >= mu);

    // Resulting group extents and overlaps per axis.
    let not_x: Vec<bool> = machine.map(&side_x, |b| !b);
    let not_y: Vec<bool> = machine.map(&side_y, |b| !b);
    let left_x = masked_group_rects(machine, seg, mbrs, &not_x);
    let right_x = masked_group_rects(machine, seg, mbrs, &side_x);
    let left_y = masked_group_rects(machine, seg, mbrs, &not_y);
    let right_y = masked_group_rects(machine, seg, mbrs, &side_y);

    // Side counts per segment (legality), fused into one two-lane
    // addition scan. The counts are small integers, exact in `f64`.
    machine.note_elementwise();
    let mut ones_x: Vec<f64> = machine.lease();
    let mut ones_y: Vec<f64> = machine.lease();
    for (&sx, &sy) in side_x.iter().zip(&side_y) {
        ones_x.push(sx as u64 as f64);
        ones_y.push(sy as u64 as f64);
    }
    let cnt_lanes: [(&[f64], FusedOp); 2] = [(&ones_x, FusedOp::Sum), (&ones_y, FusedOp::Sum)];
    let mut cnts: Vec<Vec<f64>> = (0..cnt_lanes.len()).map(|_| machine.lease()).collect();
    machine.scan_lanes_into(
        &cnt_lanes,
        seg,
        Direction::Down,
        ScanKind::Inclusive,
        &mut cnts,
    );

    // Per-segment axis choice.
    #[derive(Clone, Copy)]
    enum Choice {
        AxisX,
        AxisY,
        RankFallback,
    }
    machine.note_elementwise();
    let choices: Vec<Choice> = seg
        .ranges()
        .enumerate()
        .map(|(s, r)| {
            if !overflowing[s] {
                return Choice::RankFallback; // unused
            }
            let len = r.len() as f64;
            let h = r.start;
            let floor = split_floor(r.len(), m_min, max) as f64;
            let legal = |right: f64| right >= floor && (len - right) >= floor;
            let (lx, ly) = (legal(cnts[0][h]), legal(cnts[1][h]));
            let ov_x = left_x[s].overlap_area(&right_x[s]);
            let ov_y = left_y[s].overlap_area(&right_y[s]);
            match (lx, ly) {
                (true, true) => {
                    if ov_x <= ov_y {
                        Choice::AxisX
                    } else {
                        Choice::AxisY
                    }
                }
                (true, false) => Choice::AxisX,
                (false, true) => Choice::AxisY,
                (false, false) => Choice::RankFallback,
            }
        })
        .collect();

    // Per-item class under the chosen rule. The rank fallback splits the
    // segment at its midpoint in lane order — degenerate data (all
    // midpoints equal) still makes progress.
    let ranks = machine.rank_in_segment(seg);
    machine.note_elementwise();
    let mut class = vec![false; n];
    for (s, r) in seg.ranges().enumerate() {
        if !overflowing[s] {
            continue;
        }
        let half = r.len() / 2;
        for i in r.clone() {
            class[i] = match choices[s] {
                Choice::AxisX => side_x[i],
                Choice::AxisY => side_y[i],
                Choice::RankFallback => (ranks[i] as usize) >= r.len() - half,
            };
        }
    }
    for c in cnts {
        machine.recycle(c);
    }
    machine.recycle(ones_x);
    machine.recycle(ones_y);
    machine.recycle(mid_x);
    machine.recycle(mid_y);
    class
}

// ----------------------------------------------------------------------
// Sweep split (O(log n), Fig. 29)
// ----------------------------------------------------------------------

/// Per-axis sweep state: for each position in the axis-sorted order, the
/// bounding boxes of the prefix (inclusive) and suffix (exclusive), plus
/// the item's rank.
struct AxisSweep {
    /// Gather order that sorts each segment along the axis.
    order: Vec<usize>,
    /// For each *sorted position*, overlap of the split "after this
    /// position" (infinite when illegal).
    score: Vec<(f64, f64)>, // (overlap, margin)
    /// Rank of each sorted position within its segment.
    rank: Vec<u64>,
}

fn axis_sweep(
    machine: &Machine,
    seg: &Segments,
    mbrs: &[Rect],
    m_min: usize,
    max: usize,
    axis_y: bool,
) -> AxisSweep {
    // Sort by the left edge along the axis (Fig. 29's `ls:left side`).
    let keys: Vec<f64> = machine.map(mbrs, |r| if axis_y { r.min.y } else { r.min.x });
    let order = machine.segmented_sort_perm(seg, &keys, |a, b| a.total_cmp(b));
    let mut sorted: Vec<Rect> = machine.lease();
    machine.gather_into(mbrs, &order, &mut sorted);

    // One elementwise pass fills the four extent lanes of the sorted
    // boxes into leased buffers.
    machine.note_elementwise();
    let mut lo_x: Vec<f64> = machine.lease();
    let mut lo_y: Vec<f64> = machine.lease();
    let mut hi_x: Vec<f64> = machine.lease();
    let mut hi_y: Vec<f64> = machine.lease();
    for r in &sorted {
        lo_x.push(r.min.x);
        lo_y.push(r.min.y);
        hi_x.push(r.max.x);
        hi_y.push(r.max.y);
    }
    let lanes: [(&[f64], FusedOp); 4] = [
        (&lo_x, FusedOp::Min),
        (&lo_y, FusedOp::Min),
        (&hi_x, FusedOp::Max),
        (&hi_y, FusedOp::Max),
    ];
    // L Bbox: upward inclusive min/max scans (Fig. 29 rows
    // `L Bbox left side` / `L Bbox right side`, extended to full boxes),
    // fused into one four-lane pass.
    let mut l_outs: Vec<Vec<f64>> = (0..lanes.len()).map(|_| machine.lease()).collect();
    machine.scan_lanes_into(&lanes, seg, Direction::Up, ScanKind::Inclusive, &mut l_outs);
    // R Bbox: downward exclusive scans (Fig. 29's "analogous downward
    // min/max exclusive scans"), likewise fused.
    let mut r_outs: Vec<Vec<f64>> = (0..lanes.len()).map(|_| machine.lease()).collect();
    machine.scan_lanes_into(
        &lanes,
        seg,
        Direction::Down,
        ScanKind::Exclusive,
        &mut r_outs,
    );

    let rank = machine.rank_in_segment(seg);
    let lens = machine.segment_counts_broadcast(seg);

    // Score every split position (split after sorted position i).
    machine.note_elementwise();
    let score: Vec<(f64, f64)> = (0..seg.len())
        .map(|i| {
            let k = rank[i] + 1; // left group size
            let len = lens[i];
            let floor = split_floor(len as usize, m_min, max) as u64;
            if k < floor || len - k < floor {
                return (f64::INFINITY, f64::INFINITY);
            }
            let l = Rect::from_coords(l_outs[0][i], l_outs[1][i], l_outs[2][i], l_outs[3][i]);
            let r = Rect::from_coords(
                r_outs[0][i].min(r_outs[2][i]),
                r_outs[1][i].min(r_outs[3][i]),
                r_outs[2][i],
                r_outs[3][i],
            );
            (l.overlap_area(&r), l.margin() + r.margin())
        })
        .collect();

    for out in l_outs {
        machine.recycle(out);
    }
    for out in r_outs {
        machine.recycle(out);
    }
    machine.recycle(lo_x);
    machine.recycle(lo_y);
    machine.recycle(hi_x);
    machine.recycle(hi_y);
    machine.recycle(sorted);

    AxisSweep { order, score, rank }
}

fn sweep_split(
    machine: &Machine,
    seg: &Segments,
    mbrs: &[Rect],
    overflowing: &[bool],
    m_min: usize,
    max: usize,
) -> Vec<bool> {
    let x = axis_sweep(machine, seg, mbrs, m_min, max, false);
    let y = axis_sweep(machine, seg, mbrs, m_min, max, true);

    // Per-segment argmin over the legal split positions of each axis
    // (a min-reduction; one scan-equivalent per axis).
    machine.note_scan();
    machine.note_scan();
    let n = seg.len();
    let mut class = vec![false; n];
    for (s, r) in seg.ranges().enumerate() {
        if !overflowing[s] {
            continue;
        }
        let best_of = |sweep: &AxisSweep| -> ((f64, f64), u64) {
            let mut best = ((f64::INFINITY, f64::INFINITY), 0u64);
            for i in r.clone() {
                let sc = sweep.score[i];
                if sc < best.0 {
                    best = (sc, sweep.rank[i]);
                }
            }
            best
        };
        let (score_x, k_x) = best_of(&x);
        let (score_y, k_y) = best_of(&y);
        debug_assert!(
            score_x.0.is_finite() || score_y.0.is_finite(),
            "an overflowing segment must have a legal split"
        );
        // Minimal overlap wins; ties fall to the smaller margin sum
        // (the paper's perimeter tie-break).
        let (sweep, k) = if score_x <= score_y {
            (&x, k_x)
        } else {
            (&y, k_y)
        };
        // Items at sorted rank <= k go left.
        for j in r.clone() {
            let item = sweep.order[j];
            class[item] = sweep.rank[j] > k;
        }
    }
    machine.note_permute();
    class
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_model::ops::{Max, Min};
    use scan_model::Backend;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn rects(v: &[(f64, f64, f64, f64)]) -> Vec<Rect> {
        v.iter()
            .map(|&(a, b, c, d)| Rect::from_coords(a, b, c, d))
            .collect()
    }

    /// Paper Fig. 29: four boxes A–D sorted by left x-coordinate, with
    /// ls = [10, 20, 40, 60] and rs = [30, 50, 70, 80]. The L/R bbox scan
    /// rows must reproduce the figure's values exactly.
    #[test]
    fn fig29_sweep_scan_rows() {
        for m in machines() {
            let seg = Segments::single(4);
            let boxes = rects(&[
                (10.0, 0.0, 30.0, 1.0), // A
                (20.0, 0.0, 50.0, 1.0), // B
                (40.0, 0.0, 70.0, 1.0), // C
                (60.0, 0.0, 80.0, 1.0), // D
            ]);
            let ls: Vec<f64> = boxes.iter().map(|r| r.min.x).collect();
            let rs: Vec<f64> = boxes.iter().map(|r| r.max.x).collect();
            // L Bbox left side: upward min inclusive scan on ls.
            let l_left = m.up_scan_seg(&ls, &seg, Min, ScanKind::Inclusive);
            assert_eq!(l_left, vec![10.0, 10.0, 10.0, 10.0]);
            // L Bbox right side: upward max inclusive scan on rs.
            let l_right = m.up_scan_seg(&rs, &seg, Max, ScanKind::Inclusive);
            assert_eq!(l_right, vec![30.0, 50.0, 70.0, 80.0]);
            // R Bbox left side: downward min exclusive scan on ls.
            let r_left = m.scan(&ls, &seg, Min, Direction::Down, ScanKind::Exclusive);
            assert_eq!(r_left[0], 20.0);
            assert_eq!(r_left[1], 40.0); // paper: R Bbox of B starts at C = 40
            assert_eq!(r_left[2], 60.0);
            // R Bbox right side: downward max exclusive scan on rs.
            let r_right = m.scan(&rs, &seg, Max, Direction::Down, ScanKind::Exclusive);
            assert_eq!(r_right[0], 80.0);
            assert_eq!(r_right[1], 80.0); // paper: B's right bbox = [40, 80]
            assert_eq!(r_right[2], 80.0);
        }
    }

    #[test]
    fn sweep_separates_two_clusters() {
        for m in machines() {
            let seg = Segments::single(6);
            // Two clear clusters along x.
            let boxes = rects(&[
                (0.0, 0.0, 1.0, 1.0),
                (50.0, 0.0, 51.0, 1.0),
                (1.0, 1.0, 2.0, 2.0),
                (52.0, 2.0, 53.0, 3.0),
                (2.0, 0.0, 3.0, 1.0),
                (54.0, 0.0, 55.0, 1.0),
            ]);
            let class =
                select_split_classes(&m, &seg, &boxes, &[true], 2, 5, RtreeSplitAlgorithm::Sweep);
            assert_eq!(class, vec![false, true, false, true, false, true]);
        }
    }

    #[test]
    fn mean_separates_two_clusters() {
        for m in machines() {
            let seg = Segments::single(6);
            let boxes = rects(&[
                (0.0, 0.0, 1.0, 1.0),
                (50.0, 0.0, 51.0, 1.0),
                (1.0, 1.0, 2.0, 2.0),
                (52.0, 2.0, 53.0, 3.0),
                (2.0, 0.0, 3.0, 1.0),
                (54.0, 0.0, 55.0, 1.0),
            ]);
            let class =
                select_split_classes(&m, &seg, &boxes, &[true], 2, 5, RtreeSplitAlgorithm::Mean);
            assert_eq!(class, vec![false, true, false, true, false, true]);
        }
    }

    #[test]
    fn mean_fallback_on_identical_boxes() {
        for m in machines() {
            let seg = Segments::single(4);
            let boxes = rects(&[(1.0, 1.0, 2.0, 2.0); 4]);
            let class =
                select_split_classes(&m, &seg, &boxes, &[true], 2, 5, RtreeSplitAlgorithm::Mean);
            let left = class.iter().filter(|&&c| !c).count();
            assert_eq!(left, 2, "rank fallback must split evenly: {class:?}");
        }
    }

    #[test]
    fn sweep_identical_boxes_still_legal() {
        for m in machines() {
            let seg = Segments::single(5);
            let boxes = rects(&[(1.0, 1.0, 2.0, 2.0); 5]);
            let class =
                select_split_classes(&m, &seg, &boxes, &[true], 2, 5, RtreeSplitAlgorithm::Sweep);
            let left = class.iter().filter(|&&c| !c).count();
            assert!((2..=3).contains(&left), "both sides >= m: {class:?}");
        }
    }

    #[test]
    fn non_overflowing_segments_untouched() {
        for m in machines() {
            let seg = Segments::from_lengths(&[3, 4]).unwrap();
            let boxes = rects(&[
                (0.0, 0.0, 1.0, 1.0),
                (5.0, 0.0, 6.0, 1.0),
                (9.0, 0.0, 10.0, 1.0),
                (0.0, 0.0, 1.0, 1.0),
                (5.0, 0.0, 6.0, 1.0),
                (9.0, 0.0, 10.0, 1.0),
                (12.0, 0.0, 13.0, 1.0),
            ]);
            for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
                let class = select_split_classes(&m, &seg, &boxes, &[false, true], 2, 5, algo);
                assert_eq!(&class[..3], &[false, false, false], "{algo:?}");
                let left = class[3..].iter().filter(|&&c| !c).count();
                assert!((2..=5 - 2 + 1).contains(&left), "{algo:?}: {class:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "cannot give both sides")]
    fn undersized_overflow_rejected() {
        let m = Machine::sequential();
        let seg = Segments::single(3);
        let boxes = rects(&[(0.0, 0.0, 1.0, 1.0); 3]);
        select_split_classes(&m, &seg, &boxes, &[true], 2, 5, RtreeSplitAlgorithm::Sweep);
    }
}
