//! Spatial join over two quadtrees of the same world (the downstream
//! operation the paper's primitives were built for — its conclusion cites
//! the companion spatial-join papers [Hoel93, Hoel94a, Hoel94b]).
//!
//! Because both quadtrees regularly decompose the *same* space, their
//! blocks align: matching block pairs either coincide or nest, so a join
//! never needs the expensive processor reorderings that the R-tree's
//! overlapping nodes would force (paper Fig. 12). Two implementations
//! share that observation:
//!
//! * [`spatial_join`] / [`try_spatial_join`] — the sequential recursive
//!   co-traversal, kept as the oracle;
//! * [`frontier_join`] — the **breadth-first, data-parallel frontier
//!   join**: the frontier is a flat vector of candidate block pairs
//!   `(node_a, node_b)`, and each round — one [`JoinPolicy`] step on the
//!   shared [`RoundDriver`] — advances *every* pair one level in lockstep
//!   using the paper's own primitives:
//!
//!   1. retiring leaf×leaf pairs test their segment cross-products with
//!      one elementwise pass writing miss flags, and *concentrate* the
//!      intersecting pairs in place with the deletion primitive
//!      (Figs. 17–18) — the match count is the compacted length, so no
//!      counting scan rides along;
//!   2. surviving ambiguous pairs fan out ×4 against the finer side's
//!      children via [`Machine::fanout_layout`] — the generalized
//!      *cloning* of Figs. 13–14 (a coarser leaf block is cloned
//!      unchanged against each child of the finer internal block);
//!   3. dead children (an empty-leaf side) are deleted, and one
//!      *unshuffle* (Figs. 15–16) packs still-ambiguous pairs apart from
//!      the ready leaf×leaf pairs entering the next round.
//!
//!   Every frontier vector moves through arena-backed `_into` variants
//!   ([`Machine::lease`] / [`Machine::recycle`]), so rounds reuse scratch
//!   instead of reallocating, and every round records a
//!   [`scan_model::RoundTrace`] with its op-counter deltas. Each round
//!   issues a *constant* number of primitive operations and strictly
//!   deepens every non-leaf side, so rounds ≤ max(height(a), height(b)) —
//!   the paper's O(tree height) bound with O(1) primitives per round.

use crate::error::SpatialError;
use crate::quadtree::{DpQuadtree, QtNode};
use crate::round_driver::{RoundAdvance, RoundDriver, SplitPolicy};
use crate::SegId;
use dp_geom::{clip_segment_closed, segments_intersect, LineSeg, Rect};
use scan_model::{Machine, Segments};

/// All intersecting pairs `(id_a, id_b)` between the segment sets indexed
/// by `a` and `b`, sorted and deduplicated.
///
/// # Panics
///
/// Panics if the two trees cover different worlds; see
/// [`try_spatial_join`] for the checked variant.
pub fn spatial_join(
    a: &DpQuadtree,
    segs_a: &[LineSeg],
    b: &DpQuadtree,
    segs_b: &[LineSeg],
) -> Vec<(SegId, SegId)> {
    match try_spatial_join(a, segs_a, b, segs_b) {
        Ok(pairs) => pairs,
        Err(e) => panic!("spatial join requires both quadtrees to cover the same world: {e}"),
    }
}

/// Checked [`spatial_join`]: the sequential recursive co-traversal,
/// returning [`SpatialError::WorldMismatch`] instead of panicking when
/// the trees cover different worlds.
pub fn try_spatial_join(
    a: &DpQuadtree,
    segs_a: &[LineSeg],
    b: &DpQuadtree,
    segs_b: &[LineSeg],
) -> Result<Vec<(SegId, SegId)>, SpatialError> {
    if a.world() != b.world() {
        return Err(SpatialError::WorldMismatch {
            left: a.world(),
            right: b.world(),
        });
    }
    let mut pairs = Vec::new();
    join_rec(a, 0, b, 0, segs_a, segs_b, &mut pairs);
    pairs.sort_unstable();
    pairs.dedup();
    Ok(pairs)
}

fn join_rec(
    a: &DpQuadtree,
    na: usize,
    b: &DpQuadtree,
    nb: usize,
    segs_a: &[LineSeg],
    segs_b: &[LineSeg],
    out: &mut Vec<(SegId, SegId)>,
) {
    match (a.node(na), b.node(nb)) {
        (QtNode::Leaf { lines: la }, QtNode::Leaf { lines: lb }) => {
            for &ia in la {
                for &ib in lb {
                    if segments_intersect(&segs_a[ia as usize], &segs_b[ib as usize]) {
                        out.push((ia, ib));
                    }
                }
            }
        }
        (QtNode::Internal { children }, QtNode::Leaf { lines }) => {
            if lines.is_empty() {
                return;
            }
            for &c in children {
                join_rec(a, c, b, nb, segs_a, segs_b, out);
            }
        }
        (QtNode::Leaf { lines }, QtNode::Internal { children }) => {
            if lines.is_empty() {
                return;
            }
            for &c in children {
                join_rec(a, na, b, c, segs_a, segs_b, out);
            }
        }
        (QtNode::Internal { children: ca }, QtNode::Internal { children: cb }) => {
            for q in 0..4 {
                join_rec(a, ca[q], b, cb[q], segs_a, segs_b, out);
            }
        }
    }
}

/// Brute-force reference join (all-pairs), for validation and as the
/// baseline in the join benchmarks.
pub fn brute_force_join(segs_a: &[LineSeg], segs_b: &[LineSeg]) -> Vec<(SegId, SegId)> {
    let mut out = Vec::new();
    for (ia, sa) in segs_a.iter().enumerate() {
        for (ib, sb) in segs_b.iter().enumerate() {
            if segments_intersect(sa, sb) {
                out.push((ia as SegId, ib as SegId));
            }
        }
    }
    out
}

/// `true` when `a` and `b` intersect somewhere *inside* `window` (closed
/// semantics throughout): both segments are clipped to the window and the
/// clipped parts are tested, which is equivalent to asking for an
/// intersection point within the window.
pub fn pair_intersects_in(a: &LineSeg, b: &LineSeg, window: &Rect) -> bool {
    match (
        clip_segment_closed(a, window),
        clip_segment_closed(b, window),
    ) {
        (Some(ca), Some(cb)) => segments_intersect(&ca, &cb),
        _ => false,
    }
}

/// Brute-force *windowed* join: all pairs intersecting inside `window`.
/// The oracle for the sharded service's `Join` request family, where each
/// shard joins its overlap world and the router filters per window.
pub fn brute_force_join_in(
    segs_a: &[LineSeg],
    segs_b: &[LineSeg],
    window: &Rect,
) -> Vec<(SegId, SegId)> {
    let mut out = Vec::new();
    for (ia, sa) in segs_a.iter().enumerate() {
        for (ib, sb) in segs_b.iter().enumerate() {
            if pair_intersects_in(sa, sb, window) {
                out.push((ia as SegId, ib as SegId));
            }
        }
    }
    out
}

/// Result of a [`frontier_join`] run: the pairs plus the round-level
/// telemetry the complexity tests and benches assert on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinOutcome {
    /// Intersecting pairs `(id_a, id_b)`, sorted and deduplicated —
    /// bit-identical to [`spatial_join`] on the same inputs.
    pub pairs: Vec<(SegId, SegId)>,
    /// Frontier-expansion rounds the driver completed (≤ max tree
    /// height).
    pub rounds: usize,
    /// Largest candidate-pair frontier seen after any expansion.
    pub frontier_peak: usize,
    /// Segment pairs exactly tested in leaf×leaf blocks (before
    /// deduplication).
    pub pairs_tested: u64,
    /// Tests that hit (before deduplication); `pairs.len()` after.
    pub pairs_matched: u64,
}

/// How a candidate block pair relates to the next round. Stored as a
/// `u8` lane so the class computed during expansion is *cached* — the
/// next round's decide pass reads it linearly instead of re-touching
/// both tree nodes for every lane.
const DEAD: u8 = 0;
const READY: u8 = 1;
const AMBIG: u8 = 2;

/// The [`SplitPolicy`] of the data-parallel frontier join. "Splitting" a
/// frontier lane means expanding the block pair one level; "retiring" it
/// means either exact-testing a ready leaf×leaf pair or dropping a dead
/// one. See the module docs for the round anatomy.
pub struct JoinPolicy<'t> {
    a: &'t DpQuadtree,
    b: &'t DpQuadtree,
    segs_a: &'t [LineSeg],
    segs_b: &'t [LineSeg],
    /// Frontier lanes: `(node in a, node in b)` per candidate pair.
    nab: Vec<(u32, u32)>,
    /// Cached [`DEAD`]/[`READY`]/[`AMBIG`] class per lane, maintained by
    /// the expansion child-step.
    class: Vec<u8>,
    pairs: Vec<(SegId, SegId)>,
    frontier_peak: usize,
    pairs_tested: u64,
    pairs_matched: u64,
}

impl<'t> JoinPolicy<'t> {
    /// A fresh policy with the root×root pair as its only frontier lane.
    pub fn new(
        a: &'t DpQuadtree,
        segs_a: &'t [LineSeg],
        b: &'t DpQuadtree,
        segs_b: &'t [LineSeg],
    ) -> Self {
        let mut policy = JoinPolicy {
            a,
            b,
            segs_a,
            segs_b,
            nab: vec![(0, 0)],
            class: Vec::new(),
            pairs: Vec::new(),
            frontier_peak: 1,
            pairs_tested: 0,
            pairs_matched: 0,
        };
        let root = policy.classify(0, 0);
        policy.class.push(root);
        policy
    }

    fn classify(&self, na: u32, nb: u32) -> u8 {
        match (self.a.node(na as usize), self.b.node(nb as usize)) {
            (QtNode::Leaf { lines: la }, QtNode::Leaf { lines: lb }) => {
                if la.is_empty() || lb.is_empty() {
                    DEAD
                } else {
                    READY
                }
            }
            (QtNode::Internal { .. }, QtNode::Leaf { lines })
            | (QtNode::Leaf { lines }, QtNode::Internal { .. }) => {
                if lines.is_empty() {
                    DEAD
                } else {
                    AMBIG
                }
            }
            (QtNode::Internal { .. }, QtNode::Internal { .. }) => AMBIG,
        }
    }
}

impl SplitPolicy for JoinPolicy<'_> {
    fn active_elements(&self) -> usize {
        self.nab.len()
    }

    fn active_nodes(&self) -> usize {
        self.nab.len()
    }

    fn decide(&mut self, machine: &Machine) -> Vec<bool> {
        // One elementwise pass over the cached class lane (the expansion
        // step already touched every node — no need to do it again).
        machine.note_elementwise();
        self.class.iter().map(|&c| c == AMBIG).collect()
    }

    fn emit(&mut self, machine: &Machine, want: &[bool]) {
        // Lay out the segment cross-product of every retiring leaf×leaf
        // pair as flat test lanes, with the exact intersection test AND
        // the miss-deletion compaction fused into the same sweep: the
        // outer segment is loaded once per leaf row (exactly the
        // hoisting the recursive co-traversal enjoys) and only the
        // surviving lanes are ever written — the delete's "keep where
        // the flag is clear" applied at lane-creation time, so no miss
        // lane, no counting scan, no second pass re-gathering segments
        // by index. Three logical elementwise ops (lay out, test,
        // compact), one sweep.
        machine.note_elementwise();
        machine.note_elementwise();
        machine.note_elementwise();
        let (segs_a, segs_b) = (self.segs_a, self.segs_b);
        let mut hits: Vec<(SegId, SegId)> = machine.lease();
        let mut tested = 0u64;
        for (i, &w) in want.iter().enumerate() {
            if w || self.class[i] != READY {
                continue;
            }
            let (na, nb) = self.nab[i];
            if let (QtNode::Leaf { lines: la }, QtNode::Leaf { lines: lb }) =
                (self.a.node(na as usize), self.b.node(nb as usize))
            {
                for &sa in la {
                    let seg_a = &segs_a[sa as usize];
                    // Hoist the outer direction vector across the row:
                    // pairs whose inner endpoints sit strictly on one
                    // side of the outer line cannot intersect (no
                    // straddle, and a collinear touch needs a zero
                    // cross product), so two hoisted cross products
                    // retire most misses before the full exact test.
                    let (adx, ady) = (seg_a.b.x - seg_a.a.x, seg_a.b.y - seg_a.a.y);
                    for &sb in lb {
                        let seg_b = &segs_b[sb as usize];
                        let d3 = adx * (seg_b.a.y - seg_a.a.y) - ady * (seg_b.a.x - seg_a.a.x);
                        let d4 = adx * (seg_b.b.y - seg_a.a.y) - ady * (seg_b.b.x - seg_a.a.x);
                        let same_strict_side = (d3 > 0.0 && d4 > 0.0) || (d3 < 0.0 && d4 < 0.0);
                        if !same_strict_side && segments_intersect(seg_a, seg_b) {
                            hits.push((sa, sb));
                        }
                    }
                    tested += lb.len() as u64;
                }
            }
        }
        self.pairs_tested += tested;
        self.pairs.extend_from_slice(&hits);
        self.pairs_matched += hits.len() as u64;
        machine.recycle(hits);
    }

    fn partition(&mut self, machine: &Machine, want: &[bool]) {
        // 1. Concentrate the frontier: delete retired lanes (Figs. 17–18)
        //    in place. Every survivor is ambiguous, so the class lane is
        //    rebuilt wholesale by the child step below.
        let seg = Segments::single(self.nab.len());
        let mut retire: Vec<bool> = machine.lease();
        machine.map_into(want, |w| !w, &mut retire);
        let layout = machine.delete_layout(&seg, &retire);
        machine.recycle(retire);
        machine.apply_delete_in_place(&mut self.nab, &layout);

        // 2. Fan every ambiguous pair out ×4 (generalized cloning,
        //    Figs. 13–14): a coarser leaf block is cloned unchanged
        //    against each child of the finer internal block.
        let seg = Segments::single(self.nab.len());
        let mut four: Vec<u32> = machine.lease();
        four.resize(self.nab.len(), 4);
        let fan = machine.fanout_layout(&seg, &four);
        machine.recycle(four);
        machine.apply_fanout_swap(&mut self.nab, &fan);

        // 3. One elementwise child-and-classify step. After a uniform ×4
        //    fanout, lanes 4k..4k+4 share one parent pair, so each
        //    group's parent nodes are loaded once; copy rank r names the
        //    quadrant — an internal side descends to children[r], a leaf
        //    side stays put (aligned decompositions keep blocks nested).
        //    Classifying here, while the child nodes are warm, is what
        //    lets the next round's decide skip the tree entirely.
        machine.note_elementwise();
        self.class.clear();
        self.class.reserve(self.nab.len());
        debug_assert_eq!(self.nab.len() % 4, 0, "uniform fanout quadruples");
        for g in (0..self.nab.len()).step_by(4) {
            let (pa, pb) = self.nab[g];
            match (self.a.node(pa as usize), self.b.node(pb as usize)) {
                (QtNode::Internal { children: ca }, QtNode::Internal { children: cb }) => {
                    for r in 0..4 {
                        let pair = (ca[r] as u32, cb[r] as u32);
                        self.nab[g + r] = pair;
                        self.class.push(self.classify(pair.0, pair.1));
                    }
                }
                (QtNode::Internal { children: ca }, QtNode::Leaf { .. }) => {
                    for (r, &c) in ca.iter().enumerate() {
                        let pair = (c as u32, pb);
                        self.nab[g + r] = pair;
                        self.class.push(self.classify(pair.0, pair.1));
                    }
                }
                (QtNode::Leaf { .. }, QtNode::Internal { children: cb }) => {
                    for (r, &c) in cb.iter().enumerate() {
                        let pair = (pa, c as u32);
                        self.nab[g + r] = pair;
                        self.class.push(self.classify(pair.0, pair.1));
                    }
                }
                (QtNode::Leaf { .. }, QtNode::Leaf { .. }) => {
                    unreachable!("leaf×leaf lanes retire before expansion")
                }
            }
        }

        // 4. Drop dead children, then unshuffle (Figs. 15–16) so
        //    still-ambiguous pairs pack apart from ready leaf×leaf pairs —
        //    the class lane rides along through both reorderings.
        machine.note_elementwise();
        let mut dead: Vec<bool> = machine.lease();
        machine.map_into(&self.class, |c| c == DEAD, &mut dead);
        let seg = Segments::single(self.nab.len());
        let layout = machine.delete_layout(&seg, &dead);
        machine.recycle(dead);
        machine.apply_delete_in_place(&mut self.nab, &layout);
        machine.apply_delete_in_place(&mut self.class, &layout);

        let mut ready: Vec<bool> = machine.lease();
        machine.map_into(&self.class, |c| c == READY, &mut ready);
        let seg = Segments::single(self.nab.len());
        let layout = machine.unshuffle_layout(&seg, &ready);
        machine.recycle(ready);
        machine.apply_unshuffle_swap(&mut self.nab, &layout);
        machine.apply_unshuffle_swap(&mut self.class, &layout);

        self.frontier_peak = self.frontier_peak.max(self.nab.len());
    }

    fn advance(&mut self, _machine: &Machine, split_any: bool) -> RoundAdvance {
        RoundAdvance {
            round_completed: split_any,
            finished: !split_any || self.nab.is_empty(),
        }
    }
}

/// The breadth-first, data-parallel frontier join. Produces the same
/// sorted, deduplicated pair set as [`try_spatial_join`], plus round
/// telemetry; runs on either machine backend.
pub fn frontier_join(
    machine: &Machine,
    a: &DpQuadtree,
    segs_a: &[LineSeg],
    b: &DpQuadtree,
    segs_b: &[LineSeg],
) -> Result<JoinOutcome, SpatialError> {
    if a.world() != b.world() {
        return Err(SpatialError::WorldMismatch {
            left: a.world(),
            right: b.world(),
        });
    }
    let mut policy = JoinPolicy::new(a, segs_a, b, segs_b);
    let rounds = RoundDriver::run(machine, &mut policy);
    let JoinPolicy {
        mut pairs,
        frontier_peak,
        pairs_tested,
        pairs_matched,
        ..
    } = policy;
    pairs.sort_unstable();
    pairs.dedup();
    Ok(JoinOutcome {
        pairs,
        rounds,
        frontier_peak,
        pairs_tested,
        pairs_matched,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_pmr::build_bucket_pmr;
    use dp_geom::Rect;
    use scan_model::{Backend, Machine};

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    #[test]
    fn join_matches_brute_force() {
        let m = Machine::sequential();
        let roads = vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(0.0, 3.0, 7.0, 3.0),
            LineSeg::from_coords(5.0, 0.0, 5.0, 7.0),
        ];
        let rivers = vec![
            LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            LineSeg::from_coords(0.0, 0.5, 7.0, 0.5),
        ];
        let ta = build_bucket_pmr(&m, world(), &roads, 2, 6);
        let tb = build_bucket_pmr(&m, world(), &rivers, 2, 6);
        let got = spatial_join(&ta, &roads, &tb, &rivers);
        let want = brute_force_join(&roads, &rivers);
        assert_eq!(got, want);
        assert!(got.contains(&(0, 0)), "diagonals cross");
    }

    #[test]
    fn frontier_matches_recursive_and_brute_force() {
        for m in machines() {
            let roads = vec![
                LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
                LineSeg::from_coords(0.0, 3.0, 7.0, 3.0),
                LineSeg::from_coords(5.0, 0.0, 5.0, 7.0),
            ];
            let rivers = vec![
                LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
                LineSeg::from_coords(0.0, 0.5, 7.0, 0.5),
            ];
            let ta = build_bucket_pmr(&m, world(), &roads, 2, 6);
            let tb = build_bucket_pmr(&m, world(), &rivers, 2, 6);
            let out = frontier_join(&m, &ta, &roads, &tb, &rivers).unwrap();
            assert_eq!(out.pairs, spatial_join(&ta, &roads, &tb, &rivers));
            assert_eq!(out.pairs, brute_force_join(&roads, &rivers));
            assert!(out.pairs_matched >= out.pairs.len() as u64);
            assert!(out.pairs_tested >= out.pairs_matched);
        }
    }

    #[test]
    fn join_with_empty_side_is_empty() {
        let m = Machine::sequential();
        let roads = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
        let ta = build_bucket_pmr(&m, world(), &roads, 2, 6);
        let tb = build_bucket_pmr(&m, world(), &[], 2, 6);
        assert!(spatial_join(&ta, &roads, &tb, &[]).is_empty());
        let out = frontier_join(&m, &ta, &roads, &tb, &[]).unwrap();
        assert!(out.pairs.is_empty());
        assert_eq!(out.rounds, 0, "an empty side dies at the root pair");
        assert_eq!(out.pairs_tested, 0);
    }

    #[test]
    fn frontier_rounds_bounded_by_deeper_tree() {
        for m in machines() {
            let a: Vec<LineSeg> = (0..40)
                .map(|k| {
                    let x = ((k * 13) % 7) as f64;
                    let y = ((k * 5) % 7) as f64;
                    LineSeg::from_coords(x, y, x + 0.9, y + 0.7)
                })
                .collect();
            let b: Vec<LineSeg> = (0..30)
                .map(|k| {
                    let x = ((k * 11) % 7) as f64;
                    LineSeg::from_coords(x, 0.0, x + 0.5, 7.5)
                })
                .collect();
            let ta = build_bucket_pmr(&m, world(), &a, 2, 6);
            let tb = build_bucket_pmr(&m, world(), &b, 2, 6);
            let out = frontier_join(&m, &ta, &a, &tb, &b).unwrap();
            let bound = ta.stats().height.max(tb.stats().height) + 1;
            assert!(
                out.rounds <= bound,
                "rounds {} exceed depth bound {bound}",
                out.rounds
            );
            assert_eq!(out.pairs, brute_force_join(&a, &b));
        }
    }

    #[test]
    fn join_deduplicates_pairs_spanning_blocks() {
        let m = Machine::sequential();
        // Long segments crossing many shared blocks still yield one pair.
        let a = vec![LineSeg::from_coords(0.0, 4.0, 7.0, 4.0)];
        let b = vec![LineSeg::from_coords(4.0, 0.0, 4.0, 7.0)];
        let extra_a: Vec<LineSeg> = (0..5)
            .map(|k| LineSeg::from_coords(k as f64, 6.0, k as f64 + 1.0, 7.0))
            .collect();
        let mut sa = a.clone();
        sa.extend(extra_a);
        let ta = build_bucket_pmr(&m, world(), &sa, 1, 5);
        let tb = build_bucket_pmr(&m, world(), &b, 1, 5);
        let got = spatial_join(&ta, &sa, &tb, &b);
        assert_eq!(got, brute_force_join(&sa, &b));
        let out = frontier_join(&m, &ta, &sa, &tb, &b).unwrap();
        assert_eq!(out.pairs, got);
        assert!(
            out.pairs_matched > out.pairs.len() as u64,
            "spanning pairs hit in several blocks before dedup"
        );
    }

    #[test]
    #[should_panic(expected = "same world")]
    fn mismatched_worlds_rejected() {
        let m = Machine::sequential();
        let ta = build_bucket_pmr(&m, world(), &[], 2, 6);
        let tb = build_bucket_pmr(&m, Rect::from_coords(0.0, 0.0, 16.0, 16.0), &[], 2, 6);
        spatial_join(&ta, &[], &tb, &[]);
    }

    #[test]
    fn mismatched_worlds_are_a_checked_error() {
        let m = Machine::sequential();
        let other = Rect::from_coords(0.0, 0.0, 16.0, 16.0);
        let ta = build_bucket_pmr(&m, world(), &[], 2, 6);
        let tb = build_bucket_pmr(&m, other, &[], 2, 6);
        let want = SpatialError::WorldMismatch {
            left: world(),
            right: other,
        };
        assert_eq!(try_spatial_join(&ta, &[], &tb, &[]), Err(want));
        assert_eq!(frontier_join(&m, &ta, &[], &tb, &[]).unwrap_err(), want);
    }

    #[test]
    fn windowed_brute_force_restricts_to_window() {
        let a = vec![LineSeg::from_coords(0.0, 4.0, 7.0, 4.0)];
        let b = vec![
            LineSeg::from_coords(1.0, 0.0, 1.0, 7.0),
            LineSeg::from_coords(6.0, 0.0, 6.0, 7.0),
        ];
        let all = brute_force_join_in(&a, &b, &world());
        assert_eq!(all, vec![(0, 0), (0, 1)]);
        let left = brute_force_join_in(&a, &b, &Rect::from_coords(0.0, 0.0, 3.0, 8.0));
        assert_eq!(left, vec![(0, 0)]);
        let miss = brute_force_join_in(&a, &b, &Rect::from_coords(2.0, 0.0, 3.0, 8.0));
        assert!(miss.is_empty());
    }
}
