//! Spatial join over two quadtrees of the same world (the downstream
//! operation the paper's primitives were built for — its conclusion cites
//! the companion spatial-join papers [Hoel93, Hoel94a, Hoel94b]).
//!
//! Because both quadtrees regularly decompose the *same* space, their
//! blocks align: a co-traversal visits matching block pairs, descending
//! either tree wherever one is subdivided more finely, and tests segment
//! pairs only inside the leaf×leaf blocks both sides agree on. The
//! disjointness of the decomposition is what makes this efficient — the
//! R-tree's overlapping nodes would force the expensive processor
//! reorderings of paper Fig. 12.

use crate::quadtree::{DpQuadtree, QtNode};
use crate::SegId;
use dp_geom::{segments_intersect, LineSeg};

/// All intersecting pairs `(id_a, id_b)` between the segment sets indexed
/// by `a` and `b`, sorted and deduplicated.
///
/// # Panics
///
/// Panics if the two trees cover different worlds.
pub fn spatial_join(
    a: &DpQuadtree,
    segs_a: &[LineSeg],
    b: &DpQuadtree,
    segs_b: &[LineSeg],
) -> Vec<(SegId, SegId)> {
    assert_eq!(
        a.world(),
        b.world(),
        "spatial join requires both quadtrees to cover the same world"
    );
    let mut pairs = Vec::new();
    join_rec(a, 0, b, 0, segs_a, segs_b, &mut pairs);
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

fn join_rec(
    a: &DpQuadtree,
    na: usize,
    b: &DpQuadtree,
    nb: usize,
    segs_a: &[LineSeg],
    segs_b: &[LineSeg],
    out: &mut Vec<(SegId, SegId)>,
) {
    match (a.node(na), b.node(nb)) {
        (QtNode::Leaf { lines: la }, QtNode::Leaf { lines: lb }) => {
            for &ia in la {
                for &ib in lb {
                    if segments_intersect(&segs_a[ia as usize], &segs_b[ib as usize]) {
                        out.push((ia, ib));
                    }
                }
            }
        }
        (QtNode::Internal { children }, QtNode::Leaf { lines }) => {
            if lines.is_empty() {
                return;
            }
            for &c in children {
                join_rec(a, c, b, nb, segs_a, segs_b, out);
            }
        }
        (QtNode::Leaf { lines }, QtNode::Internal { children }) => {
            if lines.is_empty() {
                return;
            }
            for &c in children {
                join_rec(a, na, b, c, segs_a, segs_b, out);
            }
        }
        (QtNode::Internal { children: ca }, QtNode::Internal { children: cb }) => {
            for q in 0..4 {
                join_rec(a, ca[q], b, cb[q], segs_a, segs_b, out);
            }
        }
    }
}

/// Brute-force reference join (all-pairs), for validation and as the
/// baseline in the join benchmarks.
pub fn brute_force_join(segs_a: &[LineSeg], segs_b: &[LineSeg]) -> Vec<(SegId, SegId)> {
    let mut out = Vec::new();
    for (ia, sa) in segs_a.iter().enumerate() {
        for (ib, sb) in segs_b.iter().enumerate() {
            if segments_intersect(sa, sb) {
                out.push((ia as SegId, ib as SegId));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bucket_pmr::build_bucket_pmr;
    use dp_geom::Rect;
    use scan_model::Machine;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    #[test]
    fn join_matches_brute_force() {
        let m = Machine::sequential();
        let roads = vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(0.0, 3.0, 7.0, 3.0),
            LineSeg::from_coords(5.0, 0.0, 5.0, 7.0),
        ];
        let rivers = vec![
            LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            LineSeg::from_coords(0.0, 0.5, 7.0, 0.5),
        ];
        let ta = build_bucket_pmr(&m, world(), &roads, 2, 6);
        let tb = build_bucket_pmr(&m, world(), &rivers, 2, 6);
        let got = spatial_join(&ta, &roads, &tb, &rivers);
        let want = brute_force_join(&roads, &rivers);
        assert_eq!(got, want);
        assert!(got.contains(&(0, 0)), "diagonals cross");
    }

    #[test]
    fn join_with_empty_side_is_empty() {
        let m = Machine::sequential();
        let roads = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
        let ta = build_bucket_pmr(&m, world(), &roads, 2, 6);
        let tb = build_bucket_pmr(&m, world(), &[], 2, 6);
        assert!(spatial_join(&ta, &roads, &tb, &[]).is_empty());
    }

    #[test]
    fn join_deduplicates_pairs_spanning_blocks() {
        let m = Machine::sequential();
        // Long segments crossing many shared blocks still yield one pair.
        let a = vec![LineSeg::from_coords(0.0, 4.0, 7.0, 4.0)];
        let b = vec![LineSeg::from_coords(4.0, 0.0, 4.0, 7.0)];
        let extra_a: Vec<LineSeg> = (0..5)
            .map(|k| LineSeg::from_coords(k as f64, 6.0, k as f64 + 1.0, 7.0))
            .collect();
        let mut sa = a.clone();
        sa.extend(extra_a);
        let ta = build_bucket_pmr(&m, world(), &sa, 1, 5);
        let tb = build_bucket_pmr(&m, world(), &b, 1, 5);
        let got = spatial_join(&ta, &sa, &tb, &b);
        assert_eq!(got, brute_force_join(&sa, &b));
    }

    #[test]
    #[should_panic(expected = "same world")]
    fn mismatched_worlds_rejected() {
        let m = Machine::sequential();
        let ta = build_bucket_pmr(&m, world(), &[], 2, 6);
        let tb = build_bucket_pmr(&m, Rect::from_coords(0.0, 0.0, 16.0, 16.0), &[], 2, 6);
        spatial_join(&ta, &[], &tb, &[]);
    }
}
