//! Versioned, checksummed on-disk snapshots of built trees.
//!
//! Production operators restart processes; without persistence every
//! start pays a full bulk rebuild of every shard. This module defines
//! the workspace's own serialization (the workspace is offline — no
//! serde): a snapshot is a little-endian byte stream of length-prefixed
//! **sections**, each carrying its own CRC-32, behind a fixed-size
//! whole-file header (magic, format version, family tag, section and
//! element counts, header CRC). A reader validates the header and every
//! section's bounds and checksum **before** decoding, so a torn or
//! bit-rotted file is rejected with a typed [`SpatialError`] without
//! allocating tree structures from garbage.
//!
//! ```text
//! header   := magic "DPSS" | version u32 | family u32 | sections u32
//!             | elements u64 | crc32(header[0..24]) u32          (28 bytes)
//! section  := tag u32 | len u64 | payload [len] | crc32(tag|len|payload) u32
//! snapshot := header section*
//! ```
//!
//! Payload bytes come straight from the flat SoA lanes the scan model
//! already operates on (`scan_model::soa` borrows them zero-copy on
//! little-endian targets), which is what makes saving cheap and loading
//! a warm start rather than a rebuild.
//!
//! Torn writes are a first-class failure here: [`SnapshotWriter`] checks
//! [`FaultSite::SnapshotTorn`] once per section, and a firing occurrence
//! silently flips a seeded bit (even occurrences) or truncates the file
//! inside that section (odd occurrences) — the damage only surfaces when
//! a reader's CRC or bounds check catches it, exactly like a real torn
//! write. `tests/fault_injection.rs` sweeps the kill across every
//! section the way it kills every build round.

use crate::error::SpatialError;
use crate::quadtree::{DpQuadtree, QtNode};
use crate::rtree::DpRTree;
use crate::SegId;
use dp_geom::{LineSeg, Point, Rect};
use scan_model::soa;
use scan_model::{FaultPlan, FaultSite, Segments};
use std::path::Path;
use std::sync::Arc;

/// File magic: "DPSS" (data-parallel spatial snapshot).
pub const MAGIC: [u8; 4] = *b"DPSS";

/// Snapshot format version. Bumping this invalidates every existing
/// snapshot (readers reject with [`SpatialError::SnapshotVersionMismatch`])
/// and requires regenerating the golden fixture under `tests/fixtures/`
/// — the lint job's compatibility gate enforces that coupling.
pub const FORMAT_VERSION: u32 = 1;

/// Size of the whole-file header in bytes.
pub const HEADER_LEN: usize = 28;

/// Per-section overhead in bytes (tag + length prefix + trailing CRC).
pub const SECTION_OVERHEAD: usize = 16;

/// What a snapshot file contains (the header's family tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotFamily {
    /// PM₁ quadtree built by the fused kernel path.
    Pm1Fused,
    /// PM₁ quadtree built by the unfused baseline path.
    Pm1Unfused,
    /// PM₂ quadtree.
    Pm2,
    /// PM₃ quadtree.
    Pm3,
    /// Bucket PMR quadtree.
    BucketPmr,
    /// Packed Hilbert R-tree.
    Rtree,
    /// A full `dp-service` serving state (shard trees + overlay ladder).
    Service,
}

impl SnapshotFamily {
    /// Every family, in tag order.
    pub const ALL: [SnapshotFamily; 7] = [
        SnapshotFamily::Pm1Fused,
        SnapshotFamily::Pm1Unfused,
        SnapshotFamily::Pm2,
        SnapshotFamily::Pm3,
        SnapshotFamily::BucketPmr,
        SnapshotFamily::Rtree,
        SnapshotFamily::Service,
    ];

    /// The on-disk header tag.
    pub fn tag(self) -> u32 {
        match self {
            SnapshotFamily::Pm1Fused => 1,
            SnapshotFamily::Pm1Unfused => 2,
            SnapshotFamily::Pm2 => 3,
            SnapshotFamily::Pm3 => 4,
            SnapshotFamily::BucketPmr => 5,
            SnapshotFamily::Rtree => 6,
            SnapshotFamily::Service => 7,
        }
    }

    /// Inverse of [`SnapshotFamily::tag`].
    pub fn from_tag(tag: u32) -> Option<SnapshotFamily> {
        SnapshotFamily::ALL.into_iter().find(|f| f.tag() == tag)
    }
}

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected) — table-based, no dependencies.
// ---------------------------------------------------------------------

fn crc_tables() -> &'static [[u32; 256]; 8] {
    use std::sync::OnceLock;
    static TABLES: OnceLock<[[u32; 256]; 8]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut t = [[0u32; 256]; 8];
        for (i, entry) in t[0].iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xedb8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        // Slice-by-8 extension tables: t[k][b] is the CRC of byte b
        // followed by k zero bytes, so eight lookups fold eight input
        // bytes per step. Identical outputs to the byte-at-a-time loop —
        // the warm-restart path checksums tens of megabytes, and this
        // keeps validation off its critical path.
        for i in 0..256usize {
            let mut c = t[0][i];
            for k in 1..8 {
                c = t[0][(c & 0xff) as usize] ^ (c >> 8);
                t[k][i] = c;
            }
        }
        t
    })
}

/// CRC-32 (IEEE) of `bytes` — the per-section and header checksum.
/// Slice-by-8: folds eight bytes per table step, byte-at-a-time for the
/// tail, bit-identical to the classic reflected 0xEDB88320 loop.
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = crc_tables();
    let mut c = 0xffff_ffffu32;
    let mut chunks = bytes.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(ch[4..8].try_into().unwrap());
        c = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

/// SplitMix64 — derives the seeded corruption offsets for
/// [`FaultSite::SnapshotTorn`]; fixed forever for replayability.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Where an injected tear will damage the encoded bytes.
#[derive(Debug, Clone, Copy)]
struct Tear {
    /// Whole-section byte range in the output buffer.
    start: usize,
    end: usize,
    /// Fired occurrence index — drives the seeded offset and the
    /// flip-vs-truncate choice.
    occurrence: u64,
}

/// Appends checksummed sections behind a versioned header and returns
/// the finished byte stream.
///
/// Section order is part of a family's layout contract: readers address
/// sections by index, so writers must emit them in the documented order.
pub struct SnapshotWriter {
    buf: Vec<u8>,
    sections: u32,
    plan: Option<Arc<FaultPlan>>,
    tears: Vec<Tear>,
}

impl SnapshotWriter {
    /// Starts a snapshot of `family` covering `elements` logical
    /// elements (segment count for tree families).
    pub fn new(family: SnapshotFamily, elements: u64) -> Self {
        let mut buf = Vec::with_capacity(HEADER_LEN);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&family.tag().to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // section count, patched
        buf.extend_from_slice(&elements.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes()); // header CRC, patched
        SnapshotWriter {
            buf,
            sections: 0,
            plan: None,
            tears: Vec::new(),
        }
    }

    /// Attaches a fault plan: every [`SnapshotWriter::section`] call
    /// consults [`FaultSite::SnapshotTorn`] and a firing occurrence
    /// silently corrupts the finished bytes.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// Appends one checksummed section.
    pub fn section(&mut self, tag: u32, payload: &[u8]) {
        let start = self.buf.len();
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(payload);
        let crc = crc32(&self.buf[start..]);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.sections += 1;
        if let Some(plan) = &self.plan {
            if let Some(occurrence) = plan.should_fire(FaultSite::SnapshotTorn) {
                self.tears.push(Tear {
                    start,
                    end: self.buf.len(),
                    occurrence,
                });
            }
        }
    }

    /// Patches the header, applies any injected tears, and returns the
    /// finished byte stream.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[12..16].copy_from_slice(&self.sections.to_le_bytes());
        let crc = crc32(&self.buf[..HEADER_LEN - 4]);
        self.buf[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());

        // Injected tears: flips first (they commute), then the earliest
        // truncation wins — a shorter file cannot be re-extended.
        let seed = self.plan.as_ref().map(|p| p.seed()).unwrap_or(0);
        let mut cut: Option<usize> = None;
        for t in &self.tears {
            let span = t.end - t.start;
            let mix = splitmix64(seed ^ splitmix64(t.occurrence));
            let offset = t.start + (mix % span as u64) as usize;
            if t.occurrence % 2 == 0 {
                self.buf[offset] ^= 1 << ((mix >> 8) % 8);
            } else {
                // Truncate *inside* the section: keep at least one byte
                // of it missing so the tear is structural, not a no-op.
                let at = offset.min(t.end - 1);
                cut = Some(cut.map_or(at, |c: usize| c.min(at)));
            }
        }
        if let Some(at) = cut {
            self.buf.truncate(at);
        }
        self.buf
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// A validated view over a snapshot byte stream.
///
/// Construction checks the magic, header CRC, format version, and every
/// section's bounds and CRC — in that order — so the accessors below
/// can hand out payload slices with no further failure modes.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    bytes: &'a [u8],
    family: SnapshotFamily,
    elements: u64,
    /// Per section: `(tag, payload range, whole-section range)`.
    sections: Vec<(u32, std::ops::Range<usize>, std::ops::Range<usize>)>,
}

impl<'a> SnapshotReader<'a> {
    /// Validates `bytes` end to end.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SpatialError> {
        const HDR_CORRUPT: SpatialError = SpatialError::SnapshotCorrupt { section: u32::MAX };
        if bytes.len() < HEADER_LEN || bytes[..4] != MAGIC {
            return Err(HDR_CORRUPT);
        }
        let stored = u32::from_le_bytes(bytes[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap());
        if crc32(&bytes[..HEADER_LEN - 4]) != stored {
            return Err(HDR_CORRUPT);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(SpatialError::SnapshotVersionMismatch {
                found: version,
                expected: FORMAT_VERSION,
            });
        }
        let family_tag = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let family =
            SnapshotFamily::from_tag(family_tag).ok_or(SpatialError::SnapshotMalformed {
                reason: "unknown family tag",
            })?;
        let num_sections = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        let elements = u64::from_le_bytes(bytes[16..24].try_into().unwrap());

        let mut sections = Vec::with_capacity(num_sections as usize);
        let mut at = HEADER_LEN;
        for i in 0..num_sections {
            let corrupt = SpatialError::SnapshotCorrupt { section: i };
            if bytes.len() < at + 12 {
                return Err(corrupt);
            }
            let tag = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            let len = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
            // Bounds before allocation or checksum: a huge length from a
            // torn prefix must fail here, not in a Vec reserve.
            let Some(payload_end) =
                (at + 12).checked_add(usize::try_from(len).unwrap_or(usize::MAX))
            else {
                return Err(corrupt);
            };
            if payload_end + 4 > bytes.len() {
                return Err(corrupt);
            }
            let stored =
                u32::from_le_bytes(bytes[payload_end..payload_end + 4].try_into().unwrap());
            if crc32(&bytes[at..payload_end]) != stored {
                return Err(corrupt);
            }
            sections.push((tag, at + 12..payload_end, at..payload_end + 4));
            at = payload_end + 4;
        }
        if at != bytes.len() {
            return Err(SpatialError::SnapshotMalformed {
                reason: "trailing bytes after the last section",
            });
        }
        Ok(SnapshotReader {
            bytes,
            family,
            elements,
            sections,
        })
    }

    /// The header's family tag.
    pub fn family(&self) -> SnapshotFamily {
        self.family
    }

    /// The header's logical element count.
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// Number of sections.
    pub fn num_sections(&self) -> usize {
        self.sections.len()
    }

    /// Section `i` as `(tag, payload)`.
    pub fn section(&self, i: usize) -> (u32, &'a [u8]) {
        let (tag, ref payload, _) = self.sections[i];
        (tag, &self.bytes[payload.clone()])
    }

    /// Payload of section `i` if it carries `tag`, else
    /// [`SpatialError::SnapshotMalformed`] — the fixed-layout accessor
    /// family codecs use.
    pub fn expect(&self, i: usize, tag: u32) -> Result<&'a [u8], SpatialError> {
        match self.sections.get(i) {
            Some(&(t, ref payload, _)) if t == tag => Ok(&self.bytes[payload.clone()]),
            _ => Err(SpatialError::SnapshotMalformed {
                reason: "missing or misordered section",
            }),
        }
    }

    /// Whole-file byte extents of every section (header + payload +
    /// CRC), for tests that truncate or damage specific sections.
    pub fn section_extents(&self) -> Vec<std::ops::Range<usize>> {
        self.sections
            .iter()
            .map(|(_, _, whole)| whole.clone())
            .collect()
    }
}

// ---------------------------------------------------------------------
// Atomic file I/O
// ---------------------------------------------------------------------

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory, flushed, then renamed over the target. A crash mid-write
/// leaves either the old snapshot or a stray temp file — never a torn
/// file at the published path.
pub fn write_snapshot_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let dir = path.parent().filter(|d| !d.as_os_str().is_empty());
    let stem = path.file_name().map(|n| n.to_string_lossy().into_owned());
    let tmp_name = format!(
        ".{}.tmp-{}",
        stem.unwrap_or_else(|| "snapshot".to_string()),
        std::process::id()
    );
    let tmp = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let mut file = std::fs::File::create(&tmp)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    std::fs::rename(&tmp, path)?;
    Ok(())
}

// ---------------------------------------------------------------------
// Payload codecs — flat little-endian lanes.
// ---------------------------------------------------------------------

const MALFORMED: SpatialError = SpatialError::SnapshotMalformed {
    reason: "payload does not decode",
};

/// A bounds-checked little-endian cursor over one section payload.
struct Cur<'a> {
    b: &'a [u8],
    at: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, at: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], SpatialError> {
        let end = self.at.checked_add(n).ok_or(MALFORMED)?;
        if end > self.b.len() {
            return Err(MALFORMED);
        }
        let out = &self.b[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, SpatialError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SpatialError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SpatialError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// A `u64` count that must fit in `usize` and cannot describe more
    /// elements than the remaining bytes could hold at `min_elem_size`
    /// bytes each — the validate-before-allocate rule.
    fn count(&mut self, min_elem_size: usize) -> Result<usize, SpatialError> {
        let n = usize::try_from(self.u64()?).map_err(|_| MALFORMED)?;
        if n.checked_mul(min_elem_size.max(1)).ok_or(MALFORMED)? > self.b.len() - self.at {
            return Err(MALFORMED);
        }
        Ok(n)
    }

    fn f64(&mut self) -> Result<f64, SpatialError> {
        Ok(f64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn f64s(&mut self, n: usize) -> Result<Vec<f64>, SpatialError> {
        soa::f64_lane_from_bytes(self.bytes(n.checked_mul(8).ok_or(MALFORMED)?)?).ok_or(MALFORMED)
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, SpatialError> {
        soa::u32_lane_from_bytes(self.bytes(n.checked_mul(4).ok_or(MALFORMED)?)?).ok_or(MALFORMED)
    }

    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, SpatialError> {
        soa::u64_lane_from_bytes(self.bytes(n.checked_mul(8).ok_or(MALFORMED)?)?).ok_or(MALFORMED)
    }

    fn done(self) -> Result<(), SpatialError> {
        if self.at == self.b.len() {
            Ok(())
        } else {
            Err(MALFORMED)
        }
    }
}

fn put_rect(buf: &mut Vec<u8>, r: &Rect) {
    for v in [r.min.x, r.min.y, r.max.x, r.max.y] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_rect(cur: &mut Cur) -> Result<Rect, SpatialError> {
    let (ax, ay) = (cur.f64()?, cur.f64()?);
    let (bx, by) = (cur.f64()?, cur.f64()?);
    Ok(Rect {
        min: Point { x: ax, y: ay },
        max: Point { x: bx, y: by },
    })
}

/// Encodes segments as four SoA lanes (`ax ay bx by`) behind a count —
/// the layout the blocked kernels already keep the data in.
pub fn segs_payload(segs: &[LineSeg]) -> Vec<u8> {
    let n = segs.len();
    let mut buf = Vec::with_capacity(8 + n * 32);
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    let mut lane = Vec::with_capacity(n);
    for pick in [
        |s: &LineSeg| s.a.x,
        |s: &LineSeg| s.a.y,
        |s: &LineSeg| s.b.x,
        |s: &LineSeg| s.b.y,
    ] {
        lane.clear();
        lane.extend(segs.iter().map(pick));
        buf.extend_from_slice(&soa::f64_lane_bytes(&lane));
    }
    buf
}

/// Inverse of [`segs_payload`].
pub fn segs_from_payload(payload: &[u8]) -> Result<Vec<LineSeg>, SpatialError> {
    let mut cur = Cur::new(payload);
    let n = cur.count(32)?;
    let ax = cur.f64s(n)?;
    let ay = cur.f64s(n)?;
    let bx = cur.f64s(n)?;
    let by = cur.f64s(n)?;
    cur.done()?;
    Ok((0..n)
        .map(|i| LineSeg {
            a: Point { x: ax[i], y: ay[i] },
            b: Point { x: bx[i], y: by[i] },
        })
        .collect())
}

/// Encodes a segment-id lane behind a count.
pub fn ids_payload(ids: &[SegId]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + ids.len() * 4);
    buf.extend_from_slice(&(ids.len() as u64).to_le_bytes());
    buf.extend_from_slice(&soa::u32_lane_bytes(ids));
    buf
}

/// Inverse of [`ids_payload`].
pub fn ids_from_payload(payload: &[u8]) -> Result<Vec<SegId>, SpatialError> {
    let mut cur = Cur::new(payload);
    let n = cur.count(4)?;
    let ids = cur.u32s(n)?;
    cur.done()?;
    Ok(ids)
}

/// Encodes a `u64` lane behind a count (epoch counters, misc scalars).
pub fn u64s_payload(values: &[u64]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + values.len() * 8);
    buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
    buf.extend_from_slice(&soa::u64_lane_bytes(values));
    buf
}

/// Inverse of [`u64s_payload`].
pub fn u64s_from_payload(payload: &[u8]) -> Result<Vec<u64>, SpatialError> {
    let mut cur = Cur::new(payload);
    let n = cur.count(8)?;
    let values = cur.u64s(n)?;
    cur.done()?;
    Ok(values)
}

/// Encodes a quadtree: world rect, rounds, truncated, then the node
/// vector (`0` = internal + 4 child indexes, `1` = leaf + id lane).
pub fn quadtree_payload(tree: &DpQuadtree) -> Vec<u8> {
    let n = tree.num_nodes();
    let mut buf = Vec::with_capacity(32 + 24 + n * 17);
    put_rect(&mut buf, &tree.world());
    buf.extend_from_slice(&(tree.rounds() as u64).to_le_bytes());
    buf.extend_from_slice(&(tree.truncated() as u64).to_le_bytes());
    buf.extend_from_slice(&(n as u64).to_le_bytes());
    for i in 0..n {
        match tree.node(i) {
            QtNode::Internal { children } => {
                buf.push(0);
                for &c in children {
                    buf.extend_from_slice(&(c as u32).to_le_bytes());
                }
            }
            QtNode::Leaf { lines } => {
                buf.push(1);
                buf.extend_from_slice(&(lines.len() as u32).to_le_bytes());
                buf.extend_from_slice(&soa::u32_lane_bytes(lines));
            }
        }
    }
    buf
}

/// Inverse of [`quadtree_payload`]. Child indexes are bounds-checked
/// against the node count so queries on the result cannot walk out of
/// the node vector.
pub fn quadtree_from_payload(payload: &[u8]) -> Result<DpQuadtree, SpatialError> {
    let mut cur = Cur::new(payload);
    let world = get_rect(&mut cur)?;
    let rounds = usize::try_from(cur.u64()?).map_err(|_| MALFORMED)?;
    let truncated = usize::try_from(cur.u64()?).map_err(|_| MALFORMED)?;
    let n = cur.count(1)?;
    if n == 0 {
        return Err(SpatialError::SnapshotMalformed {
            reason: "quadtree with zero nodes",
        });
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        match cur.u8()? {
            0 => {
                let mut children = [0usize; 4];
                for c in &mut children {
                    let idx = cur.u32()? as usize;
                    if idx >= n {
                        return Err(SpatialError::SnapshotMalformed {
                            reason: "quadtree child index out of range",
                        });
                    }
                    *c = idx;
                }
                nodes.push(QtNode::Internal { children });
            }
            1 => {
                let len = cur.u32()? as usize;
                nodes.push(QtNode::Leaf {
                    lines: cur.u32s(len)?,
                });
            }
            _ => return Err(MALFORMED),
        }
    }
    cur.done()?;
    Ok(DpQuadtree::from_raw_parts(world, nodes, rounds, truncated))
}

/// Encodes a packed R-tree: order, rounds, the two per-lane lanes, then
/// per-level group lengths and per-level node MBR lanes.
pub fn rtree_payload(tree: &DpRTree) -> Vec<u8> {
    let (lane_line, lane_bbox, level_lengths, node_mbrs, rounds) = tree.raw_parts();
    let mut buf = Vec::new();
    buf.extend_from_slice(&(tree.min_entries() as u64).to_le_bytes());
    buf.extend_from_slice(&(tree.max_entries() as u64).to_le_bytes());
    buf.extend_from_slice(&(rounds as u64).to_le_bytes());
    buf.extend_from_slice(&(lane_line.len() as u64).to_le_bytes());
    buf.extend_from_slice(&soa::u32_lane_bytes(lane_line));
    for r in lane_bbox {
        put_rect(&mut buf, r);
    }
    buf.extend_from_slice(&(level_lengths.len() as u64).to_le_bytes());
    for lengths in &level_lengths {
        let lane: Vec<u64> = lengths.iter().map(|&l| l as u64).collect();
        buf.extend_from_slice(&(lane.len() as u64).to_le_bytes());
        buf.extend_from_slice(&soa::u64_lane_bytes(&lane));
    }
    buf.extend_from_slice(&(node_mbrs.len() as u64).to_le_bytes());
    for level in node_mbrs {
        buf.extend_from_slice(&(level.len() as u64).to_le_bytes());
        for r in level {
            put_rect(&mut buf, r);
        }
    }
    buf
}

/// Inverse of [`rtree_payload`], with structural validation: lane
/// lengths agree, each level's lengths sum to the level below's node
/// count, and every level has an MBR lane.
pub fn rtree_from_payload(payload: &[u8]) -> Result<DpRTree, SpatialError> {
    let mut cur = Cur::new(payload);
    let m = usize::try_from(cur.u64()?).map_err(|_| MALFORMED)?;
    let max = usize::try_from(cur.u64()?).map_err(|_| MALFORMED)?;
    let rounds = usize::try_from(cur.u64()?).map_err(|_| MALFORMED)?;
    let lanes = cur.count(36)?;
    let lane_line = cur.u32s(lanes)?;
    let mut lane_bbox = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        lane_bbox.push(get_rect(&mut cur)?);
    }
    let num_levels = cur.count(8)?;
    if num_levels == 0 {
        return Err(SpatialError::SnapshotMalformed {
            reason: "r-tree with zero levels",
        });
    }
    let mut groups = Vec::with_capacity(num_levels);
    let mut below = lanes;
    for _ in 0..num_levels {
        let count = cur.count(8)?;
        let lengths: Vec<usize> = cur
            .u64s(count)?
            .into_iter()
            .map(|l| usize::try_from(l).map_err(|_| MALFORMED))
            .collect::<Result<_, _>>()?;
        if lengths.iter().sum::<usize>() != below {
            return Err(SpatialError::SnapshotMalformed {
                reason: "r-tree level lengths do not cover the level below",
            });
        }
        below = lengths.len();
        let seg = if lengths.is_empty() {
            Segments::single(0)
        } else {
            Segments::from_lengths(&lengths).map_err(|_| SpatialError::SnapshotMalformed {
                reason: "r-tree level with a zero-length group",
            })?
        };
        groups.push(seg);
    }
    let mbr_levels = cur.count(8)?;
    if mbr_levels != num_levels {
        return Err(SpatialError::SnapshotMalformed {
            reason: "r-tree MBR level count mismatch",
        });
    }
    let mut node_mbrs = Vec::with_capacity(mbr_levels);
    for group in groups.iter().take(mbr_levels) {
        let count = cur.count(32)?;
        // The empty tree stores one empty MBR over zero groups; every
        // other level's MBR lane matches its group count.
        let expected = group.num_segments();
        if count != expected && !(expected == 0 && count == 1) {
            return Err(SpatialError::SnapshotMalformed {
                reason: "r-tree MBR count mismatch",
            });
        }
        let mut lane = Vec::with_capacity(count);
        for _ in 0..count {
            lane.push(get_rect(&mut cur)?);
        }
        node_mbrs.push(lane);
    }
    cur.done()?;
    Ok(DpRTree::from_raw_parts(
        m, max, lane_line, lane_bbox, groups, node_mbrs, rounds,
    ))
}

// ---------------------------------------------------------------------
// Whole-file convenience codecs for single-tree snapshots.
// ---------------------------------------------------------------------

/// Section tags shared by the single-tree snapshot layouts (the service
/// layout in `dp-service` defines its own, disjoint tags ≥ 16).
pub mod tags {
    /// The indexed segment set (SoA lanes).
    pub const SEGS: u32 = 1;
    /// A quadtree node vector.
    pub const QUADTREE: u32 = 2;
    /// A packed R-tree.
    pub const RTREE: u32 = 3;
}

/// Encodes `(segs, tree)` as a standalone snapshot of `family`.
///
/// # Panics
///
/// Panics when `family` is [`SnapshotFamily::Rtree`] or
/// [`SnapshotFamily::Service`] — those carry different section layouts.
pub fn encode_tree_snapshot(
    family: SnapshotFamily,
    segs: &[LineSeg],
    tree: &DpQuadtree,
    plan: Option<Arc<FaultPlan>>,
) -> Vec<u8> {
    assert!(
        !matches!(family, SnapshotFamily::Rtree | SnapshotFamily::Service),
        "quadtree layout only"
    );
    let mut w = SnapshotWriter::new(family, segs.len() as u64);
    if let Some(plan) = plan {
        w = w.with_fault_plan(plan);
    }
    w.section(tags::SEGS, &segs_payload(segs));
    w.section(tags::QUADTREE, &quadtree_payload(tree));
    w.finish()
}

/// Inverse of [`encode_tree_snapshot`]: validates and decodes a
/// standalone quadtree snapshot.
pub fn decode_tree_snapshot(
    bytes: &[u8],
) -> Result<(SnapshotFamily, Vec<LineSeg>, DpQuadtree), SpatialError> {
    let r = SnapshotReader::parse(bytes)?;
    if matches!(r.family(), SnapshotFamily::Rtree | SnapshotFamily::Service) {
        return Err(SpatialError::SnapshotMalformed {
            reason: "not a quadtree snapshot",
        });
    }
    let segs = segs_from_payload(r.expect(0, tags::SEGS)?)?;
    let tree = quadtree_from_payload(r.expect(1, tags::QUADTREE)?)?;
    if segs.len() as u64 != r.elements() {
        return Err(SpatialError::SnapshotMalformed {
            reason: "element count disagrees with the segment section",
        });
    }
    Ok((r.family(), segs, tree))
}

/// Encodes `(segs, tree)` as a standalone R-tree snapshot.
pub fn encode_rtree_snapshot(
    segs: &[LineSeg],
    tree: &DpRTree,
    plan: Option<Arc<FaultPlan>>,
) -> Vec<u8> {
    let mut w = SnapshotWriter::new(SnapshotFamily::Rtree, segs.len() as u64);
    if let Some(plan) = plan {
        w = w.with_fault_plan(plan);
    }
    w.section(tags::SEGS, &segs_payload(segs));
    w.section(tags::RTREE, &rtree_payload(tree));
    w.finish()
}

/// Inverse of [`encode_rtree_snapshot`].
pub fn decode_rtree_snapshot(bytes: &[u8]) -> Result<(Vec<LineSeg>, DpRTree), SpatialError> {
    let r = SnapshotReader::parse(bytes)?;
    if r.family() != SnapshotFamily::Rtree {
        return Err(SpatialError::SnapshotMalformed {
            reason: "not an r-tree snapshot",
        });
    }
    let segs = segs_from_payload(r.expect(0, tags::SEGS)?)?;
    let tree = rtree_from_payload(r.expect(1, tags::RTREE)?)?;
    if segs.len() as u64 != r.elements() {
        return Err(SpatialError::SnapshotMalformed {
            reason: "element count disagrees with the segment section",
        });
    }
    Ok((segs, tree))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_model::FaultMode;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check values ("123456789" is the classic one).
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn header_and_sections_round_trip() {
        let mut w = SnapshotWriter::new(SnapshotFamily::BucketPmr, 42);
        w.section(7, b"hello");
        w.section(9, b"");
        w.section(11, &[0xff; 100]);
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.family(), SnapshotFamily::BucketPmr);
        assert_eq!(r.elements(), 42);
        assert_eq!(r.num_sections(), 3);
        assert_eq!(r.section(0), (7, b"hello".as_slice()));
        assert_eq!(r.section(1), (9, b"".as_slice()));
        assert_eq!(r.section(2).1.len(), 100);
    }

    #[test]
    fn every_single_bit_flip_in_a_small_file_is_rejected() {
        let mut w = SnapshotWriter::new(SnapshotFamily::Pm2, 1);
        w.section(1, b"payload-bytes");
        let bytes = w.finish();
        assert!(SnapshotReader::parse(&bytes).is_ok());
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut damaged = bytes.clone();
                damaged[byte] ^= 1 << bit;
                assert!(
                    SnapshotReader::parse(&damaged).is_err(),
                    "flip at byte {byte} bit {bit} must not parse"
                );
            }
        }
    }

    #[test]
    fn truncation_at_every_length_is_rejected() {
        let mut w = SnapshotWriter::new(SnapshotFamily::Pm3, 1);
        w.section(1, b"0123456789");
        w.section(2, b"abcdef");
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            assert!(
                SnapshotReader::parse(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes must not parse"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut w = SnapshotWriter::new(SnapshotFamily::Pm1Fused, 0);
        w.section(1, b"x");
        let mut bytes = w.finish();
        bytes.push(0);
        assert_eq!(
            SnapshotReader::parse(&bytes).err(),
            Some(SpatialError::SnapshotMalformed {
                reason: "trailing bytes after the last section"
            })
        );
    }

    #[test]
    fn version_mismatch_is_typed_not_corrupt() {
        let mut w = SnapshotWriter::new(SnapshotFamily::Pm1Fused, 0);
        w.section(1, b"x");
        let mut bytes = w.finish();
        // Patch the version and re-seal the header CRC, simulating a
        // well-formed file from a different format generation.
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let crc = crc32(&bytes[..HEADER_LEN - 4]);
        bytes[HEADER_LEN - 4..HEADER_LEN].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            SnapshotReader::parse(&bytes).err(),
            Some(SpatialError::SnapshotVersionMismatch {
                found: 99,
                expected: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn injected_tear_corrupts_each_chosen_section() {
        // once_at(k) over a 3-section file: exactly section k's bytes
        // change (or the file is truncated inside it), and parsing fails.
        for k in 0..3u64 {
            let plan = Arc::new(FaultPlan::once_at(FaultSite::SnapshotTorn, k));
            let mut w =
                SnapshotWriter::new(SnapshotFamily::BucketPmr, 5).with_fault_plan(plan.clone());
            w.section(1, &[1u8; 40]);
            w.section(2, &[2u8; 40]);
            w.section(3, &[3u8; 40]);
            let torn = w.finish();
            assert_eq!(plan.fired(FaultSite::SnapshotTorn), 1);

            let mut clean_w = SnapshotWriter::new(SnapshotFamily::BucketPmr, 5);
            clean_w.section(1, &[1u8; 40]);
            clean_w.section(2, &[2u8; 40]);
            clean_w.section(3, &[3u8; 40]);
            let clean = clean_w.finish();

            assert_ne!(torn, clean, "occurrence {k} must damage the bytes");
            let err = SnapshotReader::parse(&torn).expect_err("torn file must not parse");
            assert!(
                matches!(err, SpatialError::SnapshotCorrupt { .. }),
                "occurrence {k}: {err}"
            );
        }
    }

    #[test]
    fn tear_damage_is_seed_deterministic() {
        let torn = |seed: u64| {
            let plan =
                Arc::new(FaultPlan::new(seed).with(FaultSite::SnapshotTorn, FaultMode::Always));
            let mut w = SnapshotWriter::new(SnapshotFamily::Pm2, 0).with_fault_plan(plan);
            w.section(1, &[7u8; 64]);
            w.finish()
        };
        assert_eq!(torn(11), torn(11), "same seed, same damage");
        assert_ne!(torn(11), torn(12), "different seed, different damage");
    }

    #[test]
    fn segs_and_ids_round_trip() {
        let segs = vec![
            LineSeg {
                a: Point { x: 0.5, y: 1.5 },
                b: Point { x: 2.0, y: 3.0 },
            },
            LineSeg {
                a: Point { x: -4.0, y: 0.0 },
                b: Point { x: 0.0, y: -9.5 },
            },
        ];
        assert_eq!(segs_from_payload(&segs_payload(&segs)).unwrap(), segs);
        assert_eq!(segs_from_payload(&segs_payload(&[])).unwrap(), Vec::new());
        let ids = vec![3u32, 1, 4, 1, 5];
        assert_eq!(ids_from_payload(&ids_payload(&ids)).unwrap(), ids);
        let vals = vec![0u64, u64::MAX, 17];
        assert_eq!(u64s_from_payload(&u64s_payload(&vals)).unwrap(), vals);
    }

    #[test]
    fn oversized_count_fails_before_allocating() {
        // A payload claiming u64::MAX segments must be rejected by the
        // bounds check, not by an allocator abort.
        let mut payload = Vec::new();
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(segs_from_payload(&payload).is_err());
        assert!(ids_from_payload(&payload).is_err());
        assert!(quadtree_from_payload(&payload).is_err());
    }

    #[test]
    fn atomic_write_replaces_and_survives() {
        let dir = std::env::temp_dir().join(format!("dpss-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.bin");
        write_snapshot_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_snapshot_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        // No stray temp files left behind.
        let strays: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(strays.is_empty(), "temp files must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }
}
