//! The unified round-driver engine behind every bulk constructor.
//!
//! The paper's central structural claim is that PM₁ (Sec. 5.1), the bucket
//! PMR quadtree (Sec. 5.2) and the R-tree (Sec. 5.3) are all built by the
//! *same* O(log n)-round loop over the primitive vocabulary: test every
//! active node against the structure's split criterion, retire the nodes
//! that pass, and redistribute the elements of the nodes that fail via
//! clone / unshuffle. [`RoundDriver`] is that loop, written once; each
//! structure supplies only a [`SplitPolicy`] — the per-round *decisions*
//! and *data movement*, not the choreography.
//!
//! One driver **step** is one `decide → emit → partition → advance` cycle:
//!
//! 1. [`SplitPolicy::decide`] returns one flag per active node — split it
//!    or retire it;
//! 2. [`SplitPolicy::emit`] retires the non-splitting nodes (e.g. records
//!    quadtree leaves);
//! 3. [`SplitPolicy::partition`] redistributes the elements of the
//!    splitting nodes (skipped entirely when nothing split);
//! 4. [`SplitPolicy::advance`] rolls the policy's cursor forward and tells
//!    the driver whether an algorithm-level *round* just completed and
//!    whether the build is finished.
//!
//! For the quadtree family a step *is* a round. The R-tree's bottom-up
//! overflow sweep visits one height level per step and completes a round
//! only when a full sweep ends (see `rtree::RtreeSplitPolicy`), which is
//! why rounds are reported by `advance` rather than assumed by the driver.
//!
//! The driver is also the single instrumentation point: every step records
//! a [`RoundTrace`] on the machine — frontier shape, nodes split, the
//! physical-counter delta across the step, the arena high-water mark and
//! wall time — with no effect on the operation counters themselves (the
//! differential tests assert exact counter values across the refactor).
//! The loop is resumable: [`RoundDriver::step`] is public, so a caller can
//! interleave its own work between rounds; [`RoundDriver::run`] is the
//! plain run-to-completion wrapper the builders use.

use scan_model::{Machine, RoundTrace};
use std::time::Instant;

/// What a policy reports at the end of one driver step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundAdvance {
    /// An algorithm-level round completed this step (the driver counts it
    /// and calls [`Machine::bump_rounds`], which also decays the arena).
    pub round_completed: bool,
    /// The build is finished; the driver loop must stop after this step.
    pub finished: bool,
}

/// Per-structure split logic plugged into the [`RoundDriver`].
///
/// Implementations: `lineproc::QuadSplitPolicy` (shared by PM₁, PM₂, PM₃
/// and the bucket PMR quadtree — the structures differ only in the decide
/// closure) and `rtree::RtreeSplitPolicy`.
pub trait SplitPolicy {
    /// Active vector elements entering the current step (telemetry).
    fn active_elements(&self) -> usize;

    /// Active frontier nodes entering the current step (telemetry).
    fn active_nodes(&self) -> usize;

    /// One flag per active node: `true` to split it this step.
    fn decide(&mut self, machine: &Machine) -> Vec<bool>;

    /// Retires the nodes with `want[s] == false` (e.g. records them as
    /// leaves). Called every step, before any partitioning.
    fn emit(&mut self, machine: &Machine, want: &[bool]);

    /// Redistributes the elements of the splitting nodes and installs the
    /// next frontier. Only called when at least one node split.
    fn partition(&mut self, machine: &Machine, want: &[bool]);

    /// Advances the policy's cursor past this step and reports round /
    /// termination status. `split_any` is whether any node split this
    /// step.
    fn advance(&mut self, machine: &Machine, split_any: bool) -> RoundAdvance;
}

/// The instrumented build loop. See the module docs for the step anatomy.
#[derive(Debug, Default)]
pub struct RoundDriver {
    steps: usize,
    rounds: usize,
}

impl RoundDriver {
    /// A fresh driver with no steps taken.
    pub fn new() -> Self {
        RoundDriver::default()
    }

    /// Driver steps taken so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Algorithm-level rounds completed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Executes one `decide → emit → partition → advance` step and records
    /// its [`RoundTrace`]. Callers must stop once the returned
    /// [`RoundAdvance::finished`] is `true`.
    pub fn step(&mut self, machine: &Machine, policy: &mut dyn SplitPolicy) -> RoundAdvance {
        // Fault site: a plan can abort the build at the top of any step,
        // before the policy runs or any lock is taken — the safe panic
        // point the crash-recovery tests kill builds at. The occurrence
        // index is the machine-global step number, so "kill at round k"
        // is `FaultPlan::once_at(FaultSite::RoundAbort, k)`.
        machine.check_fault(scan_model::FaultSite::RoundAbort);
        let before = machine.stats();
        let started = Instant::now();
        let active_elements = policy.active_elements();
        let active_nodes = policy.active_nodes();

        let want = policy.decide(machine);
        let nodes_split = want.iter().filter(|&&w| w).count();
        policy.emit(machine, &want);
        if nodes_split > 0 {
            policy.partition(machine, &want);
        }
        let advance = policy.advance(machine, nodes_split > 0);
        if advance.round_completed {
            self.rounds += 1;
            machine.bump_rounds();
        }

        let delta = machine.stats().since(&before);
        machine.record_round_trace(RoundTrace {
            round: self.steps,
            active_elements,
            active_nodes,
            nodes_split,
            scans: delta.scans,
            scan_passes: delta.scan_passes,
            elementwise: delta.elementwise,
            permutes: delta.permutes,
            arena_high_water_bytes: machine.arena_high_water_bytes(),
            wall_nanos: started.elapsed().as_nanos() as u64,
            blocked_passes: delta.blocked_passes,
            bytes_moved: delta.bytes_moved,
            inplace_reuses: delta.inplace_reuses,
            block_bytes: machine.block_bytes(),
        });
        self.steps += 1;
        advance
    }

    /// Runs a fresh driver to completion and returns the number of
    /// algorithm-level rounds.
    pub fn run(machine: &Machine, policy: &mut dyn SplitPolicy) -> usize {
        let mut driver = RoundDriver::new();
        while !driver.step(machine, policy).finished {}
        driver.rounds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy policy: `levels` nodes, each step splits all nodes of one
    /// level into two, until no levels remain.
    struct Halving {
        remaining: usize,
        nodes: usize,
    }

    impl SplitPolicy for Halving {
        fn active_elements(&self) -> usize {
            self.nodes * 10
        }
        fn active_nodes(&self) -> usize {
            self.nodes
        }
        fn decide(&mut self, _machine: &Machine) -> Vec<bool> {
            vec![self.remaining > 0; self.nodes]
        }
        fn emit(&mut self, _machine: &Machine, _want: &[bool]) {}
        fn partition(&mut self, machine: &Machine, _want: &[bool]) {
            machine.note_elementwise();
            self.nodes *= 2;
            self.remaining -= 1;
        }
        fn advance(&mut self, _machine: &Machine, split_any: bool) -> RoundAdvance {
            RoundAdvance {
                round_completed: split_any,
                finished: !split_any,
            }
        }
    }

    #[test]
    fn run_counts_rounds_and_bumps_machine() {
        let machine = Machine::sequential();
        let mut policy = Halving {
            remaining: 3,
            nodes: 1,
        };
        let rounds = RoundDriver::run(&machine, &mut policy);
        assert_eq!(rounds, 3);
        assert_eq!(policy.nodes, 8);
        assert_eq!(machine.stats().rounds, 3);
    }

    #[test]
    fn traces_record_frontier_and_op_deltas() {
        let machine = Machine::sequential();
        let mut policy = Halving {
            remaining: 2,
            nodes: 1,
        };
        RoundDriver::run(&machine, &mut policy);
        let traces = machine.take_round_traces();
        // Two splitting steps plus the final all-retire step.
        assert_eq!(traces.len(), 3);
        assert_eq!(
            traces.iter().map(|t| t.round).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(
            traces.iter().map(|t| t.active_nodes).collect::<Vec<_>>(),
            vec![1, 2, 4]
        );
        assert_eq!(
            traces.iter().map(|t| t.nodes_split).collect::<Vec<_>>(),
            vec![1, 2, 0]
        );
        // The per-step counter deltas sum to the machine totals (tracing
        // itself must not perturb the counters).
        let elementwise: u64 = traces.iter().map(|t| t.elementwise).sum();
        assert_eq!(elementwise, machine.stats().elementwise);
        assert_eq!(machine.stats().elementwise, 2);
    }

    #[test]
    fn step_is_resumable_mid_build() {
        let machine = Machine::sequential();
        let mut policy = Halving {
            remaining: 2,
            nodes: 1,
        };
        let mut driver = RoundDriver::new();
        let first = driver.step(&machine, &mut policy);
        assert!(!first.finished);
        assert_eq!(driver.steps(), 1);
        assert_eq!(driver.rounds(), 1);
        // ...caller-side work can happen here...
        while !driver.step(&machine, &mut policy).finished {}
        assert_eq!(driver.rounds(), 2);
        assert_eq!(driver.steps(), 3);
    }
}
