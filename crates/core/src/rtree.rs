//! Data-parallel R-tree construction (paper Sec. 5.3).
//!
//! All segments are inserted simultaneously. The tree is represented the
//! way the paper draws it (Figs. 39–44): the **line processor set** at the
//! bottom, plus one **node processor set per height**, each grouping the
//! set below it into contiguous segments. Concretely, [`DpRTree`] holds a
//! stack of [`Segments`]: `groups[0]` groups lanes into leaves, and
//! `groups[h]` groups the height-`h` nodes under their height-`h+1`
//! parents; the root is the single segment at the top.
//!
//! Per round, every node counts its children (the node capacity check,
//! Fig. 19 / Fig. 39's `count` row); every node over `M` splits once via a
//! split selector ([`crate::rsplit`]) and an unshuffle (Figs. 40–41);
//! splits of height-`h` nodes add a child to their parents, which may
//! overflow and split when the round reaches height `h+1` ("these splits
//! possibly propagating upward"); an overflowing root splits and a new
//! root level appears above it (Fig. 42). The build terminates when every
//! node has at most `M` children (Fig. 44) — O(log n) rounds, each with a
//! constant number of scans and two sorts: O(log² n) total.
//!
//! Because the split reorders a node's children and children are stored
//! contiguously, a split at height `h` permutes whole blocks of every
//! level below — the "expensive processor reordering" the paper's SAM
//! discussion points at (Fig. 12). [`DpRTree`] performs it as a cascade of
//! block gathers.

use crate::round_driver::{RoundAdvance, RoundDriver, SplitPolicy};
use crate::rsplit::{select_split_classes, RtreeSplitAlgorithm};
use crate::SegId;
use dp_geom::{LineSeg, Point, Rect};
use scan_model::ops::{Max, Min};
use scan_model::{Machine, ScanKind, Segments};

/// What [`DpRTree::raw_parts`] hands the snapshot codec: `(lane_line,
/// lane_bbox, per-level group lengths, node_mbrs, rounds)`.
pub(crate) type RtreeRawParts<'a> = (
    &'a [SegId],
    &'a [Rect],
    Vec<Vec<usize>>,
    &'a [Vec<Rect>],
    usize,
);

/// A data-parallel R-tree of order `(m, M)` over a borrowed segment slice.
#[derive(Debug, Clone, PartialEq)]
pub struct DpRTree {
    m: usize,
    max: usize,
    /// Per lane: indexed segment id.
    lane_line: Vec<SegId>,
    /// Per lane: the segment's bounding rectangle.
    lane_bbox: Vec<Rect>,
    /// `groups[0]` groups lanes into leaves; `groups[h]` groups height-`h`
    /// nodes under their parents. The top descriptor has one segment: the
    /// root.
    groups: Vec<Segments>,
    /// `node_mbrs[h][s]`: MBR of node `s` at grouping level `h`.
    node_mbrs: Vec<Vec<Rect>>,
    rounds: usize,
}

/// Structure statistics for a [`DpRTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RtStats {
    /// Total nodes across all levels (including the root).
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Height: number of grouping levels (single-leaf tree = 0).
    pub height: usize,
    /// Indexed entries (lanes).
    pub entries: usize,
    /// Largest leaf occupancy.
    pub max_leaf_occupancy: usize,
}

/// Builds an order `(m, M)` R-tree over `segs` with all segments inserted
/// simultaneously (paper Sec. 5.3).
///
/// # Panics
///
/// Panics unless `1 <= m <= (M + 1) / 2` and `M >= 2`.
pub fn build_rtree(
    machine: &Machine,
    segs: &[LineSeg],
    m: usize,
    max: usize,
    algo: RtreeSplitAlgorithm,
) -> DpRTree {
    assert!(max >= 2, "M must be at least 2");
    assert!(
        m >= 1 && 2 * m <= max + 1,
        "need 1 <= m <= (M+1)/2, got m={m}, M={max}"
    );
    let n = segs.len();
    let mut tree = DpRTree {
        m,
        max,
        lane_line: (0..n as SegId).collect(),
        lane_bbox: segs.iter().map(|s| s.bbox()).collect(),
        groups: vec![Segments::single(n)],
        node_mbrs: Vec::new(),
        rounds: 0,
    };
    if n == 0 {
        tree.node_mbrs = vec![vec![Rect::empty()]];
        return tree;
    }

    let mut policy = RtreeSplitPolicy {
        tree: &mut tree,
        algo,
        h: 0,
        sweep_split_any: false,
    };
    let rounds = RoundDriver::run(machine, &mut policy);
    tree.rounds = rounds;
    tree.node_mbrs = tree.compute_all_mbrs(machine);
    tree
}

/// The R-tree [`SplitPolicy`]: the bottom-up overflow sweep of paper
/// Sec. 5.3 expressed as driver steps. One step visits one grouping level
/// `h` (counts → overflow decision → split + unshuffle + upward
/// propagation); a *round* completes only when a full bottom-to-top sweep
/// ends, matching the paper's "splits possibly propagating upward" —
/// `advance` therefore carries a height cursor instead of equating steps
/// with rounds. A mid-sweep root split grows a new level that the same
/// sweep still visits (Fig. 42).
struct RtreeSplitPolicy<'t> {
    tree: &'t mut DpRTree,
    algo: RtreeSplitAlgorithm,
    /// Height cursor: the grouping level this step examines.
    h: usize,
    /// Whether any node split since the current sweep began.
    sweep_split_any: bool,
}

impl SplitPolicy for RtreeSplitPolicy<'_> {
    fn active_elements(&self) -> usize {
        self.tree.groups[self.h].len()
    }

    fn active_nodes(&self) -> usize {
        self.tree.groups[self.h].num_segments()
    }

    fn decide(&mut self, machine: &Machine) -> Vec<bool> {
        self.tree.overflow_flags(machine, self.h)
    }

    fn emit(&mut self, _machine: &Machine, _want: &[bool]) {
        // Nothing retires: R-tree nodes stay in the level stack; only the
        // overflowing ones move (split) this step.
    }

    fn partition(&mut self, machine: &Machine, want: &[bool]) {
        self.tree.split_level(machine, self.h, want, self.algo);
    }

    fn advance(&mut self, _machine: &Machine, split_any: bool) -> RoundAdvance {
        self.sweep_split_any |= split_any;
        self.h += 1;
        if self.h < self.tree.groups.len() {
            // Sweep continues upward (possibly into a level a root split
            // just created).
            return RoundAdvance {
                round_completed: false,
                finished: false,
            };
        }
        // Sweep finished: a round completed iff anything split; the build
        // is done once a full sweep finds nothing over capacity.
        let completed = self.sweep_split_any;
        self.h = 0;
        self.sweep_split_any = false;
        RoundAdvance {
            round_completed: completed,
            finished: !completed,
        }
    }
}

/// Bulk loads a *packed* R-tree: segments are sorted by the Hilbert index
/// of their bounding-box midpoints and chunked into full leaves of `max`
/// entries, then levels of full internal nodes are stacked until a single
/// root remains (Kamel & Faloutsos-style packing — the paper's \[Kame92\]
/// reference; the classic bulk-load comparator for iterative builds).
///
/// The result is a [`DpRTree`] of order `(1, max)`: packing guarantees
/// full nodes except the last one per level, which may hold a single
/// entry. The sort is issued through the machine and counted as one sort
/// plus O(1) scans — packing is a *one-round* build, trading the
/// iterative algorithm's split-quality optimization for speed.
///
/// # Panics
///
/// Panics if `max < 2` or any segment midpoint lies outside `world`.
pub fn pack_rtree_hilbert(machine: &Machine, segs: &[LineSeg], world: Rect, max: usize) -> DpRTree {
    assert!(max >= 2, "M must be at least 2");
    let n = segs.len();
    let mut tree = DpRTree {
        m: 1,
        max,
        lane_line: (0..n as SegId).collect(),
        lane_bbox: segs.iter().map(|s| s.bbox()).collect(),
        groups: vec![Segments::single(n)],
        node_mbrs: Vec::new(),
        rounds: 0,
    };
    if n == 0 {
        tree.node_mbrs = vec![vec![Rect::empty()]];
        return tree;
    }

    // Hilbert keys of the bbox midpoints on a 2^16 grid over the world.
    const ORDER: u32 = 16;
    let side = (1u32 << ORDER) as f64;
    let keys: Vec<u64> = machine.map(&tree.lane_bbox, |b| {
        let c = b.center();
        assert!(
            world.contains(c),
            "segment midpoint {c} outside the packing world"
        );
        let gx = (((c.x - world.min.x) / world.width()) * (side - 1.0)) as u32;
        let gy = (((c.y - world.min.y) / world.height()) * (side - 1.0)) as u32;
        dp_geom::hilbert_d(ORDER, gx, gy)
    });
    let order = machine.segmented_sort_perm(&tree.groups[0], &keys, |a, b| a.cmp(b));
    tree.lane_line = machine.gather(&tree.lane_line, &order);
    tree.lane_bbox = machine.gather(&tree.lane_bbox, &order);

    // Chunk each level into full nodes.
    let mut groups = Vec::new();
    let mut items = n;
    loop {
        let mut lengths = Vec::with_capacity(items.div_ceil(max));
        let mut left = items;
        while left > 0 {
            let take = left.min(max);
            lengths.push(take);
            left -= take;
        }
        let seg = Segments::from_lengths(&lengths).expect("non-empty chunks");
        let nodes = seg.num_segments();
        groups.push(seg);
        if nodes == 1 {
            break;
        }
        items = nodes;
    }
    tree.groups = groups;
    tree.node_mbrs = tree.compute_all_mbrs(machine);
    tree
}

impl DpRTree {
    /// Item MBRs at grouping level `h`: lane bboxes for `h = 0`, otherwise
    /// the per-segment MBRs of level `h - 1` (computed bottom-up with
    /// min/max scans).
    fn item_mbrs(&self, machine: &Machine, h: usize) -> Vec<Rect> {
        let mut mbrs = self.lane_bbox.clone();
        for level in 0..h {
            mbrs = fold_mbrs(machine, &self.groups[level], &mbrs);
        }
        mbrs
    }

    fn compute_all_mbrs(&self, machine: &Machine) -> Vec<Vec<Rect>> {
        let mut out = Vec::with_capacity(self.groups.len());
        let mut items = self.lane_bbox.clone();
        for seg in &self.groups {
            let node = fold_mbrs(machine, seg, &items);
            out.push(node.clone());
            items = node;
        }
        out
    }

    /// The node capacity check at level `h` (Fig. 19 / Fig. 39's `count`
    /// row): one flag per node, `true` when it holds more than `M` items.
    fn overflow_flags(&self, machine: &Machine, h: usize) -> Vec<bool> {
        let counts = machine.segment_counts(&self.groups[h]);
        machine.note_elementwise();
        counts.iter().map(|&c| c as usize > self.max).collect()
    }

    /// Splits every overflowing node of level `h` once: split-class
    /// selection, unshuffle cascade, new segment lengths, and upward
    /// propagation of the extra children (root growth included). Requires
    /// at least one `overflowing` flag set.
    fn split_level(
        &mut self,
        machine: &Machine,
        h: usize,
        overflowing: &[bool],
        algo: RtreeSplitAlgorithm,
    ) {
        let mbrs = self.item_mbrs(machine, h);
        let class = select_split_classes(
            machine,
            &self.groups[h],
            &mbrs,
            overflowing,
            self.m,
            self.max,
            algo,
        );

        // Partition the items of each overflowing segment.
        let un = machine.unshuffle_layout(&self.groups[h], &class);
        // Convert the scatter targets to a gather order for the cascade.
        machine.note_permute();
        let mut order = vec![0usize; un.target.len()];
        for (i, &t) in un.target.iter().enumerate() {
            order[t] = i;
        }
        self.apply_item_order(machine, h, &order);

        // New level-h segment lengths: overflowing segments split in two.
        let mut new_lengths = Vec::with_capacity(self.groups[h].num_segments() + 8);
        let mut splits_per_segment = Vec::with_capacity(self.groups[h].num_segments());
        for (s, r) in self.groups[h].ranges().enumerate() {
            if overflowing[s] {
                let (na, nb) = un.counts[s];
                debug_assert!(na >= self.m && nb >= self.m);
                new_lengths.push(na);
                new_lengths.push(nb);
                splits_per_segment.push(1usize);
            } else {
                new_lengths.push(r.len());
                splits_per_segment.push(0);
            }
        }
        self.groups[h] =
            Segments::from_lengths(&new_lengths).expect("split sides are non-empty (>= m >= 1)");

        // Propagate the extra children to the parents.
        if h + 1 < self.groups.len() {
            let parent = &self.groups[h + 1];
            let mut parent_lengths: Vec<usize> = parent.lengths();
            for (s, &extra) in splits_per_segment.iter().enumerate() {
                if extra > 0 {
                    let p = parent.segment_of(s);
                    parent_lengths[p] += extra;
                }
            }
            self.groups[h + 1] = Segments::from_lengths(&parent_lengths)
                .expect("parents keep at least their previous children");
        } else if self.groups[h].num_segments() > 1 {
            // The root split: grow a new root level above (Fig. 42).
            let n_top = self.groups[h].num_segments();
            self.groups.push(Segments::single(n_top));
        }
    }

    /// Reorders the items at level `h` by `order` (gather indices),
    /// cascading block permutations down to the lanes.
    fn apply_item_order(&mut self, machine: &Machine, h: usize, order: &[usize]) {
        if h == 0 {
            self.lane_line = machine.gather(&self.lane_line, order);
            self.lane_bbox = machine.gather(&self.lane_bbox, order);
            return;
        }
        // Items at level h are the segments of groups[h-1]; reorder those
        // segments and induce the item order one level down.
        let below = &self.groups[h - 1];
        let old_lengths = below.lengths();
        machine.note_permute();
        let mut new_lengths = Vec::with_capacity(old_lengths.len());
        let mut induced = Vec::with_capacity(below.len());
        for &item in order {
            let r = below.range(item);
            new_lengths.push(r.len());
            induced.extend(r);
        }
        self.groups[h - 1] =
            Segments::from_lengths(&new_lengths).expect("segment lengths are preserved");
        self.apply_item_order(machine, h - 1, &induced);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Minimum fanout `m`.
    pub fn min_entries(&self) -> usize {
        self.m
    }

    /// Maximum fanout `M`.
    pub fn max_entries(&self) -> usize {
        self.max
    }

    /// Tree height: number of grouping levels (a single-leaf tree has
    /// height 0 in the paper's Fig. 39 sense — just `N₀`).
    pub fn height(&self) -> usize {
        self.groups.len() - 1
    }

    /// Build rounds taken (the paper's O(log n) stage count).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of leaf nodes.
    pub fn num_leaves(&self) -> usize {
        self.groups[0].num_segments()
    }

    /// Indexed ids, grouped by leaf, in linear processor order.
    pub fn lanes(&self) -> (&[SegId], &Segments) {
        (&self.lane_line, &self.groups[0])
    }

    /// Raw parts for the snapshot codec: `(lane_line, lane_bbox,
    /// per-level group lengths, node_mbrs, rounds)`.
    pub(crate) fn raw_parts(&self) -> RtreeRawParts<'_> {
        (
            &self.lane_line,
            &self.lane_bbox,
            self.groups.iter().map(|g| g.lengths()).collect(),
            &self.node_mbrs,
            self.rounds,
        )
    }

    /// Reassembles a tree from decoded parts — the snapshot codec's
    /// decode path. Structural consistency (lane lengths vs `groups[0]`,
    /// level fanouts, MBR counts) is the codec's responsibility.
    pub(crate) fn from_raw_parts(
        m: usize,
        max: usize,
        lane_line: Vec<SegId>,
        lane_bbox: Vec<Rect>,
        groups: Vec<Segments>,
        node_mbrs: Vec<Vec<Rect>>,
        rounds: usize,
    ) -> Self {
        DpRTree {
            m,
            max,
            lane_line,
            lane_bbox,
            groups,
            node_mbrs,
            rounds,
        }
    }

    /// Structure statistics.
    pub fn stats(&self) -> RtStats {
        RtStats {
            nodes: self.groups.iter().map(|g| g.num_segments()).sum(),
            leaves: self.groups[0].num_segments(),
            height: self.height(),
            entries: self.lane_line.len(),
            max_leaf_occupancy: self.groups[0].ranges().map(|r| r.len()).max().unwrap_or(0),
        }
    }

    /// Split-quality metrics `(coverage, overlap)`: total node MBR area
    /// and total pairwise overlap between siblings (paper Fig. 6's two
    /// goals).
    pub fn quality_metrics(&self) -> (f64, f64) {
        let mut coverage = 0.0;
        let mut overlap = 0.0;
        for (h, seg) in self.groups.iter().enumerate() {
            let mbrs = &self.node_mbrs[h];
            coverage += mbrs.iter().map(|r| r.area()).sum::<f64>();
            // Sibling overlap: nodes sharing a parent. At the top level
            // all nodes are siblings under the root.
            let sibling_groups: Vec<std::ops::Range<usize>> = if h + 1 < self.groups.len() {
                self.groups[h + 1].ranges().collect()
            } else {
                std::iter::once(0..seg.num_segments()).collect()
            };
            for r in sibling_groups {
                for i in r.clone() {
                    for j in (i + 1)..r.end {
                        overlap += mbrs[i].overlap_area(&mbrs[j]);
                    }
                }
            }
        }
        (coverage, overlap)
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Ids whose bounding rectangles intersect `query`, sorted.
    pub fn window_candidates(&self, query: &Rect) -> Vec<SegId> {
        let mut out = Vec::new();
        // (level, node) pairs; level = index into groups.
        let top = self.groups.len() - 1;
        let mut stack: Vec<(usize, usize)> = (0..self.groups[top].num_segments())
            .filter(|&s| self.node_mbrs[top][s].intersects(query))
            .map(|s| (top, s))
            .collect();
        while let Some((level, node)) = stack.pop() {
            let r = self.groups[level].range(node);
            if level == 0 {
                for i in r {
                    if self.lane_bbox[i].intersects(query) {
                        out.push(self.lane_line[i]);
                    }
                }
            } else {
                for child in r {
                    if self.node_mbrs[level - 1][child].intersects(query) {
                        stack.push((level - 1, child));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Ids of segments that truly intersect `query`.
    pub fn window_query(&self, query: &Rect, segs: &[LineSeg]) -> Vec<SegId> {
        self.window_candidates(query)
            .into_iter()
            .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], query).is_some())
            .collect()
    }

    /// Number of tree nodes visited by a window search (the paper's
    /// non-disjointness cost: overlapping rectangles force extra visits).
    pub fn window_nodes_visited(&self, query: &Rect) -> usize {
        let mut visited = 1usize; // the root
        let top = self.groups.len() - 1;
        let mut stack: Vec<(usize, usize)> = (0..self.groups[top].num_segments())
            .filter(|&s| self.node_mbrs[top][s].intersects(query))
            .map(|s| (top, s))
            .collect();
        // Count the root's children we descend into, then below.
        while let Some((level, node)) = stack.pop() {
            visited += 1;
            if level == 0 {
                continue;
            }
            for child in self.groups[level].range(node) {
                if self.node_mbrs[level - 1][child].intersects(query) {
                    stack.push((level - 1, child));
                }
            }
        }
        visited
    }

    /// The nearest indexed segment to `p` by true distance.
    pub fn nearest(&self, p: Point, segs: &[LineSeg]) -> Option<(SegId, f64)> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        #[derive(PartialEq)]
        struct Item {
            dist2: f64,
            level: usize, // usize::MAX marks a lane entry
            index: usize,
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                other.dist2.total_cmp(&self.dist2)
            }
        }
        if self.lane_line.is_empty() {
            return None;
        }
        let top = self.groups.len() - 1;
        let mut heap = BinaryHeap::new();
        for s in 0..self.groups[top].num_segments() {
            heap.push(Item {
                dist2: self.node_mbrs[top][s].dist2_to_point(p),
                level: top,
                index: s,
            });
        }
        while let Some(item) = heap.pop() {
            if item.level == usize::MAX {
                return Some((self.lane_line[item.index], item.dist2.sqrt()));
            }
            let r = self.groups[item.level].range(item.index);
            if item.level == 0 {
                for i in r {
                    heap.push(Item {
                        dist2: segs[self.lane_line[i] as usize].dist2_to_point(p),
                        level: usize::MAX,
                        index: i,
                    });
                }
            } else {
                for child in r {
                    heap.push(Item {
                        dist2: self.node_mbrs[item.level - 1][child].dist2_to_point(p),
                        level: item.level - 1,
                        index: child,
                    });
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Validates the R-tree invariants; panics with a description on the
    /// first violation.
    pub fn check_invariants(&self, segs: &[LineSeg]) {
        if self.lane_line.is_empty() {
            assert_eq!(self.groups.len(), 1);
            return;
        }
        // Level sizes chain correctly.
        assert_eq!(self.groups[0].len(), self.lane_line.len());
        for h in 1..self.groups.len() {
            assert_eq!(
                self.groups[h].len(),
                self.groups[h - 1].num_segments(),
                "level {h} must group the nodes of level {}",
                h - 1
            );
        }
        let top = self.groups.len() - 1;
        assert_eq!(self.groups[top].num_segments(), 1, "single root");
        // Fanout bounds: every node ≤ M; every non-root node ≥ m unless it
        // is the never-split single leaf (tree of height 0).
        for (h, seg) in self.groups.iter().enumerate() {
            for (s, r) in seg.ranges().enumerate() {
                let is_root = h == top;
                if !is_root {
                    assert!(
                        r.len() >= self.m,
                        "node {s} at level {h} has {} < m children",
                        r.len()
                    );
                }
                assert!(
                    r.len() <= self.max,
                    "node {s} at level {h} has {} > M children",
                    r.len()
                );
                if is_root && self.groups.len() > 1 {
                    assert!(r.len() >= 2, "a non-leaf root needs >= 2 children");
                }
            }
        }
        // Single-leaf tree may hold at most M entries only after a build
        // (never-split) — that is exactly when n <= M.
        if self.groups.len() == 1 {
            assert!(self.lane_line.len() <= self.max);
        }
        // MBR containment and correctness.
        let machine = Machine::sequential();
        let recomputed = self.compute_all_mbrs(&machine);
        for (h, level) in recomputed.iter().enumerate() {
            assert_eq!(level, &self.node_mbrs[h], "cached MBRs stale at level {h}");
        }
        // Every lane's bbox matches its segment.
        let mut seen = vec![false; segs.len()];
        for (i, &id) in self.lane_line.iter().enumerate() {
            assert_eq!(self.lane_bbox[i], segs[id as usize].bbox());
            assert!(!seen[id as usize], "segment {id} indexed twice");
            seen[id as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "segments missing from the tree");
    }
}

/// Per-segment MBRs via four min/max scans and head reads.
fn fold_mbrs(machine: &Machine, seg: &Segments, items: &[Rect]) -> Vec<Rect> {
    if seg.is_empty() {
        // Empty tree: a single empty root MBR.
        return vec![Rect::empty()];
    }
    let lo_x: Vec<f64> = machine.map(items, |r| r.min.x);
    let lo_y: Vec<f64> = machine.map(items, |r| r.min.y);
    let hi_x: Vec<f64> = machine.map(items, |r| r.max.x);
    let hi_y: Vec<f64> = machine.map(items, |r| r.max.y);
    let lo_x = machine.down_scan_seg(&lo_x, seg, Min, ScanKind::Inclusive);
    let lo_y = machine.down_scan_seg(&lo_y, seg, Min, ScanKind::Inclusive);
    let hi_x = machine.down_scan_seg(&hi_x, seg, Max, ScanKind::Inclusive);
    let hi_y = machine.down_scan_seg(&hi_y, seg, Max, ScanKind::Inclusive);
    machine.note_elementwise();
    seg.starts()
        .iter()
        .map(|&h| Rect::from_coords(lo_x[h], lo_y[h], hi_x[h], hi_y[h]))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use scan_model::Backend;

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    fn segments(n: usize) -> Vec<LineSeg> {
        (0..n)
            .map(|k| {
                let x = ((k * 37) % 97) as f64;
                let y = ((k * 61) % 89) as f64;
                LineSeg::from_coords(x, y, x + 3.0, y + 2.0)
            })
            .collect()
    }

    #[test]
    fn build_empty_and_small() {
        for m in machines() {
            let t = build_rtree(&m, &[], 1, 3, RtreeSplitAlgorithm::Sweep);
            assert_eq!(t.stats().entries, 0);
            assert!(t.nearest(Point::new(0.0, 0.0), &[]).is_none());

            let segs = segments(3);
            let t = build_rtree(&m, &segs, 1, 3, RtreeSplitAlgorithm::Sweep);
            t.check_invariants(&segs);
            assert_eq!(t.height(), 0);
            assert_eq!(t.rounds(), 0);
        }
    }

    #[test]
    fn paper_configuration_order_1_3_on_9_lines() {
        // Sec. 5.3 / Figs. 39-44: 9 lines, order (1,3). The example ends
        // with three levels (N0 leaves, N1, N2 root).
        for m in machines() {
            let segs = segments(9);
            for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
                let t = build_rtree(&m, &segs, 1, 3, algo);
                t.check_invariants(&segs);
                assert!(t.height() >= 1, "{algo:?}");
                assert_eq!(t.stats().entries, 9);
            }
        }
    }

    #[test]
    fn build_invariants_across_sizes_and_orders() {
        for m in machines() {
            for &(mn, mx) in &[(1usize, 3usize), (2, 5), (3, 8)] {
                for &n in &[0usize, 1, 5, 40, 200] {
                    let segs = segments(n);
                    for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
                        let t = build_rtree(&m, &segs, mn, mx, algo);
                        t.check_invariants(&segs);
                    }
                }
            }
        }
    }

    #[test]
    fn window_query_matches_brute_force() {
        for m in machines() {
            let segs = segments(120);
            for algo in [RtreeSplitAlgorithm::Mean, RtreeSplitAlgorithm::Sweep] {
                let t = build_rtree(&m, &segs, 2, 6, algo);
                for query in [
                    Rect::from_coords(0.0, 0.0, 25.0, 25.0),
                    Rect::from_coords(40.0, 30.0, 70.0, 60.0),
                    Rect::from_coords(0.0, 0.0, 100.0, 100.0),
                    Rect::from_coords(96.0, 90.0, 99.0, 95.0),
                ] {
                    let got = t.window_query(&query, &segs);
                    let brute: Vec<SegId> = (0..segs.len() as u32)
                        .filter(|&id| {
                            dp_geom::clip_segment_closed(&segs[id as usize], &query).is_some()
                        })
                        .collect();
                    assert_eq!(got, brute, "{algo:?} window {query}");
                }
            }
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        for m in machines() {
            let segs = segments(60);
            let t = build_rtree(&m, &segs, 2, 5, RtreeSplitAlgorithm::Sweep);
            for p in [
                Point::new(0.0, 0.0),
                Point::new(48.0, 44.0),
                Point::new(96.0, 2.0),
            ] {
                let (_, d) = t.nearest(p, &segs).unwrap();
                let brute = (0..segs.len())
                    .map(|k| segs[k].dist2_to_point(p).sqrt())
                    .min_by(|a, b| a.total_cmp(b))
                    .unwrap();
                assert_eq!(d, brute, "at {p}");
            }
        }
    }

    #[test]
    fn rounds_are_logarithmic() {
        // O(log n) rounds: going from 64 to 512 lines must add only a few
        // rounds, not multiply them.
        let m = Machine::sequential();
        let t64 = build_rtree(&m, &segments(64), 2, 4, RtreeSplitAlgorithm::Sweep);
        let t512 = build_rtree(&m, &segments(512), 2, 4, RtreeSplitAlgorithm::Sweep);
        assert!(t512.rounds() <= t64.rounds() + 6);
        assert!(t512.rounds() >= t64.rounds());
    }

    #[test]
    fn backends_build_identical_trees() {
        let segs = segments(150);
        let a = build_rtree(
            &Machine::sequential(),
            &segs,
            2,
            6,
            RtreeSplitAlgorithm::Sweep,
        );
        let b = build_rtree(
            &Machine::new(Backend::Parallel).with_par_threshold(1),
            &segs,
            2,
            6,
            RtreeSplitAlgorithm::Sweep,
        );
        assert_eq!(a.lane_line, b.lane_line);
        assert_eq!(a.groups, b.groups);
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn duplicate_geometry_allowed() {
        for m in machines() {
            let segs = vec![LineSeg::from_coords(1.0, 1.0, 2.0, 2.0); 11];
            let t = build_rtree(&m, &segs, 2, 4, RtreeSplitAlgorithm::Sweep);
            t.check_invariants(&segs);
            assert_eq!(
                t.window_query(&Rect::from_coords(0.0, 0.0, 3.0, 3.0), &segs)
                    .len(),
                11
            );
        }
    }

    #[test]
    fn packed_tree_invariants_and_queries() {
        let world = Rect::from_coords(0.0, 0.0, 128.0, 128.0);
        for m in machines() {
            for &n in &[0usize, 1, 7, 8, 9, 100] {
                let segs: Vec<LineSeg> = (0..n)
                    .map(|k| {
                        let x = ((k * 37) % 120) as f64;
                        let y = ((k * 61) % 120) as f64;
                        LineSeg::from_coords(x, y, x + 3.0, y + 2.0)
                    })
                    .collect();
                let t = pack_rtree_hilbert(&m, &segs, world, 8);
                t.check_invariants(&segs);
                assert_eq!(t.rounds(), 0, "packing is a one-round build");
                if n > 0 {
                    let q = Rect::from_coords(10.0, 10.0, 60.0, 60.0);
                    let brute: Vec<SegId> = (0..n as u32)
                        .filter(|&id| {
                            dp_geom::clip_segment_closed(&segs[id as usize], &q).is_some()
                        })
                        .collect();
                    assert_eq!(t.window_query(&q, &segs), brute);
                }
            }
        }
    }

    #[test]
    fn packed_leaves_are_full_except_last() {
        let world = Rect::from_coords(0.0, 0.0, 128.0, 128.0);
        let m = Machine::sequential();
        let segs = segments(27);
        let t = pack_rtree_hilbert(&m, &segs, world, 8);
        let (_, leaf_seg) = t.lanes();
        let lens = leaf_seg.lengths();
        assert_eq!(lens, vec![8, 8, 8, 3]);
    }

    #[test]
    fn packed_tree_has_low_coverage_on_clustered_data() {
        // Hilbert packing groups spatially close segments; on clustered
        // data its coverage must be competitive with (well under 2x) the
        // iterative sweep build.
        let world = Rect::from_coords(0.0, 0.0, 128.0, 128.0);
        let m = Machine::sequential();
        let segs = segments(200);
        let packed = pack_rtree_hilbert(&m, &segs, world, 8);
        let swept = build_rtree(&m, &segs, 2, 8, RtreeSplitAlgorithm::Sweep);
        let (cov_p, _) = packed.quality_metrics();
        let (cov_s, _) = swept.quality_metrics();
        assert!(cov_p < cov_s * 2.0, "packed {cov_p} vs swept {cov_s}");
    }

    #[test]
    fn quality_metrics_finite() {
        let m = Machine::sequential();
        let segs = segments(100);
        let t = build_rtree(&m, &segs, 2, 6, RtreeSplitAlgorithm::Sweep);
        let (cov, ov) = t.quality_metrics();
        assert!(cov.is_finite() && cov > 0.0);
        assert!(ov.is_finite() && ov >= 0.0);
    }
}
