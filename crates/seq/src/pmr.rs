//! Sequential (classic) PMR quadtree (paper Sec. 2.2).
//!
//! The PMR quadtree is edge-based with a *probabilistic* splitting rule:
//! when inserting a segment into a block pushes the block's occupancy over
//! the splitting threshold, the block is split **once and only once** —
//! even if the resulting children are still over the threshold. The
//! resulting shape depends on insertion order (paper Figs. 3 and 34),
//! which is exactly why the data-parallel build in the companion
//! `dp-spatial` crate uses the *bucket* PMR variant instead (paper
//! Sec. 5.2).
//!
//! Deletion removes the segment from every block it intersects and then
//! merges sibling groups whose combined distinct occupancy falls below
//! the threshold, reapplying the merge upward (note the paper's remark on
//! the asymmetry between the splitting and merging rules).

use crate::quad::{filter_window, QuadArena, QuadNode};
use crate::{SegId, TreeStats};
use dp_geom::{seg_in_block, LineSeg, Point, Rect};

/// A classic PMR quadtree with the split-once insertion rule.
#[derive(Debug, Clone)]
pub struct PmrTree {
    arena: QuadArena,
    threshold: usize,
    max_depth: usize,
}

impl PmrTree {
    /// An empty tree over `world` with the given splitting `threshold`
    /// and subdivision depth bound.
    ///
    /// # Panics
    ///
    /// Panics if `threshold == 0`.
    pub fn new(world: Rect, threshold: usize, max_depth: usize) -> Self {
        assert!(threshold >= 1, "splitting threshold must be at least 1");
        PmrTree {
            arena: QuadArena::new(world),
            threshold,
            max_depth,
        }
    }

    /// Builds a tree by inserting `segs` in slice order (the order
    /// *matters* — see [`PmrTree::insert`]).
    pub fn build(world: Rect, segs: &[LineSeg], threshold: usize, max_depth: usize) -> Self {
        let mut t = PmrTree::new(world, threshold, max_depth);
        for id in 0..segs.len() {
            t.insert(id as SegId, segs);
        }
        t
    }

    /// Inserts segment `id`: it is added to every leaf block it
    /// intersects; each such block that now exceeds the threshold is split
    /// once (paper Sec. 2.2).
    ///
    /// # Panics
    ///
    /// Panics if the segment lies outside the half-open world.
    pub fn insert(&mut self, id: SegId, segs: &[LineSeg]) {
        let world = self.arena.world();
        let s = &segs[id as usize];
        assert!(
            world.contains_half_open(s.a) && world.contains_half_open(s.b),
            "segment {id} endpoint outside the half-open world"
        );
        self.insert_rec(self.arena.root(), world, 0, id, segs);
    }

    fn insert_rec(&mut self, idx: usize, rect: Rect, depth: usize, id: SegId, segs: &[LineSeg]) {
        if !seg_in_block(&segs[id as usize], &rect) {
            return;
        }
        match self.arena.node(idx) {
            QuadNode::Internal { children } => {
                let children = *children;
                let quads = rect.quadrants();
                for q in 0..4 {
                    self.insert_rec(children[q], quads[q], depth + 1, id, segs);
                }
            }
            QuadNode::Leaf { segs: leaf } => {
                let occupancy = leaf.len() + 1;
                self.arena.push_to_leaf(idx, id);
                // Split once, and only once, when the insertion pushes the
                // block over the threshold.
                if occupancy > self.threshold && depth < self.max_depth {
                    self.arena.subdivide(idx, &rect, segs);
                }
            }
        }
    }

    /// Deletes segment `id` from every block it intersects, merging
    /// sibling groups whose combined distinct occupancy drops below the
    /// threshold (recursively upward). Returns whether the segment was
    /// present anywhere.
    pub fn delete(&mut self, id: SegId, segs: &[LineSeg]) -> bool {
        let world = self.arena.world();
        let removed = self.delete_rec(self.arena.root(), world, id, segs);
        // Merge pass: repeatedly collapse qualifying sibling groups. A
        // simple fixpoint loop keeps the logic obviously correct; merges
        // are rare relative to queries.
        loop {
            if !self.merge_pass(self.arena.root()) {
                break;
            }
        }
        removed
    }

    fn delete_rec(&mut self, idx: usize, rect: Rect, id: SegId, segs: &[LineSeg]) -> bool {
        if !seg_in_block(&segs[id as usize], &rect) {
            return false;
        }
        match self.arena.node(idx) {
            QuadNode::Internal { children } => {
                let children = *children;
                let quads = rect.quadrants();
                let mut removed = false;
                for q in 0..4 {
                    removed |= self.delete_rec(children[q], quads[q], id, segs);
                }
                removed
            }
            QuadNode::Leaf { .. } => self.arena.remove_from_leaf(idx, id),
        }
    }

    /// One bottom-up merge sweep; returns whether anything merged.
    fn merge_pass(&mut self, idx: usize) -> bool {
        let children = match self.arena.node(idx) {
            QuadNode::Internal { children } => *children,
            QuadNode::Leaf { .. } => return false,
        };
        let mut changed = false;
        for &c in &children {
            changed |= self.merge_pass(c);
        }
        // Merge when all four children are leaves and their combined
        // distinct occupancy is below the threshold ("if the splitting
        // threshold exceeds the occupancy of the block and its siblings").
        let all_leaves = children
            .iter()
            .all(|&c| matches!(self.arena.node(c), QuadNode::Leaf { .. }));
        if all_leaves {
            let mut distinct: Vec<SegId> = Vec::new();
            for &c in &children {
                if let QuadNode::Leaf { segs } = self.arena.node(c) {
                    for &s in segs {
                        if !distinct.contains(&s) {
                            distinct.push(s);
                        }
                    }
                }
            }
            if distinct.len() < self.threshold {
                self.arena.merge_children(idx);
                changed = true;
            }
        }
        changed
    }

    /// The splitting threshold.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Read access to the underlying arena.
    pub fn arena(&self) -> &QuadArena {
        &self.arena
    }

    /// Ids of segments intersecting `query` (deduplicated, sorted, exact).
    pub fn window_query(&self, query: &Rect, segs: &[LineSeg]) -> Vec<SegId> {
        filter_window(self.arena.window_candidates(query), segs, query)
    }

    /// Ids in the leaf block containing `p`.
    pub fn point_query(&self, p: Point) -> Vec<SegId> {
        let mut v = self.arena.point_candidates(p);
        v.sort_unstable();
        v
    }

    /// Structure statistics.
    pub fn stats(&self) -> TreeStats {
        self.arena.stats()
    }

    /// A canonical shape fingerprint: the sorted list of (depth, leaf
    /// occupancy) pairs plus the leaf block corners — used to demonstrate
    /// insertion-order dependence (paper Fig. 34).
    pub fn shape_signature(&self) -> Vec<(usize, usize, (u64, u64))> {
        let mut sig = Vec::new();
        self.arena.for_each_leaf(|rect, depth, ids| {
            sig.push((
                depth,
                ids.len(),
                (rect.min.x.to_bits(), rect.min.y.to_bits()),
            ));
        });
        sig.sort_unstable();
        sig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    #[test]
    fn split_once_can_leave_overfull_children() {
        // Four nearly-parallel segments crammed into one quadrant with
        // threshold 1: the split-once rule leaves children over the
        // threshold right after an insertion burst.
        let segs = vec![
            LineSeg::from_coords(0.0, 0.0, 1.0, 1.0),
            LineSeg::from_coords(0.0, 1.0, 1.0, 2.0),
            LineSeg::from_coords(0.0, 2.0, 1.0, 3.0),
        ];
        let t = PmrTree::build(world(), &segs, 1, 6);
        // All three segments remain findable.
        assert_eq!(t.window_query(&world(), &segs), vec![0, 1, 2]);
    }

    /// Paper Fig. 34: changing the insertion order changes the shape.
    #[test]
    fn insertion_order_changes_shape() {
        // Threshold 2. Three segments in the same quadrant plus one that
        // arrives either before or after the split happens.
        let base = vec![
            LineSeg::from_coords(1.0, 1.0, 2.0, 2.0),
            LineSeg::from_coords(1.0, 2.0, 2.0, 3.0),
            LineSeg::from_coords(5.0, 5.0, 6.0, 6.0),
            LineSeg::from_coords(1.0, 3.0, 2.0, 1.0),
        ];
        let t1 = PmrTree::build(world(), &base, 2, 6);
        // Swap the last two insertions (ids keep their geometry; we build
        // by inserting in a permuted order).
        let mut t2 = PmrTree::new(world(), 2, 6);
        for &id in &[0u32, 1, 3, 2] {
            t2.insert(id, &base);
        }
        assert_ne!(
            t1.shape_signature(),
            t2.shape_signature(),
            "PMR shape must depend on insertion order for this dataset"
        );
        // But both orders index the same segments.
        assert_eq!(
            t1.window_query(&world(), &base),
            t2.window_query(&world(), &base)
        );
    }

    #[test]
    fn delete_merges_back() {
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 2.0, 2.0),
            LineSeg::from_coords(1.0, 2.0, 2.0, 3.0),
            LineSeg::from_coords(2.0, 1.0, 3.0, 3.0),
        ];
        let mut t = PmrTree::build(world(), &segs, 2, 6);
        let split_nodes = t.stats().nodes;
        assert!(split_nodes > 1, "threshold 2 with 3 close segments splits");
        assert!(t.delete(2, &segs));
        assert!(t.delete(1, &segs));
        // One segment left, below threshold: the tree merges to the root.
        assert_eq!(t.stats().nodes, 1);
        assert_eq!(t.window_query(&world(), &segs), vec![0]);
        // Deleting something absent reports false.
        assert!(!t.delete(2, &segs));
    }

    #[test]
    fn queries_match_brute_force() {
        let segs = vec![
            LineSeg::from_coords(0.0, 0.0, 3.0, 3.0),
            LineSeg::from_coords(4.0, 4.0, 7.0, 7.0),
            LineSeg::from_coords(0.0, 7.0, 7.0, 0.0),
            LineSeg::from_coords(2.0, 5.0, 5.0, 2.0),
        ];
        let t = PmrTree::build(world(), &segs, 2, 6);
        let query = Rect::from_coords(1.0, 1.0, 3.0, 3.0);
        let got = t.window_query(&query, &segs);
        let brute: Vec<SegId> = (0..segs.len() as u32)
            .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], &query).is_some())
            .collect();
        assert_eq!(got, brute);
    }

    #[test]
    fn max_depth_caps_subdivision() {
        // Many overlapping segments with threshold 1 would split forever
        // without the depth bound.
        let segs: Vec<LineSeg> = (0..6)
            .map(|k| LineSeg::from_coords(0.0, k as f64 * 0.0 + 1.0, 7.0, 1.0))
            .collect();
        let t = PmrTree::build(world(), &segs, 1, 3);
        assert!(t.stats().height <= 3);
        assert_eq!(t.window_query(&world(), &segs).len(), 6);
    }

    #[test]
    #[should_panic(expected = "threshold must be at least 1")]
    fn zero_threshold_rejected() {
        PmrTree::new(world(), 0, 4);
    }
}
