//! Brute-force dominance/skyline oracle for differential tests.
//!
//! Same closed max-dominance semantics as `dp_spatial::dominance`
//! (point `q` dominates `p` iff `q.x >= p.x && q.y >= p.y`, strict in at
//! least one coordinate; the dominated set of a query is the closed
//! lower-left quadrant), implemented as the obvious O(n²) / O(n·q)
//! loops over parallel SoA slices so no scan-model machinery is shared
//! with the code under test.

use crate::SegId;

/// `true` iff `(ax, ay)` dominates `(bx, by)` under closed
/// max-dominance.
pub fn dominates(ax: f64, ay: f64, bx: f64, by: f64) -> bool {
    ax >= bx && ay >= by && (ax > bx || ay > by)
}

/// Brute-force skyline: ids of the points not dominated by any other
/// input point, returned sorted ascending (the canonical set order).
/// Coordinate duplicates dominate each other in neither direction, so
/// all copies survive together.
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn skyline_brute(ids: &[SegId], xs: &[f64], ys: &[f64]) -> Vec<SegId> {
    assert_eq!(ids.len(), xs.len());
    assert_eq!(ids.len(), ys.len());
    let n = ids.len();
    let mut out: Vec<SegId> = (0..n)
        .filter(|&i| (0..n).all(|j| j == i || !dominates(xs[j], ys[j], xs[i], ys[i])))
        .map(|i| ids[i])
        .collect();
    out.sort_unstable();
    out
}

/// Brute-force dominated-set aggregation for one query: `(count, sum,
/// max)` over the weights of all points in the closed lower-left
/// quadrant of `(qx, qy)` (max is 0 when the set is empty).
///
/// # Panics
///
/// Panics if the slice lengths differ.
pub fn dominance_agg_brute(
    xs: &[f64],
    ys: &[f64],
    ws: &[u64],
    qx: f64,
    qy: f64,
) -> (u64, u64, u64) {
    assert_eq!(xs.len(), ys.len());
    assert_eq!(xs.len(), ws.len());
    let mut count = 0u64;
    let mut sum = 0u64;
    let mut max = 0u64;
    for i in 0..xs.len() {
        if xs[i] <= qx && ys[i] <= qy {
            count += 1;
            sum += ws[i];
            max = max.max(ws[i]);
        }
    }
    (count, sum, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominates_is_strict_somewhere() {
        assert!(dominates(2.0, 2.0, 1.0, 1.0));
        assert!(dominates(2.0, 1.0, 1.0, 1.0));
        assert!(!dominates(1.0, 1.0, 1.0, 1.0));
        assert!(!dominates(2.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn skyline_keeps_duplicates_and_staircase() {
        let ids = [0, 1, 2, 3, 4];
        let xs = [0.0, 1.0, 2.0, 0.5, 1.0];
        let ys = [3.0, 2.0, 1.0, 0.5, 2.0];
        // Points 1 and 4 coincide; the interior point 3 is dominated.
        assert_eq!(skyline_brute(&ids, &xs, &ys), vec![0, 1, 2, 4]);
    }

    #[test]
    fn agg_is_closed() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 2.0];
        let ws = [5, 7, 11];
        assert_eq!(dominance_agg_brute(&xs, &ys, &ws, 1.0, 1.0), (2, 12, 7));
        assert_eq!(dominance_agg_brute(&xs, &ys, &ws, -1.0, 0.0), (0, 0, 0));
    }
}
