//! Sequential PM₂ and PM₃ quadtrees — the other vertex-based members of
//! the PM quadtree family (Samet & Webber; the paper's Sec. 2.1 studies
//! the family's strictest member, PM₁).
//!
//! The family shares the "at most one vertex per block" rule and relaxes
//! the edge rule step by step:
//!
//! * **PM₁**: a block with a vertex holds only q-edges incident on it; a
//!   vertexless block holds at most *one* q-edge.
//! * **PM₂**: a block with a vertex holds only q-edges incident on it; a
//!   vertexless block may hold *several* q-edges provided they are all
//!   incident on one common vertex (which lies outside the block).
//! * **PM₃**: no edge rule at all — only the one-vertex rule.
//!
//! Vertex membership is closed, matching [`crate::pm1`].

use crate::pm1::pm1_block_valid;
use crate::quad::{filter_window, QuadArena, QuadNode};
use crate::{SegId, TreeStats};
use dp_geom::{seg_in_block, LineSeg, Point, Rect};

/// Which member of the PM family a [`PmTree`] enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PmVariant {
    /// The strictest member (paper Sec. 2.1).
    Pm1,
    /// Vertexless blocks may share a common external vertex.
    Pm2,
    /// Only the one-vertex rule.
    Pm3,
}

/// Distinct endpoint positions of the member q-edges inside the closed
/// block: `None` for zero, `Some(Ok(v))` for exactly one, `Some(Err(()))`
/// for two or more.
fn block_vertex(ids: &[SegId], segs: &[LineSeg], rect: &Rect) -> Option<Result<Point, ()>> {
    let mut vertex: Option<Point> = None;
    for &id in ids {
        let s = &segs[id as usize];
        for p in [s.a, s.b] {
            if rect.contains(p) {
                match vertex {
                    None => vertex = Some(p),
                    Some(v) if v == p => {}
                    Some(_) => return Some(Err(())),
                }
            }
        }
    }
    vertex.map(Ok)
}

/// `true` when all edges share at least one common endpoint (anywhere).
fn edges_share_a_vertex(ids: &[SegId], segs: &[LineSeg]) -> bool {
    let Some(&first) = ids.first() else {
        return true;
    };
    let f = &segs[first as usize];
    for candidate in [f.a, f.b] {
        if ids.iter().all(|&id| {
            let s = &segs[id as usize];
            s.a == candidate || s.b == candidate
        }) {
            return true;
        }
    }
    false
}

/// The block validity criterion of the given PM variant.
pub fn pm_block_valid(variant: PmVariant, ids: &[SegId], segs: &[LineSeg], rect: &Rect) -> bool {
    match variant {
        PmVariant::Pm1 => pm1_block_valid(ids, segs, rect),
        PmVariant::Pm2 => match block_vertex(ids, segs, rect) {
            Some(Err(())) => false,
            Some(Ok(v)) => ids.iter().all(|&id| {
                let s = &segs[id as usize];
                s.a == v || s.b == v
            }),
            None => ids.len() <= 1 || edges_share_a_vertex(ids, segs),
        },
        PmVariant::Pm3 => !matches!(block_vertex(ids, segs, rect), Some(Err(()))),
    }
}

/// A sequentially built PM-family quadtree.
#[derive(Debug, Clone)]
pub struct PmTree {
    arena: QuadArena,
    variant: PmVariant,
    max_depth: usize,
    unresolved: usize,
}

impl PmTree {
    /// Builds the tree by inserting segments one at a time.
    ///
    /// # Panics
    ///
    /// Panics if any segment endpoint lies outside the half-open world.
    pub fn build(world: Rect, segs: &[LineSeg], variant: PmVariant, max_depth: usize) -> Self {
        let mut tree = PmTree {
            arena: QuadArena::new(world),
            variant,
            max_depth,
            unresolved: 0,
        };
        for (id, s) in segs.iter().enumerate() {
            assert!(
                world.contains_half_open(s.a) && world.contains_half_open(s.b),
                "segment {id} endpoint outside the half-open world"
            );
            tree.insert_rec(tree.arena.root(), world, 0, id as SegId, segs);
        }
        let mut unresolved = 0usize;
        tree.arena.for_each_leaf(|rect, depth, ids| {
            if depth >= max_depth && !pm_block_valid(variant, ids, segs, rect) {
                unresolved += 1;
            }
        });
        tree.unresolved = unresolved;
        tree
    }

    fn insert_rec(&mut self, idx: usize, rect: Rect, depth: usize, id: SegId, segs: &[LineSeg]) {
        if !seg_in_block(&segs[id as usize], &rect) {
            return;
        }
        match self.arena.node(idx) {
            QuadNode::Internal { children } => {
                let children = *children;
                let quads = rect.quadrants();
                for q in 0..4 {
                    self.insert_rec(children[q], quads[q], depth + 1, id, segs);
                }
            }
            QuadNode::Leaf { .. } => {
                self.arena.push_to_leaf(idx, id);
                self.split_while_invalid(idx, rect, depth, segs);
            }
        }
    }

    fn split_while_invalid(&mut self, idx: usize, rect: Rect, depth: usize, segs: &[LineSeg]) {
        let ids = match self.arena.node(idx) {
            QuadNode::Leaf { segs } => segs.clone(),
            QuadNode::Internal { .. } => return,
        };
        if depth >= self.max_depth || pm_block_valid(self.variant, &ids, segs, &rect) {
            return;
        }
        let children = self.arena.subdivide(idx, &rect, segs);
        let quads = rect.quadrants();
        for q in 0..4 {
            self.split_while_invalid(children[q], quads[q], depth + 1, segs);
        }
    }

    /// The variant this tree enforces.
    pub fn variant(&self) -> PmVariant {
        self.variant
    }

    /// Blocks at the depth bound that still violate the criterion.
    pub fn unresolved_blocks(&self) -> usize {
        self.unresolved
    }

    /// Read access to the arena.
    pub fn arena(&self) -> &QuadArena {
        &self.arena
    }

    /// Window query (deduplicated, sorted, exact).
    pub fn window_query(&self, query: &Rect, segs: &[LineSeg]) -> Vec<SegId> {
        filter_window(self.arena.window_candidates(query), segs, query)
    }

    /// Ids in the leaf block containing `p`.
    pub fn point_query(&self, p: Point) -> Vec<SegId> {
        let mut v = self.arena.point_candidates(p);
        v.sort_unstable();
        v
    }

    /// Structure statistics.
    pub fn stats(&self) -> TreeStats {
        self.arena.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    /// A star of three segments sharing the vertex (4.5, 4.5) — not on
    /// any split line until depth 4.
    fn star() -> Vec<LineSeg> {
        vec![
            LineSeg::from_coords(4.5, 4.5, 7.0, 7.0),
            LineSeg::from_coords(4.5, 4.5, 1.0, 7.0),
            LineSeg::from_coords(4.5, 4.5, 4.5, 1.0),
        ]
    }

    #[test]
    fn family_ordering_on_star() {
        // The family is ordered by strictness: PM1 subdivides at least as
        // much as PM2, which subdivides at least as much as PM3.
        let segs = star();
        let t1 = PmTree::build(world(), &segs, PmVariant::Pm1, 10);
        let t2 = PmTree::build(world(), &segs, PmVariant::Pm2, 10);
        let t3 = PmTree::build(world(), &segs, PmVariant::Pm3, 10);
        assert!(t1.stats().nodes >= t2.stats().nodes);
        assert!(t2.stats().nodes >= t3.stats().nodes);
        for t in [&t1, &t2, &t3] {
            assert_eq!(t.unresolved_blocks(), 0);
            assert_eq!(t.window_query(&world(), &segs), vec![0, 1, 2]);
        }
    }

    #[test]
    fn pm2_accepts_external_shared_vertex_blocks() {
        // Two nearly-parallel edges fanning out of one vertex pass
        // together through mid-map blocks that contain no vertex; PM1
        // must subdivide those blocks, PM2 must not.
        let segs = vec![
            LineSeg::from_coords(0.0, 1.0, 7.0, 1.5),
            LineSeg::from_coords(0.0, 1.0, 7.0, 2.5),
        ];
        let t1 = PmTree::build(world(), &segs, PmVariant::Pm1, 10);
        let t2 = PmTree::build(world(), &segs, PmVariant::Pm2, 10);
        assert!(
            t1.stats().nodes > t2.stats().nodes,
            "PM1 {} vs PM2 {}",
            t1.stats().nodes,
            t2.stats().nodes
        );
        assert_eq!(t2.unresolved_blocks(), 0);
    }

    #[test]
    fn pm3_tolerates_non_vertex_crossings() {
        // Two edges crossing at a non-vertex point: every block around
        // the crossing holds two q-edges with no common vertex. PM3 is
        // satisfied (no vertices there); PM1 and PM2 subdivide to the
        // depth bound and report unresolved blocks.
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
        ];
        let t3 = PmTree::build(world(), &segs, PmVariant::Pm3, 10);
        let t2 = PmTree::build(world(), &segs, PmVariant::Pm2, 10);
        let t1 = PmTree::build(world(), &segs, PmVariant::Pm1, 10);
        assert_eq!(t3.unresolved_blocks(), 0);
        assert!(t2.unresolved_blocks() > 0);
        assert!(t1.unresolved_blocks() > 0);
        assert!(t3.stats().nodes < t2.stats().nodes);
    }

    #[test]
    fn pm1_variant_delegates_to_pm1_tree() {
        let segs = star();
        let family = PmTree::build(world(), &segs, PmVariant::Pm1, 10);
        let direct = crate::pm1::Pm1Tree::build(world(), &segs, 10);
        assert_eq!(family.stats(), direct.stats());
    }

    #[test]
    fn validity_predicates_basics() {
        let segs = vec![
            LineSeg::from_coords(2.0, 2.0, 6.0, 6.0),
            LineSeg::from_coords(2.0, 2.0, 6.0, 1.0),
            LineSeg::from_coords(1.0, 5.0, 3.0, 7.0),
        ];
        let block = Rect::from_coords(0.0, 0.0, 4.0, 4.0);
        // Block contains vertex (2,2); edges 0 and 1 incident, edge 2 not
        // a member geometrically but pretend it were:
        assert!(pm_block_valid(PmVariant::Pm2, &[0, 1], &segs, &block));
        assert!(!pm_block_valid(PmVariant::Pm2, &[0, 1, 2], &segs, &block));
        assert!(pm_block_valid(PmVariant::Pm3, &[0, 1], &segs, &block));
        // Vertexless block with two edges sharing the (2,2) vertex.
        let vertexless = Rect::from_coords(4.5, 0.5, 5.5, 5.5);
        assert!(pm_block_valid(PmVariant::Pm2, &[0, 1], &segs, &vertexless));
        assert!(!pm_block_valid(PmVariant::Pm1, &[0, 1], &segs, &vertexless));
    }

    #[test]
    fn queries_match_brute_force() {
        let segs = star();
        for variant in [PmVariant::Pm1, PmVariant::Pm2, PmVariant::Pm3] {
            let t = PmTree::build(world(), &segs, variant, 10);
            let q = Rect::from_coords(3.0, 3.0, 5.0, 5.0);
            let want: Vec<SegId> = (0..segs.len() as u32)
                .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], &q).is_some())
                .collect();
            assert_eq!(t.window_query(&q, &segs), want, "{variant:?}");
        }
    }
}
