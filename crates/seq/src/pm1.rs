//! Sequential PM₁ quadtree (paper Sec. 2.1).
//!
//! The PM₁ quadtree is the vertex-based member of the PM family: a block
//! is valid when it contains **at most one vertex**, and if it contains a
//! vertex, every q-edge passing through the block is incident on that
//! vertex; a block with no vertex may hold at most one q-edge. Blocks are
//! subdivided until every block is valid (or the maximum depth is
//! reached — the guard that bounds the pathological close-vertices cascade
//! of paper Fig. 2).

use crate::quad::{filter_window, QuadArena, QuadNode};
use crate::{SegId, TreeStats};
use dp_geom::{seg_in_block, LineSeg, Point, Rect};

/// A sequentially built PM₁ quadtree over a borrowed segment slice.
#[derive(Debug, Clone)]
pub struct Pm1Tree {
    arena: QuadArena,
    max_depth: usize,
    /// Blocks at `max_depth` that still violate the PM₁ criterion
    /// (unresolvable at this resolution).
    unresolved: usize,
}

/// Checks the PM₁ validity criterion for a block.
///
/// `segs` are the q-edges of the block, `rect` its extent. Valid when:
/// * no vertex in the block and at most one q-edge, or
/// * exactly one distinct vertex position in the block and every q-edge
///   has an endpoint at that position.
///
/// Vertices use *closed* point membership (a vertex on a block boundary
/// counts in every touching block — Samet's closed-block convention);
/// distinct vertices still separate once blocks shrink below their
/// distance, it merely takes one extra level for grid-aligned pairs.
pub fn pm1_block_valid(ids: &[SegId], segs: &[LineSeg], rect: &Rect) -> bool {
    let mut vertex: Option<Point> = None;
    let mut distinct = 0usize;
    for &id in ids {
        let s = &segs[id as usize];
        for p in [s.a, s.b] {
            if rect.contains(p) {
                match vertex {
                    None => {
                        vertex = Some(p);
                        distinct = 1;
                    }
                    Some(v) if v == p => {}
                    Some(_) => {
                        distinct = 2;
                    }
                }
                if distinct > 1 {
                    return false;
                }
            }
        }
    }
    match vertex {
        None => ids.len() <= 1,
        Some(v) => ids.iter().all(|&id| {
            let s = &segs[id as usize];
            s.a == v || s.b == v
        }),
    }
}

impl Pm1Tree {
    /// Builds a PM₁ quadtree by inserting the segments one at a time (the
    /// classical sequential algorithm the paper's parallel build
    /// replaces).
    ///
    /// `max_depth` bounds subdivision; any block still invalid at that
    /// depth is kept as-is and counted in [`Pm1Tree::unresolved_blocks`].
    ///
    /// # Panics
    ///
    /// Panics if any segment endpoint lies outside the half-open world.
    pub fn build(world: Rect, segs: &[LineSeg], max_depth: usize) -> Self {
        let mut tree = Pm1Tree {
            arena: QuadArena::new(world),
            max_depth,
            unresolved: 0,
        };
        for (id, s) in segs.iter().enumerate() {
            assert!(
                world.contains_half_open(s.a) && world.contains_half_open(s.b),
                "segment {id} endpoint outside the half-open world"
            );
            tree.insert_rec(tree.arena.root(), world, 0, id as SegId, segs);
        }
        tree.unresolved = tree.count_unresolved(segs);
        tree
    }

    fn insert_rec(&mut self, idx: usize, rect: Rect, depth: usize, id: SegId, segs: &[LineSeg]) {
        if !seg_in_block(&segs[id as usize], &rect) {
            return;
        }
        match self.arena.node(idx) {
            QuadNode::Internal { children } => {
                let children = *children;
                let quads = rect.quadrants();
                for q in 0..4 {
                    self.insert_rec(children[q], quads[q], depth + 1, id, segs);
                }
            }
            QuadNode::Leaf { .. } => {
                self.arena.push_to_leaf(idx, id);
                self.split_while_invalid(idx, rect, depth, segs);
            }
        }
    }

    fn split_while_invalid(&mut self, idx: usize, rect: Rect, depth: usize, segs: &[LineSeg]) {
        let ids = match self.arena.node(idx) {
            QuadNode::Leaf { segs } => segs.clone(),
            QuadNode::Internal { .. } => return,
        };
        if depth >= self.max_depth || pm1_block_valid(&ids, segs, &rect) {
            return;
        }
        let children = self.arena.subdivide(idx, &rect, segs);
        let quads = rect.quadrants();
        for q in 0..4 {
            self.split_while_invalid(children[q], quads[q], depth + 1, segs);
        }
    }

    fn count_unresolved(&self, segs: &[LineSeg]) -> usize {
        let mut n = 0;
        self.arena.for_each_leaf(|rect, depth, ids| {
            if depth >= self.max_depth && !pm1_block_valid(ids, segs, rect) {
                n += 1;
            }
        });
        n
    }

    /// The underlying arena (read access for inspection and tests).
    pub fn arena(&self) -> &QuadArena {
        &self.arena
    }

    /// The subdivision depth bound this tree was built with.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Number of max-depth blocks that violate the PM₁ criterion because
    /// the resolution ran out (0 for well-separated data).
    pub fn unresolved_blocks(&self) -> usize {
        self.unresolved
    }

    /// Ids of segments intersecting `query`, deduplicated, sorted,
    /// exact-geometry filtered.
    pub fn window_query(&self, query: &Rect, segs: &[LineSeg]) -> Vec<SegId> {
        filter_window(self.arena.window_candidates(query), segs, query)
    }

    /// Ids of segments in the leaf block containing `p`.
    pub fn point_query(&self, p: Point) -> Vec<SegId> {
        self.point_candidates_sorted(p)
    }

    fn point_candidates_sorted(&self, p: Point) -> Vec<SegId> {
        let mut v = self.arena.point_candidates(p);
        v.sort_unstable();
        v
    }

    /// Structure statistics.
    pub fn stats(&self) -> TreeStats {
        self.arena.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    /// Every leaf of a finished PM₁ quadtree satisfies the vertex rule
    /// (below the depth bound).
    fn assert_pm1_invariant(tree: &Pm1Tree, segs: &[LineSeg]) {
        tree.arena.for_each_leaf(|rect, depth, ids| {
            if depth < tree.max_depth() {
                assert!(
                    pm1_block_valid(ids, segs, rect),
                    "invalid PM1 block {rect} at depth {depth} with {ids:?}"
                );
            }
        });
    }

    #[test]
    fn empty_build() {
        let t = Pm1Tree::build(world(), &[], 8);
        assert_eq!(t.stats().nodes, 1);
        assert_eq!(t.unresolved_blocks(), 0);
    }

    #[test]
    fn single_segment_splits_to_separate_its_endpoints() {
        // One segment with both endpoints in the root block violates the
        // one-vertex rule, so the root must subdivide (cf. paper Fig. 2a).
        let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 5.0)];
        let t = Pm1Tree::build(world(), &segs, 8);
        assert!(t.stats().height >= 1);
        assert_pm1_invariant(&t, &segs);
        assert_eq!(t.unresolved_blocks(), 0);
    }

    #[test]
    fn shared_vertex_does_not_split_forever() {
        // Three segments sharing a vertex: the shared-vertex block is
        // valid however many segments are incident (paper Sec. 2.1).
        let segs = vec![
            LineSeg::from_coords(2.0, 2.0, 1.0, 5.0),
            LineSeg::from_coords(2.0, 2.0, 5.0, 1.0),
            LineSeg::from_coords(2.0, 2.0, 6.0, 6.0),
        ];
        let t = Pm1Tree::build(world(), &segs, 10);
        assert_pm1_invariant(&t, &segs);
        assert_eq!(t.unresolved_blocks(), 0);
    }

    #[test]
    fn close_vertices_cascade_fig2() {
        // Paper Fig. 2: a second segment whose vertex is close to an
        // existing vertex triggers a deep cascade of subdivisions.
        let far_apart = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 5.0)];
        let t1 = Pm1Tree::build(world(), &far_apart, 12);
        let close = vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 5.0),
            LineSeg::from_coords(2.0, 1.0, 6.0, 1.0),
        ];
        let t2 = Pm1Tree::build(world(), &close, 12);
        // Separating vertices (1,1) and (2,1) in an 8-wide world needs
        // blocks of width 1: depth 3. The pair tree is strictly deeper and
        // larger than the single-segment tree.
        assert!(t2.stats().height >= 3);
        assert!(t2.stats().nodes > t1.stats().nodes);
        assert_pm1_invariant(&t2, &close);
    }

    #[test]
    fn queries_find_segments() {
        let segs = vec![
            LineSeg::from_coords(1.0, 6.0, 2.0, 7.0),
            LineSeg::from_coords(1.0, 1.0, 6.0, 1.0),
            LineSeg::from_coords(5.0, 5.0, 6.0, 6.0),
        ];
        let t = Pm1Tree::build(world(), &segs, 8);
        assert_eq!(
            t.window_query(&Rect::from_coords(0.0, 5.0, 3.0, 8.0), &segs),
            vec![0]
        );
        assert_eq!(
            t.window_query(&Rect::from_coords(0.0, 0.0, 8.0, 8.0), &segs),
            vec![0, 1, 2]
        );
        // The horizontal segment is found from a point on its block.
        assert!(t.point_query(Point::new(3.0, 1.0)).contains(&1));
    }

    #[test]
    fn max_depth_guard_reports_unresolved() {
        // Two distinct vertices in the same unit cell cannot be separated
        // at depth 3 (cells of size 1): build with a fractional vertex.
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(1.5, 1.25, 6.0, 2.0),
        ];
        let t = Pm1Tree::build(world(), &segs, 3);
        assert!(t.unresolved_blocks() > 0);
        // With more depth the same data resolves.
        let t2 = Pm1Tree::build(world(), &segs, 6);
        assert_eq!(t2.unresolved_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "outside the half-open world")]
    fn rejects_out_of_world_segment() {
        let segs = vec![LineSeg::from_coords(0.0, 0.0, 8.0, 8.0)];
        Pm1Tree::build(world(), &segs, 4);
    }
}
