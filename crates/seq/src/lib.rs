//! # seq-spatial — sequential baseline spatial indexes
//!
//! One-segment-at-a-time insertion builds of the structures whose *bulk*
//! data-parallel construction is the subject of Hoel & Samet (ICPP 1995).
//! These are the baselines the reproduction compares against:
//!
//! * [`pm1::Pm1Tree`] — the PM₁ quadtree (Samet & Webber; paper Sec. 2.1),
//!   with the vertex-based splitting rule and its pathological
//!   close-vertices behaviour (paper Fig. 2);
//! * [`pmr::PmrTree`] — the classic PMR quadtree (Nelson & Samet; paper
//!   Sec. 2.2) with the probabilistic *split-once* rule, whose shape
//!   depends on insertion order (paper Figs. 3 and 34), plus deletion with
//!   sibling merging;
//! * [`bucket_pmr::BucketPmrTree`] — the bucket PMR quadtree (paper
//!   Sec. 2.2.1), which splits until every bucket holds at most `b` lines
//!   and whose shape is insertion-order independent;
//! * [`rtree::RTree`] — Guttman's R-tree (paper Sec. 2.3) with linear and
//!   quadratic node splits plus an R\*-style axis split (paper Fig. 6 and
//!   the \[Beck90\] discussion).
//!
//! All structures index immutable segment collections by integer id
//! ([`SegId`]); the segment geometry lives in a caller-owned slice, which
//! keeps the trees compact and mirrors the paper's "leaf nodes contain
//! pointers to the actual geometric objects" R-tree convention for every
//! structure.

pub mod bucket_pmr;
pub mod dominance;
pub mod pm1;
pub mod pm23;
pub mod pmr;
pub mod quad;
pub mod rtree;

/// Identifier of a segment within the caller's segment slice.
pub type SegId = u32;

/// Summary statistics shared by the tree implementations; used by the
/// experiment tables in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TreeStats {
    /// Total nodes (internal + leaf).
    pub nodes: usize,
    /// Leaf nodes.
    pub leaves: usize,
    /// Empty leaf nodes (quadtrees create them eagerly on subdivision).
    pub empty_leaves: usize,
    /// Height: length of the longest root-to-leaf path (root-only = 0).
    pub height: usize,
    /// Total q-edge entries stored across leaves (a segment spanning k
    /// blocks counts k times).
    pub entries: usize,
    /// Maximum entries in any single leaf.
    pub max_leaf_occupancy: usize,
}
