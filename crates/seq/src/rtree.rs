//! Sequential R-tree (Guttman; paper Sec. 2.3) with pluggable node
//! splitting: Guttman's linear and quadratic algorithms, plus an R\*-style
//! minimal-overlap axis split (the \[Beck90\] technique the paper contrasts
//! in its Fig. 6 coverage-vs-overlap discussion).
//!
//! Line segments are stored as (bounding rectangle, id) pairs in the
//! leaves; internal entries carry the minimum bounding rectangle of their
//! subtree. An order `(m, M)` tree keeps every node except the root
//! between `m` and `M` entries, all leaves at the same level.

use crate::{SegId, TreeStats};
use dp_geom::{LineSeg, Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Node splitting algorithm used on overflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SplitAlgorithm {
    /// Guttman's linear split: seeds by greatest normalized separation,
    /// remaining entries assigned by least enlargement in input order.
    Linear,
    /// Guttman's quadratic split: seeds by greatest wasted area, remaining
    /// entries assigned by strongest preference first.
    Quadratic,
    /// R\*-style: choose the split axis by minimal margin sum, then the
    /// distribution along it by minimal overlap (minimizing "the amount of
    /// intersection area between covering rectangles", paper Sec. 2.3).
    RStarAxis,
}

/// Reference to an entry's child: a subtree or a segment id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChildRef {
    /// Internal entry: index of the child node in the arena.
    Node(usize),
    /// Leaf entry: the indexed segment.
    Seg(SegId),
}

/// An R-tree entry: a bounding rectangle plus what it bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Minimum bounding rectangle of the child.
    pub rect: Rect,
    /// The child.
    pub child: ChildRef,
}

#[derive(Debug, Clone)]
struct Node {
    level: usize, // 0 = leaf
    entries: Vec<Entry>,
}

/// A sequential R-tree of order `(m, M)`.
#[derive(Debug, Clone)]
pub struct RTree {
    m: usize,
    max: usize,
    split: SplitAlgorithm,
    nodes: Vec<Node>,
    root: usize,
}

impl RTree {
    /// An empty tree of order `(m, M)` with the given split algorithm.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= m <= (M + 1) / 2` and `M >= 2` (the B-tree-like
    /// order constraint `m ≤ ⌊M/2⌋` of the paper, relaxed by one so that a
    /// split of `M + 1` entries can always give both sides `m`).
    pub fn new(m: usize, max: usize, split: SplitAlgorithm) -> Self {
        assert!(max >= 2, "M must be at least 2");
        assert!(
            m >= 1 && 2 * m <= max + 1,
            "need 1 <= m <= (M+1)/2, got m={m}, M={max}"
        );
        RTree {
            m,
            max,
            split,
            nodes: vec![Node {
                level: 0,
                entries: Vec::new(),
            }],
            root: 0,
        }
    }

    /// Builds a tree by inserting segment bounding boxes in slice order.
    pub fn build(segs: &[LineSeg], m: usize, max: usize, split: SplitAlgorithm) -> Self {
        let mut t = RTree::new(m, max, split);
        for (id, s) in segs.iter().enumerate() {
            t.insert(id as SegId, s.bbox());
        }
        t
    }

    /// Minimum fanout `m`.
    pub fn min_entries(&self) -> usize {
        self.m
    }

    /// Maximum fanout `M`.
    pub fn max_entries(&self) -> usize {
        self.max
    }

    /// Height of the tree: level of the root (leaves are level 0).
    pub fn height(&self) -> usize {
        self.nodes[self.root].level
    }

    /// Inserts one rectangle/id pair (Guttman's insert; paper Sec. 2.3).
    pub fn insert(&mut self, id: SegId, rect: Rect) {
        let entry = Entry {
            rect,
            child: ChildRef::Seg(id),
        };
        if let Some(sibling) = self.insert_rec(self.root, entry, 0) {
            self.grow_root(sibling);
        }
    }

    /// Deletes the entry for segment `id` whose bounding rectangle is
    /// `rect` (Guttman's Delete: FindLeaf, remove, CondenseTree with
    /// reinsertion of orphaned entries, root shrink). Returns whether the
    /// entry was present.
    pub fn delete(&mut self, id: SegId, rect: Rect) -> bool {
        let mut orphans: Vec<(usize, Entry)> = Vec::new(); // (level, entry)
        let found = self.delete_rec(self.root, id, &rect, &mut orphans);
        if !found {
            return false;
        }
        // Shrink the root while it is an internal node with one child.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].entries.len() == 1 {
            let only = self.nodes[self.root].entries[0];
            match only.child {
                ChildRef::Node(c) => self.root = c,
                ChildRef::Seg(_) => unreachable!("internal root entry must be a node"),
            }
        }
        // Reinsert orphaned entries at their original levels (deepest
        // first so leaf entries rebuild the lower levels before higher
        // orphans arrive).
        orphans.sort_by_key(|&(level, _)| level);
        for (level, entry) in orphans {
            let target = level.min(self.nodes[self.root].level);
            if let Some(sibling) = self.insert_rec(self.root, entry, target) {
                self.grow_root(sibling);
            }
        }
        true
    }

    /// Recursive FindLeaf + CondenseTree. Returns whether the entry was
    /// removed somewhere below `node`; underfull descendants are emptied
    /// into `orphans` and dropped from their parents.
    fn delete_rec(
        &mut self,
        node: usize,
        id: SegId,
        rect: &Rect,
        orphans: &mut Vec<(usize, Entry)>,
    ) -> bool {
        if self.nodes[node].level == 0 {
            let before = self.nodes[node].entries.len();
            self.nodes[node]
                .entries
                .retain(|e| !matches!(e.child, ChildRef::Seg(s) if s == id));
            return self.nodes[node].entries.len() < before;
        }
        let mut found = false;
        let mut doomed: Option<usize> = None;
        for k in 0..self.nodes[node].entries.len() {
            let e = self.nodes[node].entries[k];
            if !e.rect.intersects(rect) {
                continue;
            }
            let child = match e.child {
                ChildRef::Node(c) => c,
                ChildRef::Seg(_) => unreachable!("internal entry must be a node"),
            };
            if self.delete_rec(child, id, rect, orphans) {
                found = true;
                if self.nodes[child].entries.len() < self.m {
                    doomed = Some(k);
                } else {
                    self.nodes[node].entries[k].rect = self.mbr_of(child);
                }
                break;
            }
        }
        if let Some(k) = doomed {
            let e = self.nodes[node].entries.remove(k);
            if let ChildRef::Node(c) = e.child {
                let level = self.nodes[c].level;
                for orphan in std::mem::take(&mut self.nodes[c].entries) {
                    orphans.push((level, orphan));
                }
            }
        }
        found
    }

    fn grow_root(&mut self, sibling: Entry) {
        let old_root = self.root;
        let old_rect = self.mbr_of(old_root);
        let new_root = self.nodes.len();
        self.nodes.push(Node {
            level: self.nodes[old_root].level + 1,
            entries: vec![
                Entry {
                    rect: old_rect,
                    child: ChildRef::Node(old_root),
                },
                sibling,
            ],
        });
        self.root = new_root;
    }

    fn mbr_of(&self, node: usize) -> Rect {
        self.nodes[node]
            .entries
            .iter()
            .fold(Rect::empty(), |acc, e| acc.union(&e.rect))
    }

    /// Recursive insert; returns a new sibling entry when `node` split.
    fn insert_rec(&mut self, node: usize, entry: Entry, target_level: usize) -> Option<Entry> {
        if self.nodes[node].level == target_level {
            self.nodes[node].entries.push(entry);
        } else {
            // ChooseLeaf: least enlargement, ties by least area.
            let choice = self.nodes[node]
                .entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.rect.enlargement(&entry.rect);
                    let eb = b.rect.enlargement(&entry.rect);
                    ea.total_cmp(&eb)
                        .then_with(|| a.rect.area().total_cmp(&b.rect.area()))
                })
                .map(|(i, _)| i)
                .expect("internal node has entries");
            let child = match self.nodes[node].entries[choice].child {
                ChildRef::Node(c) => c,
                ChildRef::Seg(_) => unreachable!("internal entry must point to a node"),
            };
            let sibling = self.insert_rec(child, entry, target_level);
            // AdjustTree: refresh the chosen entry's MBR.
            self.nodes[node].entries[choice].rect = self.mbr_of(child);
            if let Some(s) = sibling {
                self.nodes[node].entries.push(s);
            }
        }
        if self.nodes[node].entries.len() > self.max {
            Some(self.split_node(node))
        } else {
            None
        }
    }

    /// Splits an overflowing node in place; returns the entry for the new
    /// sibling node.
    fn split_node(&mut self, node: usize) -> Entry {
        let level = self.nodes[node].level;
        let entries = std::mem::take(&mut self.nodes[node].entries);
        debug_assert_eq!(entries.len(), self.max + 1);
        let (left, right) = match self.split {
            SplitAlgorithm::Linear => split_linear(entries, self.m),
            SplitAlgorithm::Quadratic => split_quadratic(entries, self.m),
            SplitAlgorithm::RStarAxis => split_rstar_axis(entries, self.m),
        };
        debug_assert!(left.len() >= self.m && right.len() >= self.m);
        self.nodes[node].entries = left;
        let new_idx = self.nodes.len();
        self.nodes.push(Node {
            level,
            entries: right,
        });
        Entry {
            rect: self.mbr_of(new_idx),
            child: ChildRef::Node(new_idx),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Ids whose bounding rectangles intersect `query`, sorted. Callers
    /// post-filter by exact geometry (R-tree leaves bound, they do not
    /// clip — paper Sec. 2.3).
    pub fn window_candidates(&self, query: &Rect) -> Vec<SegId> {
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            for e in &self.nodes[n].entries {
                if e.rect.intersects(query) {
                    match e.child {
                        ChildRef::Node(c) => stack.push(c),
                        ChildRef::Seg(id) => out.push(id),
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Ids of segments that truly intersect `query` (exact filter over the
    /// candidates).
    pub fn window_query(&self, query: &Rect, segs: &[LineSeg]) -> Vec<SegId> {
        self.window_candidates(query)
            .into_iter()
            .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], query).is_some())
            .collect()
    }

    /// Number of R-tree nodes visited by a window search — the paper's
    /// motivation metric for split quality ("a spatial query may often
    /// require several bounding rectangles to be checked", Sec. 1).
    pub fn window_nodes_visited(&self, query: &Rect) -> usize {
        let mut visited = 0usize;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            visited += 1;
            for e in &self.nodes[n].entries {
                if e.rect.intersects(query) {
                    if let ChildRef::Node(c) = e.child {
                        stack.push(c);
                    }
                }
            }
        }
        visited
    }

    /// The nearest segment to `p` by true segment distance (best-first
    /// search with bounding-rectangle pruning). `None` on an empty tree.
    pub fn nearest(&self, p: Point, segs: &[LineSeg]) -> Option<(SegId, f64)> {
        #[derive(PartialEq)]
        struct Item {
            dist2: f64,
            what: ItemRef,
        }
        #[derive(PartialEq)]
        enum ItemRef {
            Node(usize),
            Seg(SegId),
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                // Min-heap by distance.
                other.dist2.total_cmp(&self.dist2)
            }
        }
        if self.nodes[self.root].entries.is_empty() {
            return None;
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item {
            dist2: 0.0,
            what: ItemRef::Node(self.root),
        });
        while let Some(item) = heap.pop() {
            match item.what {
                ItemRef::Seg(id) => return Some((id, item.dist2.sqrt())),
                ItemRef::Node(n) => {
                    for e in &self.nodes[n].entries {
                        match e.child {
                            ChildRef::Node(c) => heap.push(Item {
                                dist2: e.rect.dist2_to_point(p),
                                what: ItemRef::Node(c),
                            }),
                            ChildRef::Seg(id) => heap.push(Item {
                                dist2: segs[id as usize].dist2_to_point(p),
                                what: ItemRef::Seg(id),
                            }),
                        }
                    }
                }
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Metrics & invariants
    // ------------------------------------------------------------------

    /// Structure statistics.
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats::default();
        let mut stack = vec![(self.root, 0usize)];
        while let Some((n, depth)) = stack.pop() {
            s.nodes += 1;
            s.height = s.height.max(depth);
            let node = &self.nodes[n];
            if node.level == 0 {
                s.leaves += 1;
                s.entries += node.entries.len();
                s.max_leaf_occupancy = s.max_leaf_occupancy.max(node.entries.len());
                if node.entries.is_empty() {
                    s.empty_leaves += 1;
                }
            } else {
                for e in &node.entries {
                    if let ChildRef::Node(c) = e.child {
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        s
    }

    /// Split-quality metrics: `(coverage, overlap)` — total area of all
    /// node MBRs, and total pairwise overlap area between sibling MBRs
    /// (the two competing goals of paper Fig. 6).
    pub fn quality_metrics(&self) -> (f64, f64) {
        let mut coverage = 0.0;
        let mut overlap = 0.0;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            let es = &node.entries;
            for (i, e) in es.iter().enumerate() {
                coverage += e.rect.area();
                for e2 in &es[i + 1..] {
                    overlap += e.rect.overlap_area(&e2.rect);
                }
                if let ChildRef::Node(c) = e.child {
                    stack.push(c);
                }
            }
        }
        (coverage, overlap)
    }

    /// Like [`RTree::check_invariants`] but for a tree holding only the
    /// `present` subset of segments (used after deletions).
    pub fn check_invariants_subset(&self, segs: &[LineSeg], present: &[bool]) {
        let mut seen = vec![false; segs.len()];
        let mut stack = vec![(self.root, true)];
        while let Some((n, is_root)) = stack.pop() {
            let node = &self.nodes[n];
            if !is_root {
                assert!(
                    node.entries.len() >= self.m && node.entries.len() <= self.max,
                    "node fanout {} outside [{}, {}]",
                    node.entries.len(),
                    self.m,
                    self.max
                );
            }
            for e in &node.entries {
                match e.child {
                    ChildRef::Node(c) => {
                        assert_eq!(e.rect, self.mbr_of(c));
                        stack.push((c, false));
                    }
                    ChildRef::Seg(id) => {
                        assert!(present[id as usize], "deleted segment {id} still indexed");
                        assert!(!seen[id as usize], "segment {id} stored twice");
                        seen[id as usize] = true;
                    }
                }
            }
        }
        for (id, (&p, &s)) in present.iter().zip(seen.iter()).enumerate() {
            assert!(!p || s, "present segment {id} missing from the tree");
        }
    }

    /// Validates the R-tree invariants; panics with a description on the
    /// first violation. `n_expected` is the number of indexed segments.
    pub fn check_invariants(&self, segs: &[LineSeg], n_expected: usize) {
        let mut seen = vec![false; n_expected];
        let root_level = self.nodes[self.root].level;
        let mut stack = vec![(self.root, true)];
        while let Some((n, is_root)) = stack.pop() {
            let node = &self.nodes[n];
            if is_root {
                assert!(
                    node.level == 0 || node.entries.len() >= 2,
                    "non-leaf root must have at least 2 entries"
                );
            } else {
                assert!(
                    node.entries.len() >= self.m && node.entries.len() <= self.max,
                    "node fanout {} outside [{}, {}]",
                    node.entries.len(),
                    self.m,
                    self.max
                );
            }
            for e in &node.entries {
                match e.child {
                    ChildRef::Node(c) => {
                        assert!(node.level > 0, "leaf entry points at a node");
                        assert_eq!(
                            self.nodes[c].level + 1,
                            node.level,
                            "levels must decrease by one"
                        );
                        assert_eq!(
                            e.rect,
                            self.mbr_of(c),
                            "internal entry rect must be the child's MBR"
                        );
                        stack.push((c, false));
                    }
                    ChildRef::Seg(id) => {
                        assert_eq!(node.level, 0, "segment entry above leaf level");
                        assert_eq!(
                            e.rect,
                            segs[id as usize].bbox(),
                            "leaf entry rect must be the segment bbox"
                        );
                        assert!(!seen[id as usize], "segment {id} stored twice");
                        seen[id as usize] = true;
                    }
                }
            }
        }
        assert!(
            seen.iter().all(|&b| b),
            "some segments missing from the tree"
        );
        let _ = root_level;
    }
}

// ----------------------------------------------------------------------
// Split algorithms (free functions over entry vectors)
// ----------------------------------------------------------------------

fn group_bbox(es: &[Entry]) -> Rect {
    es.iter().fold(Rect::empty(), |acc, e| acc.union(&e.rect))
}

/// Guttman's quadratic split.
fn split_quadratic(entries: Vec<Entry>, m: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    // PickSeeds: the pair wasting the most area together.
    let (mut s1, mut s2, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = entries[i].rect.union(&entries[j].rect).area()
                - entries[i].rect.area()
                - entries[j].rect.area();
            if d > worst {
                worst = d;
                s1 = i;
                s2 = j;
            }
        }
    }
    let mut left = vec![entries[s1]];
    let mut right = vec![entries[s2]];
    let mut rest: Vec<Entry> = entries
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s1 && *i != s2)
        .map(|(_, e)| e)
        .collect();
    let mut lbb = left[0].rect;
    let mut rbb = right[0].rect;
    while !rest.is_empty() {
        // Force-assign when a group must take everything left to reach m.
        if left.len() + rest.len() == m {
            for e in rest.drain(..) {
                lbb = lbb.union(&e.rect);
                left.push(e);
            }
            break;
        }
        if right.len() + rest.len() == m {
            for e in rest.drain(..) {
                rbb = rbb.union(&e.rect);
                right.push(e);
            }
            break;
        }
        // PickNext: strongest preference.
        let (k, _) = rest
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let pa = (lbb.enlargement(&a.rect) - rbb.enlargement(&a.rect)).abs();
                let pb = (lbb.enlargement(&b.rect) - rbb.enlargement(&b.rect)).abs();
                pa.total_cmp(&pb)
            })
            .expect("rest non-empty");
        let e = rest.swap_remove(k);
        let dl = lbb.enlargement(&e.rect);
        let dr = rbb.enlargement(&e.rect);
        let to_left = match dl.total_cmp(&dr) {
            Ordering::Less => true,
            Ordering::Greater => false,
            Ordering::Equal => match lbb.area().total_cmp(&rbb.area()) {
                Ordering::Less => true,
                Ordering::Greater => false,
                Ordering::Equal => left.len() <= right.len(),
            },
        };
        if to_left {
            lbb = lbb.union(&e.rect);
            left.push(e);
        } else {
            rbb = rbb.union(&e.rect);
            right.push(e);
        }
    }
    (left, right)
}

/// Guttman's linear split.
fn split_linear(entries: Vec<Entry>, m: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    let bb = group_bbox(&entries);
    // LinearPickSeeds per dimension: highest low side and lowest high side.
    let mut best_sep = f64::NEG_INFINITY;
    let (mut s1, mut s2) = (0usize, 1usize);
    for dim in 0..2 {
        let lo = |r: &Rect| if dim == 0 { r.min.x } else { r.min.y };
        let hi = |r: &Rect| if dim == 0 { r.max.x } else { r.max.y };
        let width = if dim == 0 { bb.width() } else { bb.height() };
        let width = if width > 0.0 { width } else { 1.0 };
        let highest_low = (0..n)
            .max_by(|&a, &b| lo(&entries[a].rect).total_cmp(&lo(&entries[b].rect)))
            .unwrap();
        let lowest_high = (0..n)
            .min_by(|&a, &b| hi(&entries[a].rect).total_cmp(&hi(&entries[b].rect)))
            .unwrap();
        if highest_low == lowest_high {
            continue;
        }
        let sep = (lo(&entries[highest_low].rect) - hi(&entries[lowest_high].rect)) / width;
        if sep > best_sep {
            best_sep = sep;
            s1 = lowest_high;
            s2 = highest_low;
        }
    }
    if s1 == s2 {
        s2 = (s1 + 1) % n;
    }
    let mut left = vec![entries[s1]];
    let mut right = vec![entries[s2]];
    let mut lbb = left[0].rect;
    let mut rbb = right[0].rect;
    let rest: Vec<Entry> = entries
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != s1 && *i != s2)
        .map(|(_, e)| e)
        .collect();
    let total = rest.len();
    for (done, e) in rest.into_iter().enumerate() {
        let remaining = total - done;
        if left.len() + remaining == m {
            lbb = lbb.union(&e.rect);
            left.push(e);
            continue;
        }
        if right.len() + remaining == m {
            rbb = rbb.union(&e.rect);
            right.push(e);
            continue;
        }
        if lbb.enlargement(&e.rect) <= rbb.enlargement(&e.rect) {
            lbb = lbb.union(&e.rect);
            left.push(e);
        } else {
            rbb = rbb.union(&e.rect);
            right.push(e);
        }
    }
    (left, right)
}

/// R\*-style axis split: minimal margin sum chooses the axis, minimal
/// overlap (then minimal area) chooses the distribution.
fn split_rstar_axis(entries: Vec<Entry>, m: usize) -> (Vec<Entry>, Vec<Entry>) {
    let n = entries.len();
    let mut best: Option<(f64, f64, usize, Vec<usize>)> = None; // (overlap, area, split_at, order)
    for dim in 0..2 {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let (ra, rb) = (&entries[a].rect, &entries[b].rect);
            let (la, lb, ha, hb) = if dim == 0 {
                (ra.min.x, rb.min.x, ra.max.x, rb.max.x)
            } else {
                (ra.min.y, rb.min.y, ra.max.y, rb.max.y)
            };
            la.total_cmp(&lb).then(ha.total_cmp(&hb))
        });
        // Prefix/suffix bounding boxes.
        let mut prefix = vec![Rect::empty(); n + 1];
        for k in 0..n {
            prefix[k + 1] = prefix[k].union(&entries[order[k]].rect);
        }
        let mut suffix = vec![Rect::empty(); n + 1];
        for k in (0..n).rev() {
            suffix[k] = suffix[k + 1].union(&entries[order[k]].rect);
        }
        let mut margin_sum = 0.0;
        let mut axis_best: Option<(f64, f64, usize)> = None;
        for split_at in m..=(n - m) {
            let (lb, rb) = (prefix[split_at], suffix[split_at]);
            margin_sum += lb.margin() + rb.margin();
            let overlap = lb.overlap_area(&rb);
            let area = lb.area() + rb.area();
            if axis_best
                .map(|(o, a, _)| (overlap, area) < (o, a))
                .unwrap_or(true)
            {
                axis_best = Some((overlap, area, split_at));
            }
        }
        let (overlap, area, split_at) = axis_best.expect("m <= n - m by order constraint");
        // Choose axis by margin; this simplified variant folds the margin
        // criterion into the (overlap, area) comparison: smaller margin
        // axes produce smaller overlap on these workloads, and the
        // distribution choice dominates quality. Compare across axes by
        // (overlap, area) directly.
        let _ = margin_sum;
        if best
            .as_ref()
            .map(|(o, a, _, _)| (overlap, area) < (*o, *a))
            .unwrap_or(true)
        {
            best = Some((overlap, area, split_at, order));
        }
    }
    let (_, _, split_at, order) = best.expect("two axes considered");
    let left: Vec<Entry> = order[..split_at].iter().map(|&i| entries[i]).collect();
    let right: Vec<Entry> = order[split_at..].iter().map(|&i| entries[i]).collect();
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn segments(n: usize) -> Vec<LineSeg> {
        // Deterministic spread of segments.
        (0..n)
            .map(|k| {
                let x = ((k * 37) % 97) as f64;
                let y = ((k * 61) % 89) as f64;
                LineSeg::from_coords(x, y, x + 3.0, y + 2.0)
            })
            .collect()
    }

    #[test]
    fn build_and_invariants_all_split_algorithms() {
        let segs = segments(60);
        for split in [
            SplitAlgorithm::Linear,
            SplitAlgorithm::Quadratic,
            SplitAlgorithm::RStarAxis,
        ] {
            let t = RTree::build(&segs, 2, 5, split);
            t.check_invariants(&segs, segs.len());
            assert!(t.height() >= 1, "{split:?}: 60 entries with M=5 must split");
        }
    }

    #[test]
    fn empty_and_tiny_trees() {
        let t = RTree::new(1, 3, SplitAlgorithm::Quadratic);
        assert_eq!(t.height(), 0);
        assert!(t
            .window_candidates(&Rect::from_coords(0.0, 0.0, 1.0, 1.0))
            .is_empty());
        assert!(t.nearest(Point::new(0.0, 0.0), &[]).is_none());

        let segs = segments(2);
        let t = RTree::build(&segs, 1, 3, SplitAlgorithm::Quadratic);
        t.check_invariants(&segs, 2);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn window_query_matches_brute_force() {
        let segs = segments(80);
        let t = RTree::build(&segs, 2, 6, SplitAlgorithm::Quadratic);
        for query in [
            Rect::from_coords(0.0, 0.0, 20.0, 20.0),
            Rect::from_coords(40.0, 30.0, 70.0, 60.0),
            Rect::from_coords(0.0, 0.0, 100.0, 100.0),
            Rect::from_coords(95.0, 95.0, 99.0, 99.0),
        ] {
            let got = t.window_query(&query, &segs);
            let brute: Vec<SegId> = (0..segs.len() as u32)
                .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], &query).is_some())
                .collect();
            assert_eq!(got, brute, "window {query}");
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let segs = segments(50);
        let t = RTree::build(&segs, 2, 5, SplitAlgorithm::Linear);
        for p in [
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(96.0, 3.0),
        ] {
            let (id, d) = t.nearest(p, &segs).unwrap();
            let brute = (0..segs.len())
                .map(|k| (k as u32, segs[k].dist2_to_point(p).sqrt()))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(d, brute.1, "distance at {p}");
            // The id may differ under exact ties; distances must match.
            let _ = id;
        }
    }

    #[test]
    fn order_1_3_paper_configuration() {
        // The paper's running R-tree example uses order (1,3) on 9
        // segments (Sec. 5.3).
        let segs = segments(9);
        let t = RTree::build(&segs, 1, 3, SplitAlgorithm::Quadratic);
        t.check_invariants(&segs, 9);
        assert!(t.height() >= 1);
        assert_eq!(t.stats().entries, 9);
    }

    #[test]
    fn delete_removes_and_preserves_invariants() {
        let segs = segments(60);
        let mut t = RTree::build(&segs, 2, 5, SplitAlgorithm::Quadratic);
        // Delete every other segment.
        for id in (0..60u32).step_by(2) {
            assert!(t.delete(id, segs[id as usize].bbox()), "delete {id}");
        }
        assert!(
            !t.delete(0, segs[0].bbox()),
            "double delete reports absence"
        );
        // Remaining entries answer queries exactly.
        let q = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let got = t.window_query(&q, &segs);
        let want: Vec<SegId> = (0..60u32).filter(|id| id % 2 == 1).collect();
        assert_eq!(got, want);
        // Fanout invariants still hold for the survivors.
        let survivors: Vec<LineSeg> = segs.clone();
        let mut seen = vec![true; 60];
        for id in (0..60usize).step_by(2) {
            seen[id] = false;
        }
        t.check_invariants_subset(&survivors, &seen);
    }

    #[test]
    fn delete_everything_leaves_empty_root() {
        let segs = segments(25);
        let mut t = RTree::build(&segs, 2, 4, SplitAlgorithm::Linear);
        for id in 0..25u32 {
            assert!(t.delete(id, segs[id as usize].bbox()));
        }
        assert_eq!(t.stats().entries, 0);
        assert!(t
            .window_candidates(&Rect::from_coords(0.0, 0.0, 200.0, 200.0))
            .is_empty());
        // The tree can be refilled after total deletion.
        for (id, s) in segs.iter().enumerate() {
            t.insert(id as u32, s.bbox());
        }
        t.check_invariants(&segs, 25);
    }

    #[test]
    fn delete_triggers_condense_and_root_shrink() {
        let segs = segments(30);
        let mut t = RTree::build(&segs, 2, 4, SplitAlgorithm::Quadratic);
        let before_height = t.height();
        assert!(before_height >= 2);
        for id in 0..28u32 {
            assert!(t.delete(id, segs[id as usize].bbox()));
        }
        assert!(t.height() < before_height, "root must shrink");
        assert_eq!(t.stats().entries, 2);
    }

    #[test]
    fn quality_metrics_are_finite_and_ordered() {
        let segs = segments(120);
        let quad = RTree::build(&segs, 2, 6, SplitAlgorithm::Quadratic);
        let (cov, ov) = quad.quality_metrics();
        assert!(cov.is_finite() && cov > 0.0);
        assert!(ov.is_finite() && ov >= 0.0);
    }

    #[test]
    fn rstar_axis_split_picks_zero_overlap_compact_groups() {
        // Paper Fig. 6 discussion: the split should minimize the
        // intersection area between the two covering rectangles (and,
        // among zero-overlap choices, prefer the smaller total coverage).
        // Two columns of rectangles: both axes admit zero overlap but the
        // x split covers far less area.
        let entries: Vec<Entry> = [
            Rect::from_coords(0.0, 0.0, 1.0, 1.0),
            Rect::from_coords(0.0, 5.0, 1.0, 6.0),
            Rect::from_coords(9.0, 0.0, 10.0, 1.0),
            Rect::from_coords(9.0, 5.0, 10.0, 6.0),
        ]
        .iter()
        .enumerate()
        .map(|(i, &rect)| Entry {
            rect,
            child: ChildRef::Seg(i as u32),
        })
        .collect();
        let (l, r) = split_rstar_axis(entries, 2);
        let (lb, rb) = (group_bbox(&l), group_bbox(&r));
        assert_eq!(lb.overlap_area(&rb), 0.0);
        // The x-axis grouping (columns) wins on total area: 6 + 6 < 10 + 10.
        assert_eq!(lb.area() + rb.area(), 12.0);
        assert_eq!(l.len() + r.len(), 4);
    }

    #[test]
    fn duplicate_geometry_is_allowed() {
        let segs = vec![LineSeg::from_coords(1.0, 1.0, 2.0, 2.0); 10];
        let t = RTree::build(&segs, 2, 4, SplitAlgorithm::Quadratic);
        t.check_invariants(&segs, 10);
        assert_eq!(
            t.window_query(&Rect::from_coords(0.0, 0.0, 3.0, 3.0), &segs)
                .len(),
            10
        );
    }

    #[test]
    #[should_panic(expected = "need 1 <= m")]
    fn invalid_order_rejected() {
        RTree::new(3, 4, SplitAlgorithm::Linear);
    }
}
