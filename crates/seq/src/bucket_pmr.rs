//! Sequential bucket PMR quadtree (paper Sec. 2.2.1).
//!
//! The bucket PMR quadtree replaces the classic PMR's split-once rule with
//! a *split-until-fits* rule: an overflowing bucket is split repeatedly
//! until every sub-bucket holds at most `b` segments, or the maximal
//! depth is reached. The resulting shape is **independent of insertion
//! order** — the property that makes the structure suitable for
//! simultaneous (data-parallel) insertion, and the reason the paper's
//! parallel build algorithm targets this variant (Sec. 5.2).

use crate::quad::{filter_window, QuadArena, QuadNode};
use crate::{SegId, TreeStats};
use dp_geom::{seg_in_block, LineSeg, Point, Rect};

/// A sequentially built bucket PMR quadtree.
#[derive(Debug, Clone)]
pub struct BucketPmrTree {
    arena: QuadArena,
    capacity: usize,
    max_depth: usize,
}

impl BucketPmrTree {
    /// An empty tree over `world` with bucket `capacity` and a maximal
    /// subdivision depth.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(world: Rect, capacity: usize, max_depth: usize) -> Self {
        assert!(capacity >= 1, "bucket capacity must be at least 1");
        BucketPmrTree {
            arena: QuadArena::new(world),
            capacity,
            max_depth,
        }
    }

    /// Builds by inserting `segs` in order. (Order does not affect the
    /// final shape; see [`BucketPmrTree::shape_signature`].)
    pub fn build(world: Rect, segs: &[LineSeg], capacity: usize, max_depth: usize) -> Self {
        let mut t = BucketPmrTree::new(world, capacity, max_depth);
        for id in 0..segs.len() {
            t.insert(id as SegId, segs);
        }
        t
    }

    /// Inserts segment `id` into every leaf block it intersects,
    /// splitting overflowing buckets until each sub-bucket fits (or the
    /// depth bound is hit).
    ///
    /// # Panics
    ///
    /// Panics if the segment lies outside the half-open world.
    pub fn insert(&mut self, id: SegId, segs: &[LineSeg]) {
        let world = self.arena.world();
        let s = &segs[id as usize];
        assert!(
            world.contains_half_open(s.a) && world.contains_half_open(s.b),
            "segment {id} endpoint outside the half-open world"
        );
        self.insert_rec(self.arena.root(), world, 0, id, segs);
    }

    fn insert_rec(&mut self, idx: usize, rect: Rect, depth: usize, id: SegId, segs: &[LineSeg]) {
        if !seg_in_block(&segs[id as usize], &rect) {
            return;
        }
        match self.arena.node(idx) {
            QuadNode::Internal { children } => {
                let children = *children;
                let quads = rect.quadrants();
                for q in 0..4 {
                    self.insert_rec(children[q], quads[q], depth + 1, id, segs);
                }
            }
            QuadNode::Leaf { .. } => {
                self.arena.push_to_leaf(idx, id);
                self.split_until_fits(idx, rect, depth, segs);
            }
        }
    }

    fn split_until_fits(&mut self, idx: usize, rect: Rect, depth: usize, segs: &[LineSeg]) {
        let occupancy = match self.arena.node(idx) {
            QuadNode::Leaf { segs } => segs.len(),
            QuadNode::Internal { .. } => return,
        };
        if occupancy <= self.capacity || depth >= self.max_depth {
            return;
        }
        let children = self.arena.subdivide(idx, &rect, segs);
        let quads = rect.quadrants();
        for q in 0..4 {
            self.split_until_fits(children[q], quads[q], depth + 1, segs);
        }
    }

    /// Deletes segment `id` from every block it intersects, merging
    /// sibling groups whose combined distinct occupancy no longer exceeds
    /// the capacity (recursively upward). Returns whether the segment was
    /// present.
    ///
    /// Because the bucket PMR shape is determined solely by the segment
    /// set (a block is subdivided iff its occupancy exceeds the
    /// capacity), delete-with-merge leaves the tree in exactly the state
    /// a fresh bulk build of the surviving segments would produce.
    pub fn delete(&mut self, id: SegId, segs: &[LineSeg]) -> bool {
        let world = self.arena.world();
        let removed = self.delete_rec(self.arena.root(), world, id, segs);
        loop {
            if !self.merge_pass(self.arena.root()) {
                break;
            }
        }
        removed
    }

    fn delete_rec(&mut self, idx: usize, rect: Rect, id: SegId, segs: &[LineSeg]) -> bool {
        if !seg_in_block(&segs[id as usize], &rect) {
            return false;
        }
        match self.arena.node(idx) {
            QuadNode::Internal { children } => {
                let children = *children;
                let quads = rect.quadrants();
                let mut removed = false;
                for q in 0..4 {
                    removed |= self.delete_rec(children[q], quads[q], id, segs);
                }
                removed
            }
            QuadNode::Leaf { .. } => self.arena.remove_from_leaf(idx, id),
        }
    }

    /// One bottom-up merge sweep; merges when the distinct occupancy of
    /// four leaf siblings fits the capacity. Returns whether anything
    /// changed.
    fn merge_pass(&mut self, idx: usize) -> bool {
        let children = match self.arena.node(idx) {
            QuadNode::Internal { children } => *children,
            QuadNode::Leaf { .. } => return false,
        };
        let mut changed = false;
        for &c in &children {
            changed |= self.merge_pass(c);
        }
        let all_leaves = children
            .iter()
            .all(|&c| matches!(self.arena.node(c), QuadNode::Leaf { .. }));
        if all_leaves {
            let mut distinct: Vec<SegId> = Vec::new();
            for &c in &children {
                if let QuadNode::Leaf { segs } = self.arena.node(c) {
                    for &s in segs {
                        if !distinct.contains(&s) {
                            distinct.push(s);
                        }
                    }
                }
            }
            if distinct.len() <= self.capacity {
                self.arena.merge_children(idx);
                changed = true;
            }
        }
        changed
    }

    /// The bucket capacity `b`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The depth bound.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Read access to the underlying arena.
    pub fn arena(&self) -> &QuadArena {
        &self.arena
    }

    /// Ids of segments intersecting `query` (deduplicated, sorted, exact).
    pub fn window_query(&self, query: &Rect, segs: &[LineSeg]) -> Vec<SegId> {
        filter_window(self.arena.window_candidates(query), segs, query)
    }

    /// Ids in the leaf block containing `p`.
    pub fn point_query(&self, p: Point) -> Vec<SegId> {
        let mut v = self.arena.point_candidates(p);
        v.sort_unstable();
        v
    }

    /// Structure statistics.
    pub fn stats(&self) -> TreeStats {
        self.arena.stats()
    }

    /// Canonical shape fingerprint: sorted (depth, sorted-leaf-contents,
    /// block corner) triples. Insertion-order independence means two
    /// builds over permutations of the same data yield equal signatures.
    pub fn shape_signature(&self) -> Vec<(usize, Vec<SegId>, (u64, u64))> {
        let mut sig = Vec::new();
        self.arena.for_each_leaf(|rect, depth, ids| {
            let mut ids = ids.to_vec();
            ids.sort_unstable();
            sig.push((depth, ids, (rect.min.x.to_bits(), rect.min.y.to_bits())));
        });
        sig.sort();
        sig
    }

    /// Number of leaves that exceed the capacity because the maximal depth
    /// cut subdivision short (paper Fig. 38's node 9 situation).
    pub fn over_capacity_leaves(&self) -> usize {
        let mut n = 0;
        self.arena.for_each_leaf(|_, _, ids| {
            if ids.len() > self.capacity {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    fn crossing_bundle() -> Vec<LineSeg> {
        // Five segments whose pairwise crossing points are all distinct
        // and at least 1/2 apart, so capacity 2 is satisfiable at depth
        // <= 4 in the 8-wide world.
        vec![
            LineSeg::from_coords(1.0, 1.0, 6.0, 6.0),
            LineSeg::from_coords(1.0, 6.0, 6.0, 1.0),
            LineSeg::from_coords(1.0, 2.0, 6.0, 2.0),
            LineSeg::from_coords(3.0, 1.0, 3.0, 6.0),
            LineSeg::from_coords(0.0, 7.0, 2.0, 7.0),
        ]
    }

    #[test]
    fn buckets_respect_capacity_below_max_depth() {
        let segs = crossing_bundle();
        let t = BucketPmrTree::build(world(), &segs, 2, 6);
        t.arena().for_each_leaf(|_, depth, ids| {
            if depth < t.max_depth() {
                assert!(
                    ids.len() <= t.capacity(),
                    "bucket over capacity at depth {depth}: {ids:?}"
                );
            }
        });
        assert_eq!(t.over_capacity_leaves(), 0);
    }

    /// The defining property: shape is independent of insertion order.
    #[test]
    fn insertion_order_does_not_change_shape() {
        let segs = crossing_bundle();
        let t1 = BucketPmrTree::build(world(), &segs, 2, 6);
        // Insert in several different orders.
        for order in [
            vec![4u32, 3, 2, 1, 0],
            vec![2u32, 0, 4, 1, 3],
            vec![1u32, 4, 0, 3, 2],
        ] {
            let mut t2 = BucketPmrTree::new(world(), 2, 6);
            for &id in &order {
                t2.insert(id, &segs);
            }
            assert_eq!(
                t1.shape_signature(),
                t2.shape_signature(),
                "bucket PMR shape changed under order {order:?}"
            );
        }
    }

    #[test]
    fn max_depth_leaves_over_capacity_bucket() {
        // Three segments sharing a vertex keep every enclosing block at
        // occupancy 3 forever: with capacity 2 the shared-vertex block
        // splits to max depth and stays over capacity (paper Fig. 4 / 38).
        let segs = vec![
            LineSeg::from_coords(1.0, 6.0, 0.0, 7.0),
            LineSeg::from_coords(1.0, 6.0, 3.0, 7.0),
            LineSeg::from_coords(1.0, 6.0, 6.0, 2.0),
        ];
        let t = BucketPmrTree::build(world(), &segs, 2, 3);
        assert_eq!(t.stats().height, 3);
        assert!(t.over_capacity_leaves() >= 1);
    }

    #[test]
    fn window_queries_match_brute_force() {
        let segs = crossing_bundle();
        let t = BucketPmrTree::build(world(), &segs, 2, 6);
        for query in [
            Rect::from_coords(0.0, 0.0, 2.0, 2.0),
            Rect::from_coords(2.0, 2.0, 4.0, 4.0),
            Rect::from_coords(0.0, 0.0, 8.0, 8.0),
            Rect::from_coords(6.5, 6.5, 7.5, 7.5),
        ] {
            let got = t.window_query(&query, &segs);
            let brute: Vec<SegId> = (0..segs.len() as u32)
                .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], &query).is_some())
                .collect();
            assert_eq!(got, brute, "window {query}");
        }
    }

    #[test]
    fn point_query_finds_block_contents() {
        let segs = crossing_bundle();
        let t = BucketPmrTree::build(world(), &segs, 2, 6);
        // Point on segment 2 (y = 3 horizontal).
        let hits = t.point_query(Point::new(5.0, 3.0));
        assert!(hits.contains(&2));
    }

    #[test]
    fn delete_restores_bulk_build_shape() {
        // Deleting down to a subset must leave exactly the tree a fresh
        // build of that subset produces (shape is set-determined).
        let segs = crossing_bundle();
        let mut t = BucketPmrTree::build(world(), &segs, 2, 6);
        assert!(t.delete(0, &segs));
        assert!(t.delete(3, &segs));
        assert!(!t.delete(3, &segs), "double delete reports absence");
        // Rebuild reference over the survivors (same ids, same geometry).
        let mut reference = BucketPmrTree::new(world(), 2, 6);
        for &id in &[1u32, 2, 4] {
            reference.insert(id, &segs);
        }
        assert_eq!(t.shape_signature(), reference.shape_signature());
        assert_eq!(t.window_query(&world(), &segs), vec![1, 2, 4]);
    }

    #[test]
    fn delete_everything_collapses_to_root() {
        let segs = crossing_bundle();
        let mut t = BucketPmrTree::build(world(), &segs, 2, 6);
        for id in 0..segs.len() as u32 {
            assert!(t.delete(id, &segs));
        }
        assert_eq!(t.stats().leaves, 1);
        assert_eq!(t.stats().entries, 0);
    }

    #[test]
    fn single_segment_never_splits() {
        let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 6.0)];
        let t = BucketPmrTree::build(world(), &segs, 2, 6);
        assert_eq!(t.stats().nodes, 1);
        assert_eq!(t.stats().height, 0);
    }
}
