//! Shared quadtree machinery for the sequential PM₁, PMR and bucket PMR
//! baselines: an arena of quadrant nodes, block-rect bookkeeping, segment
//! redistribution on subdivision, traversal-based queries, and statistics.
//!
//! The three trees differ only in their *splitting policies* (paper
//! Secs. 2.1–2.2.1); everything else — the regular disjoint decomposition,
//! the q-edge membership convention, the query surface — is identical and
//! lives here.

use crate::{SegId, TreeStats};
use dp_geom::{seg_in_block, LineSeg, Point, Rect};

/// Index of a node inside a [`QuadArena`].
pub type NodeIdx = usize;

/// A quadtree node: either an internal node with exactly four children
/// (NW, NE, SW, SE) or a leaf holding segment ids.
#[derive(Debug, Clone)]
pub enum QuadNode {
    /// Internal node; children in [`dp_geom::Rect::quadrants`] order.
    Internal {
        /// Child node indices (NW, NE, SW, SE).
        children: [NodeIdx; 4],
    },
    /// Leaf node holding the ids of the segments that pass through its
    /// block (its q-edges).
    Leaf {
        /// Segment ids, in insertion order.
        segs: Vec<SegId>,
    },
}

/// An arena-allocated quadtree over a square world.
#[derive(Debug, Clone)]
pub struct QuadArena {
    world: Rect,
    nodes: Vec<QuadNode>,
}

impl QuadArena {
    /// A fresh tree: one empty leaf covering the world.
    pub fn new(world: Rect) -> Self {
        QuadArena {
            world,
            nodes: vec![QuadNode::Leaf { segs: Vec::new() }],
        }
    }

    /// The world rectangle.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// The root node index (always 0).
    pub fn root(&self) -> NodeIdx {
        0
    }

    /// Borrow a node.
    pub fn node(&self, i: NodeIdx) -> &QuadNode {
        &self.nodes[i]
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the arena holds just the initial root leaf with no
    /// segments.
    pub fn is_empty(&self) -> bool {
        matches!(&self.nodes[0], QuadNode::Leaf { segs } if segs.is_empty())
            && self.nodes.len() == 1
    }

    /// Replaces the segment list of leaf `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a leaf.
    pub fn replace_leaf(&mut self, idx: NodeIdx, segs: Vec<SegId>) {
        match &mut self.nodes[idx] {
            QuadNode::Leaf { segs: s } => *s = segs,
            QuadNode::Internal { .. } => panic!("replace_leaf called on internal node {idx}"),
        }
    }

    /// Appends an id to leaf `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a leaf.
    pub fn push_to_leaf(&mut self, idx: NodeIdx, id: SegId) {
        match &mut self.nodes[idx] {
            QuadNode::Leaf { segs } => segs.push(id),
            QuadNode::Internal { .. } => panic!("push_to_leaf called on internal node {idx}"),
        }
    }

    /// Removes an id from leaf `idx`; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a leaf.
    pub fn remove_from_leaf(&mut self, idx: NodeIdx, id: SegId) -> bool {
        match &mut self.nodes[idx] {
            QuadNode::Leaf { segs } => {
                if let Some(pos) = segs.iter().position(|&x| x == id) {
                    segs.remove(pos);
                    true
                } else {
                    false
                }
            }
            QuadNode::Internal { .. } => panic!("remove_from_leaf called on internal node {idx}"),
        }
    }

    /// Replaces leaf `idx` with an internal node whose four children
    /// receive the leaf's segments by block membership. Returns the child
    /// indices. A segment crossing child boundaries lands in several
    /// children (the q-edge convention).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not a leaf.
    pub fn subdivide(&mut self, idx: NodeIdx, rect: &Rect, all_segs: &[LineSeg]) -> [NodeIdx; 4] {
        let segs = match std::mem::replace(
            &mut self.nodes[idx],
            QuadNode::Internal { children: [0; 4] },
        ) {
            QuadNode::Leaf { segs } => segs,
            QuadNode::Internal { .. } => panic!("subdivide called on internal node {idx}"),
        };
        let quads = rect.quadrants();
        let mut children = [0usize; 4];
        for (q, child) in children.iter_mut().enumerate() {
            let child_segs: Vec<SegId> = segs
                .iter()
                .copied()
                .filter(|&id| seg_in_block(&all_segs[id as usize], &quads[q]))
                .collect();
            *child = self.nodes.len();
            self.nodes.push(QuadNode::Leaf { segs: child_segs });
        }
        self.nodes[idx] = QuadNode::Internal { children };
        children
    }

    /// Collapses internal node `idx` back into a leaf holding the distinct
    /// segment ids of its (leaf) children — the merge step of PMR
    /// deletion. The children must all be leaves.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is not internal or any child is not a leaf.
    pub fn merge_children(&mut self, idx: NodeIdx) {
        let children = match &self.nodes[idx] {
            QuadNode::Internal { children } => *children,
            QuadNode::Leaf { .. } => panic!("merge_children called on leaf {idx}"),
        };
        let mut merged: Vec<SegId> = Vec::new();
        for &c in &children {
            match &self.nodes[c] {
                QuadNode::Leaf { segs } => {
                    for &id in segs {
                        if !merged.contains(&id) {
                            merged.push(id);
                        }
                    }
                }
                QuadNode::Internal { .. } => {
                    panic!("merge_children: child {c} of {idx} is not a leaf")
                }
            }
            // Children become unreachable; the arena does not reclaim them
            // (merges are rare and the ids stay valid for readers holding
            // old indices). `stats` and traversals only follow live links.
            self.nodes[c] = QuadNode::Leaf { segs: Vec::new() };
        }
        self.nodes[idx] = QuadNode::Leaf { segs: merged };
    }

    /// All ids stored in leaves whose blocks intersect `query`,
    /// deduplicated and sorted. Callers typically post-filter by exact
    /// geometry.
    pub fn window_candidates(&self, query: &Rect) -> Vec<SegId> {
        let mut out = Vec::new();
        let mut stack = vec![(self.root(), self.world)];
        while let Some((idx, rect)) = stack.pop() {
            if !rect.intersects(query) {
                continue;
            }
            match &self.nodes[idx] {
                QuadNode::Leaf { segs } => out.extend_from_slice(segs),
                QuadNode::Internal { children } => {
                    let quads = rect.quadrants();
                    for q in 0..4 {
                        stack.push((children[q], quads[q]));
                    }
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Ids in the unique leaf block containing `p` (half-open membership),
    /// or an empty vector when `p` is outside the world.
    pub fn point_candidates(&self, p: Point) -> Vec<SegId> {
        if !self.world.contains_half_open(p) {
            return Vec::new();
        }
        let mut idx = self.root();
        let mut rect = self.world;
        loop {
            match &self.nodes[idx] {
                QuadNode::Leaf { segs } => return segs.clone(),
                QuadNode::Internal { children } => {
                    let quads = rect.quadrants();
                    let q = (0..4)
                        .find(|&q| quads[q].contains_half_open(p))
                        .expect("half-open quadrants partition the block");
                    idx = children[q];
                    rect = quads[q];
                }
            }
        }
    }

    /// The nearest stored segment to `p` by true segment distance
    /// (best-first block search with the same contract as the
    /// data-parallel trees' `nearest`). `None` when the tree holds no
    /// segments.
    pub fn nearest(&self, p: Point, segs: &[LineSeg]) -> Option<(SegId, f64)> {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        struct Item {
            dist2: f64,
            node: NodeIdx,
            rect: Rect,
        }
        impl PartialEq for Item {
            fn eq(&self, other: &Self) -> bool {
                self.dist2 == other.dist2
            }
        }
        impl Eq for Item {}
        impl PartialOrd for Item {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }
        impl Ord for Item {
            fn cmp(&self, other: &Self) -> Ordering {
                other.dist2.total_cmp(&self.dist2) // min-heap
            }
        }
        let mut heap = BinaryHeap::new();
        heap.push(Item {
            dist2: self.world.dist2_to_point(p),
            node: self.root(),
            rect: self.world,
        });
        let mut best: Option<(SegId, f64)> = None;
        while let Some(item) = heap.pop() {
            if let Some((_, d)) = best {
                if item.dist2 > d * d {
                    break;
                }
            }
            match &self.nodes[item.node] {
                QuadNode::Leaf { segs: ids } => {
                    for &id in ids {
                        let d = segs[id as usize].dist2_to_point(p).sqrt();
                        if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                            best = Some((id, d));
                        }
                    }
                }
                QuadNode::Internal { children } => {
                    let quads = item.rect.quadrants();
                    for q in 0..4 {
                        heap.push(Item {
                            dist2: quads[q].dist2_to_point(p),
                            node: children[q],
                            rect: quads[q],
                        });
                    }
                }
            }
        }
        best
    }

    /// Visits every leaf with its block rectangle and depth.
    pub fn for_each_leaf<F: FnMut(&Rect, usize, &[SegId])>(&self, mut f: F) {
        let mut stack = vec![(self.root(), self.world, 0usize)];
        while let Some((idx, rect, depth)) = stack.pop() {
            match &self.nodes[idx] {
                QuadNode::Leaf { segs } => f(&rect, depth, segs),
                QuadNode::Internal { children } => {
                    let quads = rect.quadrants();
                    for q in 0..4 {
                        stack.push((children[q], quads[q], depth + 1));
                    }
                }
            }
        }
    }

    /// Structure statistics over the live tree.
    pub fn stats(&self) -> TreeStats {
        let mut s = TreeStats::default();
        let mut live_nodes = 0usize;
        let mut stack = vec![(self.root(), 0usize)];
        while let Some((idx, depth)) = stack.pop() {
            live_nodes += 1;
            s.height = s.height.max(depth);
            match &self.nodes[idx] {
                QuadNode::Leaf { segs } => {
                    s.leaves += 1;
                    s.entries += segs.len();
                    s.max_leaf_occupancy = s.max_leaf_occupancy.max(segs.len());
                    if segs.is_empty() {
                        s.empty_leaves += 1;
                    }
                }
                QuadNode::Internal { children } => {
                    for &c in children {
                        stack.push((c, depth + 1));
                    }
                }
            }
        }
        s.nodes = live_nodes;
        s
    }
}

/// Exact-geometry filter for window queries: keeps the candidate ids whose
/// segments truly intersect the query rectangle.
pub fn filter_window(candidates: Vec<SegId>, segs: &[LineSeg], query: &Rect) -> Vec<SegId> {
    candidates
        .into_iter()
        .filter(|&id| dp_geom::clip_segment_closed(&segs[id as usize], query).is_some())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 8.0, 8.0)
    }

    #[test]
    fn new_arena_is_single_empty_leaf() {
        let a = QuadArena::new(world());
        assert!(a.is_empty());
        assert_eq!(a.len(), 1);
        let s = a.stats();
        assert_eq!(s.nodes, 1);
        assert_eq!(s.leaves, 1);
        assert_eq!(s.empty_leaves, 1);
        assert_eq!(s.height, 0);
    }

    #[test]
    fn subdivide_distributes_by_membership() {
        let segs = vec![
            LineSeg::from_coords(1.0, 6.0, 2.0, 7.0), // NW only
            LineSeg::from_coords(1.0, 1.0, 6.0, 1.0), // SW and SE
        ];
        let mut a = QuadArena::new(world());
        if let QuadNode::Leaf { segs: s } = &mut a.nodes[0] {
            s.extend([0, 1]);
        }
        let children = a.subdivide(0, &world(), &segs);
        let leaf = |i: usize| match a.node(children[i]) {
            QuadNode::Leaf { segs } => segs.clone(),
            _ => panic!(),
        };
        assert_eq!(leaf(0), vec![0]); // NW
        assert_eq!(leaf(1), Vec::<SegId>::new()); // NE
        assert_eq!(leaf(2), vec![1]); // SW
        assert_eq!(leaf(3), vec![1]); // SE
    }

    #[test]
    fn queries_after_subdivision() {
        let segs = vec![
            LineSeg::from_coords(1.0, 6.0, 2.0, 7.0),
            LineSeg::from_coords(1.0, 1.0, 6.0, 1.0),
        ];
        let mut a = QuadArena::new(world());
        if let QuadNode::Leaf { segs: s } = &mut a.nodes[0] {
            s.extend([0, 1]);
        }
        a.subdivide(0, &world(), &segs);
        // Window over the SW quadrant sees only segment 1.
        let got = a.window_candidates(&Rect::from_coords(0.0, 0.0, 3.0, 3.0));
        assert_eq!(got, vec![1]);
        // Point lookup in NW.
        assert_eq!(a.point_candidates(Point::new(1.0, 6.5)), vec![0]);
        // Point outside the world.
        assert!(a.point_candidates(Point::new(-1.0, 0.0)).is_empty());
    }

    #[test]
    fn merge_children_deduplicates() {
        let segs = vec![LineSeg::from_coords(1.0, 1.0, 6.0, 1.0)];
        let mut a = QuadArena::new(world());
        if let QuadNode::Leaf { segs: s } = &mut a.nodes[0] {
            s.push(0);
        }
        a.subdivide(0, &world(), &segs);
        a.merge_children(0);
        match a.node(0) {
            QuadNode::Leaf { segs } => assert_eq!(segs, &vec![0]),
            _ => panic!("root should be a leaf again"),
        }
        assert_eq!(a.stats().leaves, 1);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let segs = vec![
            LineSeg::from_coords(1.0, 1.0, 2.0, 1.0),
            LineSeg::from_coords(6.0, 6.0, 7.0, 6.0),
            LineSeg::from_coords(0.0, 7.0, 1.0, 7.0),
        ];
        let mut a = QuadArena::new(world());
        if let QuadNode::Leaf { segs: s } = &mut a.nodes[0] {
            s.extend([0, 1, 2]);
        }
        a.subdivide(0, &world(), &segs);
        for p in [
            Point::new(1.0, 2.0),
            Point::new(7.0, 7.0),
            Point::new(0.0, 5.0),
            Point::new(4.0, 4.0),
        ] {
            let (_, d) = a.nearest(p, &segs).unwrap();
            let brute = segs
                .iter()
                .map(|s| s.dist2_to_point(p).sqrt())
                .min_by(|x, y| x.total_cmp(y))
                .unwrap();
            assert_eq!(d, brute, "probe {p}");
        }
        let empty = QuadArena::new(world());
        assert!(empty.nearest(Point::new(0.0, 0.0), &segs).is_none());
    }

    #[test]
    fn filter_window_drops_false_positives() {
        let segs = vec![
            LineSeg::from_coords(0.0, 0.0, 1.0, 1.0),
            LineSeg::from_coords(7.0, 7.0, 6.0, 6.0),
        ];
        let cands = vec![0, 1];
        let got = filter_window(cands, &segs, &Rect::from_coords(0.0, 0.0, 2.0, 2.0));
        assert_eq!(got, vec![0]);
    }
}
