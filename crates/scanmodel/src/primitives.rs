//! The spatial primitive operations of the paper's Section 4, composed from
//! scans, elementwise operations and permutations.
//!
//! Each primitive follows the paper's mechanics figure step by step
//! (Figs. 14, 16 and 18), and issues its constituent operations through the
//! owning [`Machine`] so that the operation counters reflect the paper's
//! cost accounting.
//!
//! The reordering primitives are split into a *layout* computation (which
//! runs the scans and produces target/source index vectors) and an *apply*
//! step (a permutation), because the spatial build algorithms carry several
//! parallel vectors per line processor (geometry, identifiers, node state)
//! that must all be reordered the same way.

use crate::machine::Machine;
use crate::ops::Element;
use crate::ops::{First, Last, Sum};
use crate::scan::{Direction, ScanKind};
use crate::vector::Segments;
use std::cmp::Ordering as CmpOrdering;

/// Result of a cloning layout computation ([`Machine::clone_layout`],
/// paper Sec. 4.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CloneLayout {
    /// For each output lane, the input lane it is a copy of. Originals and
    /// their clones are adjacent: the original first, its clone immediately
    /// after (the "small curved arrows" of paper Fig. 14).
    pub src_lane: Vec<usize>,
    /// `true` for output lanes that are clones (the inserted copies).
    pub is_clone: Vec<bool>,
    /// The segment descriptor after cloning: clones join the segment of
    /// their original.
    pub seg: Segments,
}

impl CloneLayout {
    /// Number of output lanes.
    pub fn len(&self) -> usize {
        self.src_lane.len()
    }

    /// `true` when the layout covers zero lanes.
    pub fn is_empty(&self) -> bool {
        self.src_lane.is_empty()
    }
}

/// Result of an unshuffle layout computation ([`Machine::unshuffle_layout`],
/// paper Sec. 4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnshuffleLayout {
    /// Scatter targets: lane `i` of the input moves to `target[i]`
    /// (a bijection on `0..n`, fed to [`Machine::permute`]).
    pub target: Vec<usize>,
    /// Per input segment, the pair `(left_count, right_count)`: how many
    /// lanes of the segment were `false`-class (packed to the left end)
    /// and `true`-class (packed to the right end).
    pub counts: Vec<(usize, usize)>,
}

/// Result of a deletion layout computation ([`Machine::delete_layout`],
/// paper Sec. 4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeleteLayout {
    /// Input lanes that survive, in order (gather indices).
    pub src_lane: Vec<usize>,
    /// Per input segment, the number of surviving lanes (may be zero).
    pub kept_per_segment: Vec<usize>,
}

impl Machine {
    // ------------------------------------------------------------------
    // Cloning (paper Sec. 4.1, Figs. 13-14)
    // ------------------------------------------------------------------

    /// Computes the cloning layout for the flagged lanes: every lane with
    /// `clone_flags[i] == true` is replicated, with the copy inserted
    /// immediately after the original; all other lanes shift right to make
    /// room.
    ///
    /// Mechanics (paper Fig. 14): an unsegmented upward **exclusive**
    /// `+`-scan of the clone flags yields each lane's rightward offset
    /// (`F1`); an elementwise add of the offset to the lane's position
    /// yields its new index (`F2`); the permutation repositions the lanes
    /// and each flagged lane then copies itself one slot to the right.
    ///
    /// # Panics
    ///
    /// Panics if `clone_flags.len() != seg.len()`.
    pub fn clone_layout(&self, seg: &Segments, clone_flags: &[bool]) -> CloneLayout {
        assert_eq!(
            clone_flags.len(),
            seg.len(),
            "clone: flag length {} does not match segment descriptor length {}",
            clone_flags.len(),
            seg.len()
        );
        let n = seg.len();
        if self.use_par(n) {
            return self.clone_layout_blocked(seg, clone_flags);
        }
        let ones: Vec<u64> = self.map(clone_flags, |f| f as u64);
        // F1: offset each existing lane must move right (Fig. 14
        // `up-scan(CF,+,ex)` — unsegmented: room is made globally).
        let offsets = self.up_scan(&ones, Sum, ScanKind::Exclusive);
        let total_clones = clone_flags.iter().filter(|&&f| f).count();
        let out_len = n + total_clones;

        // F2 = ew(+, P, F1): the new position of each original lane.
        let positions: Vec<usize> = {
            self.count_elementwise();
            offsets
                .iter()
                .enumerate()
                .map(|(i, &off)| i + off as usize)
                .collect()
        };

        // The permutation plus the adjacent self-copy, fused into one
        // scatter pass (counted as the permutation of Fig. 14).
        self.count_permute();
        let mut src_lane = vec![0usize; out_len];
        let mut is_clone = vec![false; out_len];
        let mut flags_out = vec![false; out_len];
        let in_flags = seg.flags();
        for i in 0..n {
            let p = positions[i];
            src_lane[p] = i;
            flags_out[p] = in_flags[i];
            if clone_flags[i] {
                src_lane[p + 1] = i;
                is_clone[p + 1] = true;
                // A clone never begins a segment: it joins its original's.
            }
        }
        let seg_out = Segments::from_flags(flags_out)
            .expect("clone layout preserves the leading segment flag");
        CloneLayout {
            src_lane,
            is_clone,
            seg: seg_out,
        }
    }

    /// Single-sweep cloning layout for the blocked parallel backend: the
    /// map, room-making scan, position arithmetic and scatter of Fig. 14
    /// collapse into one push-based walk (the output position of lane `i`
    /// is exactly the number of lanes and clones already emitted), so the
    /// four constituent passes touch memory once. Bit-identical to the
    /// composed path, and charged the same paper-level operation counts.
    fn clone_layout_blocked(&self, seg: &Segments, clone_flags: &[bool]) -> CloneLayout {
        let n = seg.len();
        // Same paper-level accounting as the composed reference: the
        // indicator map, the room-making scan (Fig. 14 F1), the position
        // elementwise (F2) and the scatter — plus the bytes those two
        // u64 vectors would have carried, kept backend-identical.
        rayon::fault_checkpoint();
        self.count_elementwise();
        self.count_scan();
        self.count_elementwise();
        self.count_permute();
        self.count_blocked_pass();
        self.count_bytes_moved(2 * n * std::mem::size_of::<u64>());
        let total_clones = clone_flags.iter().filter(|&&f| f).count();
        let out_len = n + total_clones;
        let in_flags = seg.flags();
        let mut src_lane = Vec::with_capacity(out_len);
        let mut is_clone = Vec::with_capacity(out_len);
        let mut flags_out = Vec::with_capacity(out_len);
        for i in 0..n {
            src_lane.push(i);
            is_clone.push(false);
            flags_out.push(in_flags[i]);
            if clone_flags[i] {
                // The clone sits immediately after its original and never
                // begins a segment.
                src_lane.push(i);
                is_clone.push(true);
                flags_out.push(false);
            }
        }
        let seg_out = Segments::from_flags(flags_out)
            .expect("clone layout preserves the leading segment flag");
        CloneLayout {
            src_lane,
            is_clone,
            seg: seg_out,
        }
    }

    /// Applies a cloning (or any gather-form) layout to one data vector.
    pub fn apply_clone<T: Element>(&self, data: &[T], layout: &CloneLayout) -> Vec<T> {
        self.gather(data, &layout.src_lane)
    }

    /// Applies a cloning layout into a caller-provided buffer (cleared
    /// first).
    pub fn apply_clone_into<T: Element>(&self, data: &[T], layout: &CloneLayout, out: &mut Vec<T>) {
        self.gather_into(data, &layout.src_lane, out);
    }

    /// Applies a cloning layout **in place**, growing `data` from `n` to
    /// `layout.len()` lanes without a second buffer. The clone gather is
    /// monotone (`src_lane[j] <= j`, copies only ever pull leftward), so a
    /// single backward sweep reads every source before it is overwritten.
    /// Counted as the same permutation as [`Machine::apply_clone_into`]
    /// plus one in-place reuse.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not match the input length the layout
    /// was computed for.
    pub fn apply_clone_in_place<T: Element>(&self, data: &mut Vec<T>, layout: &CloneLayout) {
        let n = data.len();
        let out_len = layout.len();
        assert!(
            out_len >= n,
            "clone in place: layout covers {} lanes but data has {}",
            out_len,
            n
        );
        if self.use_par(out_len) {
            rayon::fault_checkpoint();
        }
        self.count_permute();
        self.count_bytes_moved(out_len * std::mem::size_of::<T>());
        self.count_inplace_reuse();
        if out_len == 0 {
            data.clear();
            return;
        }
        // The fill value is irrelevant: every extended slot is rewritten
        // by the sweep below.
        let fill = data[n - 1];
        data.resize(out_len, fill);
        for j in (0..out_len).rev() {
            let src = layout.src_lane[j];
            debug_assert!(src <= j, "clone gather must be monotone");
            data[j] = data[src];
        }
    }

    // ------------------------------------------------------------------
    // Unshuffling (paper Sec. 4.2, Figs. 15-16)
    // ------------------------------------------------------------------

    /// Computes the unshuffle layout: within each segment, lanes with
    /// `class[i] == false` (the paper's `a` elements) are stably packed to
    /// the left end and lanes with `class[i] == true` (the `b` elements) to
    /// the right end.
    ///
    /// Mechanics (paper Fig. 16): an upward **inclusive** segmented
    /// `+`-scan over the `b`-indicator counts, for each `a`, the `b`s
    /// between it and its segment's left end (`F1`); a downward inclusive
    /// segmented `+`-scan over the `a`-indicator counts, for each `b`, the
    /// `a`s between it and the right end (`F2`); two elementwise ops derive
    /// the new position indices (`ew(-,P,F1)` for `a`s, `ew(+,P,F2)` for
    /// `b`s), and a permutation repositions the lanes.
    ///
    /// # Panics
    ///
    /// Panics if `class.len() != seg.len()`.
    pub fn unshuffle_layout(&self, seg: &Segments, class: &[bool]) -> UnshuffleLayout {
        assert_eq!(
            class.len(),
            seg.len(),
            "unshuffle: class length {} does not match segment descriptor length {}",
            class.len(),
            seg.len()
        );
        if self.use_par(seg.len()) {
            return self.unshuffle_layout_blocked(seg, class);
        }
        let b_ind: Vec<u64> = self.map(class, |c| c as u64);
        let a_ind: Vec<u64> = self.map(class, |c| (!c) as u64);
        // F1: b's to my left (inclusive scan adds 0 at an `a` lane itself).
        let f1 = self.scan(&b_ind, seg, Sum, Direction::Up, ScanKind::Inclusive);
        // F2: a's to my right.
        let f2 = self.scan(&a_ind, seg, Sum, Direction::Down, ScanKind::Inclusive);
        // F3 = per-class elementwise position arithmetic.
        self.count_elementwise();
        let target: Vec<usize> = (0..seg.len())
            .map(|i| {
                if class[i] {
                    i + f2[i] as usize
                } else {
                    i - f1[i] as usize
                }
            })
            .collect();
        let counts = seg
            .ranges()
            .map(|r| {
                let na = r.clone().filter(|&i| !class[i]).count();
                (na, r.len() - na)
            })
            .collect();
        UnshuffleLayout { target, counts }
    }

    /// Two-subwalk unshuffle layout for the blocked parallel backend.
    /// Per segment, one counting walk finds `na` (the `a`-class
    /// population) and a second walk assigns targets by running class
    /// ranks: an `a` at rank `ra` goes to `start + ra` (which equals the
    /// reference's `i - F1[i]`, since `i - start - ra` is exactly the
    /// `b`s to its left) and a `b` at rank `rb` goes to `start + na + rb`
    /// (the reference's `i + F2[i]`). The two segmented scans, two
    /// indicator maps and the position elementwise of Fig. 16 collapse
    /// into those two walks; bit-identical targets, identical paper-level
    /// operation counts.
    fn unshuffle_layout_blocked(&self, seg: &Segments, class: &[bool]) -> UnshuffleLayout {
        let n = seg.len();
        rayon::fault_checkpoint();
        self.count_elementwise();
        self.count_elementwise();
        self.count_scan();
        self.count_scan();
        self.count_elementwise();
        self.count_blocked_pass();
        self.count_bytes_moved(4 * n * std::mem::size_of::<u64>());
        let mut target = vec![0usize; n];
        let mut counts = Vec::with_capacity(seg.num_segments());
        for r in seg.ranges() {
            let start = r.start;
            let len = r.len();
            let na = r.clone().filter(|&i| !class[i]).count();
            let mut ra = 0usize;
            let mut rb = 0usize;
            for i in r {
                if class[i] {
                    target[i] = start + na + rb;
                    rb += 1;
                } else {
                    target[i] = start + ra;
                    ra += 1;
                }
            }
            counts.push((na, len - na));
        }
        UnshuffleLayout { target, counts }
    }

    /// Applies an unshuffle layout to one data vector (the permutation step
    /// of paper Fig. 16).
    pub fn apply_unshuffle<T: Element>(&self, data: &[T], layout: &UnshuffleLayout) -> Vec<T> {
        self.permute(data, &layout.target)
    }

    /// Applies an unshuffle layout into a caller-provided buffer (cleared
    /// first).
    pub fn apply_unshuffle_into<T: Element>(
        &self,
        data: &[T],
        layout: &UnshuffleLayout,
        out: &mut Vec<T>,
    ) {
        self.permute_into(data, &layout.target, out);
    }

    /// Applies an unshuffle layout **through the ping-pong slab**: the
    /// permutation lands in a buffer leased from the machine's arena,
    /// which is then swapped into `data` and the old storage recycled for
    /// the next swap. A permutation is a bijection, so it cannot run truly
    /// in place over a single buffer without cycle-chasing; the leased
    /// slab bounds the footprint at one extra buffer for any number of
    /// consecutive reorders. Counted as the permutation plus one in-place
    /// reuse.
    pub fn apply_unshuffle_swap<T: Element>(&self, data: &mut Vec<T>, layout: &UnshuffleLayout) {
        let mut tmp: Vec<T> = self.lease();
        self.apply_unshuffle_into(data, layout, &mut tmp);
        std::mem::swap(data, &mut tmp);
        self.recycle(tmp);
        self.count_inplace_reuse();
    }

    // ------------------------------------------------------------------
    // Duplicate deletion (paper Sec. 4.3, Figs. 17-18)
    // ------------------------------------------------------------------

    /// Computes the deletion layout: lanes with `delete_flags[i] == true`
    /// are removed and the survivors close ranks leftward.
    ///
    /// Mechanics (paper Fig. 18): an unsegmented upward **exclusive**
    /// `+`-scan over the delete flags counts the doomed lanes to each
    /// lane's left (`F1`); an elementwise subtract from the position index
    /// gives each survivor's new index, and a permutation compacts them.
    ///
    /// # Panics
    ///
    /// Panics if `delete_flags.len() != seg.len()`.
    pub fn delete_layout(&self, seg: &Segments, delete_flags: &[bool]) -> DeleteLayout {
        assert_eq!(
            delete_flags.len(),
            seg.len(),
            "delete: flag length {} does not match segment descriptor length {}",
            delete_flags.len(),
            seg.len()
        );
        if self.use_par(seg.len()) {
            return self.delete_layout_blocked(seg, delete_flags);
        }
        let ones: Vec<u64> = self.map(delete_flags, |f| f as u64);
        let f1 = self.up_scan(&ones, Sum, ScanKind::Exclusive);
        self.count_elementwise();
        self.count_permute();
        let mut src_lane = Vec::with_capacity(seg.len());
        for i in 0..seg.len() {
            if !delete_flags[i] {
                debug_assert_eq!(i - f1[i] as usize, src_lane.len());
                src_lane.push(i);
            }
        }
        let kept_per_segment = seg
            .ranges()
            .map(|r| r.filter(|&i| !delete_flags[i]).count())
            .collect();
        DeleteLayout {
            src_lane,
            kept_per_segment,
        }
    }

    /// Single-sweep deletion layout for the blocked parallel backend: one
    /// walk per segment pushes the survivors in order (a survivor's output
    /// slot is exactly the count of survivors already pushed, which is the
    /// reference's `i - F1[i]`) and records each segment's kept count as
    /// it closes. The indicator map, compaction scan, position elementwise
    /// and gather-index scatter of Fig. 18 collapse into that walk;
    /// bit-identical to the composed path, identical paper-level counts.
    fn delete_layout_blocked(&self, seg: &Segments, delete_flags: &[bool]) -> DeleteLayout {
        let n = seg.len();
        rayon::fault_checkpoint();
        self.count_elementwise();
        self.count_scan();
        self.count_elementwise();
        self.count_permute();
        self.count_blocked_pass();
        self.count_bytes_moved(2 * n * std::mem::size_of::<u64>());
        let mut src_lane = Vec::with_capacity(n);
        let mut kept_per_segment = Vec::with_capacity(seg.num_segments());
        for r in seg.ranges() {
            let before = src_lane.len();
            for i in r {
                if !delete_flags[i] {
                    src_lane.push(i);
                }
            }
            kept_per_segment.push(src_lane.len() - before);
        }
        DeleteLayout {
            src_lane,
            kept_per_segment,
        }
    }

    /// Applies a deletion layout to one data vector.
    pub fn apply_delete<T: Element>(&self, data: &[T], layout: &DeleteLayout) -> Vec<T> {
        self.gather(data, &layout.src_lane)
    }

    /// Applies a deletion layout into a caller-provided buffer (cleared
    /// first).
    pub fn apply_delete_into<T: Element>(
        &self,
        data: &[T],
        layout: &DeleteLayout,
        out: &mut Vec<T>,
    ) {
        self.gather_into(data, &layout.src_lane, out);
    }

    /// Applies a deletion layout **in place**: survivors close ranks
    /// leftward through `data`, which is then truncated to the survivor
    /// count — no second buffer. The deletion gather is strictly
    /// increasing (`src_lane[j] >= j`), so a forward sweep never reads a
    /// slot it has already overwritten. Counted as the same permutation
    /// as [`Machine::apply_delete_into`] plus one in-place reuse.
    pub fn apply_delete_in_place<T: Element>(&self, data: &mut Vec<T>, layout: &DeleteLayout) {
        let kept = layout.src_lane.len();
        if self.use_par(kept) {
            rayon::fault_checkpoint();
        }
        self.count_permute();
        self.count_bytes_moved(kept * std::mem::size_of::<T>());
        self.count_inplace_reuse();
        for (j, &src) in layout.src_lane.iter().enumerate() {
            debug_assert!(src >= j, "delete gather must be strictly increasing");
            data[j] = data[src];
        }
        data.truncate(kept);
    }

    /// Deletes duplicates from a *sorted* vector of keys: every lane equal
    /// to its left neighbour is flagged and removed (the full duplicate-
    /// deletion primitive of paper Sec. 4.3).
    pub fn delete_duplicates<T: Element + PartialEq>(
        &self,
        data: &[T],
        seg: &Segments,
    ) -> (Vec<T>, DeleteLayout) {
        self.count_elementwise();
        let flags: Vec<bool> = (0..data.len())
            .map(|i| i > 0 && !seg.flags()[i] && data[i] == data[i - 1])
            .collect();
        let layout = self.delete_layout(seg, &flags);
        let out = self.apply_delete(data, &layout);
        (out, layout)
    }

    // ------------------------------------------------------------------
    // Node capacity check (paper Sec. 4.4, Fig. 19)
    // ------------------------------------------------------------------

    /// Per-lane *suffix* counts within each segment: a downward inclusive
    /// `+`-scan of ones, exactly the vector drawn in paper Fig. 19. The
    /// first lane of each segment holds the segment's total occupancy.
    pub fn capacity_check_scan(&self, seg: &Segments) -> Vec<u64> {
        let ones = vec![1u64; seg.len()];
        self.scan(&ones, seg, Sum, Direction::Down, ScanKind::Inclusive)
    }

    /// Per-segment totals: the node capacity check read out at the first
    /// lane of each segment (the "elementwise write to the node" of
    /// Sec. 4.4).
    pub fn segment_counts(&self, seg: &Segments) -> Vec<u64> {
        let mut out = Vec::new();
        self.segment_counts_into(seg, &mut out);
        out
    }

    /// [`Machine::segment_counts`] into a caller-provided buffer (cleared
    /// first). The internal ones/scan vectors are leased from the
    /// machine's scratch arena, so a warm call performs no allocation —
    /// this is the per-round capacity check of the build loops (paper
    /// Sec. 4.4), issued once per segment structure per round.
    pub fn segment_counts_into(&self, seg: &Segments, out: &mut Vec<u64>) {
        let mut ones: Vec<u64> = self.lease();
        crate::machine::fit_exact(&mut ones, seg.len());
        ones.resize(seg.len(), 1);
        let mut scanned: Vec<u64> = self.lease();
        self.scan_into(
            &ones,
            seg,
            Sum,
            Direction::Down,
            ScanKind::Inclusive,
            &mut scanned,
        );
        self.count_elementwise();
        out.clear();
        out.extend(seg.starts().iter().map(|&s| scanned[s]));
        self.recycle(ones);
        self.recycle(scanned);
    }

    /// Per-lane segment totals: the capacity check followed by a broadcast
    /// of the head value across the segment.
    pub fn segment_counts_broadcast(&self, seg: &Segments) -> Vec<u64> {
        let scanned = self.capacity_check_scan(seg);
        self.broadcast_first(&scanned, seg)
    }

    // ------------------------------------------------------------------
    // Broadcasts (copy scans, paper Secs. 4.5 and 4.7)
    // ------------------------------------------------------------------

    /// Broadcasts the first lane of each segment to every lane of the
    /// segment (upward inclusive copy-scan).
    pub fn broadcast_first<T: Element + Default>(&self, data: &[T], seg: &Segments) -> Vec<T> {
        self.scan(data, seg, First, Direction::Up, ScanKind::Inclusive)
    }

    /// Broadcasts the last lane of each segment to every lane of the
    /// segment (downward inclusive right-projection scan).
    pub fn broadcast_last<T: Element + Default>(&self, data: &[T], seg: &Segments) -> Vec<T> {
        self.scan(data, seg, Last, Direction::Down, ScanKind::Inclusive)
    }

    /// Each lane's rank within its segment (upward exclusive `+`-scan of
    /// ones).
    pub fn rank_in_segment(&self, seg: &Segments) -> Vec<u64> {
        let ones = vec![1u64; seg.len()];
        self.scan(&ones, seg, Sum, Direction::Up, ScanKind::Exclusive)
    }

    // ------------------------------------------------------------------
    // Segmented sort (used by the R-tree sweep split, paper Sec. 4.7)
    // ------------------------------------------------------------------

    /// Stable per-segment sort. Returns gather indices `order` such that
    /// reading lanes in `order` yields each segment's lanes sorted by
    /// `cmp` over `keys` (ties broken by original lane, i.e. stable), with
    /// segment boundaries unchanged.
    ///
    /// Counted as one sort operation — the paper treats a sort as an
    /// `O(log n)`-time composite primitive (Sec. 3.2).
    ///
    /// # Panics
    ///
    /// Panics if `keys.len() != seg.len()`.
    pub fn segmented_sort_perm<K, F>(&self, seg: &Segments, keys: &[K], cmp: F) -> Vec<usize>
    where
        K: Element,
        F: Fn(&K, &K) -> CmpOrdering + Send + Sync,
    {
        assert_eq!(
            keys.len(),
            seg.len(),
            "sort: key length {} does not match segment descriptor length {}",
            keys.len(),
            seg.len()
        );
        self.count_sort();
        let n = seg.len();
        let mut order: Vec<usize> = (0..n).collect();
        if self.backend() == crate::machine::Backend::Parallel {
            // Segment-local path: segments are contiguous index ranges,
            // so the global (segment, key, lane) sort below is exactly
            // the concatenation of per-range (key, lane) sorts. Each run
            // sorts without the segment-id indirection the global
            // comparator pays per comparison, and independent runs sort
            // in parallel. The per-range tie-break on the lane index
            // reproduces the reference order bit-for-bit.
            let range_cmp =
                |&x: &usize, &y: &usize| cmp(&keys[x], &keys[y]).then_with(|| x.cmp(&y));
            let ranges: Vec<std::ops::Range<usize>> = seg.ranges().collect();
            if self.use_par(n) && ranges.len() >= 2 {
                use rayon::prelude::*;
                rayon::fault_checkpoint();
                let base = crate::scatter::SyncPtr(order.as_mut_ptr());
                (0..ranges.len()).into_par_iter().for_each(|s| {
                    let r = ranges[s].clone();
                    // SAFETY: segment ranges are disjoint and within
                    // 0..n, so each job sorts its own subslice.
                    let run =
                        unsafe { std::slice::from_raw_parts_mut(base.get().add(r.start), r.len()) };
                    run.sort_unstable_by(range_cmp);
                });
            } else {
                for r in ranges {
                    order[r].sort_unstable_by(range_cmp);
                }
            }
        } else {
            // Reference path: one global sort keyed by (segment, key,
            // lane) — the specification the segment-local path above
            // must match bit-for-bit.
            let seg_ids = seg.segment_ids();
            order.sort_unstable_by(|&x: &usize, &y: &usize| {
                seg_ids[x]
                    .cmp(&seg_ids[y])
                    .then_with(|| cmp(&keys[x], &keys[y]))
                    .then_with(|| x.cmp(&y))
            });
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Backend, Machine};

    fn machines() -> Vec<Machine> {
        vec![
            Machine::sequential(),
            Machine::new(Backend::Parallel).with_par_threshold(1),
        ]
    }

    /// Paper Figs. 13-14: clone elements a, d and g of [a..g].
    #[test]
    fn fig13_14_cloning() {
        for m in machines() {
            let data: Vec<char> = "abcdefg".chars().collect();
            let seg = Segments::single(7);
            let flags = vec![true, false, false, true, false, false, true];
            let layout = m.clone_layout(&seg, &flags);
            let out = m.apply_clone(&data, &layout);
            assert_eq!(out, "aabcddefgg".chars().collect::<Vec<_>>());
            assert_eq!(
                layout.is_clone,
                vec![false, true, false, false, false, true, false, false, false, true]
            );
            assert_eq!(layout.seg.num_segments(), 1);
            assert_eq!(layout.seg.len(), 10);
        }
    }

    #[test]
    fn cloning_respects_segments() {
        for m in machines() {
            let data = vec![1u32, 2, 3, 4];
            let seg = Segments::from_lengths(&[2, 2]).unwrap();
            // Clone the lane that starts the second segment.
            let flags = vec![false, false, true, false];
            let layout = m.clone_layout(&seg, &flags);
            let out = m.apply_clone(&data, &layout);
            assert_eq!(out, vec![1, 2, 3, 3, 4]);
            assert_eq!(layout.seg.lengths(), vec![2, 3]);
            // The clone joins its original's segment, not a new one.
            assert_eq!(layout.seg.flags(), &[true, false, true, false, false]);
        }
    }

    #[test]
    fn cloning_nothing_is_identity() {
        for m in machines() {
            let data = vec![5i64, 6, 7];
            let seg = Segments::single(3);
            let layout = m.clone_layout(&seg, &[false, false, false]);
            assert_eq!(m.apply_clone(&data, &layout), data);
            assert_eq!(layout.seg, seg);
        }
    }

    /// Paper Figs. 15-16: unshuffle [b a b a a b a] into a's then b's.
    #[test]
    fn fig15_16_unshuffle() {
        for m in machines() {
            // Types per Fig. 16: X = b a b a a b a (class true = b).
            let class = vec![true, false, true, false, false, true, false];
            let data = vec![10i64, 1, 20, 2, 3, 30, 4];
            let seg = Segments::single(7);
            let layout = m.unshuffle_layout(&seg, &class);
            let out = m.apply_unshuffle(&data, &layout);
            assert_eq!(out, vec![1, 2, 3, 4, 10, 20, 30]);
            assert_eq!(layout.counts, vec![(4, 3)]);
        }
    }

    #[test]
    fn unshuffle_is_stable_within_each_class() {
        for m in machines() {
            let class = vec![false, true, false, true, false];
            let data = vec![1u32, 100, 2, 200, 3];
            let seg = Segments::single(5);
            let layout = m.unshuffle_layout(&seg, &class);
            let out = m.apply_unshuffle(&data, &layout);
            assert_eq!(out, vec![1, 2, 3, 100, 200]);
        }
    }

    #[test]
    fn unshuffle_multiple_segments_stay_disjoint() {
        for m in machines() {
            let seg = Segments::from_lengths(&[3, 4]).unwrap();
            let class = vec![true, false, true, true, false, false, true];
            let data = vec![9u32, 1, 8, 7, 2, 3, 6];
            let layout = m.unshuffle_layout(&seg, &class);
            let out = m.apply_unshuffle(&data, &layout);
            assert_eq!(out, vec![1, 9, 8, 2, 3, 7, 6]);
            assert_eq!(layout.counts, vec![(1, 2), (2, 2)]);
        }
    }

    #[test]
    fn unshuffle_all_one_class() {
        for m in machines() {
            let seg = Segments::from_lengths(&[3]).unwrap();
            let data = vec![1u32, 2, 3];
            for class_val in [false, true] {
                let layout = m.unshuffle_layout(&seg, &[class_val; 3]);
                assert_eq!(m.apply_unshuffle(&data, &layout), data);
            }
        }
    }

    /// Paper Figs. 17-18: delete flagged duplicates from a sorted ordering.
    #[test]
    fn fig17_18_duplicate_deletion() {
        for m in machines() {
            // Sorted with duplicates: a a b c c c d e.
            let data: Vec<char> = "aabcccde".chars().collect();
            let seg = Segments::single(8);
            let (out, layout) = m.delete_duplicates(&data, &seg);
            assert_eq!(out, "abcde".chars().collect::<Vec<_>>());
            assert_eq!(layout.kept_per_segment, vec![5]);
        }
    }

    #[test]
    fn delete_respects_segment_boundaries() {
        for m in machines() {
            // Equal keys across a segment boundary are NOT duplicates.
            let data = vec![1u32, 1, 1, 1];
            let seg = Segments::from_lengths(&[2, 2]).unwrap();
            let (out, layout) = m.delete_duplicates(&data, &seg);
            assert_eq!(out, vec![1, 1]);
            assert_eq!(layout.kept_per_segment, vec![1, 1]);
        }
    }

    #[test]
    fn delete_layout_explicit_flags() {
        for m in machines() {
            let seg = Segments::from_lengths(&[2, 3]).unwrap();
            let flags = vec![true, false, false, true, true];
            let layout = m.delete_layout(&seg, &flags);
            assert_eq!(layout.src_lane, vec![1, 2]);
            assert_eq!(layout.kept_per_segment, vec![1, 1]);
            let data = vec![10u32, 11, 12, 13, 14];
            assert_eq!(m.apply_delete(&data, &layout), vec![11, 12]);
        }
    }

    /// Paper Fig. 19: the node capacity check scan.
    #[test]
    fn fig19_capacity_check() {
        for m in machines() {
            let seg = Segments::from_lengths(&[3, 4, 2]).unwrap();
            let scanned = m.capacity_check_scan(&seg);
            assert_eq!(scanned, vec![3, 2, 1, 4, 3, 2, 1, 2, 1]);
            assert_eq!(m.segment_counts(&seg), vec![3, 4, 2]);
            assert_eq!(
                m.segment_counts_broadcast(&seg),
                vec![3, 3, 3, 4, 4, 4, 4, 2, 2]
            );
        }
    }

    #[test]
    fn broadcast_first_and_last() {
        for m in machines() {
            let seg = Segments::from_lengths(&[2, 3]).unwrap();
            let data = vec![7u64, 0, 9, 0, 4];
            assert_eq!(m.broadcast_first(&data, &seg), vec![7, 7, 9, 9, 9]);
            assert_eq!(m.broadcast_last(&data, &seg), vec![0, 0, 4, 4, 4]);
        }
    }

    #[test]
    fn rank_in_segment_counts_from_zero() {
        for m in machines() {
            let seg = Segments::from_lengths(&[2, 3]).unwrap();
            assert_eq!(m.rank_in_segment(&seg), vec![0, 1, 0, 1, 2]);
        }
    }

    #[test]
    fn segmented_sort_is_stable_and_segment_local() {
        for m in machines() {
            let seg = Segments::from_lengths(&[4, 3]).unwrap();
            let keys = vec![3u32, 1, 3, 2, 9, 0, 9];
            let order = m.segmented_sort_perm(&seg, &keys, |a, b| a.cmp(b));
            let sorted = m.gather(&keys, &order);
            assert_eq!(sorted, vec![1, 2, 3, 3, 0, 9, 9]);
            // Stability: the two 3s keep original relative order (lanes 0, 2)
            // and the two 9s keep lanes 4, 6.
            assert_eq!(order, vec![1, 3, 0, 2, 5, 4, 6]);
        }
    }

    /// A little deterministic LCG so the equivalence sweeps do not depend
    /// on external randomness.
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    fn random_case(n: usize, seed: u64) -> (Segments, Vec<bool>) {
        let mut s = seed;
        let mut lengths = Vec::new();
        let mut total = 0usize;
        while total < n {
            let len = (lcg(&mut s) as usize % 37 + 1).min(n - total);
            lengths.push(len);
            total += len;
        }
        let seg = Segments::from_lengths(&lengths).unwrap();
        let flags = (0..n).map(|_| lcg(&mut s) % 3 == 0).collect();
        (seg, flags)
    }

    /// The blocked single-sweep layout kernels (parallel backend) must be
    /// bit-identical to the composed scan/ew/permute reference (sequential
    /// backend) on irregular segment structures.
    #[test]
    fn blocked_layouts_match_reference() {
        let seq = Machine::sequential();
        let par = Machine::new(Backend::Parallel).with_par_threshold(1);
        for n in [1usize, 2, 37, 64, 100, 1000] {
            for seed in [1u64, 7, 42] {
                let (seg, flags) = random_case(n, seed);
                assert_eq!(
                    seq.clone_layout(&seg, &flags),
                    par.clone_layout(&seg, &flags),
                    "clone layout diverged at n={n} seed={seed}"
                );
                assert_eq!(
                    seq.unshuffle_layout(&seg, &flags),
                    par.unshuffle_layout(&seg, &flags),
                    "unshuffle layout diverged at n={n} seed={seed}"
                );
                assert_eq!(
                    seq.delete_layout(&seg, &flags),
                    par.delete_layout(&seg, &flags),
                    "delete layout diverged at n={n} seed={seed}"
                );
            }
        }
    }

    /// The fused layout kernels charge the same paper-level operation
    /// counts and bytes as the composed reference path, so complexity
    /// accounting stays backend-identical.
    #[test]
    fn blocked_layouts_keep_reference_op_counts() {
        let seq = Machine::sequential();
        let par = Machine::new(Backend::Parallel).with_par_threshold(1);
        let (seg, flags) = random_case(200, 3);
        type LayoutFn = fn(&Machine, &Segments, &[bool]);
        let cases: [(&str, LayoutFn); 3] = [
            ("clone", |m, s, f| {
                m.clone_layout(s, f);
            }),
            ("unshuffle", |m, s, f| {
                m.unshuffle_layout(s, f);
            }),
            ("delete", |m, s, f| {
                m.delete_layout(s, f);
            }),
        ];
        for (name, run) in cases {
            let b_seq = seq.stats();
            run(&seq, &seg, &flags);
            let d_seq = seq.stats().since(&b_seq);
            let b_par = par.stats();
            run(&par, &seg, &flags);
            let d_par = par.stats().since(&b_par);
            assert_eq!(d_seq.scans, d_par.scans, "{name}: scans diverged");
            assert_eq!(
                d_seq.scan_passes, d_par.scan_passes,
                "{name}: scan passes diverged"
            );
            assert_eq!(
                d_seq.elementwise, d_par.elementwise,
                "{name}: elementwise diverged"
            );
            assert_eq!(d_seq.permutes, d_par.permutes, "{name}: permutes diverged");
            assert_eq!(
                d_seq.bytes_moved, d_par.bytes_moved,
                "{name}: bytes moved diverged"
            );
            assert_eq!(d_seq.blocked_passes, 0, "{name}: sequential ran blocked");
            assert_eq!(d_par.blocked_passes, 1, "{name}: fused kernel is one pass");
        }
    }

    #[test]
    fn delete_in_place_matches_gather() {
        for m in machines() {
            for n in [0usize, 1, 5, 100] {
                let (seg, flags) = random_case(n.max(1), 11);
                let (seg, flags) = if n == 0 {
                    (Segments::single(0), Vec::new())
                } else {
                    (seg, flags)
                };
                let data: Vec<u64> = (0..seg.len() as u64).map(|i| i * 3 + 1).collect();
                let layout = m.delete_layout(&seg, &flags);
                let expect = m.apply_delete(&data, &layout);
                let before = m.stats();
                let mut in_place = data.clone();
                m.apply_delete_in_place(&mut in_place, &layout);
                let d = m.stats().since(&before);
                assert_eq!(in_place, expect);
                assert_eq!(d.permutes, 1);
                assert_eq!(d.inplace_reuses, 1);
            }
        }
    }

    #[test]
    fn clone_in_place_matches_gather() {
        for m in machines() {
            for n in [0usize, 1, 5, 100] {
                let (seg, flags) = if n == 0 {
                    (Segments::single(0), Vec::new())
                } else {
                    random_case(n, 13)
                };
                let data: Vec<i64> = (0..seg.len() as i64).map(|i| -i).collect();
                let layout = m.clone_layout(&seg, &flags);
                let expect = m.apply_clone(&data, &layout);
                let before = m.stats();
                let mut in_place = data.clone();
                m.apply_clone_in_place(&mut in_place, &layout);
                let d = m.stats().since(&before);
                assert_eq!(in_place, expect);
                assert_eq!(d.permutes, 1);
                assert_eq!(d.inplace_reuses, 1);
            }
        }
    }

    #[test]
    fn unshuffle_swap_matches_permute_and_recycles() {
        for m in machines() {
            let (seg, class) = random_case(64, 17);
            let data: Vec<u32> = (0..64u32).collect();
            let layout = m.unshuffle_layout(&seg, &class);
            let expect = m.apply_unshuffle(&data, &layout);
            let before = m.stats();
            let mut in_place = data.clone();
            m.apply_unshuffle_swap(&mut in_place, &layout);
            let d = m.stats().since(&before);
            assert_eq!(in_place, expect);
            assert_eq!(d.permutes, 1);
            assert_eq!(d.inplace_reuses, 1);
            // The displaced storage went back to the arena: the next lease
            // finds a warm slab instead of allocating.
            let leased: Vec<u32> = m.lease();
            assert!(
                leased.capacity() >= data.len(),
                "displaced storage was not recycled"
            );
            m.recycle(leased);
        }
    }

    #[test]
    fn segmented_sort_f64_keys() {
        for m in machines() {
            let seg = Segments::single(4);
            let keys = vec![2.5f64, -1.0, 0.0, 2.5];
            let order = m.segmented_sort_perm(&seg, &keys, |a, b| a.total_cmp(b));
            assert_eq!(order, vec![1, 2, 0, 3]);
        }
    }
}
