//! Error type for fallible `scan-model` constructors and operations.

use std::fmt;

/// Errors produced by fallible `scan-model` operations.
///
/// Shape mismatches between vectors passed to the *infallible* primitive
/// operations (e.g. an elementwise op over vectors of different lengths) are
/// programming errors and panic instead, mirroring the slice-indexing
/// convention of the standard library. `ScanModelError` is reserved for
/// conditions that depend on *values* (not shapes) supplied by the caller,
/// which a caller may legitimately want to handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScanModelError {
    /// A segment descriptor was built from a flag vector whose first element
    /// was not a segment start, or from an empty length list containing a
    /// zero-length segment.
    InvalidSegments {
        /// Human-readable description of the violation.
        reason: String,
    },
    /// An index vector passed to a permutation was not one-to-one into the
    /// target range (an index out of bounds, or two lanes mapping to the
    /// same target).
    InvalidPermutation {
        /// The first offending lane.
        lane: usize,
        /// The offending target index.
        target: usize,
        /// Length of the permutation target.
        target_len: usize,
        /// Whether the failure was a duplicate target (`true`) or an
        /// out-of-range target (`false`).
        duplicate: bool,
    },
}

impl fmt::Display for ScanModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanModelError::InvalidSegments { reason } => {
                write!(f, "invalid segment descriptor: {reason}")
            }
            ScanModelError::InvalidPermutation {
                lane,
                target,
                target_len,
                duplicate,
            } => {
                if *duplicate {
                    write!(
                        f,
                        "invalid permutation: lane {lane} maps to target {target} \
                         already claimed by another lane"
                    )
                } else {
                    write!(
                        f,
                        "invalid permutation: lane {lane} maps to target {target} \
                         outside 0..{target_len}"
                    )
                }
            }
        }
    }
}

impl std::error::Error for ScanModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_invalid_segments() {
        let e = ScanModelError::InvalidSegments {
            reason: "first flag must be set".into(),
        };
        assert!(e.to_string().contains("first flag"));
    }

    #[test]
    fn display_invalid_permutation_oob() {
        let e = ScanModelError::InvalidPermutation {
            lane: 3,
            target: 9,
            target_len: 5,
            duplicate: false,
        };
        let s = e.to_string();
        assert!(s.contains("lane 3"), "{s}");
        assert!(s.contains("outside 0..5"), "{s}");
    }

    #[test]
    fn display_invalid_permutation_dup() {
        let e = ScanModelError::InvalidPermutation {
            lane: 2,
            target: 1,
            target_len: 5,
            duplicate: true,
        };
        assert!(e.to_string().contains("already claimed"));
    }
}
