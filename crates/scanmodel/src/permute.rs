//! The permutation primitive (paper Section 3.2.3, Fig. 10).
//!
//! A permutation takes a data vector and an index vector and repositions
//! each data element to the lane named by its index. The paper requires the
//! mapping to be one-to-one; [`validate_permutation`] enforces exactly
//! that, and also supports the *injective-into-larger-target* case needed
//! by cloning (Sec. 4.1), where `n` elements are permuted into a vector of
//! `n + k` lanes before the clones fill the gaps.

use crate::error::ScanModelError;
use crate::ops::Element;
use crate::scatter::SyncPtr;
use rayon::prelude::*;

/// Checks that `index` is an injective map into `0..target_len`.
///
/// # Errors
///
/// Returns [`ScanModelError::InvalidPermutation`] naming the first
/// offending lane on an out-of-range or duplicate target.
pub fn validate_permutation(index: &[usize], target_len: usize) -> Result<(), ScanModelError> {
    let mut seen = vec![false; target_len];
    for (lane, &t) in index.iter().enumerate() {
        if t >= target_len {
            return Err(ScanModelError::InvalidPermutation {
                lane,
                target: t,
                target_len,
                duplicate: false,
            });
        }
        if seen[t] {
            return Err(ScanModelError::InvalidPermutation {
                lane,
                target: t,
                target_len,
                duplicate: true,
            });
        }
        seen[t] = true;
    }
    Ok(())
}

/// Sequential permutation: `out[index[i]] = data[i]`, with
/// `index` a bijection on `0..n`.
///
/// # Panics
///
/// Panics if lengths differ or the index vector is not a permutation
/// (the one-to-one requirement of paper Fig. 10).
pub fn permute_seq<T: Element>(data: &[T], index: &[usize]) -> Vec<T> {
    let mut out = Vec::new();
    permute_seq_into(data, index, &mut out);
    out
}

/// Sequential permutation into a caller-provided buffer (cleared first),
/// with the same contract as [`permute_seq`].
///
/// # Panics
///
/// Panics if lengths differ or the index vector is not a permutation.
pub fn permute_seq_into<T: Element>(data: &[T], index: &[usize], out: &mut Vec<T>) {
    assert_eq!(
        data.len(),
        index.len(),
        "permute: data length {} does not match index length {}",
        data.len(),
        index.len()
    );
    validate_permutation(index, data.len()).unwrap_or_else(|e| panic!("permute: {e}"));
    out.clear();
    out.extend_from_slice(data);
    for (i, &t) in index.iter().enumerate() {
        out[t] = data[i];
    }
}

/// Parallel permutation with the same contract as [`permute_seq`].
///
/// # Panics
///
/// Panics if lengths differ or the index vector is not a permutation.
pub fn permute_par<T: Element>(data: &[T], index: &[usize]) -> Vec<T> {
    let mut out = Vec::new();
    permute_par_into(data, index, &mut out);
    out
}

/// Parallel permutation into a caller-provided buffer (cleared first).
///
/// Validation runs first (sequentially — it is a cheap O(n) pass), then
/// the scatter writes proceed in parallel into the buffer's spare
/// capacity through raw pointers, which is sound because validation has
/// proven the targets pairwise distinct and (since `data.len()` equals
/// the target length) complete.
///
/// # Panics
///
/// Panics if lengths differ or the index vector is not a permutation.
pub fn permute_par_into<T: Element>(data: &[T], index: &[usize], out: &mut Vec<T>) {
    assert_eq!(
        data.len(),
        index.len(),
        "permute: data length {} does not match index length {}",
        data.len(),
        index.len()
    );
    validate_permutation(index, data.len()).unwrap_or_else(|e| panic!("permute: {e}"));
    let n = data.len();
    out.clear();
    out.reserve(n);
    let base = SyncPtr(out.as_mut_ptr());
    data.par_iter().zip(index.par_iter()).for_each(|(&v, &t)| {
        // SAFETY: `index` is a validated bijection on 0..n, so each slot
        // t < n is written exactly once, within the reserved capacity.
        unsafe { base.get().add(t).write(v) };
    });
    // SAFETY: the bijection covered every slot in 0..n.
    unsafe { out.set_len(n) };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of paper Fig. 10.
    #[test]
    fn fig10_permutation() {
        // data    a b c d e f g h
        // index   2 5 4 3 1 6 0 7
        // answer  g e a d c b f h
        let data: Vec<char> = "abcdefgh".chars().collect();
        let index = vec![2usize, 5, 4, 3, 1, 6, 0, 7];
        let expect: Vec<char> = "geadcbfh".chars().collect();
        assert_eq!(permute_seq(&data, &index), expect);
        assert_eq!(permute_par(&data, &index), expect);
    }

    #[test]
    fn identity_permutation() {
        let data = vec![10u64, 20, 30];
        let index = vec![0usize, 1, 2];
        assert_eq!(permute_seq(&data, &index), data);
        assert_eq!(permute_par(&data, &index), data);
    }

    #[test]
    fn empty_permutation() {
        let data: Vec<u64> = Vec::new();
        let index: Vec<usize> = Vec::new();
        assert!(permute_seq(&data, &index).is_empty());
        assert!(permute_par(&data, &index).is_empty());
    }

    #[test]
    fn validate_rejects_out_of_range() {
        let err = validate_permutation(&[0, 3], 2).unwrap_err();
        assert!(matches!(
            err,
            ScanModelError::InvalidPermutation {
                duplicate: false,
                ..
            }
        ));
    }

    #[test]
    fn validate_rejects_duplicates() {
        let err = validate_permutation(&[0, 1, 0], 3).unwrap_err();
        assert!(matches!(
            err,
            ScanModelError::InvalidPermutation {
                duplicate: true,
                lane: 2,
                ..
            }
        ));
    }

    #[test]
    fn validate_accepts_injection_into_larger_target() {
        // Cloning permutes n lanes injectively into n + k lanes.
        assert!(validate_permutation(&[0, 2, 5], 6).is_ok());
    }

    #[test]
    #[should_panic(expected = "permute")]
    fn permute_panics_on_shared_target() {
        permute_seq(&[1u32, 2], &[0, 0]);
    }
}
