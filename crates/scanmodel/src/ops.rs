//! Associative combine operators for scan operations.
//!
//! A scan takes an associative operator `⊕` and a vector, and returns the
//! running combines (paper Section 3.2). The paper binds `⊕` to addition in
//! its worked examples (Fig. 8), and additionally uses `min`, `max`
//! (endpoint bounding boxes, Sec. 4.5; sweep split extents, Sec. 4.7) and
//! `copy` (segment broadcast, Sec. 4.7).
//!
//! Operators here are zero-sized marker types implementing [`CombineOp`],
//! so scans monomorphize to tight loops with no virtual dispatch.

/// Marker bound for values that can flow through the vector machine.
pub trait Element: Copy + Send + Sync + 'static {}
impl<T: Copy + Send + Sync + 'static> Element for T {}

/// An associative binary operator with identity, usable in scans.
///
/// `combine` must be associative: `combine(combine(a, b), c) ==
/// combine(a, combine(b, c))` — this is what makes the blocked parallel
/// scan in [`crate::par`] exact. It need *not* be commutative (the
/// [`First`] operator, used for broadcasts, is not).
///
/// `identity` must satisfy `combine(identity(), x) == x` for every `x`
/// that can appear in a scan; it seeds exclusive scans at segment heads.
pub trait CombineOp<T>: Copy + Send + Sync {
    /// The identity element of the operator.
    fn identity(&self) -> T;
    /// Combines two values. Must be associative.
    fn combine(&self, a: T, b: T) -> T;
}

/// Addition (`⊕ = +`), the operator of the paper's Fig. 8 examples and of
/// every counting scan (node capacity checks, clone offsets, unshuffle
/// ranks, duplicate-deletion shifts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sum;

/// Minimum, used for bounding-box lower extents (paper Secs. 4.5, 4.7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Min;

/// Maximum, used for bounding-box upper extents (paper Secs. 4.5, 4.7).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Max;

/// Logical OR over `bool` lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Or;

/// Logical AND over `bool` lanes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct And;

/// The *copy* operator of the paper (Sec. 4.7): `a ⊕ b = a`, a left
/// projection. An inclusive upward copy-scan broadcasts the first lane of
/// each segment to the whole segment; an inclusive downward copy-scan
/// broadcasts the last lane. Left projection is associative
/// (`(a⊕b)⊕c = a = a⊕(b⊕c)`) but not commutative.
///
/// The identity is `T::default()`; it only ever surfaces in exclusive
/// copy-scans, where the head lane of each segment has no predecessor.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct First;

/// The right-projection operator: `a ⊕ b = b`. An inclusive *downward*
/// scan with `Last` broadcasts the last lane of each segment to the whole
/// segment (the mirror of [`First`] under upward scans). Right projection
/// is associative: `(a⊕b)⊕c = c = a⊕(b⊕c)`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Last;

impl<T: Element + Default> CombineOp<T> for Last {
    #[inline]
    fn identity(&self) -> T {
        T::default()
    }
    #[inline]
    fn combine(&self, _a: T, b: T) -> T {
        b
    }
}

macro_rules! impl_arith_ops {
    ($($t:ty),*) => {$(
        impl CombineOp<$t> for Sum {
            #[inline]
            fn identity(&self) -> $t { 0 as $t }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { a + b }
        }
        impl CombineOp<$t> for Min {
            #[inline]
            fn identity(&self) -> $t { <$t>::MAX }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { if b < a { b } else { a } }
        }
        impl CombineOp<$t> for Max {
            #[inline]
            fn identity(&self) -> $t { <$t>::MIN }
            #[inline]
            fn combine(&self, a: $t, b: $t) -> $t { if b > a { b } else { a } }
        }
    )*};
}

impl_arith_ops!(i32, i64, u32, u64, usize, i8, u8, i16, u16);

impl CombineOp<f64> for Sum {
    #[inline]
    fn identity(&self) -> f64 {
        0.0
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a + b
    }
}

impl CombineOp<f64> for Min {
    #[inline]
    fn identity(&self) -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

impl CombineOp<f64> for Max {
    #[inline]
    fn identity(&self) -> f64 {
        f64::NEG_INFINITY
    }
    #[inline]
    fn combine(&self, a: f64, b: f64) -> f64 {
        a.max(b)
    }
}

impl CombineOp<bool> for Or {
    #[inline]
    fn identity(&self) -> bool {
        false
    }
    #[inline]
    fn combine(&self, a: bool, b: bool) -> bool {
        a || b
    }
}

impl CombineOp<bool> for And {
    #[inline]
    fn identity(&self) -> bool {
        true
    }
    #[inline]
    fn combine(&self, a: bool, b: bool) -> bool {
        a && b
    }
}

impl<T: Element + Default> CombineOp<T> for First {
    #[inline]
    fn identity(&self) -> T {
        T::default()
    }
    #[inline]
    fn combine(&self, a: T, _b: T) -> T {
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_identity<T: PartialEq + std::fmt::Debug + Copy, O: CombineOp<T>>(
        op: O,
        samples: &[T],
    ) {
        for &x in samples {
            assert_eq!(op.combine(op.identity(), x), x);
        }
    }

    fn check_associative<T: PartialEq + std::fmt::Debug + Copy, O: CombineOp<T>>(
        op: O,
        samples: &[T],
    ) {
        for &a in samples {
            for &b in samples {
                for &c in samples {
                    assert_eq!(
                        op.combine(op.combine(a, b), c),
                        op.combine(a, op.combine(b, c))
                    );
                }
            }
        }
    }

    #[test]
    fn sum_laws_i64() {
        let xs = [-3i64, 0, 1, 7, 100];
        check_identity(Sum, &xs);
        check_associative(Sum, &xs);
    }

    #[test]
    fn min_max_laws_i64() {
        let xs = [-3i64, 0, 1, 7, 100, i64::MAX, i64::MIN];
        check_identity(Min, &xs);
        check_associative(Min, &xs);
        check_identity(Max, &xs);
        check_associative(Max, &xs);
    }

    #[test]
    fn min_max_laws_f64() {
        let xs = [-3.5f64, 0.0, 1.25, 7.0, 1e300];
        check_identity(Min, &xs);
        check_associative(Min, &xs);
        check_identity(Max, &xs);
        check_associative(Max, &xs);
    }

    #[test]
    fn bool_laws() {
        let xs = [true, false];
        check_identity(Or, &xs);
        check_associative(Or, &xs);
        check_identity(And, &xs);
        check_associative(And, &xs);
    }

    #[test]
    fn first_is_left_projection_and_associative() {
        let xs = [1u64, 2, 3];
        check_associative(First, &xs);
        assert_eq!(First.combine(5u64, 9), 5);
    }
}
